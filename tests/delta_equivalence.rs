//! Property suite for incremental statistics (registered under
//! `sj-histogram`).
//!
//! Randomized insert/delete batches are driven through
//! [`SpatialHistogram::apply_delta`] for **every** [`HistogramKind`] and
//! the result must be byte-identical to a fresh full rebuild over the
//! mutated dataset — the group-structure identity
//! `apply_delta(build(D), Δ) ≡ build(D ∪ Δ⁺ ∖ Δ⁻)` that the whole
//! incremental-statistics path (WAL replay, tier folding, compaction)
//! rests on. A second property attacks the persisted `.hdelta`
//! envelope with truncation and bit flips: the only allowed outcomes
//! are a typed [`HistogramError::Corrupt`] or a bit-for-bit identical
//! reload. Never a panic, never a silently different delta.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sj_geo::{Extent, Rect};
use sj_histogram::{
    build_histogram, load_delta, CorruptSection, Grid, HistogramDelta, HistogramError,
    HistogramKind,
};

/// Deterministic rectangle batch inside the unit extent.
fn rects(n: usize, seed: u64, side: f64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let x = rng.random_range(0.0..1.0 - side);
            let y = rng.random_range(0.0..1.0 - side);
            Rect::new(
                x,
                y,
                x + rng.random_range(0.0..side),
                y + rng.random_range(0.0..side),
            )
        })
        .collect()
}

/// Splits `base` into (kept, deleted) with roughly `del_per_mille / 1000`
/// of the rects deleted, deterministically from `seed`.
fn split_deletes(base: &[Rect], del_per_mille: u16, seed: u64) -> (Vec<Rect>, Vec<Rect>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut kept = Vec::new();
    let mut deleted = Vec::new();
    for r in base {
        if rng.random_range(0..1000u16) < del_per_mille {
            deleted.push(*r);
        } else {
            kept.push(*r);
        }
    }
    (kept, deleted)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Random batches, every family: incremental maintenance equals a
    /// full rebuild bit-for-bit, at every shard count, and the delta's
    /// `.hdelta` envelope round-trips losslessly.
    #[test]
    fn prop_apply_delta_matches_fresh_rebuild(
        seed in 0u64..10_000,
        kind_idx in 0usize..4,
        level in 1u32..5,
        n_base in 10usize..140,
        n_ins in 0usize..70,
        del_per_mille in 0u16..700,
        threads in 1usize..6,
    ) {
        let kind = HistogramKind::ALL[kind_idx];
        let grid = Grid::new(level, Extent::unit()).expect("level in range");
        let base = rects(n_base, seed, 0.08);
        let inserts = rects(n_ins, seed ^ 0xa5a5, 0.06);
        let (kept, deleted) = split_deletes(&base, del_per_mille, seed ^ 0x5a5a);
        let target: Vec<Rect> = kept.iter().chain(&inserts).copied().collect();

        let delta = HistogramDelta::build_parallel(kind, grid, &inserts, &deleted, threads);
        prop_assert_eq!(delta.inserts(), n_ins as u64);
        prop_assert_eq!(delta.deletes(), deleted.len() as u64);

        let mut maintained = build_histogram(kind, grid, &base);
        maintained.apply_delta(&delta).expect("deletes are a subset of the base");
        let rebuilt = build_histogram(kind, grid, &target);
        prop_assert_eq!(
            maintained.persist(),
            rebuilt.persist(),
            "{} x{}: incremental update diverged from full rebuild", kind, threads
        );

        // The persisted envelope is lossless.
        let revived = load_delta(&delta.persist()).expect("pristine envelope loads");
        prop_assert_eq!(revived, delta);
    }

    /// Inverting a batch (swap insert and delete sides) restores the
    /// original histogram exactly — the deltas form a group.
    #[test]
    fn prop_inverse_delta_restores_the_base(
        seed in 0u64..10_000,
        kind_idx in 0usize..4,
        level in 1u32..4,
        n_base in 10usize..100,
        n_ins in 1usize..50,
    ) {
        let kind = HistogramKind::ALL[kind_idx];
        let grid = Grid::new(level, Extent::unit()).expect("level in range");
        let base = rects(n_base, seed, 0.08);
        let inserts = rects(n_ins, seed ^ 0xbeef, 0.06);
        let (_, deleted) = split_deletes(&base, 300, seed ^ 0xfeed);

        let forward = HistogramDelta::build(kind, grid, &inserts, &deleted);
        let inverse = HistogramDelta::build(kind, grid, &deleted, &inserts);
        let mut h = build_histogram(kind, grid, &base);
        let before = h.persist();
        h.apply_delta(&forward).expect("forward applies");
        h.apply_delta(&inverse).expect("inverse applies");
        prop_assert_eq!(h.persist(), before, "{}: forward∘inverse must be identity", kind);
    }

    /// Deleting rects the histogram never absorbed must be rejected as
    /// a typed [`HistogramError::DeltaOutOfRange`] with the histogram
    /// left bit-for-bit untouched — never a wrap, never a panic.
    #[test]
    fn prop_phantom_deletes_are_typed_and_atomic(
        seed in 0u64..10_000,
        kind_idx in 0usize..4,
        level in 1u32..4,
    ) {
        let kind = HistogramKind::ALL[kind_idx];
        let grid = Grid::new(level, Extent::unit()).expect("level in range");
        let base = rects(30, seed, 0.08);
        // The phantom batch strictly contains the base, so some counter
        // must underflow.
        let mut phantom = base.clone();
        phantom.extend(rects(40, seed ^ 0xdead, 0.08));

        let delta = HistogramDelta::build(kind, grid, &[], &phantom);
        let mut h = build_histogram(kind, grid, &base);
        let before = h.persist();
        match h.apply_delta(&delta) {
            Err(HistogramError::DeltaOutOfRange { .. }) => {}
            other => prop_assert!(false, "{}: expected DeltaOutOfRange, got {:?}", kind, other),
        }
        prop_assert_eq!(h.persist(), before, "{}: failed apply must not mutate", kind);
    }

    /// Arbitrary `.hdelta` corruption — truncation at any offset, any
    /// byte XORed with any nonzero mask — either fails with a typed
    /// [`HistogramError::Corrupt`] or reloads the identical delta.
    #[test]
    fn prop_corrupt_hdelta_is_loud_or_lossless(
        seed in 0u64..10_000,
        kind_idx in 0usize..4,
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        xor in 1u8..=255,
    ) {
        let kind = HistogramKind::ALL[kind_idx];
        let grid = Grid::new(3, Extent::unit()).expect("level in range");
        let delta = HistogramDelta::build(
            kind,
            grid,
            &rects(50, seed, 0.07),
            &rects(15, seed ^ 0x7777, 0.07),
        );
        let bytes = delta.persist();

        // Truncation: the length frame makes every proper prefix
        // detectable, so a typed Corrupt is the only allowed outcome.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = (((bytes.len() - 1) as f64) * cut_frac) as usize;
        match load_delta(&bytes[..cut]) {
            Err(HistogramError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "non-Corrupt truncation error {:?}", other),
            Ok(_) => prop_assert!(false, "truncation at {} of {} loaded", cut, bytes.len()),
        }

        // Bit flips: a nonzero XOR changes the bytes, so loading must
        // fail typed (the CRC32 trailer or an envelope check bites).
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let pos = (((bytes.len() - 1) as f64) * flip_frac) as usize;
        let mut mutated = bytes.to_vec();
        mutated[pos] ^= xor;
        match load_delta(&mutated) {
            Err(HistogramError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "non-Corrupt flip error {:?}", other),
            Ok(loaded) => prop_assert_eq!(
                loaded,
                delta,
                "byte {} ^ {:#04x} loaded a DIFFERENT delta", pos, xor
            ),
        }
    }
}

/// Payload flips specifically must be caught by the checksum section,
/// pinning that the CRC32 trailer covers the whole payload.
#[test]
fn payload_flips_fail_the_delta_checksum() {
    for kind in HistogramKind::ALL {
        let grid = Grid::new(3, Extent::unit()).expect("level in range");
        let delta = HistogramDelta::build(kind, grid, &rects(40, 0xc4c, 0.07), &[]);
        let bytes = delta.persist();
        let payload_range = 20..bytes.len() - 4;
        let mut rng = StdRng::seed_from_u64(0xcc32 ^ u64::from(kind.tag()));
        for _ in 0..16 {
            let mut mutated = bytes.to_vec();
            let pos = rng.random_range(payload_range.clone());
            mutated[pos] ^= 0x80;
            match load_delta(&mutated) {
                Err(HistogramError::Corrupt {
                    section: CorruptSection::Checksum,
                    ..
                }) => {}
                other => panic!("{kind}: payload flip at {pos} gave {other:?}"),
            }
        }
    }
}

/// Whole-file garbage (not even a magic number) is a typed error.
#[test]
fn garbage_hdelta_files_are_typed_errors() {
    let mut rng = StdRng::seed_from_u64(0xdead);
    for len in [0usize, 1, 4, 11, 12, 20, 24, 64, 1024] {
        let garbage: Vec<u8> = (0..len).map(|_| rng.random_range(0..=255u8)).collect();
        assert!(
            load_delta(&garbage).is_err(),
            "{len}-byte garbage must not decode as a delta"
        );
    }
}
