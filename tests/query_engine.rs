//! Integration tests for the sj-query engine against the paper presets:
//! plans over realistic clustered data, estimate quality, statistics
//! persistence, and consistency between plan orders.

use sj_datagen::presets;
use sj_geo::Rect;
use sj_query::{Catalog, ChainJoinQuery, StarJoinQuery};

fn preset_catalog() -> Catalog {
    let mut c = Catalog::with_level(6);
    c.register(presets::ts(0.01)).unwrap();
    c.register(presets::tcb(0.01)).unwrap();
    c.register(presets::cas(0.01)).unwrap();
    c.register(presets::sp(0.01)).unwrap();
    c
}

#[test]
fn two_way_plan_estimate_matches_exact_join() {
    let c = preset_catalog();
    let plan = c.plan(&ChainJoinQuery::new(["TS", "TCB"])).unwrap();
    let result = plan.execute(&c).unwrap();
    let exact = sj_sweep_count(&c, "TS", "TCB");
    assert_eq!(result.tuples.len() as u64, exact, "execution must be exact");
    let est_err = (plan.estimated_result - exact as f64).abs() / exact as f64;
    assert!(est_err < 0.25, "plan estimate err {est_err:.3}");
}

fn sj_sweep_count(c: &Catalog, a: &str, b: &str) -> u64 {
    sj_sweep::sweep_join_count(&c.dataset(a).unwrap().rects, &c.dataset(b).unwrap().rects)
}

#[test]
fn chain_execution_is_order_independent() {
    // However the planner opens the chain, results must be identical to
    // a plan forced through a different edge (we emulate by reversing the
    // chain, which flips edge preferences).
    let c = preset_catalog();
    let forward = c.plan(&ChainJoinQuery::new(["TS", "TCB", "CAS"])).unwrap();
    let backward = c.plan(&ChainJoinQuery::new(["CAS", "TCB", "TS"])).unwrap();
    let mut f: Vec<Vec<u64>> = forward.execute(&c).unwrap().tuples;
    let mut b: Vec<Vec<u64>> = backward
        .execute(&c)
        .unwrap()
        .tuples
        .into_iter()
        .map(|t| t.into_iter().rev().collect())
        .collect();
    f.sort();
    b.sort();
    assert_eq!(f, b, "chain results must not depend on plan order");
}

#[test]
fn star_query_on_presets() {
    let c = preset_catalog();
    let plan = StarJoinQuery::new("TCB", ["TS", "SP"]).plan(&c).unwrap();
    let result = plan.execute(&c).unwrap();
    // Verify a sample of tuples satisfies both predicates.
    let (dc, d1, d2) = (
        c.dataset("TCB").unwrap(),
        c.dataset("TS").unwrap(),
        c.dataset("SP").unwrap(),
    );
    for t in result.tuples.iter().take(100) {
        assert!(dc.rects[t[0] as usize].intersects(&d1.rects[t[1] as usize]));
        assert!(dc.rects[t[0] as usize].intersects(&d2.rects[t[2] as usize]));
    }
}

#[test]
fn windowed_query_only_returns_window_tuples() {
    let c = preset_catalog();
    let w = Rect::new(0.1, 0.1, 0.5, 0.5);
    let plan = c
        .plan(&ChainJoinQuery::new(["TS", "TCB"]).within(w))
        .unwrap();
    let result = plan.execute(&c).unwrap();
    let (da, db) = (c.dataset("TS").unwrap(), c.dataset("TCB").unwrap());
    assert!(!result.tuples.is_empty());
    for t in &result.tuples {
        assert!(da.rects[t[0] as usize].intersects(&w));
        assert!(db.rects[t[1] as usize].intersects(&w));
    }
}

#[test]
fn statistics_survive_a_catalog_rebuild() {
    let dir = std::env::temp_dir().join("sj_query_engine_it");
    let c1 = preset_catalog();
    c1.save_statistics(&dir).unwrap();
    let e1 = c1.estimate_join_pairs("TS", "TCB").unwrap();

    let mut c2 = Catalog::with_level(6);
    for (name, ds) in [("TS", presets::ts(0.01)), ("TCB", presets::tcb(0.01))] {
        let bytes = std::fs::read(dir.join(format!("{name}.hist"))).unwrap();
        c2.register_with_statistics(ds, &bytes).unwrap();
    }
    assert_eq!(c2.estimate_join_pairs("TS", "TCB").unwrap(), e1);
    std::fs::remove_dir_all(&dir).ok();
}
