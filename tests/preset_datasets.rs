//! Properties of the eight preset datasets that the DESIGN.md substitution
//! argument relies on: cardinalities, determinism, shape distributions and
//! the spatial relationships between joined pairs.

use sj_core::{presets, Dataset, Rect};

#[test]
fn paper_cardinalities_at_full_scale_constants() {
    // Checked via the constants (generating 2.25M rects in a unit test is
    // wasteful; full-scale generation is exercised by the bench harness).
    assert_eq!(presets::TS_COUNT, 194_971);
    assert_eq!(presets::TCB_COUNT, 556_696);
    assert_eq!(presets::CAS_COUNT, 98_451);
    assert_eq!(presets::CAR_COUNT, 2_249_727);
    assert_eq!(presets::SP_COUNT, 62_555);
    assert_eq!(presets::SPG_COUNT, 79_607);
    assert_eq!(presets::SCRC_COUNT, 100_000);
    assert_eq!(presets::SURA_COUNT, 100_000);
}

#[test]
fn scaled_counts_follow_paper_ratios() {
    let scale = 0.01;
    let (ts, tcb) = presets::PaperJoin::TsTcb.datasets(scale);
    assert_eq!(ts.len(), 1950);
    assert_eq!(tcb.len(), 5567);
    let (cas, car) = presets::PaperJoin::CasCar.datasets(scale);
    assert_eq!(cas.len(), 985);
    assert_eq!(car.len(), 22_497);
    let (sp, spg) = presets::PaperJoin::SpSpg.datasets(scale);
    assert_eq!(sp.len(), 626);
    assert_eq!(spg.len(), 796);
    let (scrc, sura) = presets::PaperJoin::ScrcSura.datasets(scale);
    assert_eq!(scrc.len(), 1000);
    assert_eq!(sura.len(), 1000);
}

#[test]
fn all_rects_inside_unit_extent() {
    let unit = Rect::new(0.0, 0.0, 1.0, 1.0);
    for join in presets::ALL_JOINS {
        let (a, b) = join.datasets(0.01);
        for ds in [&a, &b] {
            assert!(
                ds.rects.iter().all(|r| unit.contains(r)),
                "{}: rect escapes the unit extent",
                ds.name
            );
        }
    }
}

#[test]
fn generation_is_deterministic_across_calls() {
    for join in presets::ALL_JOINS {
        let (a1, b1) = join.datasets(0.005);
        let (a2, b2) = join.datasets(0.005);
        assert_eq!(a1.rects, a2.rects, "{} left not deterministic", join.name());
        assert_eq!(
            b1.rects,
            b2.rects,
            "{} right not deterministic",
            join.name()
        );
    }
}

#[test]
fn sp_is_points_spg_is_polygons() {
    let (sp, spg) = presets::PaperJoin::SpSpg.datasets(0.02);
    assert!((sp.stats().degenerate_fraction - 1.0).abs() < f64::EPSILON);
    assert!(spg.stats().degenerate_fraction < 0.01);
    assert!(spg.stats().coverage > 0.0);
}

#[test]
fn streams_are_elongated_blocks_are_compact() {
    // TS simulates polyline MBRs: aspect ratios vary wildly. TCB simulates
    // census blocks: compact boxes. Compare aspect-variability.
    fn extreme_aspect_fraction(ds: &Dataset) -> f64 {
        let n = ds
            .rects
            .iter()
            .filter(|r| {
                let (w, h) = (r.width().max(1e-12), r.height().max(1e-12));
                w > 3.0 * h || h > 3.0 * w
            })
            .count();
        n as f64 / ds.len() as f64
    }
    let (ts, tcb) = presets::PaperJoin::TsTcb.datasets(0.02);
    assert!(
        extreme_aspect_fraction(&ts) > extreme_aspect_fraction(&tcb),
        "streams should be more elongated than census blocks"
    );
}

#[test]
fn car_segments_smaller_than_cas_streams() {
    let (cas, car) = presets::PaperJoin::CasCar.datasets(0.01);
    let (scas, scar) = (cas.stats(), car.stats());
    assert!(
        scar.avg_width < scas.avg_width && scar.avg_height < scas.avg_height,
        "road segments must be smaller than stream MBRs"
    );
}

#[test]
fn scrc_is_clustered_sura_is_uniform() {
    let (scrc, sura) = presets::PaperJoin::ScrcSura.datasets(0.05);
    let center = sj_core::Point::new(0.4, 0.7);
    let near = |ds: &Dataset| {
        ds.rects
            .iter()
            .filter(|r| r.center().distance(&center) < 0.25)
            .count() as f64
            / ds.len() as f64
    };
    assert!(
        near(&scrc) > 0.85,
        "SCRC mass near (0.4,0.7): {:.2}",
        near(&scrc)
    );
    // The disc of radius 0.25 has area π/16 ≈ 0.196 (clipped at borders
    // slightly less); uniform mass inside ≈ its area share.
    let sura_near = near(&sura);
    assert!(
        (0.1..0.3).contains(&sura_near),
        "SURA should be uniform: {sura_near:.2} mass near the SCRC center"
    );
}

#[test]
fn joined_pairs_overlap_spatially() {
    for join in presets::ALL_JOINS {
        let (a, b) = join.datasets(0.02);
        let pairs = sj_core::sweep_join_count(&a.rects, &b.rects);
        assert!(pairs > 0, "{}: join must be non-empty", join.name());
        // Sanity on the magnitude: selectivity far below 1 (the joins are
        // sparse in the paper too).
        let sel = pairs as f64 / (a.len() as f64 * b.len() as f64);
        assert!(
            sel < 0.05,
            "{}: selectivity suspiciously high: {sel}",
            join.name()
        );
    }
}

#[test]
fn dataset_stats_match_manual_computation() {
    let (scrc, _) = presets::PaperJoin::ScrcSura.datasets(0.01);
    let s = scrc.stats();
    let manual_cov: f64 = scrc.rects.iter().map(Rect::area).sum::<f64>();
    assert!((s.coverage - manual_cov).abs() < 1e-12);
    let manual_w: f64 = scrc.rects.iter().map(Rect::width).sum::<f64>() / scrc.len() as f64;
    assert!((s.avg_width - manual_w).abs() < 1e-15);
}
