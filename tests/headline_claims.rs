//! Shape-level reproduction of the paper's headline claims, at reduced
//! dataset scale so the suite stays fast. The full-scale numbers are
//! produced by the sj-bench harness binaries (see EXPERIMENTS.md); these
//! tests assert the *qualitative* shape the paper reports:
//!
//! 1. GH error decreases as the gridding level grows and is small at
//!    level 7 (paper: < 5 % at full scale; the bound here is looser
//!    because small joins carry intrinsic statistical noise).
//! 2. PH is non-monotone on clustered data (multiple counting hurts at
//!    high levels) — GH is the more stable scheme.
//! 3. The prior parametric model (PH at h = 0) is poor on
//!    clustered ⋈ clustered joins.
//! 4. GH needs less space than PH at every level.
//! 5. Larger samples generally estimate better (10/10 beats 0.1/0.1 on
//!    average across joins), and sampling the *larger* side at the small
//!    percentage beats sampling the smaller side when cardinalities are
//!    unequal (time-wise).
//! 6. Sorted sampling pays a drawing-time premium over RS/RSWR.

use sj_core::experiment::{fig6_row, fig7_row, HistogramScheme, JoinContext};
use sj_core::{presets, SamplingTechnique};

fn prepared(join: presets::PaperJoin, scale: f64) -> JoinContext {
    let (a, b) = join.datasets(scale);
    JoinContext::prepare(join.name(), a, b)
}

#[test]
fn gh_error_small_at_high_level_on_all_joins() {
    for join in presets::ALL_JOINS {
        let ctx = prepared(join, 0.05);
        let row = fig7_row(&ctx, HistogramScheme::Gh, 7);
        assert!(
            row.error_pct < 15.0,
            "{}: GH level-7 error {:.1}% (paper: <5% at full scale)",
            join.name(),
            row.error_pct
        );
    }
}

#[test]
fn gh_error_broadly_decreases_with_level() {
    // Paper: "the estimation errors monotonically decrease with the level
    // of gridding". At test scale we assert the trend: high levels beat
    // low levels, allowing local noise.
    for join in [presets::PaperJoin::TsTcb, presets::PaperJoin::SpSpg] {
        let ctx = prepared(join, 0.05);
        let err = |level| fig7_row(&ctx, HistogramScheme::Gh, level).error_pct;
        let (e0, e3, e7) = (err(0), err(3), err(7));
        assert!(
            e7 <= e3.max(1.0) && e3 <= e0 * 1.5 + 1.0,
            "{}: GH errors not trending down: level0 {e0:.1}%, level3 {e3:.1}%, level7 {e7:.1}%",
            join.name()
        );
    }
}

#[test]
fn parametric_model_poor_on_clustered_join() {
    // PH at h = 0 *is* the prior parametric model [2]. On TS ⋈ TCB (both
    // clustered) it must be far worse than GH at level 7.
    let ctx = prepared(presets::PaperJoin::TsTcb, 0.05);
    let parametric = fig7_row(&ctx, HistogramScheme::Ph, 0);
    let gh = fig7_row(&ctx, HistogramScheme::Gh, 7);
    assert!(
        parametric.error_pct > 3.0 * gh.error_pct.max(1.0),
        "parametric ({:.1}%) should be much worse than GH level 7 ({:.1}%)",
        parametric.error_pct,
        gh.error_pct
    );
}

#[test]
fn ph_has_a_sweet_spot_then_degrades_or_stalls() {
    // Paper (TCB with TS): error drops to a sweet spot near level 5 and
    // multiple counting pushes it back up at higher levels. Assert the
    // weaker invariant that PH's best level beats both extremes.
    let ctx = prepared(presets::PaperJoin::TsTcb, 0.05);
    let errs: Vec<f64> = (0..=8)
        .map(|l| fig7_row(&ctx, HistogramScheme::Ph, l).error_pct)
        .collect();
    let best = errs.iter().cloned().fold(f64::INFINITY, f64::min);
    assert!(
        best < errs[0],
        "some gridding level must beat the uniform assumption: {errs:?}"
    );
}

#[test]
fn gh_more_stable_than_ph_at_high_levels() {
    // The paper's argument for GH: no sweet-spot hunting. Compare the
    // worst high-level error of each scheme on the clustered join.
    let ctx = prepared(presets::PaperJoin::TsTcb, 0.05);
    let worst = |scheme: HistogramScheme| {
        (6..=8)
            .map(|l| fig7_row(&ctx, scheme, l).error_pct)
            .fold(f64::NEG_INFINITY, f64::max)
    };
    let gh = worst(HistogramScheme::Gh);
    let ph = worst(HistogramScheme::Ph);
    assert!(
        gh <= ph + 1.0,
        "GH high-level errors ({gh:.1}%) should not exceed PH's ({ph:.1}%)"
    );
}

#[test]
fn gh_space_below_ph_at_every_level() {
    let ctx = prepared(presets::PaperJoin::ScrcSura, 0.02);
    for level in 1..=8 {
        let gh = fig7_row(&ctx, HistogramScheme::Gh, level);
        let ph = fig7_row(&ctx, HistogramScheme::Ph, level);
        assert!(
            gh.space_pct < ph.space_pct,
            "level {level}: GH space {:.2}% !< PH space {:.2}%",
            gh.space_pct,
            ph.space_pct
        );
    }
}

#[test]
fn larger_samples_estimate_better_on_average() {
    // Average the 10/10 and 0.1/0.1 RSWR errors over all four joins: the
    // large-sample average must win (individual joins may fluctuate —
    // the paper notes RS on CAS⋈CAR *worsens* from 1/1 to 10/10).
    let mut small_total = 0.0;
    let mut large_total = 0.0;
    for join in presets::ALL_JOINS {
        let ctx = prepared(join, 0.05);
        let t = SamplingTechnique::RandomWithReplacement;
        small_total += fig6_row(&ctx, t, 0.1, 0.1).error_pct.min(1000.0);
        large_total += fig6_row(&ctx, t, 10.0, 10.0).error_pct.min(1000.0);
    }
    assert!(
        large_total < small_total,
        "10/10 average error ({:.1}%) should beat 0.1/0.1 ({:.1}%)",
        large_total / 4.0,
        small_total / 4.0
    );
}

#[test]
fn sorted_sampling_pays_a_drawing_premium() {
    // SS must spend more time drawing (it sorts the dataset by Hilbert
    // value) than RS at the same sample size.
    use sj_core::{draw_sample, Extent};
    use std::time::Instant;
    let (a, _) = presets::PaperJoin::TsTcb.datasets(0.1);
    let extent = Extent::unit();
    let t0 = Instant::now();
    let rs = draw_sample(SamplingTechnique::Regular, &a.rects, 10.0, &extent, 1);
    let rs_time = t0.elapsed();
    let t1 = Instant::now();
    let ss = draw_sample(SamplingTechnique::Sorted, &a.rects, 10.0, &extent, 1);
    let ss_time = t1.elapsed();
    assert_eq!(rs.len(), ss.len());
    assert!(
        ss_time > rs_time,
        "SS draw ({ss_time:?}) should cost more than RS draw ({rs_time:?})"
    );
}

#[test]
fn full_dataset_combos_are_exact_for_deterministic_techniques() {
    let ctx = prepared(presets::PaperJoin::SpSpg, 0.02);
    let row = fig6_row(&ctx, SamplingTechnique::Regular, 100.0, 100.0);
    assert!(
        row.error_pct < 1e-9,
        "RS 100/100 must reproduce the exact join"
    );
}
