//! Merge-equivalence and persistence round-trips for every histogram
//! family behind the `SpatialHistogram` trait.
//!
//! The mergeable-sketch contract: for any split of the input into
//! rectangle ranges, `build(A ++ B) == merge(build(A), build(B))`
//! *bit-for-bit* — per-cell statistics are pure sums accumulated in
//! exact fixed-point, so shard order and count are irrelevant. These
//! tests mirror `parallel_agreement.rs` (which pins the row-band path)
//! for the rect-range shard-and-merge path, and pin the versioned
//! persistence envelope for every kind.

use proptest::prelude::*;
use sj_core::{
    build_histogram, build_histogram_sharded, load_histogram, load_histogram_json, Extent, Grid,
    HistogramKind, Rect,
};

const SHARD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn unit_grid(level: u32) -> Grid {
    Grid::new(level, Extent::unit()).expect("grid level in range")
}

/// Deterministic pseudo-random rects in the unit square (no RNG state
/// shared with the estimators under test).
fn scattered_rects(n: usize, seed: u64, max_side: f64) -> Vec<Rect> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            let x = next() * (1.0 - max_side);
            let y = next() * (1.0 - max_side);
            Rect::new(x, y, x + next() * max_side, y + next() * max_side)
        })
        .collect()
}

fn chunked(rects: &[Rect], shards: usize) -> Vec<&[Rect]> {
    let chunk = rects.len().div_ceil(shards).max(1);
    rects.chunks(chunk).collect()
}

#[test]
fn sharded_builds_are_bit_identical_for_every_kind() {
    let rects = scattered_rects(900, 21, 0.08);
    for level in [0u32, 1, 3, 5] {
        let grid = unit_grid(level);
        for kind in HistogramKind::ALL {
            let serial = build_histogram(kind, grid, &rects);
            for shards in SHARD_COUNTS {
                let merged = build_histogram_sharded(kind, grid, &chunked(&rects, shards));
                assert_eq!(
                    merged.to_bytes(),
                    serial.to_bytes(),
                    "{kind} level {level} with {shards} shards"
                );
            }
        }
    }
}

#[test]
fn merge_handles_degenerate_shards() {
    let single = vec![Rect::new(0.2, 0.3, 0.4, 0.5)];
    let many = scattered_rects(40, 22, 0.1);
    let grid = unit_grid(4);
    for kind in HistogramKind::ALL {
        // Empty ++ empty.
        let empty = build_histogram_sharded(kind, grid, &[&[], &[]]);
        assert_eq!(
            empty.to_bytes(),
            build_histogram(kind, grid, &[]).to_bytes()
        );

        // Empty shard on either side of real data.
        let serial = build_histogram(kind, grid, &many);
        for pieces in [
            vec![&[][..], &many[..]],
            vec![&many[..], &[][..]],
            vec![&many[..5], &[][..], &many[5..]],
        ] {
            let merged = build_histogram_sharded(kind, grid, &pieces);
            assert_eq!(
                merged.to_bytes(),
                serial.to_bytes(),
                "{kind} with empty shard"
            );
        }

        // A single rect split off the rest.
        let mut both = single.clone();
        both.extend_from_slice(&many);
        let merged = build_histogram_sharded(kind, grid, &[&single, &many]);
        assert_eq!(
            merged.to_bytes(),
            build_histogram(kind, grid, &both).to_bytes(),
            "{kind} single-rect shard"
        );
    }
}

#[test]
fn merged_histograms_estimate_like_serial() {
    let a = scattered_rects(500, 31, 0.06);
    let b = scattered_rects(400, 32, 0.06);
    let grid = unit_grid(5);
    for kind in HistogramKind::ALL {
        let sa = build_histogram(kind, grid, &a);
        let sb = build_histogram(kind, grid, &b);
        let reference = sa.estimate_join(sb.as_ref()).expect("same kind and grid");
        for shards in SHARD_COUNTS {
            let ma = build_histogram_sharded(kind, grid, &chunked(&a, shards));
            let mb = build_histogram_sharded(kind, grid, &chunked(&b, shards));
            let est = ma.estimate_join(mb.as_ref()).expect("same kind and grid");
            assert_eq!(
                est.selectivity, reference.selectivity,
                "{kind} at {shards} shards"
            );
            assert_eq!(est.pairs, reference.pairs);
        }
    }
}

#[test]
fn persistence_round_trips_every_kind() {
    let rects = scattered_rects(300, 41, 0.07);
    let probe = scattered_rects(200, 42, 0.07);
    let grid = unit_grid(4);
    for kind in HistogramKind::ALL {
        let original = build_histogram(kind, grid, &rects);
        let other = build_histogram(kind, grid, &probe);
        let reference = original.estimate_join(other.as_ref()).expect("same grid");

        let revived = load_histogram(&original.persist()).expect("binary envelope decodes");
        assert_eq!(revived.kind(), kind);
        assert_eq!(revived.to_bytes(), original.to_bytes(), "{kind} binary");
        let est = revived.estimate_join(other.as_ref()).expect("same grid");
        assert_eq!(est.selectivity, reference.selectivity, "{kind} binary");

        let from_json =
            load_histogram_json(&original.persist_json()).expect("JSON envelope decodes");
        assert_eq!(from_json.to_bytes(), original.to_bytes(), "{kind} JSON");
        let est = from_json.estimate_join(other.as_ref()).expect("same grid");
        assert_eq!(est.pairs, reference.pairs, "{kind} JSON");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random rect sets: shard-and-merge agrees bit-for-bit with the
    /// serial build for every family, shard count and grid level.
    #[test]
    fn prop_shard_merge_matches_serial(
        seed in 0u64..500,
        n in 0usize..120,
        level in 0u32..5,
        shards in 1usize..9,
    ) {
        let rects = scattered_rects(n, seed, 0.2);
        let grid = unit_grid(level);
        for kind in HistogramKind::ALL {
            let serial = build_histogram(kind, grid, &rects);
            let merged = build_histogram_sharded(kind, grid, &chunked(&rects, shards));
            prop_assert_eq!(merged.to_bytes(), serial.to_bytes());
        }
    }
}
