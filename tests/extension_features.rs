//! Integration coverage for the beyond-the-paper extensions, exercised
//! through the sj-core public API on the preset workloads: windowed
//! estimation, range counting (GH statistical vs Euler exact), the
//! parallel join, and sparse histogram files.

use sj_core::{
    error_pct, presets, EulerHistogram, Extent, GhHistogram, Grid, RTree, RTreeConfig, Rect,
};

#[test]
fn windowed_join_estimates_on_preset_data() {
    let (a, b) = presets::PaperJoin::CasCar.datasets(0.02);
    let grid = Grid::new(6, Extent::unit()).unwrap();
    let (ha, hb) = (
        GhHistogram::build(grid, &a.rects),
        GhHistogram::build(grid, &b.rects),
    );
    let window = Rect::new(0.2, 0.2, 0.8, 0.8);
    let est = ha.estimate_pairs_in_window(&hb, &window).unwrap();
    // Exact: pairs whose intersection touches the window.
    let mut exact = 0u64;
    sj_core::sweep_join_pairs(&a.rects, &b.rects, |i, j| {
        if let Some(overlap) = a.rects[i].intersection(&b.rects[j]) {
            if overlap.intersects(&window) {
                exact += 1;
            }
        }
    });
    assert!(exact > 0);
    let err = error_pct(est, exact as f64);
    assert!(
        err < 20.0,
        "windowed estimate err {err:.1}% (est {est:.0} vs {exact})"
    );
}

#[test]
fn gh_and_euler_range_counts_agree_on_presets() {
    let ds = presets::tcb(0.02);
    let grid = Grid::new(6, Extent::unit()).unwrap();
    let gh = GhHistogram::build(grid, &ds.rects);
    let euler = EulerHistogram::build(grid, &ds.rects);
    for win in [
        Rect::new(0.1, 0.1, 0.45, 0.4),
        Rect::new(0.5, 0.5, 0.95, 0.9),
        Rect::new(0.0, 0.0, 1.0, 1.0),
    ] {
        let exact = ds.rects.iter().filter(|r| r.intersects(&win)).count() as f64;
        if exact == 0.0 {
            continue;
        }
        let gh_err = error_pct(gh.estimate_window_count(&win), exact);
        let euler_err = error_pct(euler.count_in_window(&win) as f64, exact);
        assert!(gh_err < 10.0, "GH range count err {gh_err:.1}% on {win:?}");
        // Euler only overcounts at boundary-cell resolution.
        assert!(
            euler_err < 10.0,
            "Euler range count err {euler_err:.1}% on {win:?}"
        );
    }
}

#[test]
fn parallel_join_on_presets_matches_sequential() {
    let (a, b) = presets::PaperJoin::TsTcb.datasets(0.02);
    let ta = RTree::bulk_load_str(RTreeConfig::default(), &a.rects);
    let tb = RTree::bulk_load_str(RTreeConfig::default(), &b.rects);
    let sequential = sj_core::join_count(&ta, &tb);
    assert!(sequential > 0);
    assert_eq!(sj_core::join_count_parallel(&ta, &tb, 4), sequential);
}

#[test]
fn sparse_files_roundtrip_preset_histograms() {
    let ds = presets::scrc(0.02);
    let grid = Grid::new(7, Extent::unit()).unwrap();
    let h = GhHistogram::build(grid, &ds.rects);
    let sparse = h.to_sparse_bytes();
    let dense = h.to_bytes();
    assert!(
        sparse.len() * 4 < dense.len(),
        "clustered SCRC at level 7 should compress well: {} vs {}",
        sparse.len(),
        dense.len()
    );
    assert_eq!(GhHistogram::from_sparse_bytes(&sparse).unwrap(), h);
}

#[test]
fn rstar_policy_handles_preset_workload() {
    let ds = presets::sp(0.01);
    let cfg = RTreeConfig {
        max_entries: 16,
        min_entries: 6,
        split: sj_core::SplitAlgorithm::RStar,
    };
    let mut t = RTree::new(cfg);
    for (i, r) in ds.rects.iter().enumerate() {
        t.insert(*r, i as u64);
    }
    t.validate();
    assert_eq!(t.len(), ds.len());
    let q = Rect::new(0.3, 0.3, 0.6, 0.6);
    let expected = ds.rects.iter().filter(|r| r.intersects(&q)).count();
    assert_eq!(t.count_intersecting(&q), expected);
    // k-NN on the same tree.
    let nn = t.nearest_neighbors(sj_core::Point::new(0.5, 0.5), 10);
    assert_eq!(nn.len(), 10);
    assert!(nn.windows(2).all(|w| w[0].1 <= w[1].1));
}
