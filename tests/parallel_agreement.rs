//! Exact agreement between the serial and parallel code paths.
//!
//! Every parallelized stage in the workspace must produce results
//! *identical* to its serial counterpart — integer pair counts agree
//! trivially, and the histogram builds are bit-for-bit equal because the
//! row-band partitioning preserves the per-cell `f64` accumulation
//! order. These tests pin that contract across thread counts, including
//! oversubscribed ones, and on degenerate inputs.

use proptest::prelude::*;
use sj_core::{
    presets, EulerHistogram, Extent, GhBasicHistogram, GhHistogram, Grid, PhHistogram, RTree,
    RTreeConfig, Rect,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 3, 8];

fn unit_grid(level: u32) -> Grid {
    Grid::new(level, Extent::unit()).expect("grid level in range")
}

/// Deterministic pseudo-random rects in the unit square (no RNG state
/// shared with the estimators under test).
fn scattered_rects(n: usize, seed: u64, max_side: f64) -> Vec<Rect> {
    let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 11) as f64 / (1u64 << 53) as f64
    };
    (0..n)
        .map(|_| {
            let x = next() * (1.0 - max_side);
            let y = next() * (1.0 - max_side);
            Rect::new(x, y, x + next() * max_side, y + next() * max_side)
        })
        .collect()
}

#[test]
fn rtree_join_parallel_matches_serial_on_presets() {
    for join in presets::ALL_JOINS {
        let (a, b) = join.datasets(0.01);
        let ta = RTree::bulk_load_str(RTreeConfig::default(), &a.rects);
        let tb = RTree::bulk_load_str(RTreeConfig::default(), &b.rects);
        let serial = sj_core::join_count(&ta, &tb);
        for threads in THREAD_COUNTS {
            assert_eq!(
                sj_core::join_count_parallel(&ta, &tb, threads),
                serial,
                "{} at {threads} threads",
                join.name()
            );
        }
    }
}

#[test]
fn sweep_join_parallel_matches_serial() {
    let a = scattered_rects(400, 3, 0.05);
    let b = scattered_rects(300, 4, 0.05);
    let serial = sj_core::sweep_join_count(&a, &b);
    for threads in THREAD_COUNTS {
        assert_eq!(sj_core::sweep_join_count_parallel(&a, &b, threads), serial);
    }
}

#[test]
fn histogram_builds_are_bit_identical_across_thread_counts() {
    let rects = scattered_rects(1200, 7, 0.08);
    for level in [0u32, 1, 3, 5] {
        let grid = unit_grid(level);
        let gh = GhHistogram::build(grid, &rects);
        let gh_basic = GhBasicHistogram::build(grid, &rects);
        let ph = PhHistogram::build(grid, &rects);
        let euler = EulerHistogram::build(grid, &rects);
        for threads in THREAD_COUNTS {
            assert_eq!(GhHistogram::build_parallel(grid, &rects, threads), gh);
            assert_eq!(
                GhBasicHistogram::build_parallel(grid, &rects, threads),
                gh_basic
            );
            assert_eq!(PhHistogram::build_parallel(grid, &rects, threads), ph);
            assert_eq!(EulerHistogram::build_parallel(grid, &rects, threads), euler);
        }
    }
}

#[test]
fn histogram_parallel_handles_degenerate_inputs() {
    let one_cell: Vec<Rect> = (0..50)
        .map(|i| {
            let off = f64::from(i) * 1e-6;
            Rect::new(0.001 + off, 0.001, 0.002 + off, 0.002)
        })
        .collect();
    let cases: [(&str, Vec<Rect>); 3] = [
        ("empty", vec![]),
        ("single rect", vec![Rect::new(0.2, 0.3, 0.4, 0.5)]),
        ("all in one cell", one_cell),
    ];
    for (label, rects) in cases {
        for level in [0u32, 4] {
            let grid = unit_grid(level);
            let gh = GhHistogram::build(grid, &rects);
            let gh_basic = GhBasicHistogram::build(grid, &rects);
            let ph = PhHistogram::build(grid, &rects);
            let euler = EulerHistogram::build(grid, &rects);
            for threads in THREAD_COUNTS {
                assert_eq!(
                    GhHistogram::build_parallel(grid, &rects, threads),
                    gh,
                    "GH {label} level {level} threads {threads}"
                );
                assert_eq!(
                    GhBasicHistogram::build_parallel(grid, &rects, threads),
                    gh_basic,
                    "GH-basic {label} level {level} threads {threads}"
                );
                assert_eq!(
                    PhHistogram::build_parallel(grid, &rects, threads),
                    ph,
                    "PH {label} level {level} threads {threads}"
                );
                assert_eq!(
                    EulerHistogram::build_parallel(grid, &rects, threads),
                    euler,
                    "Euler {label} level {level} threads {threads}"
                );
            }
        }
    }
}

#[test]
fn baseline_pair_counts_identical_at_every_thread_count() {
    let (a, b) = presets::PaperJoin::TsTcb.datasets(0.01);
    let reference = sj_core::JoinBaseline::compute_with_parallelism(
        &a,
        &b,
        RTreeConfig::default(),
        sj_core::Parallelism::serial(),
    );
    for threads in THREAD_COUNTS {
        let par = sj_core::JoinBaseline::compute_with_parallelism(
            &a,
            &b,
            RTreeConfig::default(),
            sj_core::Parallelism::saturating_new(threads),
        );
        assert_eq!(par.pairs, reference.pairs);
        assert_eq!(par.selectivity, reference.selectivity);
        assert_eq!(par.rtree_bytes, reference.rtree_bytes);
    }
}

#[test]
fn more_threads_than_rows_or_rects_is_safe() {
    let rects = scattered_rects(5, 11, 0.1);
    let grid = unit_grid(1); // 2x2 grid: fewer rows than threads below.
    let serial = GhHistogram::build(grid, &rects);
    assert_eq!(GhHistogram::build_parallel(grid, &rects, 64), serial);

    let a = scattered_rects(3, 12, 0.2);
    let b = scattered_rects(2, 13, 0.2);
    assert_eq!(
        sj_core::sweep_join_count_parallel(&a, &b, 64),
        sj_core::sweep_join_count(&a, &b)
    );
}

#[test]
fn estimator_reports_agree_serial_vs_parallel() {
    let (a, b) = presets::PaperJoin::SpSpg.datasets(0.01);
    let extent = a.extent;
    for kind in [
        sj_core::EstimatorKind::Gh { level: 4 },
        sj_core::EstimatorKind::GhBasic { level: 4 },
        sj_core::EstimatorKind::Ph { level: 4 },
    ] {
        let serial = kind.run_in_extent(&a, &b, &extent);
        for threads in THREAD_COUNTS {
            let par = kind.run_in_extent_par(
                &a,
                &b,
                &extent,
                sj_core::Parallelism::saturating_new(threads),
            );
            assert_eq!(
                par.estimate.selectivity, serial.estimate.selectivity,
                "{kind:?} at {threads} threads"
            );
            assert_eq!(par.estimate.pairs, serial.estimate.pairs);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random rect sets: parallel joins and histogram builds agree with
    /// serial for every thread count.
    #[test]
    fn prop_parallel_join_and_histograms_match_serial(
        seed_a in 0u64..500,
        seed_b in 0u64..500,
        na in 0usize..120,
        nb in 0usize..120,
        level in 0u32..5,
        threads in 1usize..9,
    ) {
        let a = scattered_rects(na, seed_a, 0.2);
        let b = scattered_rects(nb, seed_b, 0.2);

        let ta = RTree::bulk_load_str(RTreeConfig::default(), &a);
        let tb = RTree::bulk_load_str(RTreeConfig::default(), &b);
        prop_assert_eq!(
            sj_core::join_count_parallel(&ta, &tb, threads),
            sj_core::join_count(&ta, &tb)
        );
        prop_assert_eq!(
            sj_core::sweep_join_count_parallel(&a, &b, threads),
            sj_core::sweep_join_count(&a, &b)
        );

        let grid = unit_grid(level);
        prop_assert_eq!(
            GhHistogram::build_parallel(grid, &a, threads),
            GhHistogram::build(grid, &a)
        );
        prop_assert_eq!(
            PhHistogram::build_parallel(grid, &a, threads),
            PhHistogram::build(grid, &a)
        );
        prop_assert_eq!(
            EulerHistogram::build_parallel(grid, &a, threads),
            EulerHistogram::build(grid, &a)
        );
    }
}

/// The outer experiment fan-out must not change any row content.
#[test]
fn experiment_rows_identical_serial_vs_parallel() {
    let (a, b) = presets::PaperJoin::CasCar.datasets(0.005);
    let ctx = sj_core::experiment::JoinContext::prepare("CAS with CAR", a, b);

    let serial6 = sj_core::experiment::fig6_rows(&ctx);
    let par6 = sj_core::experiment::fig6_rows_par(&ctx, sj_core::Parallelism::saturating_new(4));
    assert_eq!(serial6.len(), 27, "fig6 must keep the paper's 27 rows");
    assert_eq!(serial6.len(), par6.len());
    for (s, p) in serial6.iter().zip(&par6) {
        assert_eq!(s.technique, p.technique);
        assert_eq!(s.combo, p.combo);
        assert_eq!(
            s.estimated, p.estimated,
            "fig6 row {}/{}",
            s.combo, s.technique
        );
        assert_eq!(p.threads, 4);
    }

    let serial7 = sj_core::experiment::fig7_rows(&ctx, 0..=4);
    let par7 =
        sj_core::experiment::fig7_rows_par(&ctx, 0..=4, sj_core::Parallelism::saturating_new(3));
    assert_eq!(serial7.len(), par7.len());
    for (s, p) in serial7.iter().zip(&par7) {
        assert_eq!(s.scheme, p.scheme);
        assert_eq!(s.level, p.level);
        assert_eq!(
            s.estimated, p.estimated,
            "fig7 row {}/{}",
            s.scheme, s.level
        );
    }
}

/// `Dataset` is moved into worker closures by the runners; make sure the
/// preset loader really produces the advertised extent so banding sees
/// the same grid on every path.
#[test]
fn preset_extents_round_trip_through_grid() {
    let (a, _) = presets::PaperJoin::ScrcSura.datasets(0.002);
    let grid = Grid::new(3, a.extent).expect("preset extent grids");
    let serial = GhHistogram::build(grid, &a.rects);
    for threads in THREAD_COUNTS {
        assert_eq!(GhHistogram::build_parallel(grid, &a.rects, threads), serial);
    }
}
