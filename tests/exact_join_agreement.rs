//! Cross-crate agreement of the three join implementations: the R-tree
//! synchronized-traversal join, the forward plane sweep, and brute force.
//! Every estimator in the workspace is judged against these counts, so
//! they must agree bit-for-bit.

use sj_core::{presets, Dataset, RTree, RTreeConfig, SplitAlgorithm};

fn pair(scale: f64, join: presets::PaperJoin) -> (Dataset, Dataset) {
    join.datasets(scale)
}

#[test]
fn rtree_join_equals_sweep_on_all_preset_joins() {
    for join in presets::ALL_JOINS {
        let (a, b) = pair(0.01, join);
        let sweep = sj_core::sweep_join_count(&a.rects, &b.rects);
        let ta = RTree::bulk_load_str(RTreeConfig::default(), &a.rects);
        let tb = RTree::bulk_load_str(RTreeConfig::default(), &b.rects);
        let rtree = sj_core::join_count(&ta, &tb);
        assert_eq!(rtree, sweep, "join backends disagree on {}", join.name());
        assert!(
            sweep > 0,
            "{} should be non-empty at this scale",
            join.name()
        );
    }
}

#[test]
fn all_rtree_variants_agree() {
    let (a, b) = pair(0.01, presets::PaperJoin::TsTcb);
    let reference = sj_core::sweep_join_count(&a.rects, &b.rects);

    let configs = [
        RTreeConfig::default(),
        RTreeConfig {
            max_entries: 8,
            min_entries: 3,
            split: SplitAlgorithm::Linear,
        },
        RTreeConfig {
            max_entries: 16,
            min_entries: 4,
            split: SplitAlgorithm::Quadratic,
        },
    ];
    for cfg in configs {
        let str_a = RTree::bulk_load_str(cfg, &a.rects);
        let hil_a = RTree::bulk_load_hilbert(cfg, &a.rects);
        let mut dyn_a = RTree::new(cfg);
        for (i, r) in a.rects.iter().enumerate() {
            dyn_a.insert(*r, i as u64);
        }
        str_a.validate();
        hil_a.validate();
        dyn_a.validate();

        let tb = RTree::bulk_load_str(cfg, &b.rects);
        for (label, tree) in [("STR", &str_a), ("Hilbert", &hil_a), ("dynamic", &dyn_a)] {
            assert_eq!(
                sj_core::join_count(tree, &tb),
                reference,
                "{label} tree with {cfg:?} disagrees"
            );
        }
    }
}

#[test]
fn join_pairs_ids_are_valid_and_unique() {
    let (a, b) = pair(0.005, presets::PaperJoin::SpSpg);
    let ta = RTree::bulk_load_str(RTreeConfig::default(), &a.rects);
    let tb = RTree::bulk_load_str(RTreeConfig::default(), &b.rects);
    let mut pairs = Vec::new();
    sj_core::join_pairs(&ta, &tb, |i, j| pairs.push((i, j)));
    let n = pairs.len();
    pairs.sort_unstable();
    pairs.dedup();
    assert_eq!(pairs.len(), n, "duplicate pairs emitted");
    for (i, j) in pairs {
        let (i, j) = (usize::try_from(i).unwrap(), usize::try_from(j).unwrap());
        assert!(
            a.rects[i].intersects(&b.rects[j]),
            "emitted pair does not intersect"
        );
    }
}

#[test]
fn self_join_symmetry() {
    let (a, _) = pair(0.005, presets::PaperJoin::ScrcSura);
    let t = RTree::bulk_load_str(RTreeConfig::default(), &a.rects);
    let n = sj_core::join_count(&t, &t);
    // A self join contains each item paired with itself, and the
    // off-diagonal pairs come in symmetric twos.
    assert!(n >= a.len() as u64);
    assert_eq!(
        (n - a.len() as u64) % 2,
        0,
        "off-diagonal pairs must be symmetric"
    );
}
