//! End-to-end pipeline tests through the sj-core public API: estimator
//! dispatch, histogram-file round-trips across process boundaries, and
//! the experiment runner's row schemas (including JSON output).

use sj_core::experiment::{fig6_rows, fig7_rows, JoinContext};
use sj_core::{
    presets, EstimatorKind, Extent, GhHistogram, Grid, JoinBaseline, PhHistogram, SamplingTechnique,
};

fn ctx() -> JoinContext {
    let (a, b) = presets::PaperJoin::SpSpg.datasets(0.02);
    JoinContext::prepare(presets::PaperJoin::SpSpg.name(), a, b)
}

#[test]
fn histogram_files_roundtrip_through_disk() {
    // Build histogram files for both datasets, write them to disk, read
    // them back in a "different session", and estimate from the files —
    // the workflow of a query optimizer consulting precomputed stats.
    let (a, b) = presets::PaperJoin::TsTcb.datasets(0.01);
    let extent = Extent::new(a.extent.rect().union(&b.extent.rect()));
    let grid = Grid::new(5, extent).unwrap();

    let dir = std::env::temp_dir().join("sj_pipeline_test");
    std::fs::create_dir_all(&dir).unwrap();
    let pa = dir.join("a.ghh");
    let pb = dir.join("b.ghh");
    std::fs::write(&pa, GhHistogram::build(grid, &a.rects).to_bytes()).unwrap();
    std::fs::write(&pb, GhHistogram::build(grid, &b.rects).to_bytes()).unwrap();

    let ha = GhHistogram::from_bytes(&std::fs::read(&pa).unwrap()).unwrap();
    let hb = GhHistogram::from_bytes(&std::fs::read(&pb).unwrap()).unwrap();
    let est = ha.estimate(&hb).unwrap();

    // Must agree exactly with the in-memory estimate.
    let fresh = EstimatorKind::Gh { level: 5 }.run_in_extent(&a, &b, &extent);
    assert!((est.selectivity - fresh.estimate.selectivity).abs() < 1e-15);

    std::fs::remove_file(pa).ok();
    std::fs::remove_file(pb).ok();
}

#[test]
fn ph_files_roundtrip_and_estimate() {
    let (a, b) = presets::PaperJoin::ScrcSura.datasets(0.01);
    let extent = Extent::new(a.extent.rect().union(&b.extent.rect()));
    let grid = Grid::new(4, extent).unwrap();
    let ha = PhHistogram::from_bytes(&PhHistogram::build(grid, &a.rects).to_bytes()).unwrap();
    let hb = PhHistogram::from_bytes(&PhHistogram::build(grid, &b.rects).to_bytes()).unwrap();
    let est = ha.estimate(&hb).unwrap();
    let baseline = JoinBaseline::compute(&a, &b);
    assert!(est.selectivity > 0.0);
    assert!(sj_core::error_pct(est.selectivity, baseline.selectivity) < 100.0);
}

#[test]
fn fig6_rows_serialize_to_json() {
    let rows = fig6_rows(&ctx());
    assert_eq!(rows.len(), 27);
    let json = serde_json::to_string(&rows).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(parsed.as_array().unwrap().len(), 27);
    let first = &parsed[0];
    for key in [
        "join",
        "technique",
        "combo",
        "estimated",
        "actual",
        "error_pct",
        "est_time_1_pct",
    ] {
        assert!(first.get(key).is_some(), "missing key {key}");
    }
}

#[test]
fn fig7_rows_serialize_to_json() {
    let rows = fig7_rows(&ctx(), 0..=4);
    assert_eq!(rows.len(), 10);
    let json = serde_json::to_string(&rows).unwrap();
    let parsed: serde_json::Value = serde_json::from_str(&json).unwrap();
    for row in parsed.as_array().unwrap() {
        assert!(row["level"].as_u64().unwrap() <= 4);
        let scheme = row["scheme"].as_str().unwrap();
        assert!(scheme == "PH" || scheme == "GH");
    }
}

#[test]
fn every_estimator_kind_produces_a_sane_report() {
    let (a, b) = presets::PaperJoin::CasCar.datasets(0.005);
    let baseline = JoinBaseline::compute(&a, &b);
    assert!(baseline.pairs > 0);
    let kinds = [
        EstimatorKind::Parametric,
        EstimatorKind::Ph { level: 0 },
        EstimatorKind::Ph { level: 5 },
        EstimatorKind::GhBasic { level: 5 },
        EstimatorKind::Gh { level: 0 },
        EstimatorKind::Gh { level: 5 },
        EstimatorKind::Sampling {
            technique: SamplingTechnique::RandomWithReplacement,
            percent_left: 10.0,
            percent_right: 10.0,
        },
        EstimatorKind::Sampling {
            technique: SamplingTechnique::Sorted,
            percent_left: 5.0,
            percent_right: 5.0,
        },
    ];
    for kind in kinds {
        let r = kind.run(&a, &b);
        assert!(r.estimate.selectivity >= 0.0 && r.estimate.selectivity <= 1.0);
        assert!(r.estimate.pairs >= 0.0);
        assert_eq!(r.estimator, kind.label());
        // No estimator should be catastrophically wrong on this join at
        // moderate settings (within 10× of truth).
        if matches!(
            kind,
            EstimatorKind::Gh { level: 5 } | EstimatorKind::Ph { level: 5 }
        ) {
            let err = sj_core::error_pct(r.estimate.selectivity, baseline.selectivity);
            assert!(err < 900.0, "{}: error {err:.0}%", r.estimator);
        }
    }
}

#[test]
fn estimates_are_stable_across_runs() {
    // Determinism: the same estimator on the same data gives bit-identical
    // estimates (sampling included — seeds are fixed).
    let (a, b) = presets::PaperJoin::SpSpg.datasets(0.01);
    for kind in [
        EstimatorKind::Gh { level: 4 },
        EstimatorKind::Ph { level: 4 },
        EstimatorKind::Sampling {
            technique: SamplingTechnique::RandomWithReplacement,
            percent_left: 10.0,
            percent_right: 10.0,
        },
    ] {
        let r1 = kind.run(&a, &b);
        let r2 = kind.run(&a, &b);
        assert_eq!(
            r1.estimate.selectivity, r2.estimate.selectivity,
            "{} not deterministic",
            r1.estimator
        );
    }
}

#[test]
fn dataset_csv_roundtrip_preserves_estimates() {
    let (a, _) = presets::PaperJoin::ScrcSura.datasets(0.005);
    let mut buf = Vec::new();
    a.write_csv(&mut buf).unwrap();
    let a2 = sj_core::Dataset::read_csv("SCRC", &buf[..]).unwrap();
    assert_eq!(a.rects, a2.rects);
}
