//! Torn-tail WAL replay property tests (registered under `sj-query`).
//!
//! The statistics WAL tolerates exactly one kind of damage — a torn
//! final record from a crash mid-append — and must treat it as "the
//! last batch never happened". These tests cut a live WAL at *arbitrary*
//! byte offsets (proptest picks the batch mix and the cut) across every
//! record shape the log can hold — insert-only, delete-only, mixed, and
//! both stamped (mutation-ID-carrying v2) and unstamped batches — and
//! assert the reopened store recovers **exactly** the state after the
//! last complete record: byte-identical statistics, identical dataset,
//! correct torn-tail accounting, and a dedup ring that still recognizes
//! every surviving stamped ID while forgetting the torn one.

use proptest::prelude::*;
use sj_geo::Rect;
use sj_query::{wal_record_ends, Catalog, CompactionPolicy, MutationId};
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

/// A deterministic base set with pairwise-distinct rectangles (the
/// `1e-4 * i` skew) so delete validation is unambiguous.
fn base_rects(n: usize) -> Vec<Rect> {
    (0..n)
        .map(|i| {
            let x = (i % 10) as f64 * 0.09 + 0.01;
            let y = (i / 10) as f64 * 0.09 + 0.01;
            Rect::new(x, y, x + 0.05 + i as f64 * 1e-4, y + 0.05)
        })
        .collect()
}

fn dataset(n: usize) -> sj_datagen::Dataset {
    sj_datagen::Dataset::new("t", sj_geo::Extent::unit(), base_rects(n))
}

/// One batch's shape: what the WAL record holds.
#[derive(Debug, Clone, Copy)]
struct BatchSpec {
    /// 0 insert-only, 1 delete-only, 2 mixed.
    style: u8,
    /// Stamped with a client mutation ID, or unstamped (legacy path).
    stamped: bool,
    /// Rectangles per side, 1..=3.
    size: usize,
}

/// The batch for 1-based step `i`: fresh in-extent inserts derived from
/// the step index, deletes from a per-step disjoint slice of the base
/// set so no rectangle is ever deleted twice.
fn batch(i: usize, spec: BatchSpec, base: &[Rect]) -> (Vec<Rect>, Vec<Rect>) {
    let inserts: Vec<Rect> = if spec.style == 1 {
        Vec::new()
    } else {
        (0..spec.size)
            .map(|j| {
                let k = (i * 7 + j) as f64;
                let x = (k * 0.0137) % 0.9 + 0.02;
                let y = (k * 0.0229) % 0.9 + 0.02;
                Rect::new(x, y, x + 0.03, y + 0.03)
            })
            .collect()
    };
    let deletes: Vec<Rect> = if spec.style == 0 {
        Vec::new()
    } else {
        base[(i - 1) * 3..(i - 1) * 3 + spec.size.min(3)].to_vec()
    };
    (inserts, deletes)
}

/// A scratch statistics directory unique to this process and case.
fn scratch(tag: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let case = CASE.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("sj-wal-replay-{}-{tag}-{case}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// No auto-compaction: every batch must stay in the WAL so the cut can
/// reach it.
const KEEP_WAL: CompactionPolicy = CompactionPolicy {
    max_tiers: usize::MAX,
    max_pending_bytes: usize::MAX,
};

const BASE_N: usize = 60;
const LEVEL: u32 = 3;

/// Captured state after each step: persisted statistics + dataset.
struct Snapshot {
    bytes: Vec<u8>,
    rects: Vec<Rect>,
}

fn snapshot(c: &Catalog) -> Snapshot {
    Snapshot {
        bytes: c.histogram("t").expect("stats ready").persist().to_vec(),
        rects: c.dataset("t").expect("registered").rects.clone(),
    }
}

/// Runs `specs` against a fresh store in `dir`, returning the per-step
/// state snapshots (index 0 = pre-mutation) and each step's mutation ID.
fn run_workload(dir: &PathBuf, specs: &[BatchSpec]) -> (Vec<Snapshot>, Vec<MutationId>) {
    let mut c = Catalog::with_level(LEVEL);
    c.register(dataset(BASE_N)).expect("register");
    c.open_stats_store(dir, KEEP_WAL).expect("open");
    let base = base_rects(BASE_N);
    let mut states = vec![snapshot(&c)];
    let mut ids = Vec::new();
    for (idx, spec) in specs.iter().enumerate() {
        let i = idx + 1;
        let (inserts, deletes) = batch(i, *spec, &base);
        let id = if spec.stamped {
            MutationId::new(0xBEEF, i as u64)
        } else {
            MutationId::UNSTAMPED
        };
        c.apply_delta_idempotent("t", &inserts, &deletes, id)
            .expect("apply");
        states.push(snapshot(&c));
        ids.push(id);
    }
    (states, ids)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Cut the WAL anywhere: recovery lands exactly on the state after
    /// the last complete record, counts the torn tail, and the dedup
    /// ring matches the surviving records.
    #[test]
    fn prop_torn_tail_recovers_last_complete_record(
        specs in proptest::collection::vec(
            (0u8..3, any::<bool>(), 1usize..=3).prop_map(|(style, stamped, size)| {
                BatchSpec { style, stamped, size }
            }),
            1..6,
        ),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = scratch("prop");
        let (states, ids) = run_workload(&dir, &specs);

        let wal_path = dir.join("t.wal");
        let wal = std::fs::read(&wal_path).expect("WAL exists");
        let ends = wal_record_ends(&wal).expect("live WAL parses");
        prop_assert_eq!(ends.len(), specs.len(), "one record per batch");

        // Truncate at an arbitrary offset.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((wal.len() as f64) * cut_frac) as usize;
        let cut = cut.min(wal.len());
        std::fs::write(&wal_path, &wal[..cut]).expect("truncate");
        let survivors = ends.iter().filter(|&&e| e <= cut).count();
        let has_partial = cut > ends.get(survivors.wrapping_sub(1)).copied().unwrap_or(0);

        // Reopen over the truncated log.
        let mut rc = Catalog::with_level(LEVEL);
        rc.register(dataset(BASE_N)).expect("register");
        let recovery = rc.open_stats_store(&dir, KEEP_WAL).expect("recover");
        prop_assert_eq!(recovery.replayed, survivors);
        prop_assert_eq!(recovery.torn_tails, usize::from(has_partial));

        let got = snapshot(&rc);
        let want = &states[survivors];
        prop_assert_eq!(
            &got.bytes, &want.bytes,
            "statistics must be byte-identical to the state after record {}", survivors
        );
        prop_assert_eq!(&got.rects, &want.rects, "dataset must match");

        // Exactly-once across the crash: every surviving stamped ID is
        // still remembered (a retry deduplicates), and the torn
        // record's ID is forgotten (its retry must re-apply).
        for (idx, id) in ids.iter().enumerate().take(survivors) {
            if id.is_stamped() {
                let receipt = rc
                    .apply_delta_idempotent("t", &[], &[], *id)
                    .expect("retry probe");
                prop_assert!(
                    receipt.deduplicated,
                    "surviving record {}'s ID must dedup", idx + 1
                );
            }
        }
        if survivors < specs.len() && ids[survivors].is_stamped() {
            let spec = specs[survivors];
            let (inserts, deletes) = batch(survivors + 1, spec, &base_rects(BASE_N));
            let receipt = rc
                .apply_delta_idempotent("t", &inserts, &deletes, ids[survivors])
                .expect("torn batch retries");
            prop_assert!(
                !receipt.deduplicated,
                "the torn record's ID must NOT dedup — the batch was lost"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Every record shape round-trips through a full WAL replay (no cut):
/// the reopened store is byte-identical to the writer at every step
/// count.
#[test]
fn full_replay_is_byte_identical_for_every_record_shape() {
    let shapes = [
        BatchSpec {
            style: 0,
            stamped: true,
            size: 2,
        },
        BatchSpec {
            style: 1,
            stamped: true,
            size: 2,
        },
        BatchSpec {
            style: 2,
            stamped: true,
            size: 3,
        },
        BatchSpec {
            style: 0,
            stamped: false,
            size: 1,
        },
        BatchSpec {
            style: 1,
            stamped: false,
            size: 3,
        },
        BatchSpec {
            style: 2,
            stamped: false,
            size: 2,
        },
    ];
    let dir = scratch("shapes");
    let (states, _) = run_workload(&dir, &shapes);

    let mut rc = Catalog::with_level(LEVEL);
    rc.register(dataset(BASE_N)).expect("register");
    let recovery = rc.open_stats_store(&dir, KEEP_WAL).expect("recover");
    assert_eq!(recovery.replayed, shapes.len());
    assert_eq!(recovery.torn_tails, 0);
    let got = snapshot(&rc);
    let want = states.last().expect("final state");
    assert_eq!(got.bytes, want.bytes, "statistics byte-identical");
    assert_eq!(got.rects, want.rects, "dataset identical");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A duplicated stamped record in the log (a crashed retry that appended
/// twice) replays once: the dedup ring works during replay, not just on
/// the live apply path.
#[test]
fn duplicate_wal_records_replay_once() {
    let dir = scratch("dup");
    let spec = BatchSpec {
        style: 2,
        stamped: true,
        size: 2,
    };
    let (states, _) = run_workload(&dir, &[spec]);

    // Append a byte-for-byte copy of the only record.
    let wal_path = dir.join("t.wal");
    let wal = std::fs::read(&wal_path).expect("WAL exists");
    let mut doubled = wal.clone();
    doubled.extend_from_slice(&wal);
    std::fs::write(&wal_path, &doubled).expect("double");

    let mut rc = Catalog::with_level(LEVEL);
    rc.register(dataset(BASE_N)).expect("register");
    let recovery = rc.open_stats_store(&dir, KEEP_WAL).expect("recover");
    assert_eq!(recovery.deduplicated, 1, "the copy must be skipped");
    let got = snapshot(&rc);
    assert_eq!(got.bytes, states[1].bytes, "applied exactly once");
    assert_eq!(got.rects, states[1].rects);
    let _ = std::fs::remove_dir_all(&dir);
}
