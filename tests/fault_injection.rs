//! Fault-injection suite for the statistics pipeline (registered under
//! `sj-query`, which depends on every layer it attacks).
//!
//! Systematically corrupts persisted `.hist` envelopes — truncation at
//! every byte offset (which subsumes every section boundary) and random
//! bit-flips — for **every** [`HistogramKind`], and asserts the only
//! possible outcomes are (a) the original histogram, bit-for-bit, or
//! (b) a typed [`HistogramError`]. Never a panic, never a silently
//! different histogram. Also pins the catalog-level behavior: a corrupt
//! statistics file degrades the estimate to a lower tier with full
//! provenance instead of failing the query.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use sj_geo::{Extent, Rect};
use sj_histogram::{
    build_histogram, load_histogram, CorruptSection, Grid, HistogramError, HistogramKind,
};
use sj_query::{Catalog, DegradationPolicy, EstimateTier};

/// A deterministic non-trivial rectangle set (clustered + scattered, with
/// degenerate points) so every family has non-empty per-cell statistics.
fn fixture_rects(n: usize, seed: u64) -> Vec<Rect> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let (cx, cy) = if i % 3 == 0 {
                (0.3, 0.7) // cluster
            } else {
                (rng.random_range(0.05..0.95), rng.random_range(0.05..0.95))
            };
            let (w, h) = if i % 7 == 0 {
                (0.0, 0.0) // degenerate point MBR
            } else {
                (rng.random_range(0.0..0.08), rng.random_range(0.0..0.08))
            };
            Rect::new(
                (cx - w / 2.0).max(0.0),
                (cy - h / 2.0).max(0.0),
                (cx + w / 2.0).min(1.0),
                (cy + h / 2.0).min(1.0),
            )
        })
        .collect()
}

fn envelope_for(kind: HistogramKind, level: u32, n: usize, seed: u64) -> Vec<u8> {
    let grid = Grid::new(level, Extent::unit()).expect("level in range");
    build_histogram(kind, grid, &fixture_rects(n, seed))
        .persist()
        .to_vec()
}

/// The v2 envelope's section boundaries: magic | version | kind tag |
/// payload length | payload | CRC32.
fn section_boundaries(envelope_len: usize) -> Vec<usize> {
    vec![0, 4, 8, 12, 20, envelope_len - 4, envelope_len]
}

/// Truncating a valid envelope at *every* byte offset (which includes
/// every section boundary) must yield a typed error — the length frame
/// makes any proper prefix detectable.
#[test]
fn truncation_at_every_offset_is_a_typed_error() {
    for kind in HistogramKind::ALL {
        let bytes = envelope_for(kind, 3, 120, 0x5eed);
        for boundary in section_boundaries(bytes.len()) {
            assert!(boundary <= bytes.len(), "{kind}: boundary table sane");
        }
        for cut in 0..bytes.len() {
            match load_histogram(&bytes[..cut]) {
                Err(HistogramError::Corrupt { .. }) => {}
                Err(other) => panic!("{kind}: truncation at {cut} gave non-Corrupt {other:?}"),
                Ok(_) => panic!("{kind}: truncation at {cut} silently loaded"),
            }
        }
        // The untruncated envelope still loads, bit-for-bit.
        let back = load_histogram(&bytes).expect("pristine envelope loads");
        assert_eq!(back.persist().to_vec(), bytes, "{kind}: lossless reload");
    }
}

/// ≥64 random single-bit flips per kind: every flip must surface as a
/// typed error (the CRC32 trailer catches payload damage; header damage
/// trips the envelope checks) — never a panic, never a different
/// histogram.
#[test]
fn random_bit_flips_never_load_silently() {
    for kind in HistogramKind::ALL {
        let bytes = envelope_for(kind, 3, 120, 0xf11b);
        let original = load_histogram(&bytes).expect("pristine envelope loads");
        let mut rng = StdRng::seed_from_u64(0xb17f_11b5 ^ kind.tag() as u64);
        for trial in 0..96 {
            let mut mutated = bytes.clone();
            let pos = rng.random_range(0..mutated.len());
            let bit = rng.random_range(0..8u32);
            mutated[pos] ^= 1u8 << bit;
            match load_histogram(&mutated) {
                // Any typed error is a correctly detected corruption
                // (HistogramError is non_exhaustive, so no variant list).
                Err(_) => {}
                Ok(loaded) => {
                    // Only acceptable if the flip somehow restored the
                    // exact original bytes — impossible for a single-bit
                    // flip, so loading the identical histogram is the
                    // only non-failure we tolerate.
                    assert_eq!(
                        loaded.to_bytes(),
                        original.to_bytes(),
                        "{kind}: flip {trial} at {pos}:{bit} loaded a DIFFERENT histogram"
                    );
                    panic!("{kind}: flip {trial} at {pos}:{bit} was not detected");
                }
            }
        }
    }
}

/// Flips confined to the payload section must always be caught by the
/// checksum specifically.
#[test]
fn payload_flips_fail_the_checksum_section() {
    for kind in HistogramKind::ALL {
        let bytes = envelope_for(kind, 2, 60, 0xc4c);
        let payload_range = 20..bytes.len() - 4;
        let mut rng = StdRng::seed_from_u64(0xcc32 ^ kind.tag() as u64);
        for _ in 0..16 {
            let mut mutated = bytes.clone();
            let pos = rng.random_range(payload_range.clone());
            mutated[pos] ^= 0x80;
            match load_histogram(&mutated) {
                Err(HistogramError::Corrupt {
                    section: CorruptSection::Checksum,
                    ..
                }) => {}
                other => panic!("{kind}: payload flip at {pos} gave {other:?}"),
            }
        }
    }
}

/// Old-version (pre-CRC, pre-length-frame) envelopes must keep loading
/// through the legacy fallback.
#[test]
fn legacy_pre_crc_envelopes_still_load() {
    for kind in HistogramKind::ALL {
        let grid = Grid::new(3, Extent::unit()).expect("level in range");
        let h = build_histogram(kind, grid, &fixture_rects(80, 0x1e6));
        let payload = h.to_bytes();
        // Hand-assemble a version-1 envelope: magic, version, tag, payload.
        let mut v1 = Vec::with_capacity(12 + payload.len());
        v1.extend_from_slice(&0x534a_5348u32.to_le_bytes());
        v1.extend_from_slice(&1u32.to_le_bytes());
        v1.extend_from_slice(&kind.tag().to_le_bytes());
        v1.extend_from_slice(&payload);
        let back = load_histogram(&v1).expect("legacy envelope loads");
        assert_eq!(back.kind(), kind);
        assert_eq!(back.to_bytes(), payload, "{kind}: legacy load lossless");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary corruption — truncate at any offset or flip any byte to
    /// any value — either loads the original bit-for-bit (untouched
    /// semantics) or returns a typed error. Never a panic, never a
    /// different histogram.
    #[test]
    fn prop_arbitrary_corruption_is_loud_or_lossless(
        seed in 0u64..200,
        kind_idx in 0usize..4,
        level in 0u32..4,
        cut_frac in 0.0f64..1.0,
        flip_frac in 0.0f64..1.0,
        xor in 0u8..=255,
    ) {
        let kind = HistogramKind::ALL[kind_idx];
        let bytes = envelope_for(kind, level, 40, seed);
        let original = load_histogram(&bytes).expect("pristine envelope loads");

        // Truncation at an arbitrary offset.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = ((bytes.len() as f64) * cut_frac) as usize;
        let cut = cut.min(bytes.len());
        match load_histogram(&bytes[..cut]) {
            Ok(loaded) => prop_assert_eq!(
                loaded.to_bytes(),
                original.to_bytes(),
                "truncation at {} of {} loaded a different histogram", cut, bytes.len()
            ),
            Err(HistogramError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "non-Corrupt truncation error {:?}", other),
        }

        // XOR an arbitrary byte with an arbitrary mask.
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let pos = (((bytes.len() - 1) as f64) * flip_frac) as usize;
        let mut mutated = bytes.clone();
        mutated[pos] ^= xor;
        if let Ok(loaded) = load_histogram(&mutated) {
            prop_assert_eq!(
                loaded.to_bytes(),
                original.to_bytes(),
                "byte {} ^ {:#04x} loaded a different histogram", pos, xor
            );
        }
    }
}

/// Pinned end-to-end behavior: a catalog whose GH statistics file is
/// deliberately corrupted still answers `estimate_join_pairs` via a lower
/// tier, and the provenance names both the serving tier and the
/// corruption reason.
#[test]
fn corrupt_gh_statistics_degrade_with_provenance() {
    let mkds = |name: &str, seed: u64| {
        sj_datagen::Dataset::new(name, Extent::unit(), fixture_rects(60, seed))
    };

    // Persist healthy GH statistics, then flip a payload byte.
    let mut source = Catalog::with_level(4);
    source.register(mkds("alpha", 7)).expect("register");
    let mut stats = source
        .histogram("alpha")
        .expect("stats ready")
        .persist()
        .to_vec();
    let mid = stats.len() / 2;
    stats[mid] ^= 0x40;

    let mut catalog = Catalog::with_level(4);
    let reason = catalog
        .register_with_statistics_lenient(mkds("alpha", 7), &stats)
        .expect("lenient registration never fails on corruption");
    assert!(
        reason.as_deref().is_some_and(|r| r.contains("corrupt")),
        "registration must record the corruption: {reason:?}"
    );
    catalog.register(mkds("beta", 8)).expect("register");

    // Default ladder: the corrupt primary falls through to a PH rebuild.
    let out = catalog
        .estimate_join_pairs_detailed("alpha", "beta", &DegradationPolicy::default())
        .expect("ladder must serve");
    assert_eq!(out.tier, EstimateTier::PhRebuild);
    assert!(out.is_degraded());
    assert!(out.pairs > 0.0);

    // With the rebuild disabled the parametric tier answers, and the
    // provenance still carries the corruption reason from tier 1.
    let no_rebuild = DegradationPolicy {
        allow_ph_rebuild: false,
        ..DegradationPolicy::default()
    };
    let out = catalog
        .estimate_join_pairs_detailed("alpha", "beta", &no_rebuild)
        .expect("parametric tier must serve");
    assert_eq!(out.tier, EstimateTier::Parametric);
    let skipped: Vec<&str> = out.skipped.iter().map(|s| s.tier.name()).collect();
    assert_eq!(skipped, vec!["primary", "ph-rebuild"]);
    assert!(
        out.skipped[0].reason.contains("corrupt"),
        "provenance must name the corruption: {:?}",
        out.skipped[0]
    );

    // The plain estimate API degrades transparently.
    assert!(
        catalog
            .estimate_join_pairs("alpha", "beta")
            .expect("serves")
            > 0.0
    );
}

/// Whole-file garbage (not even a magic number) must be typed, not a
/// panic — both at the histogram layer and through lenient registration.
#[test]
fn garbage_files_are_typed_errors_everywhere() {
    let mut rng = StdRng::seed_from_u64(0xdead);
    for len in [0usize, 1, 4, 11, 12, 24, 64, 1024] {
        let garbage: Vec<u8> = (0..len).map(|_| rng.random_range(0..=255u8)).collect();
        assert!(
            load_histogram(&garbage).is_err(),
            "{len}-byte garbage must not decode"
        );
        let mut catalog = Catalog::with_level(3);
        let ds = sj_datagen::Dataset::new("g", Extent::unit(), fixture_rects(10, len as u64));
        let reason = catalog
            .register_with_statistics_lenient(ds, &garbage)
            .expect("lenient registration absorbs garbage");
        assert!(reason.is_some(), "{len}-byte garbage must be recorded");
    }
}
