//! Multi-way spatial query through the sj-query engine: register tables,
//! let the GH-cost-based planner order a chain join, inspect the EXPLAIN
//! output, execute, and compare the estimate to reality.
//!
//! ```sh
//! cargo run --release -p sj-query --example multiway_query
//! ```

use sj_datagen::presets;
use sj_geo::Rect;
use sj_query::{Catalog, ChainJoinQuery};

fn main() {
    let scale = 0.01;
    let mut catalog = Catalog::with_level(6);
    for ds in [presets::ts(scale), presets::tcb(scale), presets::cas(scale)] {
        println!("registering {} ({} objects)", ds.name, ds.len());
        catalog.register(ds).expect("fresh names");
    }

    // "Streams that cross a census block that contains a California
    // stream" — a 3-way chain join. The planner decides where to start.
    let query = ChainJoinQuery::new(["TS", "TCB", "CAS"]);
    let plan = catalog.plan(&query).expect("plannable");
    println!("\nEXPLAIN\n{plan}\n");

    let result = plan.execute(&catalog).expect("executable");
    println!(
        "executed in {:?}: {} tuples ({} opening pairs, {} probes)",
        result.stats.elapsed,
        result.tuples.len(),
        result.stats.opening_pairs,
        result.stats.probes,
    );
    println!(
        "estimate vs actual: {:.0} vs {} ({:+.1}%)",
        plan.estimated_result,
        result.tuples.len(),
        (plan.estimated_result / result.tuples.len().max(1) as f64 - 1.0) * 100.0
    );

    // The same query restricted to a window.
    let window = Rect::new(0.25, 0.25, 0.75, 0.75);
    let windowed = catalog
        .plan(&ChainJoinQuery::new(["TS", "TCB", "CAS"]).within(window))
        .expect("plannable");
    let wres = windowed.execute(&catalog).expect("executable");
    println!(
        "\nwindowed to [0.25,0.75]²: {} tuples ({} filtered by the window)",
        wres.tuples.len(),
        wres.stats.window_filtered
    );
}
