//! Quickstart: estimate a spatial join's selectivity without running it.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use sj_core::{error_pct, presets, EstimatorKind, JoinBaseline};
use std::time::Instant;

fn main() {
    // The paper's synthetic workload: 100k clustered rects ⋈ 100k uniform
    // rects (scaled to 20% here so the example runs in a blink).
    let scale = 0.2;
    let (clustered, uniform) = presets::PaperJoin::ScrcSura.datasets(scale);
    println!(
        "datasets: {} ({} rects)  ⋈  {} ({} rects)",
        clustered.name,
        clustered.len(),
        uniform.name,
        uniform.len()
    );

    // Ground truth: the exact filter-step join (R-tree build + join).
    let t = Instant::now();
    let baseline = JoinBaseline::compute(&clustered, &uniform);
    let exact_elapsed = t.elapsed();
    println!(
        "exact join: {} pairs, selectivity {:.3e}  ({:.1?} incl. R-tree build)",
        baseline.pairs, baseline.selectivity, exact_elapsed
    );

    // The paper's headline estimator: the Geometric Histogram at level 7.
    let t = Instant::now();
    let report = EstimatorKind::Gh { level: 7 }.run(&clustered, &uniform);
    let est_elapsed = t.elapsed();
    println!(
        "{}: estimated {:.0} pairs, selectivity {:.3e}  ({:.1?}: build {:.1?} + estimate {:.1?})",
        report.estimator,
        report.estimate.pairs,
        report.estimate.selectivity,
        est_elapsed,
        report.build_time,
        report.estimate_time
    );

    let err = error_pct(report.estimate.selectivity, baseline.selectivity);
    println!("estimation error: {err:.2}%");

    // For contrast: the prior parametric model (uniformity assumption).
    let pm = EstimatorKind::Parametric.run(&clustered, &uniform);
    println!(
        "parametric model [Aref & Samet]: selectivity {:.3e} (error {:.2}%)",
        pm.estimate.selectivity,
        error_pct(pm.estimate.selectivity, baseline.selectivity)
    );
}
