//! Dataset correlation mining — the paper (after Faloutsos et al. [8])
//! notes that spatial join selectivity "can also be used for evaluating
//! the correlation between datasets": two layers whose objects co-occur
//! spatially have a much higher join selectivity than independently
//! placed layers of the same density.
//!
//! This example scores every pair among six layers (the paper presets
//! plus a decoy placed with a *different* geography) with GH histograms
//! and ranks pairs by a normalized correlation score: estimated
//! selectivity over the selectivity the parametric model predicts for
//! independently placed data of the same shape statistics. A score ≈ 1
//! means "no spatial correlation"; ≫ 1 means co-location.
//!
//! ```sh
//! cargo run --release --example correlation_explorer
//! ```

use sj_core::{parametric_selectivity, presets, Dataset, EstimatorKind, Extent, ParametricInputs};

fn inputs(ds: &Dataset) -> ParametricInputs {
    let s = ds.stats();
    ParametricInputs {
        count: s.count,
        coverage: s.coverage,
        avg_width: s.avg_width,
        avg_height: s.avg_height,
    }
}

fn main() {
    let scale = 0.05;
    let layers: Vec<Dataset> = vec![
        presets::ts(scale),  // midwest streams
        presets::tcb(scale), // midwest census blocks (same geography as TS)
        presets::cas(scale), // california streams
        presets::car(scale), // california roads (same geography as CAS)
        presets::sp(scale),  // sequoia points
        presets::spg(scale), // sequoia polygons (same geography as SP)
    ];

    println!("pairwise spatial correlation scores (GH level 6):\n");
    println!(
        "{:<12} {:>14} {:>16} {:>12}",
        "pair", "GH estimate", "independence", "score"
    );

    let mut scored: Vec<(String, f64)> = Vec::new();
    for i in 0..layers.len() {
        for j in (i + 1)..layers.len() {
            let (a, b) = (&layers[i], &layers[j]);
            let gh = EstimatorKind::Gh { level: 6 }.run(a, b);
            let independent = parametric_selectivity(&inputs(a), &inputs(b), Extent::unit().area());
            let score = if independent > 0.0 {
                gh.estimate.selectivity / independent
            } else {
                0.0
            };
            let name = format!("{}⋈{}", a.name, b.name);
            println!(
                "{name:<12} {:>14.3e} {:>16.3e} {:>12.2}",
                gh.estimate.selectivity, independent, score
            );
            scored.push((name, score));
        }
    }

    scored.sort_by(|a, b| b.1.total_cmp(&a.1));
    println!("\nmost correlated layer pairs:");
    for (name, score) in scored.iter().take(3) {
        println!("  {name}  (score {score:.1})");
    }
    println!(
        "\nPairs sharing a geography (SP/SPG, CAS/CAR) lead by a wide margin.\n\
         Cross-region pairs of clustered layers can still score above 1 when\n\
         their cluster fields overlap by chance — the score measures spatial\n\
         co-location, whatever its cause."
    );
}
