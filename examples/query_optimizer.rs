//! Query-optimizer scenario: pick a join order using selectivity
//! estimates instead of running the joins.
//!
//! A three-way spatial query — "streams that cross roads inside census
//! blocks" — can be evaluated as `(TS ⋈ CAR) ⋈ TCB` or `(TS ⋈ TCB) ⋈ CAR`
//! (and so on). The dominant cost driver is the size of the intermediate
//! result, which is exactly what join selectivity estimation predicts.
//! This example builds GH histogram files once per dataset, scores every
//! pairwise join from the files alone, picks the plan with the smallest
//! intermediate, and then verifies the ranking against the exact joins.
//!
//! ```sh
//! cargo run --release --example query_optimizer
//! ```

use sj_core::{presets, Dataset, Extent, GhHistogram, Grid};
use std::time::Instant;

fn main() {
    let scale = 0.05;
    let datasets: Vec<Dataset> = vec![
        presets::ts(scale),
        presets::tcb(scale),
        presets::cas(scale),
        presets::car(scale),
    ];

    // One-time statistics pass: a GH histogram file per dataset, all on a
    // shared grid (a real SDBMS would persist these next to the tables).
    let extent = Extent::unit();
    let grid = Grid::new(6, extent).expect("level 6 within bounds");
    let t = Instant::now();
    let histograms: Vec<GhHistogram> = datasets
        .iter()
        .map(|ds| GhHistogram::build(grid, &ds.rects))
        .collect();
    println!(
        "built {} GH histogram files (level 6) in {:.1?}\n",
        histograms.len(),
        t.elapsed()
    );

    // Score all pairwise joins from the histogram files alone.
    println!("{:<14} {:>16} {:>16}", "join", "est. pairs", "actual pairs");
    let mut plans: Vec<(String, f64, u64)> = Vec::new();
    for i in 0..datasets.len() {
        for j in (i + 1)..datasets.len() {
            let est = histograms[i].estimate(&histograms[j]).expect("shared grid");
            let actual = sj_core::sweep_join_count(&datasets[i].rects, &datasets[j].rects);
            let name = format!("{} ⋈ {}", datasets[i].name, datasets[j].name);
            println!("{name:<14} {:>16.0} {:>16}", est.pairs, actual);
            plans.push((name, est.pairs, actual));
        }
    }

    // The optimizer decision: order joins by estimated intermediate size.
    plans.sort_by(|a, b| a.1.total_cmp(&b.1));
    println!("\noptimizer ranking (smallest estimated intermediate first):");
    for (rank, (name, est, _)) in plans.iter().enumerate() {
        println!("  {}. {name}  (~{est:.0} pairs)", rank + 1);
    }

    // Validate: does the estimated ranking match the actual ranking?
    let mut actual_sorted = plans.clone();
    actual_sorted.sort_by_key(|p| p.2);
    let agree = plans
        .iter()
        .zip(&actual_sorted)
        .filter(|(a, b)| a.0 == b.0)
        .count();
    println!(
        "\nranking agreement with the exact joins: {agree}/{} positions",
        plans.len()
    );
}
