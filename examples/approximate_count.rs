//! Approximate aggregate answering — the paper's introduction scenario:
//! *"finding the approximate number of bridges in a given spatial extent
//! may simply be satisfied by doing a join selectivity estimation between
//! the streams and rivers datasets for that extent"*.
//!
//! We treat stream × road MBR intersections as bridge candidates and
//! answer "about how many bridges in this window?" from GH histograms,
//! comparing against the exact windowed join.
//!
//! ```sh
//! cargo run --release --example approximate_count
//! ```

use sj_core::{presets, Extent, GhHistogram, Grid, Rect};
use std::time::Instant;

fn main() {
    let scale = 0.1;
    let streams = presets::cas(scale);
    let roads = presets::car(scale);
    println!(
        "streams: {} MBRs, roads: {} MBRs (California presets, scale {scale})\n",
        streams.len(),
        roads.len()
    );

    // One-time statistics pass: a GH histogram file per dataset. Every
    // window query below is answered from these files alone.
    let grid = Grid::new(7, Extent::unit()).expect("level in range");
    let t = Instant::now();
    let hs = GhHistogram::build(grid, &streams.rects);
    let hr = GhHistogram::build(grid, &roads.rects);
    println!(
        "built 2 GH histogram files (level 7) in {:.1?}\n",
        t.elapsed()
    );

    let windows = [
        ("whole state", Rect::new(0.0, 0.0, 1.0, 1.0)),
        ("north-west quadrant", Rect::new(0.0, 0.5, 0.5, 1.0)),
        ("metro area", Rect::new(0.55, 0.15, 0.75, 0.35)),
        ("rural strip", Rect::new(0.0, 0.0, 1.0, 0.1)),
    ];

    println!(
        "{:<22} {:>14} {:>14} {:>9} {:>12} {:>12}",
        "window", "approx count", "exact count", "err", "approx time", "exact time"
    );
    for (name, win) in windows {
        // Approximate "number of bridges" in the window: the windowed
        // join-pair estimate, straight from the histogram files.
        let t = Instant::now();
        let est = hs.estimate_pairs_in_window(&hr, &win).expect("shared grid");
        let approx_time = t.elapsed();

        // Exact: run the windowed join for comparison (pairs whose
        // intersection touches the window).
        let t = Instant::now();
        let ws: Vec<Rect> = streams
            .rects
            .iter()
            .filter(|r| r.intersects(&win))
            .copied()
            .collect();
        let wr: Vec<Rect> = roads
            .rects
            .iter()
            .filter(|r| r.intersects(&win))
            .copied()
            .collect();
        let mut exact = 0u64;
        sj_core::sweep_join_pairs(&ws, &wr, |i, j| {
            if let Some(overlap) = ws[i].intersection(&wr[j]) {
                if overlap.intersects(&win) {
                    exact += 1;
                }
            }
        });
        let exact_time = t.elapsed();

        let err = sj_core::error_pct(est, exact as f64);
        println!(
            "{name:<22} {:>14.0} {:>14} {:>8.1}% {:>12.1?} {:>12.1?}",
            est, exact, err, approx_time, exact_time
        );
    }

    // Range-query counts come from the same files.
    println!("\nrange-query counts from the same histogram file:");
    let q = Rect::new(0.55, 0.15, 0.75, 0.35);
    let est = hr.estimate_window_count(&q);
    let exact = roads.rects.iter().filter(|r| r.intersects(&q)).count();
    println!(
        "  roads intersecting the metro window: estimated {est:.0}, exact {exact} \
         ({:.1}% error)",
        sj_core::error_pct(est, exact as f64)
    );
}
