//! Vendored stand-in for the subset of the `proptest` crate API used by
//! this workspace: the [`Strategy`] trait, range/tuple/collection
//! strategies, [`prop_oneof!`], and the [`proptest!`] test macro.
//!
//! Differences from the real crate: inputs are generated from a
//! deterministic per-test seed (derived from the test name) and failing
//! cases are **not shrunk** — the failing input is reported as generated.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod test_runner {
    //! The random source and configuration for generated tests.

    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Deterministic random source used to generate test inputs.
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates a generator seeded from a test's name, so each test
        /// gets a distinct but reproducible input stream.
        #[must_use]
        pub fn from_name(name: &str) -> Self {
            let mut hash = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                hash ^= u64::from(b);
                hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
            }
            Self(StdRng::seed_from_u64(hash))
        }
    }

    impl rand::Rng for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Per-test configuration.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` generated inputs.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }
}

pub use test_runner::Config as ProptestConfig;
use test_runner::TestRng;

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> strategy::Map<Self, F>
    where
        Self: Sized,
    {
        strategy::Map { inner: self, f }
    }
}

impl<T> Strategy for Box<dyn Strategy<Value = T>> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

macro_rules! range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt as _;
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                use rand::RngExt as _;
                rng.random_range(self.clone())
            }
        }
    )+};
}

range_strategy!(f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

pub mod strategy {
    //! Combinator strategies.

    use super::{Strategy, TestRng};
    use rand::RngExt as _;

    /// A value always generated as-is.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Boxes a strategy, erasing its concrete type. Used by
    /// [`prop_oneof!`](crate::prop_oneof) to mix heterogeneous arms.
    pub fn boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
        Box::new(s)
    }

    /// A weighted choice between strategies of a common value type.
    pub struct Union<T> {
        arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Creates the union; weights must not all be zero.
        #[must_use]
        pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Self {
            let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(
                total_weight > 0,
                "prop_oneof! requires a positive total weight"
            );
            Self { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.random_range(0..self.total_weight);
            for (w, s) in &self.arms {
                if pick < u64::from(*w) {
                    return s.generate(rng);
                }
                pick -= u64::from(*w);
            }
            unreachable!("weighted pick within total weight")
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::RngExt as _;

    /// A size specification for [`vec()`]: an exact length or a half-open
    /// range of lengths.
    pub trait SizeRange {
        /// The inclusive lower and exclusive upper length bound.
        fn bounds(&self) -> (usize, usize);
    }

    impl SizeRange for usize {
        fn bounds(&self) -> (usize, usize) {
            (*self, *self + 1)
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn bounds(&self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// Generates `Vec`s of `element` values with a length drawn from
    /// `size`.
    pub fn vec<S: Strategy>(element: S, size: impl SizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = size.bounds();
        assert!(min < max_exclusive, "empty vec size range");
        VecStrategy {
            element,
            min,
            max_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.random_range(self.min..self.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod arbitrary {
    //! Default strategies per type, for [`any`](crate::any).

    use super::{Strategy, TestRng};

    /// A type with a canonical full-range strategy.
    pub trait Arbitrary {
        /// The strategy type returned by [`any`](crate::any).
        type Strategy: Strategy<Value = Self>;

        /// The canonical strategy for this type.
        fn arbitrary() -> Self::Strategy;
    }

    /// Generates any representable value of an integer type.
    #[derive(Debug, Clone, Copy)]
    pub struct FullRange<T>(core::marker::PhantomData<T>);

    macro_rules! arbitrary_int {
        ($($t:ty),+) => {$(
            impl Strategy for FullRange<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    #[allow(clippy::cast_possible_truncation)]
                    {
                        rand::Rng::next_u64(rng) as $t
                    }
                }
            }

            impl Arbitrary for $t {
                type Strategy = FullRange<$t>;

                fn arbitrary() -> Self::Strategy {
                    FullRange(core::marker::PhantomData)
                }
            }
        )+};
    }

    arbitrary_int!(u8, u16, u32, u64, usize);

    impl Strategy for FullRange<bool> {
        type Value = bool;

        fn generate(&self, rng: &mut TestRng) -> bool {
            rand::Rng::next_u64(rng) & 1 == 1
        }
    }

    impl Arbitrary for bool {
        type Strategy = FullRange<bool>;

        fn arbitrary() -> Self::Strategy {
            FullRange(core::marker::PhantomData)
        }
    }
}

/// The canonical strategy for `T`, e.g. `any::<u8>()`.
pub fn any<T: arbitrary::Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::arbitrary::Arbitrary;
    pub use crate::strategy::Just;
    pub use crate::{any, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Skips the current generated case when its precondition fails.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            continue;
        }
    };
}

/// Weighted (or unweighted) choice between strategies producing the same
/// value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(( ($weight) as u32, $crate::strategy::boxed($strat) )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Declares property tests: each `fn` runs its body against `cases`
/// generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for __case in 0..__config.cases {
                let ($($pat,)+) = ($($crate::Strategy::generate(&$strat, &mut __rng),)+);
                $body
            }
        }
        $crate::__proptest_tests! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        let strat = (0.0..1.0f64, 5u32..10, 0usize..3);
        for _ in 0..1000 {
            let (f, u, s) = strat.generate(&mut rng);
            assert!((0.0..1.0).contains(&f));
            assert!((5..10).contains(&u));
            assert!(s < 3);
        }
    }

    #[test]
    fn oneof_respects_zero_weight_arms() {
        let mut rng = crate::test_runner::TestRng::from_name("oneof");
        let strat = prop_oneof![0 => 100u32..101, 5 => 0u32..10];
        for _ in 0..200 {
            assert!(strat.generate(&mut rng) < 10);
        }
    }

    #[test]
    fn vec_strategy_lengths() {
        let mut rng = crate::test_runner::TestRng::from_name("vecs");
        let exact = crate::collection::vec(0.0..1.0f64, 4);
        assert_eq!(exact.generate(&mut rng).len(), 4);
        let ranged = crate::collection::vec(any::<u8>(), 0..7);
        for _ in 0..100 {
            assert!(ranged.generate(&mut rng).len() < 7);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]
        #[test]
        fn macro_generates_and_assumes((a, b) in (0u64..50, 0u64..50), v in crate::collection::vec(0u32..5, 0..4)) {
            prop_assume!(a != b);
            prop_assert!(a < 50 && b < 50);
            prop_assert_eq!(v.len() < 4, true, "len {}", v.len());
        }
    }
}
