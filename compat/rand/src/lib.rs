//! Vendored stand-in for the subset of the `rand` crate API used by this
//! workspace: [`Rng`], [`RngExt::random_range`], [`SeedableRng`] and a
//! deterministic [`rngs::StdRng`].
//!
//! The build environment cannot reach a crates.io mirror, so the workspace
//! vendors the few entry points it needs. The generator is xoshiro256++
//! seeded with SplitMix64 — not the upstream ChaCha12 stream, but a
//! high-quality PRNG that is deterministic per seed, which is all the
//! workspace relies on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of uniformly distributed random 64-bit words.
pub trait Rng {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    fn next_f64(&mut self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A range that a uniform value can be drawn from. The element type is
/// an associated type (not a trait parameter) so that the output of
/// [`RngExt::random_range`] is uniquely determined by the range's type —
/// this keeps inference working in expressions like
/// `x + rng.random_range(-0.1..0.1f64)` where the surrounding types are
/// still unresolved float literals.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;

    /// Draws one uniform value from the range.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;

    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + rng.next_f64() * (self.end - self.start);
        // Floating-point rounding can land exactly on `end`; fold it back.
        if v < self.end {
            v
        } else {
            self.start
        }
    }
}

impl SampleRange for core::ops::RangeInclusive<f64> {
    type Output = f64;

    fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + rng.next_f64() * (hi - lo)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),+) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;

            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = self.start as i128 + (u128::from(rng.next_u64()) % span) as i128;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                {
                    v as $t
                }
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;

            fn sample_one<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                let v = lo as i128 + (u128::from(rng.next_u64()) % span) as i128;
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                {
                    v as $t
                }
            }
        }
    )+};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Convenience extension methods available on every [`Rng`].
pub trait RngExt: Rng {
    /// Draws one uniform value from `range`.
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// A PRNG constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Creates the generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++ seeded via SplitMix64.
    ///
    /// Deterministic for a given seed; not cryptographically secure.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s = [s0, s1, s2, s3];
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            self.s = s;
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(
                a.random_range(0u64..1_000_000),
                b.random_range(0u64..1_000_000)
            );
        }
        let mut c = StdRng::seed_from_u64(8);
        let same: Vec<u64> = (0..16).map(|_| c.random_range(0u64..u64::MAX)).collect();
        let mut d = StdRng::seed_from_u64(7);
        let other: Vec<u64> = (0..16).map(|_| d.random_range(0u64..u64::MAX)).collect();
        assert_ne!(same, other);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
            let w = rng.random_range(-1.0..=1.0);
            assert!((-1.0..=1.0).contains(&w));
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 5];
        for _ in 0..1_000 {
            seen[rng.random_range(0usize..5)] = true;
            let v = rng.random_range(10i32..=12);
            assert!((10..=12).contains(&v));
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn uniformity_rough_check() {
        let mut rng = StdRng::seed_from_u64(99);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.random_range(0.0..1.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
