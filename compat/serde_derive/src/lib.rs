//! Derive macros for the vendored `serde` stand-in.
//!
//! Written against `proc_macro` directly (no `syn`/`quote`, which are
//! unavailable offline). Supports exactly what this workspace derives on:
//! non-generic structs with named fields.

#![warn(missing_docs)]

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` by emitting every named field into a
/// `serde::Value::Object`, in declaration order.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let (name, fields) = parse_named_struct(input);
    let mut pushes = String::new();
    for f in &fields {
        pushes.push_str(&format!(
            "fields.push((\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut fields: Vec<(String, ::serde::Value)> = Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(fields)\n\
             }}\n\
         }}"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives the `serde::Deserialize` marker.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let (name, _) = parse_named_struct(input);
    format!("impl ::serde::Deserialize for {name} {{}}")
        .parse()
        .expect("generated Deserialize impl parses")
}

/// Extracts the struct name and its named-field identifiers.
fn parse_named_struct(input: TokenStream) -> (String, Vec<String>) {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut name = None;
    let mut body = None;
    let mut i = 0;
    while i < tokens.len() {
        if let TokenTree::Ident(id) = &tokens[i] {
            if id.to_string() == "struct" {
                if let Some(TokenTree::Ident(n)) = tokens.get(i + 1) {
                    name = Some(n.to_string());
                }
                // The fields are the next brace group (no generic structs
                // are derived in this workspace, so nothing intervenes but
                // the name itself).
                for t in &tokens[i + 1..] {
                    if let TokenTree::Group(g) = t {
                        if g.delimiter() == Delimiter::Brace {
                            body = Some(g.stream());
                            break;
                        }
                    }
                }
                break;
            }
        }
        i += 1;
    }
    let name = name.expect("derive input contains a struct name");
    let body = body.expect("derive supports structs with named fields only");
    (name, field_names(body))
}

/// Walks a named-field struct body, returning one identifier per field.
fn field_names(body: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut at_field_start = true;
    let mut angle_depth = 0i32;
    let mut iter = body.into_iter().peekable();
    while let Some(tok) = iter.next() {
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '#' && at_field_start => {
                // Skip the attribute's bracket group (doc comments etc.).
                iter.next();
            }
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                at_field_start = true;
            }
            TokenTree::Ident(id) if at_field_start => {
                let s = id.to_string();
                if s == "pub" {
                    // A `pub(crate)`-style scope group is consumed by the
                    // group arm below without marking a field.
                    continue;
                }
                fields.push(s);
                at_field_start = false;
            }
            _ => {}
        }
    }
    fields
}
