//! Vendored stand-in for the subset of the `serde` crate API used by this
//! workspace: the [`Serialize`] / [`Deserialize`] traits, their derive
//! macros (from the companion `serde_derive` crate), and the [`Value`]
//! tree that `serde_json` renders to text.
//!
//! Unlike the real serde, serialization here is not generic over a
//! `Serializer`: [`Serialize`] produces a [`Value`] tree directly, which is
//! the only data model this workspace ever serializes into.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde_derive::{Deserialize, Serialize};

use std::time::Duration;

/// A JSON-like value tree, the target of every serialization.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Unsigned integer number.
    U64(u64),
    /// Signed (negative) integer number.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Array(Vec<Value>),
    /// Object, with field order preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the elements if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Returns the value as a `u64` if it is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) => u64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Returns the value as an `i64` if it is an in-range integer.
    #[must_use]
    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) => i64::try_from(v).ok(),
            _ => None,
        }
    }

    /// Returns the value as an `f64` if it is any number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        #[allow(clippy::cast_precision_loss)]
        match *self {
            Value::F64(v) => Some(v),
            Value::U64(v) => Some(v as f64),
            Value::I64(v) => Some(v as f64),
            _ => None,
        }
    }

    /// Returns the value as a `bool` if it is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(v) => Some(v),
            _ => None,
        }
    }

    /// Returns the value as a string slice if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up an object field by key.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    #[must_use]
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

const NULL: Value = Value::Null;

impl std::ops::Index<usize> for Value {
    type Output = Value;

    fn index(&self, index: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(index).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;

    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

/// A type that can be rendered into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_value(&self) -> Value;
}

/// Marker trait emitted by `#[derive(Deserialize)]`.
///
/// The workspace only ever deserializes into [`Value`], so derived
/// implementations carry no behavior.
pub trait Deserialize {}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! serialize_unsigned {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(u64::try_from(*self).expect("unsigned fits u64"))
            }
        }
    )+};
}

macro_rules! serialize_signed {
    ($($t:ty),+) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let v = i64::try_from(*self).expect("signed fits i64");
                u64::try_from(v).map_or(Value::I64(v), Value::U64)
            }
        }
    )+};
}

serialize_unsigned!(u8, u16, u32, u64, usize);
serialize_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        if self.is_finite() {
            Value::F64(*self)
        } else {
            Value::Null
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        f64::from(*self).to_value()
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for Duration {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("secs".to_string(), Value::U64(self.as_secs())),
            (
                "nanos".to_string(),
                Value::U64(u64::from(self.subsec_nanos())),
            ),
        ])
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        self.as_ref().map_or(Value::Null, Serialize::to_value)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_map_to_expected_variants() {
        assert_eq!(7u32.to_value(), Value::U64(7));
        assert_eq!((-3i64).to_value(), Value::I64(-3));
        assert_eq!(5i32.to_value(), Value::U64(5));
        assert_eq!(0.5f64.to_value(), Value::F64(0.5));
        assert_eq!(f64::NAN.to_value(), Value::Null);
        assert_eq!("x".to_value(), Value::Str("x".to_string()));
        assert_eq!(None::<u8>.to_value(), Value::Null);
    }

    #[test]
    fn duration_serializes_like_upstream_serde() {
        let v = Duration::new(3, 500).to_value();
        assert_eq!(v["secs"].as_u64(), Some(3));
        assert_eq!(v["nanos"].as_u64(), Some(500));
    }

    #[test]
    fn value_accessors() {
        let v = Value::Array(vec![Value::Object(vec![(
            "k".to_string(),
            Value::Str("s".to_string()),
        )])]);
        assert_eq!(v.as_array().unwrap().len(), 1);
        assert_eq!(v[0]["k"].as_str(), Some("s"));
        assert!(v[0]["missing"].is_null());
        assert!(v[9].is_null());
    }
}
