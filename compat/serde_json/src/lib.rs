//! Vendored stand-in for the subset of the `serde_json` crate API used by
//! this workspace: [`to_string`], [`to_string_pretty`], [`from_str`] and
//! the [`Value`] tree (defined in the companion `serde` stand-in).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use serde::Value;

use serde::Serialize;
use std::fmt;

/// A serialization or parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "json error: {}", self.0)
    }
}

impl std::error::Error for Error {}

/// Result alias matching the upstream crate's.
pub type Result<T> = std::result::Result<T, Error>;

/// Renders a value as compact JSON.
///
/// # Errors
/// Never fails for the data model this workspace serializes; the `Result`
/// exists for call-site compatibility with the real crate.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Renders a value as 2-space-indented JSON.
///
/// # Errors
/// Never fails for the data model this workspace serializes.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// A type that can be produced by [`from_str`]. The workspace only ever
/// parses into [`Value`].
pub trait DeserializeOwned: Sized {
    /// Converts a parsed [`Value`] into `Self`.
    ///
    /// # Errors
    /// Returns an error when the value does not fit the target type.
    fn from_value(value: Value) -> Result<Self>;
}

impl DeserializeOwned for Value {
    fn from_value(value: Value) -> Result<Self> {
        Ok(value)
    }
}

/// Parses a JSON document.
///
/// # Errors
/// Returns an error on malformed input or trailing garbage.
pub fn from_str<T: DeserializeOwned>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(v)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        // `{:?}` is Rust's shortest-roundtrip float formatting and always
        // includes a `.` or exponent, keeping numbers typed on re-parse.
        Value::F64(n) => out.push_str(&format!("{n:?}")),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, x, d| {
                write_value(o, x, indent, d);
            })
        }
        Value::Object(fields) => {
            write_seq(
                out,
                fields.iter(),
                indent,
                depth,
                ('{', '}'),
                |o, (k, x), d| {
                    write_escaped(o, k);
                    o.push(':');
                    if indent.is_some() {
                        o.push(' ');
                    }
                    write_value(o, x, indent, d);
                },
            );
        }
    }
}

fn write_seq<I: ExactSizeIterator>(
    out: &mut String,
    items: I,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, I::Item, usize),
) {
    out.push(brackets.0);
    let empty = items.len() == 0;
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * (depth + 1)));
        }
        write_item(out, item, depth + 1);
    }
    if !empty {
        if let Some(step) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(step * depth));
        }
    }
    out.push(brackets.1);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Value::Null),
            Some(b't') if self.eat_literal("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error(format!("unexpected input at byte {}", self.pos))),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error("unterminated string".to_string())),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("bad escape".to_string()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| Error("bad \\u escape".to_string()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this
                            // crate's writer; reject rather than mangle.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| Error("bad \\u codepoint".to_string()))?;
                            out.push(c);
                        }
                        _ => return Err(Error("unknown escape".to_string())),
                    }
                }
                Some(_) => {
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| Error("invalid utf-8 in string".to_string()))?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error("invalid number".to_string()))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = Value::Object(vec![
            (
                "name".to_string(),
                Value::Str("a \"quoted\" s\n".to_string()),
            ),
            ("count".to_string(), Value::U64(42)),
            ("neg".to_string(), Value::I64(-7)),
            ("ratio".to_string(), Value::F64(0.05)),
            ("flag".to_string(), Value::Bool(true)),
            ("nothing".to_string(), Value::Null),
            (
                "items".to_string(),
                Value::Array(vec![Value::U64(1), Value::F64(2.5)]),
            ),
        ]);
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn roundtrip_pretty() {
        let v = Value::Array(vec![
            Value::Object(vec![("x".to_string(), Value::F64(1.25))]),
            Value::Object(vec![]),
            Value::Array(vec![]),
        ]);
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn integers_stay_integers() {
        let parsed: Value = from_str("[7, -2, 1.0]").unwrap();
        assert_eq!(parsed[0].as_u64(), Some(7));
        assert_eq!(parsed[1].as_i64(), Some(-2));
        assert_eq!(parsed[1].as_u64(), None);
        assert_eq!(parsed[2].as_u64(), None);
        assert_eq!(parsed[2].as_f64(), Some(1.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "tru",
            "1 2",
            "\"\\q\"",
            "{\"a\" 1}",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn float_formatting_roundtrips_exactly() {
        for &f in &[0.1, 1.0, 1e-12, 123456.789, -0.0625, f64::MAX] {
            let text = to_string(&Value::F64(f)).unwrap();
            let back: Value = from_str(&text).unwrap();
            assert_eq!(back.as_f64(), Some(f), "text {text}");
        }
    }
}
