//! Vendored stand-in for the subset of the `bytes` crate API used by this
//! workspace: [`Bytes`], [`BytesMut`], and the [`Buf`] / [`BufMut`] traits
//! with little-endian accessors.
//!
//! No shared-ownership optimizations — [`Bytes`] is a plain owned buffer,
//! which is all the histogram file formats need.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes(Vec<u8>);

impl Bytes {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Copies a slice into a new buffer.
    #[must_use]
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self(data.to_vec())
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self(v)
    }
}

/// A growable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut(Vec<u8>);

impl BytesMut {
    /// Creates an empty buffer.
    #[must_use]
    pub fn new() -> Self {
        Self(Vec::new())
    }

    /// Creates an empty buffer with reserved capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self(Vec::with_capacity(capacity))
    }

    /// Converts into an immutable [`Bytes`].
    #[must_use]
    pub fn freeze(self) -> Bytes {
        Bytes(self.0)
    }
}

impl std::ops::Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

/// Read access to a byte cursor.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skips `cnt` bytes.
    ///
    /// # Panics
    /// Panics when fewer than `cnt` bytes remain.
    fn advance(&mut self, cnt: usize);

    /// Reads a little-endian `u32`.
    ///
    /// # Panics
    /// Panics when fewer than 4 bytes remain.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        raw.copy_from_slice(&self.chunk()[..4]);
        self.advance(4);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64`.
    ///
    /// # Panics
    /// Panics when fewer than 8 bytes remain.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        raw.copy_from_slice(&self.chunk()[..8]);
        self.advance(8);
        u64::from_le_bytes(raw)
    }

    /// Reads a little-endian `f64`.
    ///
    /// # Panics
    /// Panics when fewer than 8 bytes remain.
    fn get_f64_le(&mut self) -> f64 {
        f64::from_bits(self.get_u64_le())
    }

    /// Whether any bytes remain to read.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads a little-endian `i64`.
    ///
    /// # Panics
    /// Panics when fewer than 8 bytes remain.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.get_u64_le().to_le_bytes())
    }

    /// Reads one byte.
    ///
    /// # Panics
    /// Panics when no bytes remain.
    fn get_u8(&mut self) -> u8 {
        let b = self.chunk()[0];
        self.advance(1);
        b
    }

    /// Fills `dst` from the cursor, advancing past the copied bytes.
    ///
    /// # Panics
    /// Panics when fewer than `dst.len()` bytes remain.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, cnt: usize) {
        *self = &self[cnt..];
    }
}

/// Write access to a growable byte buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, v: i64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_bits().to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.0.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(u64::MAX - 1);
        buf.put_f64_le(-0.125);
        buf.put_u8(7);
        let bytes = buf.freeze();
        assert_eq!(bytes.len(), 4 + 8 + 8 + 1);

        let mut cursor: &[u8] = &bytes;
        assert_eq!(cursor.remaining(), 21);
        assert_eq!(cursor.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 1);
        assert_eq!(cursor.get_f64_le(), -0.125);
        assert_eq!(cursor.get_u8(), 7);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn slicing_and_to_vec() {
        let bytes = Bytes::from(vec![1, 2, 3, 4]);
        assert_eq!(&bytes[1..3], &[2, 3]);
        assert_eq!(bytes.to_vec(), vec![1, 2, 3, 4]);
    }
}
