//! Vendored stand-in for the subset of the `criterion` crate API used by
//! this workspace's benches: groups, `bench_function` /
//! `bench_with_input`, `iter` / `iter_batched`, and the two entry macros.
//!
//! Statistics are intentionally minimal — each benchmark is timed over a
//! handful of iterations and the mean is printed. Passing `--test` (as
//! `cargo test` does for `harness = false` bench targets) runs every
//! benchmark exactly once as a smoke test.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// The benchmark driver handed to every `criterion_group!` target.
pub struct Criterion {
    smoke_test: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let smoke_test = std::env::args().any(|a| a == "--test");
        Self { smoke_test }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples to aim for. The stand-in caps actual
    /// samples low to keep full runs fast.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.to_string();
        self.run(&label, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}

    fn run(&mut self, label: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let samples = if self.criterion.smoke_test {
            1
        } else {
            self.sample_size.clamp(1, 10)
        };
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
            samples,
            warmup: !self.criterion.smoke_test,
        };
        f(&mut bencher);
        let mean = if bencher.iterations == 0 {
            Duration::ZERO
        } else {
            bencher.elapsed / u32::try_from(bencher.iterations).unwrap_or(u32::MAX)
        };
        println!(
            "{}/{label}: {mean:?} mean over {} iterations",
            self.name, bencher.iterations
        );
    }
}

/// How `iter_batched` amortizes setup cost; the stand-in treats all
/// variants identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// A benchmark id made of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id such as `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures for one benchmark.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
    samples: usize,
    warmup: bool,
}

impl Bencher {
    /// Times `routine` over the sample budget.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        if self.warmup {
            std::hint::black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }

    /// Times `routine` over fresh inputs from `setup`, excluding setup
    /// time from the measurement.
    pub fn iter_batched<I, R, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> R,
    {
        if self.warmup {
            std::hint::black_box(routine(setup()));
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.elapsed += start.elapsed();
            self.iterations += 1;
        }
    }
}

/// Declares a group function that runs each benchmark target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` to run the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_run_and_count_iterations() {
        let mut c = Criterion { smoke_test: true };
        let mut g = c.benchmark_group("g");
        g.sample_size(50);
        let mut runs = 0u64;
        g.bench_function("f", |b| b.iter(|| runs += 1));
        let mut batched = 0u64;
        g.bench_with_input(BenchmarkId::new("with_input", 3), &4u32, |b, &x| {
            b.iter_batched(|| x, |v| batched += u64::from(v), BatchSize::LargeInput);
        });
        g.finish();
        assert_eq!(runs, 1, "smoke test mode runs exactly once, no warmup");
        assert_eq!(batched, 4);
    }

    #[test]
    fn benchmark_id_formats_as_name_slash_param() {
        assert_eq!(BenchmarkId::new("gh", 7).to_string(), "gh/7");
    }
}
