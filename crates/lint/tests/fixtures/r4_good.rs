//! R4 good: fallible conversions, or a documented widening.

pub fn shrink_checked(v: u64) -> Option<u32> {
    u32::try_from(v).ok()
}

pub fn widen(v: u32) -> usize {
    // sj-lint: allow(cast, u32 to usize widening cannot truncate on >=32-bit targets)
    v as usize
}
