//! R3 bad: unwrap, a panicking macro, and unchecked indexing inside a
//! decoder.

pub fn first_entry(entries: &[u64]) -> u64 {
    entries.first().copied().unwrap()
}

pub fn from_bytes(data: &[u8]) -> u64 {
    let hi = data[0];
    u64::from(hi)
}

pub fn todo_path() {
    panic!("fell off the decision ladder");
}
