//! R8 good: every public item of an estimator-facing crate documented.

/// Estimates a thing.
pub fn estimate() -> u64 {
    42
}

/// Estimator configuration.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Grid level.
    pub level: u32,
}

/// Supported estimator families.
#[derive(Debug, Clone, Copy)]
pub enum Family {
    /// Geometric histogram.
    Gh,
}
