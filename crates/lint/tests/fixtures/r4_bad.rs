//! R4 bad: undocumented truncating casts in histogram numeric code.

pub fn shrink(v: u64) -> u32 {
    v as u32
}

pub fn index_of(v: u64) -> usize {
    v as usize
}
