//! R7 good: a persistence pair whose fingerprints match the recorded
//! schema file (the test computes the matching record from this file).

pub const ENVELOPE_VERSION: u32 = 2;

pub fn to_bytes(v: u32) -> Vec<u8> {
    v.to_le_bytes().to_vec()
}

pub fn from_bytes(data: &[u8]) -> Option<u32> {
    let arr: [u8; 4] = data.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}
