//! R3 good: fallible accessors, typed errors, and a reasoned
//! suppression for a structurally guaranteed expect.

pub fn first_entry(entries: &[u64]) -> Option<u64> {
    entries.first().copied()
}

pub fn from_bytes(data: &[u8]) -> Result<u64, String> {
    let b = data.first().copied().ok_or_else(|| "empty".to_string())?;
    Ok(u64::from(b))
}

pub fn root_key(nodes: &[u64]) -> u64 {
    // sj-lint: allow(panic, callers only reach this with a non-empty node list)
    nodes.first().copied().expect("non-empty")
}
