//! R8 bad: undocumented public items in an estimator-facing crate.

pub fn estimate() -> u64 {
    42
}

#[derive(Debug, Clone, Copy)]
pub struct Config;
