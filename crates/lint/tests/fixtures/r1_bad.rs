//! R1 bad: wall-clock and ambient randomness leak into library code.

pub fn sloppy_seed() -> u64 {
    let t = Instant::now();
    t.elapsed().as_nanos() as u64
}

pub fn sloppy_shuffle(items: &mut Vec<u64>) {
    let mut rng = thread_rng();
    items.sort_by_key(|_| rng.random::<u64>());
}
