//! R7 bad: the same persistence pair as `r7_good.rs` with an edited
//! wire format (an extra tag byte) but the *same* envelope version —
//! exactly the drift R7 exists to catch.

pub const ENVELOPE_VERSION: u32 = 2;

pub fn to_bytes(v: u32) -> Vec<u8> {
    let mut out = vec![0xAB];
    out.extend_from_slice(&v.to_le_bytes());
    out
}

pub fn from_bytes(data: &[u8]) -> Option<u32> {
    let rest = data.strip_prefix(&[0xAB])?;
    let arr: [u8; 4] = rest.try_into().ok()?;
    Some(u32::from_le_bytes(arr))
}
