//! R1 good: wall-clock use is either suppressed with a reason or
//! confined to test code.

pub fn report_label(work: impl FnOnce()) -> String {
    // sj-lint: allow(determinism, wall-clock timing is reporting-only output)
    let t0 = Instant::now();
    work();
    format!("{:?}", t0.elapsed())
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_inside_tests_is_exempt() {
        let t0 = Instant::now();
        assert!(t0.elapsed().as_nanos() < u128::MAX);
    }
}
