//! R5 good: a crate root carrying both hygiene headers.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The crate's one item.
pub fn widget() -> u32 {
    7
}
