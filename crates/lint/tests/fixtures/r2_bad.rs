//! R2 bad: floating point sneaks into a shard-merge path.

pub fn merge_same_grid(acc: &mut [f64], inc: &[f64]) {
    for (a, b) in acc.iter_mut().zip(inc) {
        *a += *b * 0.5;
    }
}
