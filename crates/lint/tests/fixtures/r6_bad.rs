//! R6 bad: a bare public error enum — exhaustive, no Display, no Error.

#[derive(Debug)]
pub enum GadgetError {
    Jammed,
}
