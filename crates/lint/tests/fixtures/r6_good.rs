//! R6 good: a public error enum with the full taxonomy contract.

/// Errors from the widget subsystem.
#[derive(Debug)]
#[non_exhaustive]
pub enum WidgetError {
    /// The widget jammed.
    Jammed,
}

impl std::fmt::Display for WidgetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("widget jammed")
    }
}

impl std::error::Error for WidgetError {}
