//! R5 bad: missing hygiene headers and a suppression naming a rule
//! that does not exist.

pub fn widget() -> u32 {
    // sj-lint: allow(made-up-rule, this rule name is not real)
    7
}
