//! R2 kernel fixture (bad): raw float accumulation in a binning kernel.

pub(crate) fn bin_gh_overlap(bg: &BinGrid, o: &mut [f64], row: u32) {
    let base = bg.row_base(row);
    o[base] += 0.5;
}
