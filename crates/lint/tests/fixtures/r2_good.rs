//! R2 good: merge paths accumulate only integers and `Mass`.

pub fn merge_same_grid(acc: &mut Vec<Mass>, inc: &[Mass]) {
    for (a, b) in acc.iter_mut().zip(inc) {
        *a += *b;
    }
}

pub fn merge_counts(acc: &mut [u64], inc: &[u64]) {
    for (a, b) in acc.iter_mut().zip(inc) {
        *a = a.saturating_add(*b);
    }
}
