//! R2 kernel fixture (good): binning kernels accumulate only integers
//! and `Mass`, quantizing exactly once through `Mass::from_f64`.

pub(crate) fn bin_gh_overlap(bg: &BinGrid, r: &Rect, cols: (u32, u32), row: u32, o: &mut [Mass]) {
    let base = bg.row_base(row);
    for col in cols.0..=cols.1 {
        o[base + ix(col)] += Mass::from_f64(bg.overlap_ratio(r, col, row));
    }
}

pub(crate) fn bin_count_row(bg: &BinGrid, cols: (u32, u32), row: u32, out: &mut [u32]) {
    let base = bg.row_base(row);
    for col in cols.0..=cols.1 {
        out[base + ix(col)] += 1;
    }
}
