//! Self-tests proving `verify-merge` actually catches broken merges —
//! and names the right cell and statistic, not just "bytes differ".

use sj_lint::report::Format;
use sj_lint::verify::{run_verify, Fault, Outcome, Partition, VerifyConfig};
use std::process::Command;

/// A small but complete matrix: both scenarios, one level, two shard
/// counts, both partitions, all four kinds.
fn config(fault: Option<Fault>) -> VerifyConfig {
    VerifyConfig {
        scale: 0.1,
        levels: vec![3],
        shard_counts: vec![2, 5],
        fault,
    }
}

#[test]
fn clean_workspace_build_passes() {
    let report = run_verify(&config(None)).unwrap();
    assert_eq!(report.trials.len(), 2 * 4 * 2 * 2);
    assert!(report.is_clean(), "{}", report.render(Format::Human));
}

/// A merge that loses a rectangle (the dropped boundary-group-count
/// fault) must be flagged on *every* family, and the report must name
/// the scalar statistic `n` with both values.
#[test]
fn dropped_rect_is_flagged_as_scalar_n_on_every_family() {
    let report = run_verify(&config(Some(Fault::DropLastRect))).unwrap();
    assert!(!report.is_clean());
    assert_eq!(report.divergent().count(), report.trials.len());
    for trial in &report.trials {
        match &trial.outcome {
            Outcome::Diverged(d) => {
                assert_eq!(d.statistic, "n", "trial {}", trial.coordinate());
                assert_eq!(d.cell, None, "n is a scalar, not a cell statistic");
                assert_eq!(d.left, "300");
                assert_eq!(d.right, "299");
            }
            other => panic!("trial {} not localized: {other:?}", trial.coordinate()),
        }
    }
    let human = report.render(Format::Human);
    assert!(
        human.contains("scalar statistic `n`: 300 != 299"),
        "{human}"
    );
}

/// A merge with float-accumulation-style drift (one coordinate nudged
/// by 1e-7) must be flagged on the mass-carrying families and localized
/// to the cell holding the tampered rectangle: PH's boundary-group
/// coverage `cov` and revised GH's overlap mass `o`. The integer-count
/// families are insensitive to sub-cell geometry by design and stay
/// clean.
#[test]
fn nudged_rect_is_localized_to_cell_and_mass_statistic() {
    let report = run_verify(&config(Some(Fault::NudgeFirstRect))).unwrap();
    assert!(!report.is_clean());
    for trial in &report.trials {
        let kind = trial.kind.name();
        match (&trial.outcome, kind) {
            (Outcome::Diverged(d), "ph") => {
                assert_eq!(d.statistic, "cov", "trial {}", trial.coordinate());
                let cell = d.cell.expect("mass divergence carries a cell");
                assert!(cell.index < 64, "level-3 grid has 64 cells");
                assert!(d.left.contains("2^-75"), "exact fixed-point rendering");
                assert_ne!(d.left, d.right);
            }
            (Outcome::Diverged(d), "gh") => {
                assert_eq!(d.statistic, "o", "trial {}", trial.coordinate());
                assert!(d.cell.is_some());
            }
            (Outcome::Identical, "gh-basic" | "euler") => {}
            (outcome, kind) => {
                panic!("{kind} trial {}: {outcome:?}", trial.coordinate())
            }
        }
    }
    // Both partitions of both mass families diverged, at every shard
    // count — the fault is caught everywhere it can manifest.
    for partition in Partition::ALL {
        let caught = report
            .divergent()
            .filter(|t| t.partition == partition)
            .count();
        assert_eq!(caught, 2 * 2 * 2, "partition {}", partition.name());
    }
}

/// The JSON report carries the same localization: statistic name and
/// (col, row, index) cell coordinates.
#[test]
fn json_report_names_cell_and_statistic() {
    let report = run_verify(&VerifyConfig {
        scale: 0.1,
        levels: vec![3],
        shard_counts: vec![2],
        fault: Some(Fault::NudgeFirstRect),
    })
    .unwrap();
    let json = report.render(Format::Json);
    assert!(json.contains("\"clean\": false"), "{json}");
    assert!(json.contains("\"fault\": \"nudge-first-rect\""), "{json}");
    assert!(json.contains("\"statistic\": \"cov\""), "{json}");
    assert!(json.contains("\"statistic\": \"o\""), "{json}");
    assert!(json.contains("\"col\": "), "{json}");
    assert!(json.contains("\"row\": "), "{json}");
}

/// End-to-end through the binary: exit 0 on a clean run, 1 when an
/// injected fault makes a merge diverge, 2 on a usage error — matching
/// `check`'s exit-code contract.
#[test]
fn binary_exit_codes_match_check_contract() {
    let bin = env!("CARGO_BIN_EXE_sj-lint");
    let small = ["--scale", "0.05", "--levels", "3", "--shards", "2"];

    let clean = Command::new(bin)
        .arg("verify-merge")
        .args(small)
        .output()
        .unwrap();
    assert_eq!(clean.status.code(), Some(0), "{clean:?}");
    let stdout = String::from_utf8_lossy(&clean.stdout);
    assert!(stdout.contains("clean"), "{stdout}");

    let broken = Command::new(bin)
        .arg("verify-merge")
        .args(small)
        .args(["--inject", "drop-last-rect", "--format", "json"])
        .output()
        .unwrap();
    assert_eq!(broken.status.code(), Some(1), "{broken:?}");
    let stdout = String::from_utf8_lossy(&broken.stdout);
    assert!(stdout.contains("\"statistic\": \"n\""), "{stdout}");

    let usage = Command::new(bin)
        .args(["verify-merge", "--inject", "bogus"])
        .output()
        .unwrap();
    assert_eq!(usage.status.code(), Some(2), "{usage:?}");
}
