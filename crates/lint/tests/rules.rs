//! Fixture-driven integration tests: for every rule, one fixture that
//! must pass clean and one that must trip the rule, exercised through
//! the same [`sj_lint::check_sources`] path the driver uses. The final
//! test loads the real workspace and requires it to be lint-clean —
//! the repository itself is the ultimate "good" fixture.

use sj_lint::rules::{Finding, RuleId};
use sj_lint::{check_sources, fingerprint, run_rule, Selection, Workspace};

/// Findings of `rule` over a single fixture mounted at `path`.
fn run_fixture(rule: RuleId, path: &str, text: &str) -> Vec<Finding> {
    check_sources(rule, &[(path, text)])
}

fn lines_of(findings: &[Finding]) -> Vec<usize> {
    findings.iter().map(|f| f.line).collect()
}

// ------------------------------------------------------------------
// R1 — determinism
// ------------------------------------------------------------------

#[test]
fn r1_good_fixture_is_clean() {
    let f = run_fixture(
        RuleId::Determinism,
        "crates/core/src/timer.rs",
        include_str!("fixtures/r1_good.rs"),
    );
    assert_eq!(f, Vec::new(), "suppressed/test-only timing must pass");
}

#[test]
fn r1_bad_fixture_flags_clock_and_rng() {
    let f = run_fixture(
        RuleId::Determinism,
        "crates/core/src/timer.rs",
        include_str!("fixtures/r1_bad.rs"),
    );
    assert_eq!(f.len(), 2, "{f:?}");
    assert!(f[0].message.contains("Instant::now"));
    assert!(f[1].message.contains("thread_rng"));
}

#[test]
fn r1_bench_crate_is_exempt() {
    let f = run_fixture(
        RuleId::Determinism,
        "crates/bench/src/timer.rs",
        include_str!("fixtures/r1_bad.rs"),
    );
    assert_eq!(f, Vec::new(), "the bench harness may use wall clocks");
}

// ------------------------------------------------------------------
// R2 — fixed-point merge paths
// ------------------------------------------------------------------

#[test]
fn r2_good_fixture_is_clean() {
    let f = run_fixture(
        RuleId::FixedPoint,
        "crates/histogram/src/band.rs",
        include_str!("fixtures/r2_good.rs"),
    );
    assert_eq!(f, Vec::new(), "integer/Mass merges must pass");
}

#[test]
fn r2_bad_fixture_flags_floats_in_merge() {
    let f = run_fixture(
        RuleId::FixedPoint,
        "crates/histogram/src/band.rs",
        include_str!("fixtures/r2_bad.rs"),
    );
    assert_eq!(f.len(), 2, "{f:?}");
    assert_eq!(lines_of(&f), vec![3, 5], "f64 signature + 0.5 literal");
}

#[test]
fn r2_kernel_good_fixture_is_clean() {
    let f = run_fixture(
        RuleId::FixedPoint,
        "crates/histogram/src/kernel.rs",
        include_str!("fixtures/r2_kernel_good.rs"),
    );
    assert_eq!(f, Vec::new(), "Mass-only bin_* kernels must pass");
}

#[test]
fn r2_kernel_bad_fixture_flags_floats_in_bin_fns() {
    let f = run_fixture(
        RuleId::FixedPoint,
        "crates/histogram/src/kernel.rs",
        include_str!("fixtures/r2_kernel_bad.rs"),
    );
    assert_eq!(f.len(), 2, "{f:?}");
    assert_eq!(lines_of(&f), vec![3, 5], "f64 signature + 0.5 literal");
}

#[test]
fn r2_kernel_estimate_views_are_out_of_scope() {
    // The estimate-side SoA kernels decode Mass to f64 by design — only
    // the bin_* accumulation kernels carry the fixed-point contract.
    let src =
        "impl PhView {\n    pub fn estimate(&self) -> f64 {\n        self.c[0] * 2.0\n    }\n}\n";
    let f = run_fixture(RuleId::FixedPoint, "crates/histogram/src/kernel.rs", src);
    assert_eq!(f, Vec::new());
}

#[test]
fn r2_floats_outside_merge_scope_are_fine() {
    // The same float-heavy source under a non-merge path/function name is
    // out of R2's scope: floats are only banned on the merge paths.
    let src = "pub fn quantize(w: f64) -> u64 {\n    (w * 2.0) as u64\n}\n";
    let f = run_fixture(RuleId::FixedPoint, "crates/histogram/src/gh.rs", src);
    assert_eq!(f, Vec::new());
}

// ------------------------------------------------------------------
// R3 — panic-freedom
// ------------------------------------------------------------------

#[test]
fn r3_good_fixture_is_clean() {
    let f = run_fixture(
        RuleId::PanicFree,
        "crates/rtree/src/codec.rs",
        include_str!("fixtures/r3_good.rs"),
    );
    assert_eq!(
        f,
        Vec::new(),
        "fallible accessors and reasoned expects pass"
    );
}

#[test]
fn r3_bad_fixture_flags_unwrap_index_and_macro() {
    let f = run_fixture(
        RuleId::PanicFree,
        "crates/rtree/src/codec.rs",
        include_str!("fixtures/r3_bad.rs"),
    );
    assert_eq!(f.len(), 3, "{f:?}");
    assert!(f[0].message.contains(".unwrap()"));
    assert!(f[1].message.contains("slice indexing"));
    assert!(f[2].message.contains("panic!"));
}

#[test]
fn r3_indexing_outside_decoders_is_not_flagged() {
    let src = "pub fn hot_loop(cells: &[u64], i: usize) -> u64 {\n    cells[i]\n}\n";
    let f = run_fixture(RuleId::PanicFree, "crates/histogram/src/gh.rs", src);
    assert_eq!(f, Vec::new(), "indexing is only policed inside decoders");
}

// ------------------------------------------------------------------
// R4 — truncating casts
// ------------------------------------------------------------------

#[test]
fn r4_good_fixture_is_clean() {
    let f = run_fixture(
        RuleId::Cast,
        "crates/histogram/src/cells.rs",
        include_str!("fixtures/r4_good.rs"),
    );
    assert_eq!(f, Vec::new(), "try_from and documented widenings pass");
}

#[test]
fn r4_bad_fixture_flags_truncating_casts() {
    let f = run_fixture(
        RuleId::Cast,
        "crates/histogram/src/cells.rs",
        include_str!("fixtures/r4_bad.rs"),
    );
    assert_eq!(f.len(), 2, "{f:?}");
    assert!(f[0].message.contains("as u32"));
    assert!(f[1].message.contains("as usize"));
}

#[test]
fn r4_polices_the_query_crate_too() {
    let f = run_fixture(
        RuleId::Cast,
        "crates/query/src/exec.rs",
        include_str!("fixtures/r4_bad.rs"),
    );
    assert_eq!(f.len(), 2, "{f:?}");
    assert!(f[0].message.contains("as u32"));
    assert!(f[1].message.contains("as usize"));
}

#[test]
fn r4_only_polices_the_scoped_crates() {
    let f = run_fixture(
        RuleId::Cast,
        "crates/rtree/src/cells.rs",
        include_str!("fixtures/r4_bad.rs"),
    );
    assert_eq!(f, Vec::new(), "R4's scope is histogram + query sources");
}

// ------------------------------------------------------------------
// R5 — crate hygiene
// ------------------------------------------------------------------

#[test]
fn r5_good_fixture_is_clean() {
    let f = run_fixture(
        RuleId::Hygiene,
        "crates/widget/src/lib.rs",
        include_str!("fixtures/r5_good.rs"),
    );
    assert_eq!(f, Vec::new(), "headed crate root passes");
}

#[test]
fn r5_bad_fixture_flags_headers_and_unknown_rule() {
    let f = run_fixture(
        RuleId::Hygiene,
        "crates/widget/src/lib.rs",
        include_str!("fixtures/r5_bad.rs"),
    );
    assert_eq!(f.len(), 3, "{f:?}");
    assert!(f[0].message.contains("forbid(unsafe_code)"));
    assert!(f[1].message.contains("missing_docs"));
    assert!(f[2].message.contains("unknown rule `made-up-rule`"));
}

// ------------------------------------------------------------------
// R6 — error taxonomy
// ------------------------------------------------------------------

#[test]
fn r6_good_fixture_is_clean() {
    let f = run_fixture(
        RuleId::ErrorTaxonomy,
        "crates/widget/src/error.rs",
        include_str!("fixtures/r6_good.rs"),
    );
    assert_eq!(f, Vec::new(), "non_exhaustive + Display + Error passes");
}

#[test]
fn r6_bad_fixture_flags_all_three_obligations() {
    let f = run_fixture(
        RuleId::ErrorTaxonomy,
        "crates/widget/src/error.rs",
        include_str!("fixtures/r6_bad.rs"),
    );
    assert_eq!(f.len(), 3, "{f:?}");
    assert!(f[0].message.contains("non_exhaustive"));
    assert!(f[1].message.contains("Display"));
    assert!(f[2].message.contains("std::error::Error"));
}

// ------------------------------------------------------------------
// R7 — persistence fingerprints
// ------------------------------------------------------------------

/// Renders the fingerprint record matching `text` mounted at the
/// canonical pseudo-path, exactly as `fingerprint --update` would.
fn record_for(text: &str) -> String {
    let ws = Workspace::from_sources(&[("crates/histogram/src/ph.rs", text)], None);
    fingerprint::render(
        fingerprint::envelope_version(&ws),
        fingerprint::wire_version(&ws),
        &fingerprint::fingerprint_entries(&ws),
    )
}

fn run_persistence(text: &str, record: Option<String>) -> Vec<Finding> {
    let ws = Workspace::from_sources(&[("crates/histogram/src/ph.rs", text)], record);
    let mut out = Vec::new();
    run_rule(RuleId::Persistence, &ws, &mut out);
    out
}

#[test]
fn r7_good_fixture_matches_its_record() {
    let good = include_str!("fixtures/r7_good.rs");
    let f = run_persistence(good, Some(record_for(good)));
    assert_eq!(f, Vec::new(), "unchanged schema fns must pass");
}

#[test]
fn r7_bad_fixture_drifts_without_a_version_bump() {
    // The record was taken from the good fixture; the bad fixture edits
    // both wire functions while keeping ENVELOPE_VERSION at 2.
    let record = record_for(include_str!("fixtures/r7_good.rs"));
    let f = run_persistence(include_str!("fixtures/r7_bad.rs"), Some(record));
    assert_eq!(f.len(), 2, "{f:?}");
    for finding in &f {
        assert!(
            finding
                .message
                .contains("changed without a format version bump"),
            "{finding:?}"
        );
        assert!(finding.message.contains("ENVELOPE_VERSION"), "{finding:?}");
    }
}

#[test]
fn r7_fingerprints_the_server_wire_codec_too() {
    // A schema fn in crates/server is fingerprinted, and drift there
    // names WIRE_VERSION (not ENVELOPE_VERSION) as the const to bump.
    let hist = include_str!("fixtures/r7_good.rs");
    let server_v1 = "/// Wire version.\n\
                     pub const WIRE_VERSION: u16 = 1;\n\
                     /// Encodes a frame.\n\
                     pub fn to_bytes(x: u32) -> Vec<u8> { x.to_le_bytes().to_vec() }\n";
    let mount = |srv: &str| {
        Workspace::from_sources(
            &[
                ("crates/histogram/src/ph.rs", hist),
                ("crates/server/src/wire.rs", srv),
            ],
            None,
        )
    };
    let ws = mount(server_v1);
    let record = fingerprint::render(
        fingerprint::envelope_version(&ws),
        fingerprint::wire_version(&ws),
        &fingerprint::fingerprint_entries(&ws),
    );
    assert!(record.contains("wire-version 1"), "{record}");
    assert!(
        record.contains("crates/server/src/wire.rs to_bytes#0"),
        "{record}"
    );

    // Unchanged tree against its own record: clean.
    let ws_same = Workspace::from_sources(
        &[
            ("crates/histogram/src/ph.rs", hist),
            ("crates/server/src/wire.rs", server_v1),
        ],
        Some(record.clone()),
    );
    let mut clean = Vec::new();
    run_rule(RuleId::Persistence, &ws_same, &mut clean);
    assert_eq!(clean, Vec::new(), "unchanged wire codec must pass");

    // Edit the codec body without bumping WIRE_VERSION: one finding
    // pointing at the server file and naming WIRE_VERSION.
    let server_drift = server_v1.replace("x.to_le_bytes()", "(x ^ 1).to_le_bytes()");
    let ws_drift = Workspace::from_sources(
        &[
            ("crates/histogram/src/ph.rs", hist),
            ("crates/server/src/wire.rs", &server_drift),
        ],
        Some(record),
    );
    let mut f = Vec::new();
    run_rule(RuleId::Persistence, &ws_drift, &mut f);
    assert_eq!(f.len(), 1, "{f:?}");
    assert_eq!(f[0].path, "crates/server/src/wire.rs");
    assert!(f[0].message.contains("WIRE_VERSION"), "{f:?}");
}

#[test]
fn r7_wire_version_mismatch_is_a_finding() {
    // Record says wire-version 1; the tree bumped to 2 without
    // refreshing the record.
    let hist = include_str!("fixtures/r7_good.rs");
    let srv = "/// Wire version.\npub const WIRE_VERSION: u16 = 2;\n";
    let record_v1 = {
        let ws = Workspace::from_sources(
            &[
                ("crates/histogram/src/ph.rs", hist),
                (
                    "crates/server/src/wire.rs",
                    "/// Wire version.\npub const WIRE_VERSION: u16 = 1;\n",
                ),
            ],
            None,
        );
        fingerprint::render(
            fingerprint::envelope_version(&ws),
            fingerprint::wire_version(&ws),
            &fingerprint::fingerprint_entries(&ws),
        )
    };
    let ws = Workspace::from_sources(
        &[
            ("crates/histogram/src/ph.rs", hist),
            ("crates/server/src/wire.rs", srv),
        ],
        Some(record_v1),
    );
    let mut f = Vec::new();
    run_rule(RuleId::Persistence, &ws, &mut f);
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].message.contains("WIRE_VERSION is 2"), "{f:?}");
}

#[test]
fn r7_missing_record_is_a_finding() {
    let f = run_persistence(include_str!("fixtures/r7_good.rs"), None);
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].message.contains("is missing"));
}

#[test]
fn r7_version_bump_is_reported_as_stale_record() {
    let record = record_for(include_str!("fixtures/r7_good.rs"));
    let bumped = include_str!("fixtures/r7_good.rs")
        .replace("ENVELOPE_VERSION: u32 = 2", "ENVELOPE_VERSION: u32 = 3");
    let f = run_persistence(&bumped, Some(record));
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].message.contains("recorded at version 2"), "{f:?}");
}

// ------------------------------------------------------------------
// R8 — doc coverage
// ------------------------------------------------------------------

#[test]
fn r8_good_fixture_is_clean() {
    let f = run_fixture(
        RuleId::Docs,
        "crates/core/src/api.rs",
        include_str!("fixtures/r8_good.rs"),
    );
    assert_eq!(f, Vec::new(), "documented public API passes");
}

#[test]
fn r8_bad_fixture_flags_undocumented_items() {
    let f = run_fixture(
        RuleId::Docs,
        "crates/core/src/api.rs",
        include_str!("fixtures/r8_bad.rs"),
    );
    assert_eq!(f.len(), 2, "{f:?}");
    assert_eq!(lines_of(&f), vec![3, 8], "pub fn + pub struct");
}

#[test]
fn r8_mod_with_inner_docs_needs_no_outer_doc() {
    // Module docs belong in the module file as `//!`; the declaration in
    // lib.rs must not need a duplicate outer doc comment.
    let f = check_sources(
        RuleId::Docs,
        &[
            ("crates/core/src/lib.rs", "//! Crate.\npub mod api;\n"),
            ("crates/core/src/api.rs", "//! Module docs live here.\n"),
        ],
    );
    assert_eq!(f, Vec::new(), "inner //! docs satisfy R8 for `pub mod`");
}

#[test]
fn r8_mod_without_any_docs_is_flagged() {
    let f = check_sources(
        RuleId::Docs,
        &[
            ("crates/core/src/lib.rs", "//! Crate.\npub mod api;\n"),
            ("crates/core/src/api.rs", "fn helper() {}\n"),
        ],
    );
    assert_eq!(f.len(), 1, "{f:?}");
    assert!(f[0].message.contains("`mod`"), "{f:?}");
}

#[test]
fn r8_only_polices_api_crates() {
    let f = run_fixture(
        RuleId::Docs,
        "crates/rtree/src/api.rs",
        include_str!("fixtures/r8_bad.rs"),
    );
    assert_eq!(f, Vec::new(), "R8's scope is core/histogram/query");
}

// ------------------------------------------------------------------
// R9 — lock discipline
// ------------------------------------------------------------------

#[test]
fn r9_bad_fixture_flags_raw_lock_construction() {
    let src = "pub fn build() {\n\
               \x20   let m = std::sync::Mutex::new(0);\n\
               \x20   let r = RwLock::new(Vec::new());\n\
               }\n";
    let f = run_fixture(RuleId::LockDiscipline, "crates/server/src/state.rs", src);
    assert_eq!(lines_of(&f), vec![2, 3], "{f:?}");
    assert!(f[0].message.contains("LockRank"), "{f:?}");
}

#[test]
fn r9_ranked_wrappers_and_tests_are_clean() {
    let src = "pub fn build() {\n\
               \x20   let m = OrderedMutex::new(LockRank::Catalog, \"x\", 0);\n\
               }\n\
               #[cfg(test)]\n\
               mod tests {\n\
               \x20   fn t() { let _m = std::sync::Mutex::new(0); }\n\
               }\n";
    let f = run_fixture(RuleId::LockDiscipline, "crates/server/src/state.rs", src);
    assert_eq!(f, Vec::new(), "OrderedMutex::new must not token-match");
}

#[test]
fn r9_exempts_the_wrapper_layer_and_honors_suppressions() {
    let wrapper = "pub fn inner() { let m = std::sync::Mutex::new(0); }\n";
    let f = run_fixture(RuleId::LockDiscipline, "crates/core/src/sync.rs", wrapper);
    assert_eq!(f, Vec::new(), "sj_core::sync itself wraps the std locks");
    let sup = "pub fn harness() {\n\
               \x20   // sj-lint: allow(lock-discipline, single-lock fixture)\n\
               \x20   let m = Mutex::new(0);\n\
               }\n";
    let f = run_fixture(RuleId::LockDiscipline, "crates/lint/src/harness.rs", sup);
    assert_eq!(f, Vec::new(), "reasoned suppression is honored");
}

// ------------------------------------------------------------------
// R10 — blocking I/O under a held lock guard
// ------------------------------------------------------------------

#[test]
fn r10_bad_fixture_flags_fsync_under_guard() {
    let src = "pub fn persist(&self) {\n\
               \x20   let guard = self.catalog.write();\n\
               \x20   let f = File::create(path);\n\
               \x20   f.sync_all();\n\
               }\n";
    let f = run_fixture(RuleId::IoUnderLock, "crates/query/src/store.rs", src);
    assert_eq!(lines_of(&f), vec![3, 4], "{f:?}");
    assert!(f[0].message.contains("lock-guard region"), "{f:?}");
}

#[test]
fn r10_region_ends_with_the_enclosing_block() {
    let src = "pub fn ok(&self) {\n\
               \x20   {\n\
               \x20       let guard = self.catalog.read();\n\
               \x20       let n = guard.len();\n\
               \x20   }\n\
               \x20   let f = File::create(path);\n\
               \x20   f.sync_all();\n\
               }\n";
    let f = run_fixture(RuleId::IoUnderLock, "crates/query/src/store.rs", src);
    assert_eq!(f, Vec::new(), "I/O after the guard's block is fine");
}

#[test]
fn r10_temporary_guards_are_not_regions() {
    // The guard of `queue.lock().next()` drops at the semicolon; only a
    // retained `let g = x.lock();` binding opens a region.
    let src = "pub fn pump(&self) {\n\
               \x20   let next = self.queue.lock().next();\n\
               \x20   let f = File::create(path);\n\
               }\n";
    let f = run_fixture(RuleId::IoUnderLock, "crates/core/src/parallel.rs", src);
    assert_eq!(f, Vec::new(), "temporary guards must not open regions");
}

#[test]
fn r10_suppression_documents_an_early_release() {
    let src = "pub fn tricky(&self) {\n\
               \x20   let guard = self.catalog.write();\n\
               \x20   drop(guard);\n\
               \x20   // sj-lint: allow(io-under-lock, guard dropped on the line above)\n\
               \x20   let f = File::create(path);\n\
               }\n";
    let f = run_fixture(RuleId::IoUnderLock, "crates/query/src/store.rs", src);
    assert_eq!(f, Vec::new(), "drop(guard) sites document themselves");
}

// ------------------------------------------------------------------
// R11 — atomic ordering discipline
// ------------------------------------------------------------------

#[test]
fn r11_bad_fixture_flags_weak_orderings() {
    let src = "pub fn bump(c: &AtomicU64, f: &AtomicBool) {\n\
               \x20   c.fetch_add(1, Ordering::Relaxed);\n\
               \x20   f.store(true, Ordering::Release);\n\
               \x20   c.load(Ordering::SeqCst);\n\
               }\n";
    let f = run_fixture(RuleId::AtomicOrdering, "crates/server/src/server.rs", src);
    assert_eq!(lines_of(&f), vec![2, 3], "SeqCst is always clean: {f:?}");
}

#[test]
fn r11_cmp_ordering_and_suppressions_are_clean() {
    let src = "pub fn sort_key(a: u64, b: u64) -> std::cmp::Ordering {\n\
               \x20   if a < b { std::cmp::Ordering::Less } else { std::cmp::Ordering::Greater }\n\
               }\n\
               pub fn bump(c: &AtomicU64) {\n\
               \x20   // sj-lint: allow(atomic-ordering, monotonic counter needs no cross-variable ordering)\n\
               \x20   c.fetch_add(1, Ordering::Relaxed);\n\
               }\n";
    let f = run_fixture(RuleId::AtomicOrdering, "crates/server/src/server.rs", src);
    assert_eq!(f, Vec::new(), "{f:?}");
}

// ------------------------------------------------------------------
// The landed tree itself must be clean
// ------------------------------------------------------------------

#[test]
fn real_workspace_is_lint_clean() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let ws = Workspace::load(&root).expect("workspace scans");
    let findings = sj_lint::run_check(&ws, &Selection::default());
    assert_eq!(
        findings,
        Vec::new(),
        "the checked-in tree must satisfy every sj-lint rule"
    );
}
