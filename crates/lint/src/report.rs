//! Human and JSON rendering of lint findings.

use crate::rules::{Finding, RuleId, Severity};

/// Output format selected with `--format`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Format {
    /// One `path:line: [rule] message` line per finding.
    #[default]
    Human,
    /// A single JSON object with a `findings` array and counts.
    Json,
}

/// Renders findings in the selected format, ending with a summary.
#[must_use]
pub fn render(findings: &[Finding], format: Format) -> String {
    match format {
        Format::Human => render_human(findings),
        Format::Json => render_json(findings),
    }
}

fn render_human(findings: &[Finding]) -> String {
    let mut out = String::new();
    for f in findings {
        let sev = match f.severity {
            Severity::Deny => "error",
            Severity::Warn => "warning",
        };
        out.push_str(&format!(
            "{}:{}: {sev}[{}/{}] {}\n",
            f.path,
            f.line,
            f.rule.code(),
            f.rule.slug(),
            f.message
        ));
    }
    let denied = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    let warned = findings.len() - denied;
    if findings.is_empty() {
        out.push_str("sj-lint: clean (0 findings)\n");
    } else {
        out.push_str(&format!(
            "sj-lint: {denied} error(s), {warned} warning(s)\n"
        ));
    }
    out
}

/// Minimal JSON string escaping (the checker is dependency-free).
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\n  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let sev = match f.severity {
            Severity::Deny => "deny",
            Severity::Warn => "warn",
        };
        out.push_str(&format!(
            "    {{\"rule\": \"{}\", \"slug\": \"{}\", \"severity\": \"{sev}\", \
             \"path\": \"{}\", \"line\": {}, \"message\": \"{}\"}}{}\n",
            f.rule.code(),
            f.rule.slug(),
            escape(&f.path),
            f.line,
            escape(&f.message),
            if i + 1 < findings.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    let mut counts = String::new();
    let mut first = true;
    for rule in RuleId::ALL {
        let n = findings.iter().filter(|f| f.rule == rule).count();
        if n > 0 {
            if !first {
                counts.push_str(", ");
            }
            counts.push_str(&format!("\"{}\": {n}", rule.code()));
            first = false;
        }
    }
    let denied = findings
        .iter()
        .filter(|f| f.severity == Severity::Deny)
        .count();
    out.push_str(&format!("  \"counts\": {{{counts}}},\n"));
    out.push_str(&format!("  \"errors\": {denied},\n"));
    out.push_str(&format!("  \"total\": {}\n}}\n", findings.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<Finding> {
        vec![Finding {
            rule: RuleId::Cast,
            path: "crates/histogram/src/grid.rs".to_string(),
            line: 86,
            message: "truncating `as usize` cast with \"quotes\"".to_string(),
            severity: Severity::Deny,
        }]
    }

    #[test]
    fn human_output_names_rule_and_location() {
        let text = render(&sample(), Format::Human);
        assert!(text.contains("crates/histogram/src/grid.rs:86"));
        assert!(text.contains("[r4/cast]"));
        assert!(text.contains("1 error(s)"));
    }

    #[test]
    fn json_output_is_escaped_and_counted() {
        let text = render(&sample(), Format::Json);
        assert!(text.contains("\\\"quotes\\\""));
        assert!(text.contains("\"r4\": 1"));
        assert!(text.contains("\"errors\": 1"));
    }

    #[test]
    fn clean_run_summary() {
        let text = render(&[], Format::Human);
        assert!(text.contains("clean (0 findings)"));
    }
}
