//! Lexical scanner: turns Rust source text into per-line records with
//! comments and literals blanked, test/fn/impl region attribution, and
//! parsed `// sj-lint: allow(rule, reason)` suppressions.
//!
//! The scanner is deliberately token/line-level — no full parser, no
//! `syn` — so the checker stays dependency-free and robust against
//! syntax the registry crates would choke on. The cost is approximate
//! region tracking: attribution relies on brace depth and on the
//! workspace being `rustfmt`-formatted (one item header per line),
//! which CI already enforces.

/// A suppression parsed from a `// sj-lint: allow(rule, reason)` comment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// The rule name inside `allow(...)`, e.g. `cast` or `r4`.
    pub rule: String,
    /// Whether a non-empty reason followed the rule name.
    pub has_reason: bool,
}

/// One line of a scanned source file.
#[derive(Debug, Clone)]
pub struct Line {
    /// The original line text.
    pub raw: String,
    /// Line text with comments *and* string/char literal contents
    /// replaced by spaces; token searches run against this.
    pub code: String,
    /// Line text with comments blanked but string literals kept —
    /// used for schema fingerprinting, where magic bytes matter.
    pub nocomment: String,
    /// Comment text appearing on this line (suppression parsing).
    pub comment: String,
    /// The line carries a doc comment (`///`, `//!` or `#[doc`).
    pub is_doc: bool,
    /// The line lies inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: bool,
    /// Innermost enclosing function name, if any.
    pub fn_name: Option<String>,
    /// Innermost enclosing `impl` header text (up to its `{`), if any.
    pub impl_header: Option<String>,
    /// Suppressions written on this line.
    pub suppress: Vec<Suppression>,
    /// Suppressions in effect for this line: its own plus those carried
    /// from immediately preceding comment-only lines.
    pub effective_suppress: Vec<Suppression>,
}

/// A scanned source file.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators, e.g.
    /// `crates/histogram/src/grid.rs`.
    pub rel_path: String,
    /// Scanned lines, in file order.
    pub lines: Vec<Line>,
}

impl SourceFile {
    /// Scans `source` into per-line records.
    #[must_use]
    pub fn scan(rel_path: &str, source: &str) -> SourceFile {
        let lexed = lex(source);
        let lines = attribute_regions(lexed);
        SourceFile {
            rel_path: rel_path.to_string(),
            lines,
        }
    }

    /// `true` when the file name matches `name` (e.g. `lib.rs`).
    #[must_use]
    pub fn file_name_is(&self, name: &str) -> bool {
        self.rel_path.rsplit('/').next().is_some_and(|f| f == name)
    }
}

/// Character class for identifier continuation.
fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Finds `tok` in `code` as a whole token (not embedded in a larger
/// identifier). Multi-segment tokens like `Instant::now` are matched as
/// written. Returns the byte offset of the first match.
#[must_use]
pub fn find_token(code: &str, tok: &str) -> Option<usize> {
    if tok.is_empty() {
        return None;
    }
    let mut start = 0;
    while let Some(pos) = code.get(start..).and_then(|s| s.find(tok)) {
        let i = start + pos;
        let before_ok = code
            .get(..i)
            .and_then(|s| s.chars().next_back())
            .is_none_or(|c| !is_ident(c));
        let end = i + tok.len();
        let after_ok = code
            .get(end..)
            .and_then(|s| s.chars().next())
            .is_none_or(|c| !is_ident(c));
        if before_ok && after_ok {
            return Some(i);
        }
        start = end;
    }
    None
}

/// `true` when `code` contains `tok` as a whole token.
#[must_use]
pub fn has_token(code: &str, tok: &str) -> bool {
    find_token(code, tok).is_some()
}

/// Lexer state for the comment/string-blanking pass.
enum LexState {
    Normal,
    LineComment,
    BlockComment(u32),
    Str { raw_hashes: Option<u32> },
    Char,
}

struct LexedLine {
    raw: String,
    code: String,
    nocomment: String,
    comment: String,
    is_doc: bool,
}

/// Splits `source` into lines, blanking comment and literal contents.
fn lex(source: &str) -> Vec<LexedLine> {
    let mut out = Vec::new();
    let mut raw = String::new();
    let mut code = String::new();
    let mut nocomment = String::new();
    let mut comment = String::new();
    let mut state = LexState::Normal;
    let mut chars = source.chars().peekable();

    while let Some(c) = chars.next() {
        if c == '\n' {
            // Line comments end at the newline; every other state
            // carries across (multi-line strings / block comments).
            if matches!(state, LexState::LineComment) {
                state = LexState::Normal;
            }
            push_line(&mut out, &mut raw, &mut code, &mut nocomment, &mut comment);
            continue;
        }
        raw.push(c);
        match state {
            LexState::Normal => match c {
                '/' if chars.peek() == Some(&'/') => {
                    raw.push('/');
                    chars.next();
                    comment.push_str("//");
                    // Capture the rest of the comment text for
                    // suppression parsing and doc detection.
                    code.push_str("  ");
                    nocomment.push_str("  ");
                    state = LexState::LineComment;
                }
                '/' if chars.peek() == Some(&'*') => {
                    raw.push('*');
                    chars.next();
                    code.push_str("  ");
                    nocomment.push_str("  ");
                    state = LexState::BlockComment(1);
                }
                '"' => {
                    code.push(' ');
                    nocomment.push('"');
                    state = LexState::Str { raw_hashes: None };
                }
                'r' | 'b' => {
                    // Possible raw / byte string start: r", r#", br", b".
                    // Any opener chars beyond `c` are consumed into
                    // `raw`; sync_prefix pads the blanked buffers.
                    if let Some(hashes) = raw_string_start(c, &mut chars, &mut raw) {
                        code.push(' ');
                        nocomment.push(c);
                        sync_prefix(&raw, &mut code, &mut nocomment);
                        state = LexState::Str {
                            raw_hashes: Some(hashes),
                        };
                    } else {
                        code.push(c);
                        nocomment.push(c);
                        sync_prefix(&raw, &mut code, &mut nocomment);
                    }
                }
                '\'' => {
                    // Char literal vs lifetime: a char literal closes
                    // within a few chars; a lifetime is `'ident` with no
                    // closing quote. Peek to decide.
                    if is_char_literal_start(&mut chars) {
                        code.push(' ');
                        nocomment.push('\'');
                        state = LexState::Char;
                    } else {
                        code.push('\'');
                        nocomment.push('\'');
                    }
                }
                _ => {
                    code.push(c);
                    nocomment.push(c);
                }
            },
            LexState::LineComment => {
                comment.push(c);
                code.push(' ');
                nocomment.push(' ');
            }
            LexState::BlockComment(depth) => {
                code.push(' ');
                nocomment.push(' ');
                if c == '/' && chars.peek() == Some(&'*') {
                    raw.push('*');
                    chars.next();
                    code.push(' ');
                    nocomment.push(' ');
                    state = LexState::BlockComment(depth + 1);
                } else if c == '*' && chars.peek() == Some(&'/') {
                    raw.push('/');
                    chars.next();
                    code.push(' ');
                    nocomment.push(' ');
                    state = if depth > 1 {
                        LexState::BlockComment(depth - 1)
                    } else {
                        LexState::Normal
                    };
                }
            }
            LexState::Str { raw_hashes: None } => {
                code.push(' ');
                nocomment.push(c);
                if c == '\\' {
                    if let Some(&esc) = chars.peek() {
                        raw.push(esc);
                        chars.next();
                        code.push(' ');
                        nocomment.push(esc);
                    }
                } else if c == '"' {
                    state = LexState::Normal;
                }
            }
            LexState::Str {
                raw_hashes: Some(h),
            } => {
                code.push(' ');
                nocomment.push(c);
                if c == '"' && closes_raw_string(&mut chars, h, &mut raw, &mut code, &mut nocomment)
                {
                    state = LexState::Normal;
                }
            }
            LexState::Char => {
                code.push(' ');
                nocomment.push(c);
                if c == '\\' {
                    if let Some(&esc) = chars.peek() {
                        raw.push(esc);
                        chars.next();
                        code.push(' ');
                        nocomment.push(esc);
                    }
                } else if c == '\'' {
                    state = LexState::Normal;
                }
            }
        }
    }
    if !raw.is_empty() || !out.is_empty() {
        push_line(&mut out, &mut raw, &mut code, &mut nocomment, &mut comment);
    }
    out
}

/// Pushes the accumulated line buffers as one [`LexedLine`].
fn push_line(
    out: &mut Vec<LexedLine>,
    raw: &mut String,
    code: &mut String,
    nocomment: &mut String,
    comment: &mut String,
) {
    let trimmed = raw.trim_start();
    let is_doc = trimmed.starts_with("///")
        || trimmed.starts_with("//!")
        || trimmed.starts_with("/**")
        || trimmed.starts_with("/*!")
        || code.contains("#[doc")
        || code.contains("#![doc");
    out.push(LexedLine {
        raw: std::mem::take(raw),
        code: std::mem::take(code),
        nocomment: std::mem::take(nocomment),
        comment: std::mem::take(comment),
        is_doc,
    });
}

/// After seeing `r` or `b` in normal state, consumes a raw/byte string
/// opener if one follows and returns `Some(hash_count)`. Plain `b"` is
/// treated as hash count 0 with ordinary escape handling skipped (byte
/// strings use the same escapes; close on unescaped quote works because
/// we scan escapes in the raw-hash path only when hashes == 0 via the
/// non-raw branch — to keep this simple, `b"` is handled as a raw
/// string with zero hashes, which is correct for workspace sources that
/// never embed `\"` in byte strings; `br#` etc. carry their hashes).
fn raw_string_start(
    first: char,
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    raw: &mut String,
) -> Option<u32> {
    // Lookahead without consuming more than the opener itself.
    let mut prefix = String::new();
    if first == 'b' {
        if chars.peek() == Some(&'r') {
            prefix.push('r');
        } else if chars.peek() == Some(&'"') {
            // b"..."
            raw.push('"');
            chars.next();
            return Some(0);
        } else {
            return None;
        }
    }
    // At this point we are at `r` (either first == 'r', or prefix "r"
    // peeked after 'b').
    let mut hashes = 0u32;
    let mut consumed: Vec<char> = Vec::new();
    if !prefix.is_empty() {
        chars.next();
        consumed.push('r');
    }
    loop {
        match chars.peek() {
            Some(&'#') => {
                chars.next();
                consumed.push('#');
                hashes += 1;
            }
            Some(&'"') => {
                chars.next();
                consumed.push('"');
                for c in &consumed {
                    raw.push(*c);
                }
                return Some(hashes);
            }
            _ => {
                // Not a raw string (`r` was an identifier like `rects`);
                // nothing from the identifier was consumed except
                // possible `#` run, which cannot appear mid-identifier,
                // so only the peeked chars in `consumed` need restoring.
                for c in &consumed {
                    raw.push(*c);
                }
                return None;
            }
        }
    }
}

/// Pads `code`/`nocomment` with spaces until they match `raw`'s char
/// length (keeps the three per-line buffers aligned after multi-char
/// consumption such as raw-string openers).
fn sync_prefix(raw: &str, code: &mut String, nocomment: &mut String) {
    let raw_len = raw.chars().count();
    while code.chars().count() < raw_len {
        code.push(' ');
    }
    while nocomment.chars().count() < raw_len {
        nocomment.push(' ');
    }
}

/// Decides whether a `'` begins a char literal (vs a lifetime) by
/// peeking: `'\...` is always a literal; `'x'` (any single char then a
/// quote) is a literal; everything else is a lifetime.
fn is_char_literal_start(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> bool {
    let mut clone = chars.clone();
    match clone.next() {
        Some('\\') => true,
        Some(_) => matches!(clone.next(), Some('\'')),
        None => false,
    }
}

/// On a closing `"` inside a raw string, consumes and checks `hashes`
/// following `#` chars. Returns `true` when the string really closes.
fn closes_raw_string(
    chars: &mut std::iter::Peekable<std::str::Chars<'_>>,
    hashes: u32,
    raw: &mut String,
    code: &mut String,
    nocomment: &mut String,
) -> bool {
    let mut clone = chars.clone();
    for _ in 0..hashes {
        if clone.next() != Some('#') {
            return false;
        }
    }
    for _ in 0..hashes {
        chars.next();
        raw.push('#');
        code.push(' ');
        nocomment.push('#');
    }
    true
}

/// One entry on the brace-region stack.
struct Ctx {
    test: bool,
    fn_name: Option<String>,
    impl_header: Option<String>,
}

/// Second pass: walks the lexed lines tracking brace depth and
/// attributes each line with its enclosing test/fn/impl regions, then
/// resolves effective suppressions.
fn attribute_regions(lexed: Vec<LexedLine>) -> Vec<Line> {
    let mut stack: Vec<Ctx> = Vec::new();
    let mut pending_test = false;
    let mut pending_fn: Option<String> = None;
    let mut pending_impl: Option<String> = None;
    let mut impl_accum: Option<String> = None;
    let mut lines: Vec<Line> = Vec::with_capacity(lexed.len());

    for lx in lexed {
        let code = lx.code.clone();

        // Item headers announced on this line (consumed by its `{`).
        if code.contains("#[cfg(test)")
            || code.contains("#[cfg(all(test")
            || has_token(&code, "#[test]")
            || code.contains("#[test]")
        {
            pending_test = true;
        }
        if let Some(name) = fn_name_on_line(&code) {
            pending_fn = Some(name);
            impl_accum = None;
        } else if let Some(pos) = find_token(&code, "impl") {
            let rest = code.get(pos..).unwrap_or("");
            let header = rest.split('{').next().unwrap_or(rest).trim().to_string();
            impl_accum = Some(header);
        } else if let Some(acc) = impl_accum.as_mut() {
            // Multi-line impl header: accumulate until its `{`.
            let more = code.split('{').next().unwrap_or(&code).trim();
            if !more.is_empty() {
                acc.push(' ');
                acc.push_str(more);
            }
        }
        if impl_accum.is_some() && code.contains('{') {
            pending_impl = impl_accum.take();
        }

        // Region state the line starts in.
        let start_test = stack.iter().any(|c| c.test) || pending_test;
        let mut fn_name = stack.iter().rev().find_map(|c| c.fn_name.clone());
        let mut impl_header = stack.iter().rev().find_map(|c| c.impl_header.clone());

        // Brace processing: pendings are consumed by the first `{`.
        for ch in code.chars() {
            match ch {
                '{' => {
                    let ctx = Ctx {
                        test: pending_test || stack.iter().any(|c| c.test),
                        fn_name: pending_fn.take(),
                        impl_header: pending_impl.take(),
                    };
                    pending_test = false;
                    if ctx.fn_name.is_some() && fn_name.is_none() {
                        fn_name.clone_from(&ctx.fn_name);
                    }
                    if let Some(h) = &ctx.impl_header {
                        if impl_header.is_none() {
                            impl_header = Some(h.clone());
                        }
                    }
                    stack.push(ctx);
                }
                '}' => {
                    stack.pop();
                }
                ';' => {
                    // An item ended without a body: a trait method
                    // declaration or a `#[cfg(test)] use ...;` — drop
                    // pendings so they don't leak onto the next item.
                    if stack.iter().all(|c| !c.test) {
                        pending_test = false;
                    }
                    pending_fn = None;
                }
                _ => {}
            }
        }
        // A signature line before its `{` (multi-line signatures) keeps
        // its pending fn for the next lines; attribute it here too.
        if fn_name.is_none() {
            fn_name.clone_from(&pending_fn);
        }

        // Doc comments are documentation, not directives: `allow(...)`
        // mentioned in rustdoc prose must not act as a suppression.
        let suppress = if lx.is_doc {
            Vec::new()
        } else {
            parse_suppressions(&lx.comment)
        };
        lines.push(Line {
            raw: lx.raw,
            code,
            nocomment: lx.nocomment,
            comment: lx.comment,
            is_doc: lx.is_doc,
            in_test: start_test || stack.iter().any(|c| c.test),
            fn_name,
            impl_header,
            suppress,
            effective_suppress: Vec::new(),
        });
    }

    // Effective suppressions: own line, plus suppressions written on
    // immediately preceding comment-only lines.
    for i in 0..lines.len() {
        let mut eff = lines.get(i).map(|l| l.suppress.clone()).unwrap_or_default();
        let mut j = i;
        while j > 0 {
            j -= 1;
            let Some(prev) = lines.get(j) else { break };
            if prev.code.trim().is_empty() && !prev.comment.is_empty() {
                eff.extend(prev.suppress.iter().cloned());
            } else {
                break;
            }
        }
        if let Some(l) = lines.get_mut(i) {
            l.effective_suppress = eff;
        }
    }
    lines
}

/// Extracts the function name declared on this line, if any.
fn fn_name_on_line(code: &str) -> Option<String> {
    let pos = find_token(code, "fn")?;
    let rest = code.get(pos + 2..)?;
    let rest = rest.trim_start();
    let name: String = rest.chars().take_while(|&c| is_ident(c)).collect();
    if name.is_empty() {
        None
    } else {
        Some(name)
    }
}

/// Parses every `sj-lint: allow(rule, reason)` occurrence in a comment.
fn parse_suppressions(comment: &str) -> Vec<Suppression> {
    let mut out = Vec::new();
    let mut rest = comment;
    while let Some(pos) = rest.find("sj-lint:") {
        let after = rest.get(pos + "sj-lint:".len()..).unwrap_or("");
        let after = after.trim_start();
        if let Some(body) = after.strip_prefix("allow(") {
            if let Some(end) = body.find(')') {
                let inner = body.get(..end).unwrap_or("");
                let (rule, reason) = match inner.split_once(',') {
                    Some((r, why)) => (r.trim(), why.trim()),
                    None => (inner.trim(), ""),
                };
                // Only identifier-ish names count; placeholders like
                // `<rule>` in prose are ignored entirely.
                let ident_ish = !rule.is_empty()
                    && rule
                        .chars()
                        .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
                if ident_ish {
                    out.push(Suppression {
                        rule: rule.to_string(),
                        has_reason: !reason.is_empty(),
                    });
                }
                rest = body.get(end..).unwrap_or("");
                continue;
            }
        }
        rest = after;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let f = SourceFile::scan(
            "crates/x/src/lib.rs",
            "let s = \"panic! .unwrap()\"; // .expect( in comment\n",
        );
        let l = &f.lines[0];
        assert!(!l.code.contains("panic!"));
        assert!(!l.code.contains("unwrap"));
        assert!(!l.code.contains("expect"));
        assert!(l.comment.contains(".expect("));
        // But the raw text is preserved.
        assert!(l.raw.contains("panic!"));
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let f = SourceFile::scan(
            "crates/x/src/lib.rs",
            "fn f<'a>(x: &'a str) -> char { 'x' }\nlet c = '\\n';\n",
        );
        assert!(f.lines[0].code.contains("'a"), "lifetime kept");
        assert!(!f.lines[0].code.contains("'x'"), "char blanked");
        assert!(!f.lines[1].code.contains("n'"), "escaped char blanked");
    }

    #[test]
    fn raw_and_byte_strings() {
        let src = "let m = b\"SJH1\";\nlet r = r#\"as u32\"#;\n";
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        assert!(!f.lines[0].code.contains("SJH1"));
        assert!(
            f.lines[0].nocomment.contains("SJH1"),
            "fingerprint keeps bytes"
        );
        assert!(!f.lines[1].code.contains("as u32"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "/* outer /* inner */ still */ let x = 1;\n/* a\n.unwrap()\n*/ let y = 2;\n";
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        assert!(f.lines[0].code.contains("let x"));
        assert!(!f.lines[0].code.contains("outer"));
        assert!(!f.lines[2].code.contains("unwrap"));
        assert!(f.lines[3].code.contains("let y"));
    }

    #[test]
    fn test_region_attribution() {
        let src = "fn real() { body(); }\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn after() { tail(); }\n";
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        assert!(!f.lines[0].in_test);
        assert!(f.lines[3].in_test, "inside cfg(test) mod");
        assert!(!f.lines[5].in_test, "region closed");
    }

    #[test]
    fn fn_and_impl_attribution() {
        let src = "impl RowBanded for Foo {\n    fn build_rows() {\n        work();\n    }\n}\n";
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        assert_eq!(f.lines[2].fn_name.as_deref(), Some("build_rows"));
        assert!(f.lines[2]
            .impl_header
            .as_deref()
            .is_some_and(|h| h.contains("RowBanded")));
    }

    #[test]
    fn multi_line_signature_attribution() {
        let src = "fn from_bytes(\n    data: &[u8],\n) -> Result<(), ()> {\n    body();\n}\n";
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        assert_eq!(f.lines[1].fn_name.as_deref(), Some("from_bytes"));
        assert_eq!(f.lines[3].fn_name.as_deref(), Some("from_bytes"));
    }

    #[test]
    fn suppression_parsing_and_carry() {
        let src = "// sj-lint: allow(cast, bounded by MAX_LEVEL)\nlet x = y as u32;\nlet z = w as u32; // sj-lint: allow(cast)\n";
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        assert_eq!(f.lines[1].effective_suppress.len(), 1);
        assert!(f.lines[1].effective_suppress[0].has_reason);
        assert_eq!(f.lines[2].effective_suppress.len(), 1);
        assert!(!f.lines[2].effective_suppress[0].has_reason);
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("x as u32", "u32"));
        assert!(!has_token("x as u322", "u32"));
        assert!(!has_token("au32", "u32"));
        assert!(has_token("Instant::now()", "Instant::now"));
        assert!(!has_token("MyInstant::nowish", "Instant::now"));
    }

    #[test]
    fn cfg_test_on_use_does_not_leak() {
        let src = "#[cfg(test)]\nuse helper::x;\nfn real() { body(); }\n";
        let f = SourceFile::scan("crates/x/src/lib.rs", src);
        assert!(!f.lines[2].in_test, "pending test cleared by `;`");
    }
}
