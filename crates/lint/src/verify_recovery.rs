//! Dynamic crash-recovery verification — the `verify-recovery`
//! subcommand.
//!
//! `verify-merge` proves shard merges equal serial builds and
//! `verify-delta` proves incremental updates equal full rebuilds; this
//! module proves the *durability* leg of the same contract: after a
//! process crash at **any** point of the statistics store's mutation
//! pipeline (WAL append → tier fold → compaction write/sync/rename →
//! WAL truncation), reopening the store recovers statistics
//! byte-identical to some crash-free prefix of the same workload:
//!
//! ```text
//! recover(crash(workload, op k, mode)) ∈ { state(step 0), …, state(step N) }
//! ```
//!
//! and at least every *acknowledged* step must survive — a state older
//! than the last step whose receipt the caller saw is lost durability,
//! a state matching no prefix at all is corruption. Divergences are
//! localized with [`first_divergence`] to a cell and statistic.
//!
//! The harness injects crashes through [`sj_query::StoreIo`]: a
//! [`FaultIo`] implementation buffers written-but-unsynced bytes in
//! memory (a simulated page cache) and discards them at the crash
//! point, so an unsynced write is provably *not* durable — renaming a
//! file whose data was never synced leaves a torn target on "disk",
//! which is exactly the power-loss window the store's sync-before-
//! rename discipline must close. Every trial is deterministic (rule
//! r1): fixed datasets, a fixed four-step workload, and an exhaustive
//! crash matrix of every mutating I/O operation × three crash modes.
//!
//! Fault injection (`--inject`) sabotages the *recovery input* instead
//! — dropping the WAL's final record or skipping WAL replay entirely —
//! to prove the verifier detects a recovery that silently loses
//! acknowledged work.

use crate::report::Format;
use sj_datagen::presets;
use sj_geo::Rect;
use sj_histogram::{first_divergence, Divergence, HistogramKind, SpatialHistogram};
use sj_query::{
    wal_record_ends, Catalog, CompactionPolicy, MutationId, QueryError, RealStoreIo, StoreIo,
};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// When, relative to the targeted I/O operation, the simulated process
/// death strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// The operation fails without any effect — crash on entry.
    Before,
    /// The operation applies a *partial* durable effect (half a WAL
    /// append, half a sync's pages) and then fails — a torn write.
    Torn,
    /// The operation completes, then the process dies — every later
    /// operation fails.
    After,
}

impl CrashMode {
    /// All modes, in report order.
    pub const ALL: [CrashMode; 3] = [CrashMode::Before, CrashMode::Torn, CrashMode::After];

    /// Stable name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            CrashMode::Before => "before",
            CrashMode::Torn => "torn",
            CrashMode::After => "after",
        }
    }
}

/// A seeded crash point: die at the `at_op`-th mutating store
/// operation, in the given mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPoint {
    /// Zero-based index into the run's mutating-operation sequence.
    pub at_op: usize,
    /// How the targeted operation dies.
    pub mode: CrashMode,
}

/// A deliberately broken *recovery*, injected via `--inject` so the
/// self-tests can prove the verifier catches lost durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryFault {
    /// Truncate the surviving WAL by its final complete record before
    /// recovery — the moral equivalent of a replay that stops early.
    DropWalTail,
    /// Recover as if no WAL existed at all — acknowledged batches that
    /// were only WAL-durable silently vanish.
    SkipWalReplay,
}

impl RecoveryFault {
    /// Stable name accepted by `--inject` and used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            RecoveryFault::DropWalTail => "drop-wal-tail",
            RecoveryFault::SkipWalReplay => "skip-wal-replay",
        }
    }

    /// Parses an `--inject` argument.
    #[must_use]
    pub fn parse(name: &str) -> Option<RecoveryFault> {
        match name {
            "drop-wal-tail" => Some(RecoveryFault::DropWalTail),
            "skip-wal-replay" => Some(RecoveryFault::SkipWalReplay),
            _ => None,
        }
    }
}

/// The matrix the verifier runs.
#[derive(Debug, Clone)]
pub struct RecoveryConfig {
    /// Scale factor on the scenario cardinality
    /// ([`presets::VERIFY_COUNT`] at `1.0`).
    pub scale: f64,
    /// Grid level of every build (`4^level` cells).
    pub level: u32,
    /// Optional sabotage applied to the recovery input of every trial.
    pub fault: Option<RecoveryFault>,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            scale: 0.2,
            level: 4,
            fault: None,
        }
    }
}

/// Result of one trial's recovery comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum RecoveryOutcome {
    /// Recovery produced a crash-free prefix state no older than the
    /// last acknowledged step.
    Identical,
    /// Recovery produced statistics matching no admissible prefix; the
    /// first differing cell/statistic against the last acknowledged
    /// state.
    Diverged(Divergence),
    /// Recovery matched no admissible prefix but no statistic
    /// divergence was located (e.g. only the dataset differs).
    StateMismatch(String),
    /// Reopening the store after the crash failed outright.
    RecoveryFailed(String),
    /// The crashed run itself failed *before* the injected crash fired
    /// — a harness or store bug, surfaced instead of miscounted.
    RunFailed(String),
}

/// One (kind, crash-op, crash-mode) trial.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryTrial {
    /// Scenario dataset name.
    pub scenario: String,
    /// Histogram family under test.
    pub kind: HistogramKind,
    /// Grid level of the build.
    pub level: u32,
    /// Index of the mutating store operation the crash targeted.
    pub at_op: usize,
    /// Crash mode at that operation.
    pub mode: CrashMode,
    /// Steps of the workload acknowledged before the crash.
    pub acknowledged: usize,
    /// The comparison result.
    pub outcome: RecoveryOutcome,
}

impl RecoveryTrial {
    /// `scenario/kind/L<level>/op<k>-<mode>` — the stable trial
    /// coordinate used in reports.
    #[must_use]
    pub fn coordinate(&self) -> String {
        format!(
            "{}/{}/L{}/op{}-{}",
            self.scenario,
            self.kind.name(),
            self.level,
            self.at_op,
            self.mode.name()
        )
    }
}

/// The full verification run: every trial in deterministic matrix order.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// All trials, kinds outermost, then crash op, then mode.
    pub trials: Vec<RecoveryTrial>,
    /// The sabotage injected into every trial's recovery, if any.
    pub fault: Option<RecoveryFault>,
}

impl RecoveryReport {
    /// Trials whose recovery did not reproduce an admissible state.
    pub fn divergent(&self) -> impl Iterator<Item = &RecoveryTrial> {
        self.trials
            .iter()
            .filter(|t| t.outcome != RecoveryOutcome::Identical)
    }

    /// Whether every trial recovered exactly.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergent().next().is_none()
    }

    /// Renders the report in the selected format, mirroring
    /// `verify-merge`/`verify-delta`.
    #[must_use]
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Human => self.render_human(),
            Format::Json => self.render_json(),
        }
    }

    fn render_human(&self) -> String {
        let mut out = String::new();
        if let Some(fault) = self.fault {
            out.push_str(&format!(
                "sj-lint verify-recovery: injecting fault `{}` into every trial's recovery\n",
                fault.name()
            ));
        }
        for t in self.divergent() {
            let detail = match &t.outcome {
                RecoveryOutcome::Diverged(d) => d.to_string(),
                RecoveryOutcome::StateMismatch(why) => why.clone(),
                RecoveryOutcome::RecoveryFailed(why) => format!("store reopen failed: {why}"),
                RecoveryOutcome::RunFailed(why) => {
                    format!("workload failed before the injected crash: {why}")
                }
                RecoveryOutcome::Identical => continue,
            };
            out.push_str(&format!(
                "{}: error[verify-recovery] recovered state differs from every \
                 crash-free prefix (acknowledged {} steps): {detail}\n",
                t.coordinate(),
                t.acknowledged
            ));
        }
        let divergent = self.divergent().count();
        if divergent == 0 {
            out.push_str(&format!(
                "sj-lint verify-recovery: clean ({} trials, every crash point \
                 recovered to an acknowledged crash-free state)\n",
                self.trials.len()
            ));
        } else {
            out.push_str(&format!(
                "sj-lint verify-recovery: {divergent} of {} trials diverged\n",
                self.trials.len()
            ));
        }
        out
    }

    fn render_json(&self) -> String {
        use crate::report::escape;
        let mut out = String::from("{\n  \"divergences\": [\n");
        let divergent: Vec<&RecoveryTrial> = self.divergent().collect();
        for (i, t) in divergent.iter().enumerate() {
            let detail = match &t.outcome {
                RecoveryOutcome::Diverged(d) => d.to_string(),
                RecoveryOutcome::StateMismatch(why) => why.clone(),
                RecoveryOutcome::RecoveryFailed(why) => format!("store reopen failed: {why}"),
                RecoveryOutcome::RunFailed(why) => {
                    format!("workload failed before the injected crash: {why}")
                }
                RecoveryOutcome::Identical => String::new(),
            };
            out.push_str(&format!(
                "    {{\"trial\": \"{}\", \"scenario\": \"{}\", \"kind\": \"{}\", \
                 \"level\": {}, \"op\": {}, \"mode\": \"{}\", \
                 \"acknowledged\": {}, \"detail\": \"{}\"}}{}\n",
                escape(&t.coordinate()),
                escape(&t.scenario),
                t.kind.name(),
                t.level,
                t.at_op,
                t.mode.name(),
                t.acknowledged,
                escape(&detail),
                if i + 1 < divergent.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"fault\": {},\n",
            self.fault
                .map_or("null".to_string(), |f| format!("\"{}\"", f.name()))
        ));
        out.push_str(&format!("  \"trials\": {},\n", self.trials.len()));
        out.push_str(&format!("  \"divergent\": {},\n", divergent.len()));
        out.push_str(&format!("  \"clean\": {}\n}}\n", self.is_clean()));
        out
    }
}

/// What the targeted operation should do once [`FaultIo`] decides its
/// fate.
enum OpFate {
    /// Run normally.
    Run,
    /// Apply a partial effect, then fail.
    Torn,
    /// Run normally; the process is dead afterwards.
    CrashAfter,
}

/// Crash-injecting [`StoreIo`]: durable bytes live on the real
/// filesystem, written-but-unsynced bytes live in an in-memory "page
/// cache" that the crash discards. Reads during the run see cache ∪
/// disk (the live process observes its own writes); recovery — a fresh
/// [`RealStoreIo`] over the same directory — sees only what was
/// actually made durable.
pub struct FaultIo {
    plan: Option<CrashPoint>,
    state: Mutex<FaultState>,
}

struct FaultState {
    /// Mutating operations executed so far (the crash-point index).
    ops: usize,
    /// Once set, every operation fails: the process is dead.
    crashed: bool,
    /// Written-but-unsynced file contents, discarded at the crash.
    cache: HashMap<PathBuf, Vec<u8>>,
}

impl FaultIo {
    /// A harness I/O layer that crashes at `plan` (or never, if `None` —
    /// used for the op-counting probe and the crash-free baseline).
    #[must_use]
    pub fn new(plan: Option<CrashPoint>) -> Self {
        FaultIo {
            plan,
            // sj-lint: allow(lock-discipline, the fault harness holds exactly one lock and runs only inside the verifier; ranking it would drag the harness into the hierarchy it exists to test)
            state: Mutex::new(FaultState {
                ops: 0,
                crashed: false,
                cache: HashMap::new(),
            }),
        }
    }

    /// Mutating operations seen so far.
    pub fn ops(&self) -> usize {
        self.lock().ops
    }

    /// Whether the planned crash fired.
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.state
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn dead() -> std::io::Error {
        std::io::Error::other("injected crash: process is dead")
    }

    /// Counts one mutating operation and decides its fate. Sets the
    /// crashed flag when the planned point is reached.
    fn begin_op(&self) -> std::io::Result<OpFate> {
        let mut s = self.lock();
        if s.crashed {
            return Err(Self::dead());
        }
        let here = s.ops;
        s.ops += 1;
        match self.plan {
            Some(p) if p.at_op == here => {
                s.crashed = true;
                // The crash drops the page cache: whatever was written
                // but never synced is gone, exactly like power loss.
                s.cache.clear();
                match p.mode {
                    CrashMode::Before => Err(Self::dead()),
                    CrashMode::Torn => Ok(OpFate::Torn),
                    CrashMode::After => Ok(OpFate::CrashAfter),
                }
            }
            _ => Ok(OpFate::Run),
        }
    }

    /// Fails non-mutating operations once the process is dead.
    fn alive(&self) -> std::io::Result<()> {
        if self.lock().crashed {
            Err(Self::dead())
        } else {
            Ok(())
        }
    }
}

impl StoreIo for FaultIo {
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        self.alive()?;
        std::fs::create_dir_all(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        if self.lock().crashed {
            return false;
        }
        self.lock().cache.contains_key(path) || path.exists()
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        self.alive()?;
        if let Some(bytes) = self.lock().cache.get(path) {
            return Ok(bytes.clone());
        }
        std::fs::read(path)
    }

    fn append_wal(&self, path: &Path, record: &[u8]) -> std::io::Result<()> {
        // Append+fsync is one durable operation by contract, so its
        // torn mode is the canonical torn WAL tail: half the record
        // reaches disk.
        let fate = self.begin_op()?;
        let durable = match fate {
            OpFate::Torn => &record[..record.len() / 2],
            _ => record,
        };
        RealStoreIo.append_wal(path, durable)?;
        match fate {
            OpFate::Torn => Err(Self::dead()),
            _ => Ok(()),
        }
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        // Writes land in the page cache only; durability comes from
        // sync_file. A torn unsynced write is indistinguishable from no
        // write after the crash, so torn degrades to before.
        match self.begin_op()? {
            OpFate::Torn => Err(Self::dead()),
            _ => {
                self.lock().cache.insert(path.to_path_buf(), bytes.to_vec());
                Ok(())
            }
        }
    }

    fn sync_file(&self, path: &Path) -> std::io::Result<()> {
        let fate = self.begin_op()?;
        let pending = self.lock().cache.remove(path);
        if let Some(bytes) = pending {
            let durable = match fate {
                // A failed fsync after partial writeback: half the
                // pages made it to disk.
                OpFate::Torn => &bytes[..bytes.len() / 2],
                _ => &bytes[..],
            };
            std::fs::write(path, durable)?;
        }
        match fate {
            OpFate::Torn => Err(Self::dead()),
            _ => Ok(()),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        let fate = self.begin_op()?;
        if matches!(fate, OpFate::Torn) {
            // A rename is atomic in the namespace: torn degrades to
            // crash-on-entry.
            return Err(Self::dead());
        }
        let unsynced = self.lock().cache.remove(from);
        match unsynced {
            None => std::fs::rename(from, to)?,
            Some(bytes) => {
                // Renaming a file whose data was never synced: the
                // namespace points at `to`, but only half the data
                // survives the eventual crash — THE torn-base hazard
                // the store's sync-before-rename discipline prevents.
                std::fs::write(to, &bytes[..bytes.len() / 2])?;
                if from.exists() {
                    std::fs::remove_file(from)?;
                }
                // The live process still sees the full content.
                self.lock().cache.insert(to.to_path_buf(), bytes);
            }
        }
        Ok(())
    }

    fn remove(&self, path: &Path) -> std::io::Result<()> {
        let _fate = self.begin_op()?;
        self.lock().cache.remove(path);
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, _dir: &Path) -> std::io::Result<()> {
        // Metadata durability is not a counted crash point: the store
        // treats this as best-effort and ignores failures, so a crash
        // seeded here would never fire.
        self.alive()
    }
}

/// Recovery-side [`StoreIo`] for [`RecoveryFault::SkipWalReplay`]:
/// pretends every `.wal` file vanished.
struct SkipWalIo;

impl StoreIo for SkipWalIo {
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        RealStoreIo.create_dir_all(dir)
    }
    fn exists(&self, path: &Path) -> bool {
        if path.extension().is_some_and(|e| e == "wal") {
            return false;
        }
        RealStoreIo.exists(path)
    }
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        RealStoreIo.read(path)
    }
    fn append_wal(&self, path: &Path, record: &[u8]) -> std::io::Result<()> {
        RealStoreIo.append_wal(path, record)
    }
    fn write(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        RealStoreIo.write(path, bytes)
    }
    fn sync_file(&self, path: &Path) -> std::io::Result<()> {
        RealStoreIo.sync_file(path)
    }
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        RealStoreIo.rename(from, to)
    }
    fn remove(&self, path: &Path) -> std::io::Result<()> {
        RealStoreIo.remove(path)
    }
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        RealStoreIo.sync_dir(dir)
    }
}

/// The table name every trial uses.
const TABLE: &str = "verify-uniform";

/// Compaction policy of every trial: two tiers force an automatic
/// compaction inside step 2, so the matrix covers the auto-compact path
/// as well as the explicit one.
const POLICY: CompactionPolicy = CompactionPolicy {
    max_tiers: 2,
    max_pending_bytes: 1 << 20,
};

/// Number of workload steps (each acknowledged by a receipt).
const STEPS: usize = 4;

/// Reflects `r` through the center of `extent` — the same deterministic
/// fresh-rectangle source `verify-delta` uses.
fn reflect(r: Rect, extent: Rect) -> Rect {
    let sx = extent.xlo + extent.xhi;
    let sy = extent.ylo + extent.yhi;
    Rect::new(sx - r.xhi, sy - r.yhi, sx - r.xlo, sy - r.ylo)
}

/// The insert/delete batch of workload step `step` (1-based), derived
/// from the base data by fixed index strides. Delete strides use
/// disjoint residue classes so no rectangle is deleted twice across
/// steps.
fn step_batch(step: usize, base: &[Rect], extent: Rect) -> (Vec<Rect>, Vec<Rect>) {
    let inserts: Vec<Rect> = base
        .iter()
        .skip(step * 5)
        .step_by(97)
        .take(8)
        .map(|r| reflect(*r, extent))
        .collect();
    let deletes: Vec<Rect> = base
        .iter()
        .enumerate()
        .filter(|(i, _)| i % 13 == step)
        .map(|(_, r)| *r)
        .take(6)
        .collect();
    (inserts, deletes)
}

/// A captured crash-free prefix state: the persisted statistics
/// envelope, the dataset, and a live histogram for divergence
/// localization.
struct Expected {
    bytes: Vec<u8>,
    rects: Vec<Rect>,
    hist: Box<dyn SpatialHistogram>,
}

/// A fresh catalog with the scenario registered.
fn fresh_catalog(
    dataset: &sj_datagen::Dataset,
    kind: HistogramKind,
    level: u32,
) -> Result<Catalog, QueryError> {
    let mut c = Catalog::with_kind(kind, level);
    c.register(dataset.clone())?;
    Ok(c)
}

/// Runs the four-step workload, stopping at the first error. Returns
/// the number of fully acknowledged steps and the terminating error.
fn run_steps(
    c: &mut Catalog,
    base: &[Rect],
    extent: Rect,
    mut capture: Option<&mut Vec<Expected>>,
) -> (usize, Option<QueryError>) {
    if let Some(out) = capture.as_deref_mut() {
        if let Err(e) = snapshot_state(c, out) {
            return (0, Some(e));
        }
    }
    for step in 1..=STEPS {
        let result = if step == STEPS {
            c.compact(TABLE).map(|_| ())
        } else {
            let (inserts, deletes) = step_batch(step, base, extent);
            let id = MutationId::new(0xC0FFEE, step as u64);
            c.apply_delta_idempotent(TABLE, &inserts, &deletes, id)
                .map(|_| ())
        };
        if let Err(e) = result {
            return (step - 1, Some(e));
        }
        if let Some(out) = capture.as_deref_mut() {
            if let Err(e) = snapshot_state(c, out) {
                return (step, Some(e));
            }
        }
    }
    (STEPS, None)
}

/// Appends the catalog's current (statistics, dataset) state.
fn snapshot_state(c: &Catalog, out: &mut Vec<Expected>) -> Result<(), QueryError> {
    let h = c.histogram(TABLE)?;
    out.push(Expected {
        bytes: h.persist().to_vec(),
        rects: c.dataset(TABLE)?.rects.clone(),
        hist: h.clone_box(),
    });
    Ok(())
}

/// Applies the configured recovery sabotage to the crashed directory.
fn sabotage(fault: RecoveryFault, dir: &Path) -> Result<(), String> {
    match fault {
        RecoveryFault::SkipWalReplay => Ok(()), // applied via SkipWalIo
        RecoveryFault::DropWalTail => {
            let wal = dir.join(format!("{TABLE}.wal"));
            if !wal.exists() {
                return Ok(());
            }
            let data = std::fs::read(&wal).map_err(|e| format!("reading WAL to sabotage: {e}"))?;
            let ends = wal_record_ends(&data).map_err(|e| e.to_string())?;
            // Drop the final complete record (ends are cumulative byte
            // offsets; the second-to-last is the truncation point).
            let keep = if ends.len() >= 2 {
                ends[ends.len() - 2]
            } else {
                0
            };
            std::fs::write(&wal, &data[..keep]).map_err(|e| format!("truncating WAL: {e}"))
        }
    }
}

/// A scratch directory unique to this process and trial.
fn trial_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sj-verify-recovery-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs one crash trial and judges its recovery.
fn run_trial(
    dataset: &sj_datagen::Dataset,
    kind: HistogramKind,
    level: u32,
    point: CrashPoint,
    expected: &[Expected],
    fault: Option<RecoveryFault>,
) -> Result<RecoveryTrial, String> {
    let extent = dataset.extent.rect();
    let dir = trial_dir(&format!(
        "{}-op{}-{}",
        kind.name(),
        point.at_op,
        point.mode.name()
    ));
    let io = Arc::new(FaultIo::new(Some(point)));
    let trial = |acknowledged, outcome| RecoveryTrial {
        scenario: dataset.name.clone(),
        kind,
        level,
        at_op: point.at_op,
        mode: point.mode,
        acknowledged,
        outcome,
    };

    // The crashed run.
    let mut c = fresh_catalog(dataset, kind, level).map_err(|e| e.to_string())?;
    let (acknowledged, run_error) =
        match c.open_stats_store_with_io(&dir, POLICY, Arc::clone(&io) as Arc<dyn StoreIo>) {
            Ok(_) => run_steps(&mut c, &dataset.rects, extent, None),
            Err(e) => (0, Some(e)),
        };
    drop(c);
    if run_error.is_some() && !io.crashed() {
        let why = run_error.map(|e| e.to_string()).unwrap_or_default();
        let _ = std::fs::remove_dir_all(&dir);
        return Ok(trial(acknowledged, RecoveryOutcome::RunFailed(why)));
    }

    // Optional sabotage, then recovery over the surviving bytes.
    if let Some(f) = fault {
        sabotage(f, &dir)?;
    }
    let recovery_io: Arc<dyn StoreIo> = match fault {
        Some(RecoveryFault::SkipWalReplay) => Arc::new(SkipWalIo),
        _ => Arc::new(RealStoreIo),
    };
    let mut rc = fresh_catalog(dataset, kind, level).map_err(|e| e.to_string())?;
    let outcome = match rc.open_stats_store_with_io(&dir, POLICY, recovery_io) {
        Err(e) => RecoveryOutcome::RecoveryFailed(e.to_string()),
        Ok(_) => judge(&rc, acknowledged, expected)?,
    };
    let _ = std::fs::remove_dir_all(&dir);
    Ok(trial(acknowledged, outcome))
}

/// Compares the recovered catalog against every admissible crash-free
/// prefix state (`acknowledged..=STEPS`).
fn judge(
    rc: &Catalog,
    acknowledged: usize,
    expected: &[Expected],
) -> Result<RecoveryOutcome, String> {
    let hist = rc.histogram(TABLE).map_err(|e| e.to_string())?;
    let bytes = hist.persist().to_vec();
    let rects = &rc.dataset(TABLE).map_err(|e| e.to_string())?.rects;
    let admissible = &expected[acknowledged..];
    if admissible
        .iter()
        .any(|e| e.bytes == bytes && &e.rects == rects)
    {
        return Ok(RecoveryOutcome::Identical);
    }
    // Localize against the last acknowledged state — the one the caller
    // is entitled to. Fall back over later prefixes so a pure
    // statistics drift still names a cell.
    for e in admissible {
        match first_divergence(e.hist.as_ref(), hist).map_err(|e| e.to_string())? {
            Some(d) => return Ok(RecoveryOutcome::Diverged(d)),
            None => continue,
        }
    }
    Ok(RecoveryOutcome::StateMismatch(format!(
        "statistics envelopes match an admissible prefix but the dataset does not \
         ({} rectangles recovered)",
        rects.len()
    )))
}

/// Runs the full crash matrix: for every histogram family, a probe run
/// counts the workload's mutating store operations and captures the
/// crash-free prefix states, then every (operation, mode) pair runs as
/// an independent crash trial.
///
/// # Errors
/// Returns a message when the harness itself fails (scratch-directory
/// I/O, an invalid grid level) — never for a divergence, which is
/// reported in the [`RecoveryReport`].
pub fn run_verify_recovery(config: &RecoveryConfig) -> Result<RecoveryReport, String> {
    let dataset = presets::verify_uniform(config.scale);
    let extent = dataset.extent.rect();
    let mut trials = Vec::new();
    for kind in HistogramKind::ALL {
        // Probe + baseline in one crash-free run through the very same
        // FaultIo semantics the trials use.
        let dir = trial_dir(&format!("{}-baseline", kind.name()));
        let io = Arc::new(FaultIo::new(None));
        let mut c = fresh_catalog(&dataset, kind, config.level).map_err(|e| e.to_string())?;
        c.open_stats_store_with_io(&dir, POLICY, Arc::clone(&io) as Arc<dyn StoreIo>)
            .map_err(|e| format!("baseline open failed: {e}"))?;
        let mut expected = Vec::with_capacity(STEPS + 1);
        let (acked, err) = run_steps(&mut c, &dataset.rects, extent, Some(&mut expected));
        drop(c);
        let _ = std::fs::remove_dir_all(&dir);
        if let Some(e) = err {
            return Err(format!("crash-free baseline failed at step {acked}: {e}"));
        }
        let total_ops = io.ops();
        for at_op in 0..total_ops {
            for mode in CrashMode::ALL {
                trials.push(run_trial(
                    &dataset,
                    kind,
                    config.level,
                    CrashPoint { at_op, mode },
                    &expected,
                    config.fault,
                )?);
            }
        }
    }
    Ok(RecoveryReport {
        trials,
        fault: config.fault,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(fault: Option<RecoveryFault>) -> RecoveryConfig {
        RecoveryConfig {
            scale: 0.05,
            level: 3,
            fault,
        }
    }

    #[test]
    fn every_crash_point_recovers_to_an_acknowledged_state() {
        let report = run_verify_recovery(&small(None)).unwrap();
        // 4 kinds × ops × 3 modes; the op count is an implementation
        // detail, but the matrix must be non-trivial and mode-complete.
        assert!(
            report.trials.len() >= 4 * 10 * 3,
            "suspiciously small matrix: {} trials",
            report.trials.len()
        );
        assert!(report.is_clean(), "{}", report.render(Format::Human));
        let human = report.render(Format::Human);
        assert!(human.contains("clean"), "{human}");
        let json = report.render(Format::Json);
        assert!(json.contains("\"clean\": true"), "{json}");
    }

    #[test]
    fn matrix_covers_acknowledged_loss_window() {
        // At least one trial must crash with work acknowledged but not
        // yet compacted — the window where WAL replay is load-bearing.
        let report = run_verify_recovery(&small(None)).unwrap();
        assert!(
            report
                .trials
                .iter()
                .any(|t| t.acknowledged > 0 && t.acknowledged < STEPS),
            "no trial exercised the partially-acknowledged window"
        );
    }

    #[test]
    fn report_is_deterministic() {
        let a = run_verify_recovery(&small(None)).unwrap();
        let b = run_verify_recovery(&small(None)).unwrap();
        assert_eq!(a.trials, b.trials, "rule r1: identical run-to-run");
    }

    #[test]
    fn sabotaged_recovery_is_caught() {
        for fault in [RecoveryFault::DropWalTail, RecoveryFault::SkipWalReplay] {
            let report = run_verify_recovery(&small(Some(fault))).unwrap();
            assert!(
                !report.is_clean(),
                "{}: sabotaged recovery went unnoticed",
                fault.name()
            );
        }
    }

    #[test]
    fn fault_names_round_trip() {
        for fault in [RecoveryFault::DropWalTail, RecoveryFault::SkipWalReplay] {
            assert_eq!(RecoveryFault::parse(fault.name()), Some(fault));
        }
        assert_eq!(RecoveryFault::parse("nope"), None);
    }
}
