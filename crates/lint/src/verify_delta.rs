//! Dynamic delta-equivalence verification — the `verify-delta`
//! subcommand.
//!
//! The incremental-statistics analogue of [`crate::verify`]: where
//! `verify-merge` proves shard-and-merge builds equal serial builds,
//! this module proves the signed-delta update path equals a full
//! rebuild, byte for byte:
//!
//! ```text
//! build(D ∪ Δ⁺ ∖ Δ⁻)  ≡  apply_delta(build(D), delta(Δ⁺, Δ⁻))
//! ```
//!
//! for every [`HistogramKind`], across seeded scenarios, grid levels,
//! shard counts (the delta itself is built through the sharded row-band
//! driver) and two batch styles — a mixed insert/delete batch and a
//! delete-heavy batch that exercises the subtraction paths hardest.
//! With the default configuration the matrix is exactly
//! 2 scenarios × 2 levels × 4 kinds × 4 shard counts × 2 styles =
//! **128 trials**. A mismatch is localized with [`first_divergence`]
//! to the first differing cell and statistic, never reported as a bare
//! "bytes differ".
//!
//! Everything is deterministic (lint rule r1): the scenarios are the
//! same fixed-seed datasets `verify-merge` uses, batch membership is a
//! fixed index stride, and the synthetic inserts are a pure reflection
//! of existing rectangles — two runs produce identical reports.
//!
//! Fault injection reuses [`Fault`]: the fault tampers the *delta's
//! insert batch only* (the full-rebuild baseline keeps the untampered
//! batch), so `--inject` proves the verifier catches a delta that
//! drifted from the data it claims to describe.

use crate::report::Format;
use crate::verify::{apply_fault, Fault, VerifyConfig};
use sj_datagen::presets;
use sj_geo::Rect;
use sj_histogram::{
    build_histogram, first_divergence, Divergence, Grid, HistogramDelta, HistogramError,
    HistogramKind,
};

/// Composition of the insert/delete batch a trial drives through
/// [`HistogramDelta`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchStyle {
    /// Deletes every 3rd base rectangle, inserts a reflection of every
    /// 4th — the steady-state mix of an updating table.
    Mixed,
    /// Deletes the entire first half of the base data and inserts only a
    /// handful — drives the per-cell counts down hard, the regime where
    /// an unchecked subtraction would underflow.
    DeleteHeavy,
}

impl BatchStyle {
    /// Both batch styles, in report order.
    pub const ALL: [BatchStyle; 2] = [BatchStyle::Mixed, BatchStyle::DeleteHeavy];

    /// Stable name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BatchStyle::Mixed => "mixed",
            BatchStyle::DeleteHeavy => "delete-heavy",
        }
    }
}

/// Result of one trial's byte comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOutcome {
    /// The updated histogram is byte-identical to the full rebuild.
    Identical,
    /// The envelopes differ; the first differing cell/statistic.
    Diverged(Divergence),
    /// The envelopes differ but no statistic divergence was located.
    BytesOnly,
    /// `apply_delta` rejected the batch (e.g. a range violation) — a
    /// failure for a well-formed trial, surfaced typed instead of lost.
    Rejected(String),
}

/// One (scenario, kind, level, style, shard-count) comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaTrial {
    /// Scenario dataset name (`verify-uniform`, `verify-skewed`).
    pub scenario: String,
    /// Histogram family under test.
    pub kind: HistogramKind,
    /// Grid level of the build.
    pub level: u32,
    /// Batch composition of the trial.
    pub style: BatchStyle,
    /// Worker threads the delta build was sharded across.
    pub shards: usize,
    /// Whether the updated bytes matched the full rebuild.
    pub outcome: DeltaOutcome,
}

impl DeltaTrial {
    /// `scenario/kind/L<level>/<style>x<shards>` — the stable trial
    /// coordinate used in reports.
    #[must_use]
    pub fn coordinate(&self) -> String {
        format!(
            "{}/{}/L{}/{}x{}",
            self.scenario,
            self.kind.name(),
            self.level,
            self.style.name(),
            self.shards
        )
    }
}

/// The full verification run: every trial in matrix order.
#[derive(Debug, Clone)]
pub struct DeltaReport {
    /// All trials, in deterministic matrix order.
    pub trials: Vec<DeltaTrial>,
    /// The fault injected into the delta builds, if any.
    pub fault: Option<Fault>,
}

impl DeltaReport {
    /// Trials whose updated bytes differed from the full rebuild.
    pub fn divergent(&self) -> impl Iterator<Item = &DeltaTrial> {
        self.trials
            .iter()
            .filter(|t| t.outcome != DeltaOutcome::Identical)
    }

    /// Whether every trial was byte-identical.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergent().next().is_none()
    }

    /// Renders the report in the selected format, mirroring
    /// `verify-merge`: one line per divergence plus a summary (human),
    /// or a single JSON object (json).
    #[must_use]
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Human => self.render_human(),
            Format::Json => self.render_json(),
        }
    }

    fn render_human(&self) -> String {
        let mut out = String::new();
        if let Some(fault) = self.fault {
            out.push_str(&format!(
                "sj-lint verify-delta: injecting fault `{}` into every delta's insert batch\n",
                fault.name()
            ));
        }
        for t in self.divergent() {
            let detail = match &t.outcome {
                DeltaOutcome::Diverged(d) => d.to_string(),
                DeltaOutcome::Rejected(why) => format!("apply_delta rejected the batch: {why}"),
                _ => "persisted bytes differ but no statistic divergence was located".to_string(),
            };
            out.push_str(&format!(
                "{}: error[verify-delta] incremental update differs from full rebuild: {detail}\n",
                t.coordinate()
            ));
        }
        let divergent = self.divergent().count();
        if divergent == 0 {
            out.push_str(&format!(
                "sj-lint verify-delta: clean ({} trials, every incremental update \
                 byte-identical to its full rebuild)\n",
                self.trials.len()
            ));
        } else {
            out.push_str(&format!(
                "sj-lint verify-delta: {divergent} of {} trials diverged\n",
                self.trials.len()
            ));
        }
        out
    }

    fn render_json(&self) -> String {
        use crate::report::escape;
        let mut out = String::from("{\n  \"divergences\": [\n");
        let divergent: Vec<&DeltaTrial> = self.divergent().collect();
        for (i, t) in divergent.iter().enumerate() {
            let (statistic, cell, left, right) = match &t.outcome {
                DeltaOutcome::Diverged(d) => (
                    format!("\"{}\"", escape(d.statistic)),
                    d.cell.map_or("null".to_string(), |c| {
                        format!(
                            "{{\"col\": {}, \"row\": {}, \"index\": {}}}",
                            c.col, c.row, c.index
                        )
                    }),
                    format!("\"{}\"", escape(&d.left)),
                    format!("\"{}\"", escape(&d.right)),
                ),
                DeltaOutcome::Rejected(why) => (
                    format!("\"rejected: {}\"", escape(why)),
                    "null".to_string(),
                    "null".to_string(),
                    "null".to_string(),
                ),
                _ => (
                    "null".to_string(),
                    "null".to_string(),
                    "null".to_string(),
                    "null".to_string(),
                ),
            };
            out.push_str(&format!(
                "    {{\"trial\": \"{}\", \"scenario\": \"{}\", \"kind\": \"{}\", \
                 \"level\": {}, \"style\": \"{}\", \"shards\": {}, \
                 \"statistic\": {statistic}, \"cell\": {cell}, \
                 \"left\": {left}, \"right\": {right}}}{}\n",
                escape(&t.coordinate()),
                escape(&t.scenario),
                t.kind.name(),
                t.level,
                t.style.name(),
                t.shards,
                if i + 1 < divergent.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"fault\": {},\n",
            self.fault
                .map_or("null".to_string(), |f| format!("\"{}\"", f.name()))
        ));
        out.push_str(&format!("  \"trials\": {},\n", self.trials.len()));
        out.push_str(&format!("  \"divergent\": {},\n", divergent.len()));
        out.push_str(&format!("  \"clean\": {}\n}}\n", self.is_clean()));
        out
    }
}

/// Reflects `r` through the center of `extent` — a deterministic source
/// of "fresh" insert rectangles that stay inside the extent and are
/// (for the verify scenarios) almost never bitwise-equal to a base
/// rectangle, so the full-rebuild baseline genuinely unions them in.
fn reflect(r: Rect, extent: Rect) -> Rect {
    let sx = extent.xlo + extent.xhi;
    let sy = extent.ylo + extent.yhi;
    Rect::new(sx - r.xhi, sy - r.yhi, sx - r.xlo, sy - r.ylo)
}

/// The insert and delete batches of one batch style, derived from the
/// base data by fixed index strides.
fn batches(style: BatchStyle, base: &[Rect], extent: Rect) -> (Vec<Rect>, Vec<Rect>) {
    match style {
        BatchStyle::Mixed => {
            let inserts: Vec<Rect> = base
                .iter()
                .step_by(4)
                .map(|r| reflect(*r, extent))
                .collect();
            let deletes: Vec<Rect> = base.iter().step_by(3).copied().collect();
            (inserts, deletes)
        }
        BatchStyle::DeleteHeavy => {
            let inserts: Vec<Rect> = base
                .iter()
                .step_by(16)
                .map(|r| reflect(*r, extent))
                .collect();
            let deletes: Vec<Rect> = base[..base.len() / 2].to_vec();
            (inserts, deletes)
        }
    }
}

/// The mutated dataset `D ∪ Δ⁺ ∖ Δ⁻` the full-rebuild baseline is built
/// over: each delete removes the first not-yet-removed exact match.
fn mutated(base: &[Rect], inserts: &[Rect], deletes: &[Rect]) -> Vec<Rect> {
    let mut live = vec![true; base.len()];
    for d in deletes {
        if let Some(i) = base.iter().enumerate().position(|(i, r)| live[i] && r == d) {
            live[i] = false;
        }
    }
    let mut out: Vec<Rect> = base
        .iter()
        .zip(&live)
        .filter_map(|(r, keep)| keep.then_some(*r))
        .collect();
    out.extend_from_slice(inserts);
    out
}

/// Runs the full scenario matrix: for every seeded scenario dataset,
/// grid level and histogram family, derives both batch styles, builds
/// the full-rebuild baseline once per style, and compares it
/// byte-for-byte against `apply_delta` on a base build, with the delta
/// built at every configured shard count.
///
/// # Errors
/// Returns [`HistogramError`] when a configured grid level is invalid
/// (the builds and comparisons themselves cannot fail).
pub fn run_verify_delta(config: &VerifyConfig) -> Result<DeltaReport, HistogramError> {
    let mut trials = Vec::new();
    for dataset in presets::verify_scenarios(config.scale) {
        let extent = dataset.extent.rect();
        for &level in &config.levels {
            let grid = Grid::new(level, dataset.extent)?;
            for kind in HistogramKind::ALL {
                let base = build_histogram(kind, grid, &dataset.rects);
                for style in BatchStyle::ALL {
                    let (inserts, deletes) = batches(style, &dataset.rects, extent);
                    // The baseline unions the REAL batch; the fault (if
                    // any) tampers only what the delta build sees.
                    let expected =
                        build_histogram(kind, grid, &mutated(&dataset.rects, &inserts, &deletes));
                    let expected_envelope = expected.persist();
                    let delta_inserts = config
                        .fault
                        .map_or_else(|| inserts.clone(), |f| apply_fault(f, &inserts));
                    for &shards in &config.shard_counts {
                        let delta = HistogramDelta::build_parallel(
                            kind,
                            grid,
                            &delta_inserts,
                            &deletes,
                            shards,
                        );
                        let mut updated = base.clone_box();
                        let outcome = match updated.apply_delta(&delta) {
                            Err(e) => DeltaOutcome::Rejected(e.to_string()),
                            Ok(()) if updated.persist() == expected_envelope => {
                                DeltaOutcome::Identical
                            }
                            Ok(()) => {
                                match first_divergence(expected.as_ref(), updated.as_ref())? {
                                    Some(d) => DeltaOutcome::Diverged(d),
                                    None => DeltaOutcome::BytesOnly,
                                }
                            }
                        };
                        trials.push(DeltaTrial {
                            scenario: dataset.name.clone(),
                            kind,
                            level,
                            style,
                            shards,
                            outcome,
                        });
                    }
                }
            }
        }
    }
    Ok(DeltaReport {
        trials,
        fault: config.fault,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small matrix for fast tests: one level, two shard counts.
    fn small(fault: Option<Fault>) -> VerifyConfig {
        VerifyConfig {
            scale: 0.1,
            levels: vec![4],
            shard_counts: vec![2, 5],
            fault,
        }
    }

    #[test]
    fn incremental_updates_are_rebuild_equivalent() {
        let report = run_verify_delta(&small(None)).unwrap();
        assert_eq!(report.trials.len(), 2 * 4 * 2 * 2, "full matrix ran");
        assert!(report.is_clean(), "{}", report.render(Format::Human));
        let human = report.render(Format::Human);
        assert!(human.contains("clean"), "{human}");
        let json = report.render(Format::Json);
        assert!(json.contains("\"clean\": true"), "{json}");
    }

    #[test]
    fn default_config_is_the_documented_128_trial_matrix() {
        // 2 scenarios × 2 levels × 4 kinds × 4 shard counts × 2 styles.
        let config = VerifyConfig::default();
        let expected = 2
            * config.levels.len()
            * HistogramKind::ALL.len()
            * config.shard_counts.len()
            * BatchStyle::ALL.len();
        assert_eq!(expected, 128);
    }

    #[test]
    fn report_is_deterministic() {
        let a = run_verify_delta(&small(None)).unwrap();
        let b = run_verify_delta(&small(None)).unwrap();
        assert_eq!(a.trials, b.trials, "rule r1: identical run-to-run");
    }

    #[test]
    fn injected_faults_are_caught_and_localized() {
        // Dropping the last insert: every family diverges, and the
        // integer families localize to the scalar cardinality.
        let report = run_verify_delta(&small(Some(Fault::DropLastRect))).unwrap();
        assert!(!report.is_clean(), "drop-last-rect went unnoticed");
        assert_eq!(
            report.divergent().count(),
            report.trials.len(),
            "every trial should notice a lost insert"
        );
        assert!(
            report.divergent().any(|t| matches!(
                &t.outcome,
                DeltaOutcome::Diverged(d) if d.statistic == "n"
            )),
            "no trial localized the lost insert to the cardinality"
        );

        // Nudging a coordinate: the mass-carrying families catch it at
        // cell granularity; integer-only families may legitimately not
        // see a sub-cell nudge.
        let report = run_verify_delta(&small(Some(Fault::NudgeFirstRect))).unwrap();
        let caught: Vec<&DeltaTrial> = report.divergent().collect();
        assert!(!caught.is_empty(), "nudge-first-rect went unnoticed");
        assert!(
            caught.iter().any(|t| matches!(
                &t.outcome,
                DeltaOutcome::Diverged(d) if d.cell.is_some()
            )),
            "no divergence was localized to a cell"
        );
    }
}
