//! `sj-lint` binary: `check`, `rules`, `fingerprint`, `verify-merge`,
//! `verify-delta`, `verify-recovery` and `verify-locks` subcommands.
//!
//! Exit codes: `0` clean, `1` deny-severity findings (or merge
//! divergences), `2` usage error, `3` I/O error.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

use sj_lint::report::{render, Format};
use sj_lint::rules::{RuleId, Severity};
use sj_lint::{find_workspace_root, fingerprint, run_check, Selection, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "\
sj-lint — workspace invariant checker

USAGE:
    sj-lint check [--root <dir>] [--format human|json] [--rule <r,..>]
                  [--deny <r,..|all>] [--warn <r,..|all>]
    sj-lint rules
    sj-lint fingerprint [--update] [--allow-same-version] [--root <dir>]
    sj-lint verify-merge [--format human|json] [--scale <f>]
                         [--levels <l,..>] [--shards <n,..>]
                         [--inject drop-last-rect|nudge-first-rect]
    sj-lint verify-delta [--format human|json] [--scale <f>]
                         [--levels <l,..>] [--shards <n,..>]
                         [--inject drop-last-rect|nudge-first-rect]
    sj-lint verify-recovery [--format human|json] [--scale <f>]
                            [--levels <l>]
                            [--inject drop-wal-tail|skip-wal-replay]
    sj-lint verify-locks [--format human|json] [--scale <f>]
                         [--inject invert-ranks|hold-across-fsync]

Rules are named r1..r11 or by slug (determinism, fixed-point, panic,
cast, hygiene, error-taxonomy, persistence, docs, lock-discipline,
io-under-lock, atomic-ordering). Suppress a single line with
`// sj-lint: allow(<rule>, <reason>)` — the reason is mandatory.

`verify-merge` is the dynamic companion to r2's static fixed-point
check: it builds every histogram family serially and sharded (row-band
and rect-range partitions, each shard count in --shards) on seeded
datasets and exits 1 unless every merged envelope is byte-identical to
its serial build, localizing divergences to a cell and statistic.
--inject deliberately breaks the merged input to prove the check bites.

`verify-delta` does the same for the incremental-statistics path: it
derives insert/delete batches (mixed and delete-heavy styles) from the
seeded scenarios and exits 1 unless apply_delta(build(D), delta) is
byte-identical to a full rebuild over the mutated data, for every
family, level and shard count. --inject tampers the delta's insert
batch to prove the check bites.

`verify-recovery` crash-tests the statistics store: it runs a fixed
WAL → tier → compaction workload under an injectable I/O layer,
simulates a process death at every mutating store operation (before,
torn and after), reopens the store over the surviving bytes, and exits
1 unless every recovery is byte-identical to a crash-free prefix no
older than the last acknowledged batch. --inject sabotages the
recovery input (truncating or hiding the WAL) to prove the check
bites.

`verify-locks` is the dynamic companion to r9/r10's static lock
discipline: it runs a fixed concurrent workload (stamped mutations,
estimates and a mid-workload compaction) against an in-process daemon
with the ranked-lock instrumentation observing, and exits 1 on any
rank inversion, observed lock-order cycle, or WAL/fsync I/O performed
while the catalog lock was held — localized to the lock pair (ranks
and acquisition sites) or the offending operation. --inject commits a
deliberate discipline break to prove the check bites. Debug builds
only: release compiles the instrumentation away.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

/// Parsed command line.
struct Cli {
    root: Option<PathBuf>,
    format: Format,
    rules: Vec<RuleId>,
    deny: Vec<String>,
    warn: Vec<String>,
    update: bool,
    allow_same_version: bool,
    verify: sj_lint::verify::VerifyConfig,
    /// Raw `--inject` argument; each verify-* command parses it against
    /// its own fault vocabulary.
    inject: Option<String>,
    /// Whether `--scale` / `--levels` were given explicitly — the
    /// recovery verifier has its own defaults.
    scale_explicit: bool,
    levels_explicit: bool,
}

/// Parses a comma-separated numeric list for `--levels` / `--shards`.
fn parse_num_list<T: std::str::FromStr>(flag: &str, value: &str) -> Result<Vec<T>, String> {
    value
        .split(',')
        .map(|part| {
            part.trim()
                .parse::<T>()
                .map_err(|_| format!("{flag}: `{part}` is not a valid number"))
        })
        .collect()
}

fn parse_rule_list(value: &str) -> Result<Vec<RuleId>, String> {
    if value == "all" {
        return Ok(RuleId::ALL.to_vec());
    }
    value
        .split(',')
        .map(|name| {
            RuleId::parse(name)
                .ok_or_else(|| format!("unknown rule `{name}` (see `sj-lint rules`)"))
        })
        .collect()
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return Ok(ExitCode::from(2));
    };
    let mut cli = Cli {
        root: None,
        format: Format::Human,
        rules: RuleId::ALL.to_vec(),
        deny: Vec::new(),
        warn: Vec::new(),
        update: false,
        allow_same_version: false,
        verify: sj_lint::verify::VerifyConfig::default(),
        inject: None,
        scale_explicit: false,
        levels_explicit: false,
    };
    let mut it = args.iter().skip(1);
    while let Some(arg) = it.next() {
        let mut value_of = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--root" => cli.root = Some(PathBuf::from(value_of("--root")?)),
            "--format" => {
                cli.format = match value_of("--format")?.as_str() {
                    "human" => Format::Human,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}`")),
                }
            }
            "--rule" => cli.rules = parse_rule_list(&value_of("--rule")?)?,
            "--deny" => cli.deny.push(value_of("--deny")?),
            "--warn" => cli.warn.push(value_of("--warn")?),
            "--update" => cli.update = true,
            "--allow-same-version" => cli.allow_same_version = true,
            "--scale" => {
                let value = value_of("--scale")?;
                cli.verify.scale = value
                    .parse::<f64>()
                    .ok()
                    .filter(|s| *s > 0.0 && s.is_finite())
                    .ok_or_else(|| format!("--scale: `{value}` is not a positive number"))?;
                cli.scale_explicit = true;
            }
            "--levels" => {
                cli.verify.levels = parse_num_list("--levels", &value_of("--levels")?)?;
                if cli.verify.levels.is_empty() {
                    return Err("--levels needs at least one level".to_string());
                }
                cli.levels_explicit = true;
            }
            "--shards" => {
                cli.verify.shard_counts = parse_num_list("--shards", &value_of("--shards")?)?;
                if cli.verify.shard_counts.contains(&0) {
                    return Err("--shards: shard counts must be positive".to_string());
                }
            }
            "--inject" => cli.inject = Some(value_of("--inject")?),
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }

    match command.as_str() {
        "rules" => {
            for rule in RuleId::ALL {
                println!("{}/{}: {}", rule.code(), rule.slug(), rule.summary());
            }
            Ok(ExitCode::SUCCESS)
        }
        "check" => cmd_check(&cli),
        "fingerprint" => cmd_fingerprint(&cli),
        "verify-merge" => cmd_verify(&cli),
        "verify-delta" => cmd_verify_delta(&cli),
        "verify-recovery" => cmd_verify_recovery(&cli),
        "verify-locks" => cmd_verify_locks(&cli),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}

/// Loads the workspace from `--root` or by ascending from the cwd.
fn load_workspace(cli: &Cli) -> Result<(PathBuf, Workspace), String> {
    let root = match &cli.root {
        Some(r) => r.clone(),
        None => {
            let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
            find_workspace_root(&cwd)
                .ok_or_else(|| "no workspace root found (pass --root)".to_string())?
        }
    };
    let ws =
        Workspace::load(&root).map_err(|e| format!("failed to scan {}: {e}", root.display()))?;
    Ok((root, ws))
}

fn cmd_check(cli: &Cli) -> Result<ExitCode, String> {
    let (_root, ws) = load_workspace(cli)?;
    let mut selection = Selection {
        enabled: cli.rules.clone(),
        ..Selection::default()
    };
    // --warn then --deny, so an explicit deny wins over a blanket warn.
    for spec in &cli.warn {
        for rule in parse_rule_list(spec)? {
            selection.set(rule, Severity::Warn);
        }
    }
    for spec in &cli.deny {
        for rule in parse_rule_list(spec)? {
            selection.set(rule, Severity::Deny);
        }
    }
    let findings = run_check(&ws, &selection);
    print!("{}", render(&findings, cli.format));
    let denied = findings.iter().any(|f| f.severity == Severity::Deny);
    Ok(if denied {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    })
}

/// Resolves `--inject` against the merge/delta fault vocabulary.
fn merge_config(cli: &Cli) -> Result<sj_lint::verify::VerifyConfig, String> {
    let mut config = cli.verify.clone();
    if let Some(name) = &cli.inject {
        config.fault = Some(sj_lint::verify::Fault::parse(name).ok_or_else(|| {
            format!("--inject: unknown fault `{name}` (drop-last-rect, nudge-first-rect)")
        })?);
    }
    Ok(config)
}

fn cmd_verify(cli: &Cli) -> Result<ExitCode, String> {
    let report = sj_lint::verify::run_verify(&merge_config(cli)?)
        .map_err(|e| format!("invalid verify-merge configuration: {e}"))?;
    print!("{}", report.render(cli.format));
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_verify_delta(cli: &Cli) -> Result<ExitCode, String> {
    let report = sj_lint::verify_delta::run_verify_delta(&merge_config(cli)?)
        .map_err(|e| format!("invalid verify-delta configuration: {e}"))?;
    print!("{}", report.render(cli.format));
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_verify_recovery(cli: &Cli) -> Result<ExitCode, String> {
    let mut config = sj_lint::verify_recovery::RecoveryConfig::default();
    if cli.scale_explicit {
        config.scale = cli.verify.scale;
    }
    if cli.levels_explicit {
        // The crash matrix is one build per trial — a single level.
        config.level = *cli
            .verify
            .levels
            .first()
            .ok_or_else(|| "--levels needs at least one level".to_string())?;
    }
    if let Some(name) = &cli.inject {
        config.fault = Some(
            sj_lint::verify_recovery::RecoveryFault::parse(name).ok_or_else(|| {
                format!(
                    "--inject: unknown recovery fault `{name}` (drop-wal-tail, skip-wal-replay)"
                )
            })?,
        );
    }
    let report = sj_lint::verify_recovery::run_verify_recovery(&config)?;
    print!("{}", report.render(cli.format));
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_verify_locks(cli: &Cli) -> Result<ExitCode, String> {
    let mut config = sj_lint::verify_locks::LocksConfig::default();
    if cli.scale_explicit {
        config.scale = cli.verify.scale;
    }
    if let Some(name) = &cli.inject {
        config.fault = Some(
            sj_lint::verify_locks::LockFault::parse(name).ok_or_else(|| {
                format!("--inject: unknown lock fault `{name}` (invert-ranks, hold-across-fsync)")
            })?,
        );
    }
    let report = sj_lint::verify_locks::run_verify_locks(&config)?;
    print!("{}", report.render(cli.format));
    Ok(if report.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    })
}

fn cmd_fingerprint(cli: &Cli) -> Result<ExitCode, String> {
    let (root, ws) = load_workspace(cli)?;
    let version = fingerprint::envelope_version(&ws);
    let wire = fingerprint::wire_version(&ws);
    let entries = fingerprint::fingerprint_entries(&ws);
    let rendered = fingerprint::render(version, wire, &entries);
    if !cli.update {
        print!("{rendered}");
        return Ok(ExitCode::SUCCESS);
    }
    // Guard the easy path: an --update that changes fingerprints while
    // both format versions stay the same is usually a forgotten bump.
    if let Some(old) = &ws.fingerprint {
        let (old_version, old_wire, old_entries) = fingerprint::parse(old);
        let changed = old_entries.len() != entries.len()
            || entries.iter().any(|e| {
                old_entries
                    .iter()
                    .find(|o| o.key == e.key)
                    .is_none_or(|o| o.crc != e.crc)
            });
        if changed && old_version == version && old_wire == wire && !cli.allow_same_version {
            return Err(format!(
                "persistence functions changed but ENVELOPE_VERSION is still {} and \
                 WIRE_VERSION is still {}: bump the owning version first, or pass \
                 --allow-same-version if the change is provably wire-compatible",
                version.map_or_else(|| "unknown".to_string(), |v| v.to_string()),
                wire.map_or_else(|| "unknown".to_string(), |v| v.to_string())
            ));
        }
    }
    let path = root.join(fingerprint::SCHEMA_PATH);
    std::fs::write(&path, rendered).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    println!(
        "updated {} ({} functions, envelope version {})",
        fingerprint::SCHEMA_PATH,
        entries.len(),
        version.map_or_else(|| "unknown".to_string(), |v| v.to_string())
    );
    Ok(ExitCode::SUCCESS)
}
