//! `sj-lint` — the workspace invariant checker.
//!
//! A static-analysis driver (self-contained: only in-tree workspace
//! crates, nothing external) that walks the workspace's `crates/*/src`
//! trees and mechanically enforces the reproducibility and robustness
//! rules the estimator stack relies on: bit-identical shard-and-merge
//! histogram builds (no floats or nondeterminism in merge paths),
//! panic-free statistics decoding, cast discipline in cell-index math,
//! error-taxonomy and doc hygiene, and a fingerprinted persistence
//! schema tied to the envelope version. See [`rules`] for the
//! rule-by-rule rationale and DESIGN.md §10 for the full write-up.
//!
//! The static rules are complemented by *dynamic* analyses: [`verify`]
//! builds every histogram family serially and sharded on seeded
//! datasets and asserts the merged envelope bytes are identical
//! (localizing any divergence to the first differing cell and
//! statistic), [`verify_delta`] does the same for incremental updates,
//! [`verify_recovery`] crash-tests the statistics store's durability,
//! and [`verify_locks`] replays a concurrent daemon workload under the
//! ranked-lock instrumentation of `sj_core::sync` and rejects rank
//! inversions, observed lock-order cycles and file I/O under the
//! catalog lock.
//!
//! Run the static rules with `cargo run -p sj-lint -- check` (per-line
//! suppressions use `// sj-lint: allow(<rule>, <reason>)` with the
//! reason mandatory) and the dynamic checks with
//! `cargo run -p sj-lint -- verify-merge` (and its `verify-delta`,
//! `verify-recovery`, `verify-locks` siblings).
//!
//! The vendored `compat/*` shims are out of scope: they reproduce
//! external crate APIs verbatim and are exercised only through the
//! workspace crates that this checker does cover.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod fingerprint;
pub mod report;
pub mod rules;
pub mod scan;
pub mod verify;
pub mod verify_delta;
pub mod verify_locks;
pub mod verify_recovery;

use rules::{Finding, RuleId, Severity};
use scan::SourceFile;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One workspace crate's scanned sources.
#[derive(Debug, Clone)]
pub struct CrateView {
    /// Directory name under `crates/` (e.g. `histogram`).
    pub name: String,
    /// Scanned `.rs` files under `src/`, in path order.
    pub files: Vec<SourceFile>,
}

/// The scanned workspace.
#[derive(Debug, Clone)]
pub struct Workspace {
    /// Scanned crates, in name order.
    pub crates: Vec<CrateView>,
    /// Contents of the checked-in schema fingerprint file, if present.
    pub fingerprint: Option<String>,
}

impl Workspace {
    /// Loads and scans every `crates/*/src/**/*.rs` under `root`, plus
    /// the schema fingerprint file.
    ///
    /// # Errors
    /// Propagates I/O failures reading the tree.
    pub fn load(root: &Path) -> io::Result<Workspace> {
        let crates_dir = root.join("crates");
        let mut crates = Vec::new();
        let mut names: Vec<(String, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&crates_dir)? {
            let entry = entry?;
            let path = entry.path();
            if path.is_dir() && path.join("Cargo.toml").is_file() && path.join("src").is_dir() {
                names.push((entry.file_name().to_string_lossy().into_owned(), path));
            }
        }
        names.sort();
        for (name, dir) in names {
            let mut rel_files = Vec::new();
            collect_rs_files(&dir.join("src"), &mut rel_files)?;
            rel_files.sort();
            let mut files = Vec::new();
            for abs in rel_files {
                let source = fs::read_to_string(&abs)?;
                let rel = rel_path(root, &abs);
                files.push(SourceFile::scan(&rel, &source));
            }
            crates.push(CrateView { name, files });
        }
        let fingerprint = fs::read_to_string(root.join(fingerprint::SCHEMA_PATH)).ok();
        Ok(Workspace {
            crates,
            fingerprint,
        })
    }

    /// Builds a workspace from in-memory sources — fixture tests use
    /// this with pseudo-paths like `crates/histogram/src/band.rs` to
    /// exercise rule scoping without touching the filesystem.
    #[must_use]
    pub fn from_sources(sources: &[(&str, &str)], fingerprint: Option<String>) -> Workspace {
        let mut crates: Vec<CrateView> = Vec::new();
        for (path, text) in sources {
            let name = path
                .strip_prefix("crates/")
                .and_then(|p| p.split('/').next())
                .unwrap_or("unknown")
                .to_string();
            let file = SourceFile::scan(path, text);
            match crates.iter_mut().find(|c| c.name == name) {
                Some(c) => c.files.push(file),
                None => crates.push(CrateView {
                    name,
                    files: vec![file],
                }),
            }
        }
        crates.sort_by(|a, b| a.name.cmp(&b.name));
        Workspace {
            crates,
            fingerprint,
        }
    }
}

/// Recursively collects `.rs` files under `dir`.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative `/`-separated path of `abs`.
fn rel_path(root: &Path, abs: &Path) -> String {
    abs.strip_prefix(root)
        .unwrap_or(abs)
        .components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Which rules run and at what severity.
#[derive(Debug, Clone)]
pub struct Selection {
    /// Rules to run (default: all).
    pub enabled: Vec<RuleId>,
    /// Per-rule severity (default: deny).
    pub severity: Vec<(RuleId, Severity)>,
}

impl Default for Selection {
    fn default() -> Self {
        Selection {
            enabled: RuleId::ALL.to_vec(),
            severity: RuleId::ALL.iter().map(|&r| (r, Severity::Deny)).collect(),
        }
    }
}

impl Selection {
    /// Severity of `rule` under this selection.
    #[must_use]
    pub fn severity_of(&self, rule: RuleId) -> Severity {
        self.severity
            .iter()
            .find(|(r, _)| *r == rule)
            .map_or(Severity::Deny, |(_, s)| *s)
    }

    /// Sets `rule` to `severity`.
    pub fn set(&mut self, rule: RuleId, severity: Severity) {
        match self.severity.iter_mut().find(|(r, _)| *r == rule) {
            Some(slot) => slot.1 = severity,
            None => self.severity.push((rule, severity)),
        }
    }
}

/// Runs the selected rules over the workspace and returns findings
/// sorted by path, line, then rule.
#[must_use]
pub fn run_check(ws: &Workspace, selection: &Selection) -> Vec<Finding> {
    let mut findings = Vec::new();
    for rule in &selection.enabled {
        run_rule(*rule, ws, &mut findings);
    }
    for f in &mut findings {
        f.severity = selection.severity_of(f.rule);
    }
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    findings.dedup_by(|a, b| {
        a.path == b.path && a.line == b.line && a.rule == b.rule && a.message == b.message
    });
    findings
}

/// Runs a single rule — the fixture tests drive rules individually.
pub fn run_rule(rule: RuleId, ws: &Workspace, out: &mut Vec<Finding>) {
    match rule {
        RuleId::Determinism => rules::check_determinism(ws, out),
        RuleId::FixedPoint => rules::check_fixed_point(ws, out),
        RuleId::PanicFree => rules::check_panic_free(ws, out),
        RuleId::Cast => rules::check_casts(ws, out),
        RuleId::Hygiene => rules::check_hygiene(ws, out),
        RuleId::ErrorTaxonomy => rules::check_error_taxonomy(ws, out),
        RuleId::Persistence => fingerprint::check_persistence(ws, out),
        RuleId::Docs => rules::check_docs(ws, out),
        RuleId::LockDiscipline => rules::check_lock_construction(ws, out),
        RuleId::IoUnderLock => rules::check_io_under_lock(ws, out),
        RuleId::AtomicOrdering => rules::check_atomic_ordering(ws, out),
    }
}

/// Findings of `rule` when run alone over in-memory sources — the
/// fixture-test entry point.
#[must_use]
pub fn check_sources(rule: RuleId, sources: &[(&str, &str)]) -> Vec<Finding> {
    let ws = Workspace::from_sources(sources, None);
    let mut out = Vec::new();
    run_rule(rule, &ws, &mut out);
    out
}

/// Locates the workspace root: ascends from `start` until a directory
/// holds a `Cargo.toml` containing `[workspace]`.
#[must_use]
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if manifest.is_file() {
            if let Ok(text) = fs::read_to_string(&manifest) {
                if text.contains("[workspace]") {
                    return Some(dir);
                }
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}
