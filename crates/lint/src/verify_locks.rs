//! Dynamic lock-order verification — the `verify-locks` subcommand.
//!
//! The static rules r9–r11 pin *how* locks are built (ranked wrappers
//! only), *what* runs under them lexically (no blocking I/O in a
//! visible guard region) and *how* atomics are ordered. This module
//! closes the gap static scanning cannot: it runs a fixed, seeded
//! concurrent workload — stamped mutations, estimates and a
//! mid-workload compaction against an in-process statistics daemon —
//! with `sj_core::sync`'s observe mode on, harvests the global
//! lock-event log, and checks three oracles over what *actually*
//! happened on every thread:
//!
//! 1. **Rank monotonicity** — no thread ever acquired a lock while
//!    holding one of equal or higher [`LockRank`] (a latent deadlock by
//!    DESIGN.md §15's hierarchy).
//! 2. **Acyclic observed order** — the directed graph `held → acquired`
//!    over lock names has no cycle. Redundant with ranks when every
//!    lock is ranked, but it catches hierarchy-table bugs: two locks
//!    given the same rank by mistake still cannot deadlock silently.
//! 3. **No file I/O under the catalog lock** — no `append_wal`,
//!    `sync_file` or `sync_dir` ran on a thread holding a
//!    [`LockRank::Catalog`] lock; an fsync under the catalog lock
//!    stalls every estimate behind disk latency, which is exactly what
//!    the daemon's three-phase pipeline exists to prevent.
//!
//! Every run is deterministic (rule r1): fixed dataset, fixed batch
//! schedule, fixed thread count. Fault injection (`--inject`)
//! sabotages the *observed process* instead of the oracle — acquiring
//! two deliberately mis-ordered locks, or holding a catalog-ranked
//! lock across a real fsync — to prove the verifier catches both
//! violation classes, mirroring `verify-merge`/`verify-recovery`.
//!
//! Observe mode exists only in debug builds (release compiles the
//! wrappers down to bare std locks), so `verify-locks` refuses to
//! pass vacuously when the event log comes back empty.

use crate::report::Format;
use sj_core::sync::{self, LockEvent, LockRank, OrderedMutex};
use sj_geo::{Extent, Rect};
use sj_query::{Catalog, CompactionPolicy, DegradationPolicy, RealStoreIo, StoreIo};
use sj_server::{CatalogService, Client, Server};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;
use std::sync::Arc;

/// Table name used by the workload.
const TABLE: &str = "locks";
/// Concurrent client threads.
const THREADS: usize = 3;
/// Base rectangles seeded into the table before the workload.
const BASE_N: usize = 40;
/// Insert-batch size per round.
const BATCH: usize = 4;
/// Workload rounds per thread at `--scale 1.0`.
const BASE_ROUNDS: usize = 4;

/// A deliberately broken *process*, injected via `--inject` so the
/// self-tests can prove the verifier catches real discipline breaks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockFault {
    /// After the workload, acquire a pair of ranked locks in both
    /// orders — the inverted pass is a textbook rank inversion, and
    /// together the two passes close a cycle in the observed order
    /// graph, exercising both structural oracles.
    InvertRanks,
    /// After the workload, hold a [`LockRank::Catalog`] lock across a
    /// real [`StoreIo::sync_file`] — the fsync-under-catalog hazard.
    HoldAcrossFsync,
}

impl LockFault {
    /// All faults, in report order.
    pub const ALL: [LockFault; 2] = [LockFault::InvertRanks, LockFault::HoldAcrossFsync];

    /// Stable name accepted by `--inject` and used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LockFault::InvertRanks => "invert-ranks",
            LockFault::HoldAcrossFsync => "hold-across-fsync",
        }
    }

    /// Parses an `--inject` argument.
    #[must_use]
    pub fn parse(name: &str) -> Option<LockFault> {
        LockFault::ALL.into_iter().find(|f| f.name() == name)
    }
}

/// The workload the verifier runs.
#[derive(Debug, Clone)]
pub struct LocksConfig {
    /// Scale factor on the per-thread round count (`4` at `1.0`).
    pub scale: f64,
    /// Optional sabotage run after the clean workload.
    pub fault: Option<LockFault>,
}

impl Default for LocksConfig {
    fn default() -> Self {
        LocksConfig {
            scale: 1.0,
            fault: None,
        }
    }
}

/// One oracle violation, localized to the event that proved it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockViolation {
    /// A lock was acquired while an equal-or-higher rank was held.
    RankInversion {
        /// Rank of the acquired lock.
        acquired_rank: LockRank,
        /// Construction-time name of the acquired lock.
        acquired_name: String,
        /// `file:line` of the offending acquisition.
        acquired_site: String,
        /// Rank of the worst lock already held.
        held_rank: LockRank,
        /// Name of that held lock.
        held_name: String,
        /// `file:line` where the held lock was acquired.
        held_site: String,
        /// Ordinal of the offending thread.
        thread: u64,
    },
    /// The observed `held → acquired` order graph has a cycle.
    OrderCycle {
        /// Lock names along the cycle, first repeated last.
        cycle: Vec<String>,
    },
    /// Durable file I/O ran while a catalog-ranked lock was held.
    IoUnderCatalog {
        /// The instrumented operation (`append_wal`, `sync_file`, ...).
        op: String,
        /// Name of the held catalog-ranked lock.
        held_name: String,
        /// `file:line` where that lock was acquired.
        held_site: String,
        /// Ordinal of the offending thread.
        thread: u64,
    },
}

impl std::fmt::Display for LockViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LockViolation::RankInversion {
                acquired_rank,
                acquired_name,
                acquired_site,
                held_rank,
                held_name,
                held_site,
                thread,
            } => write!(
                f,
                "rank inversion on thread {thread}: acquired {acquired_rank:?} (rank {}) \
                 `{acquired_name}` at {acquired_site} while holding {held_rank:?} (rank {}) \
                 `{held_name}` acquired at {held_site}",
                acquired_rank.level(),
                held_rank.level(),
            ),
            LockViolation::OrderCycle { cycle } => {
                write!(f, "observed lock-order cycle: {}", cycle.join(" -> "))
            }
            LockViolation::IoUnderCatalog {
                op,
                held_name,
                held_site,
                thread,
            } => write!(
                f,
                "blocking `{op}` on thread {thread} while holding catalog-ranked \
                 `{held_name}` acquired at {held_site}"
            ),
        }
    }
}

/// The full verification run.
#[derive(Debug, Clone)]
pub struct LocksReport {
    /// Lock acquisitions observed.
    pub acquires: usize,
    /// Instrumented blocking-I/O operations observed.
    pub ios: usize,
    /// Distinct lock names observed.
    pub locks_seen: usize,
    /// Oracle violations, in event order (cycles last).
    pub violations: Vec<LockViolation>,
    /// The sabotage injected after the workload, if any.
    pub fault: Option<LockFault>,
}

impl LocksReport {
    /// Whether the observed run satisfied every oracle.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Renders the report in the selected format, mirroring the other
    /// verifiers.
    #[must_use]
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Human => self.render_human(),
            Format::Json => self.render_json(),
        }
    }

    fn render_human(&self) -> String {
        let mut out = String::new();
        if let Some(fault) = self.fault {
            out.push_str(&format!(
                "sj-lint verify-locks: injecting fault `{}` after the workload\n",
                fault.name()
            ));
        }
        for v in &self.violations {
            out.push_str(&format!("error[verify-locks] {v}\n"));
        }
        if self.violations.is_empty() {
            out.push_str(&format!(
                "sj-lint verify-locks: clean ({} acquisitions across {} locks, \
                 {} blocking I/O operations, ranks strictly increasing, order \
                 graph acyclic, no I/O under the catalog lock)\n",
                self.acquires, self.locks_seen, self.ios
            ));
        } else {
            out.push_str(&format!(
                "sj-lint verify-locks: {} violations in {} acquisitions\n",
                self.violations.len(),
                self.acquires
            ));
        }
        out
    }

    fn render_json(&self) -> String {
        use crate::report::escape;
        let mut out = String::from("{\n  \"violations\": [\n");
        for (i, v) in self.violations.iter().enumerate() {
            let kind = match v {
                LockViolation::RankInversion { .. } => "rank-inversion",
                LockViolation::OrderCycle { .. } => "order-cycle",
                LockViolation::IoUnderCatalog { .. } => "io-under-catalog",
            };
            out.push_str(&format!(
                "    {{\"kind\": \"{kind}\", \"detail\": \"{}\"}}{}\n",
                escape(&v.to_string()),
                if i + 1 < self.violations.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"fault\": {},\n",
            self.fault
                .map_or("null".to_string(), |f| format!("\"{}\"", f.name()))
        ));
        out.push_str(&format!("  \"acquires\": {},\n", self.acquires));
        out.push_str(&format!("  \"ios\": {},\n", self.ios));
        out.push_str(&format!("  \"locks_seen\": {},\n", self.locks_seen));
        out.push_str(&format!("  \"clean\": {}\n}}\n", self.is_clean()));
        out
    }
}

/// Deterministic base rectangles for the workload table.
fn base_rects() -> Vec<Rect> {
    (0..BASE_N)
        .map(|i| {
            let x = (i % 8) as f64 * 0.05 + 0.002;
            let y = (i / 8) as f64 * 0.05 + 0.002;
            Rect::new(x, y, x + 0.04, y + 0.04)
        })
        .collect()
}

/// Thread `t`'s insert batch for round `r`, confined to the thread's
/// own y-band so batches never collide.
fn thread_batch(t: usize, r: usize) -> Vec<Rect> {
    (0..BATCH)
        .map(|j| {
            let x = (r * BATCH + j) as f64 * 0.02 + 0.001;
            let y = 0.55 + t as f64 * 0.13;
            Rect::new(x, y, x + 0.015, y + 0.015 + j as f64 * 1e-3)
        })
        .collect()
}

/// The statistics directory the workload writes under — scoped by pid
/// so parallel CI jobs cannot collide, and recreated fresh every run.
fn workload_dir() -> PathBuf {
    std::env::temp_dir().join(format!("sj-verify-locks-{}", std::process::id()))
}

/// Runs the seeded concurrent workload against an in-process daemon
/// with observe mode on, and returns the harvested event log.
fn run_workload(rounds: usize) -> Result<Vec<LockEvent>, String> {
    let dir = workload_dir();
    let _ = std::fs::remove_dir_all(&dir);

    let mut catalog = Catalog::with_level(4);
    catalog
        .register(sj_datagen::Dataset::new(
            TABLE,
            Extent::unit(),
            base_rects(),
        ))
        .map_err(|e| format!("registering the workload table: {e}"))?;
    catalog
        .open_stats_store(&dir, CompactionPolicy::default())
        .map_err(|e| format!("attaching the statistics store: {e}"))?;

    let catalog = Arc::new(sync::OrderedRwLock::new(
        LockRank::Catalog,
        "verify-locks.catalog",
        catalog,
    ));
    let service = CatalogService::new(Arc::clone(&catalog), DegradationPolicy::default());
    let server =
        Arc::new(Server::bind("127.0.0.1:0", service).map_err(|e| format!("binding: {e}"))?);
    let addr = server
        .local_addr()
        .map_err(|e| format!("reading the bound address: {e}"))?;
    let run = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };

    sync::set_observe(true);
    let workers: Vec<_> = (0..THREADS)
        .map(|t| {
            std::thread::spawn(move || -> Result<(), String> {
                let mut client = Client::connect_with_retry(addr)
                    .map_err(|e| format!("thread {t}: connect: {e}"))?;
                for r in 0..rounds {
                    let batch = thread_batch(t, r);
                    client
                        .insert_batch_with_retry(TABLE, &batch)
                        .map_err(|e| format!("thread {t} round {r}: insert: {e}"))?;
                    client
                        .estimate(TABLE, TABLE)
                        .map_err(|e| format!("thread {t} round {r}: estimate: {e}"))?;
                    if r + 1 == rounds / 2 && t == 0 {
                        // Mid-workload compaction while the other
                        // threads keep mutating and estimating.
                        client
                            .compact(TABLE)
                            .map_err(|e| format!("thread {t} round {r}: compact: {e}"))?;
                    }
                    if r >= 2 {
                        let earlier = thread_batch(t, r - 2);
                        client
                            .delete_batch_with_retry(TABLE, &earlier[..BATCH / 2])
                            .map_err(|e| format!("thread {t} round {r}: delete: {e}"))?;
                    }
                }
                Ok(())
            })
        })
        .collect();
    let mut worker_err = None;
    for w in workers {
        match w.join() {
            Ok(Ok(())) => {}
            Ok(Err(e)) => worker_err = Some(e),
            Err(_) => worker_err = Some("a workload thread panicked".to_string()),
        }
    }
    server.initiate_shutdown();
    // Unblock the accept loop so the run thread exits.
    drop(Client::connect(addr));
    let run_result = run.join();

    sync::set_observe(false);
    let events = sync::take_events();
    let _ = std::fs::remove_dir_all(&dir);

    if let Some(e) = worker_err {
        return Err(format!("workload failed: {e}"));
    }
    match run_result {
        Ok(Ok(())) => {}
        Ok(Err(e)) => return Err(format!("server loop failed: {e}")),
        Err(_) => return Err("server thread panicked".to_string()),
    }
    Ok(events)
}

/// Injects the selected sabotage while observe mode records it,
/// appending its events to `events`.
fn inject(fault: LockFault, events: &mut Vec<LockEvent>) -> Result<(), String> {
    sync::set_observe(true);
    let result = match fault {
        LockFault::InvertRanks => {
            let hi = OrderedMutex::new(LockRank::WalFile, "inject.wal-file", ());
            let lo = OrderedMutex::new(LockRank::Catalog, "inject.catalog", ());
            {
                // One well-ordered pass records the forward edge...
                let _lo = lo.lock();
                let _hi = hi.lock();
            }
            // ...then the inverted pass both breaks rank monotonicity
            // and closes a cycle in the observed order graph. Observe
            // mode records the inversion instead of panicking.
            let _hi = hi.lock();
            let _lo = lo.lock();
            Ok(())
        }
        LockFault::HoldAcrossFsync => {
            let dir = workload_dir();
            let io = RealStoreIo;
            let path = dir.join("inject.fsync");
            io.create_dir_all(&dir)
                .and_then(|()| io.write(&path, b"sabotage"))
                .map_err(|e| format!("preparing the fsync sabotage file: {e}"))?;
            let lock = OrderedMutex::new(LockRank::Catalog, "inject.catalog", ());
            let guard = lock.lock();
            // sj-lint: allow(io-under-lock, deliberate sabotage — verify-locks --inject hold-across-fsync exists to prove the dynamic oracle catches exactly this)
            let synced = io.sync_file(&path);
            drop(guard);
            let _ = std::fs::remove_dir_all(&dir);
            synced.map_err(|e| format!("fsync sabotage failed to sync: {e}"))
        }
    };
    sync::set_observe(false);
    events.extend(sync::take_events());
    result
}

/// Durable-I/O operations that must never run under the catalog lock.
const GUARDED_IO_OPS: [&str; 3] = ["append_wal", "sync_file", "sync_dir"];

/// Runs the three oracles over a harvested event log.
fn analyze(events: &[LockEvent], fault: Option<LockFault>) -> LocksReport {
    let mut violations = Vec::new();
    let mut acquires = 0usize;
    let mut ios = 0usize;
    let mut names: BTreeSet<&str> = BTreeSet::new();
    // Observed order graph: an edge `held -> acquired` for every
    // acquisition made while `held` was held.
    let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();

    for event in events {
        match event {
            LockEvent::Acquire {
                rank,
                name,
                site,
                held,
                thread,
            } => {
                acquires += 1;
                names.insert(name);
                for h in held {
                    names.insert(h.name);
                    if h.name != *name {
                        edges.entry(h.name).or_default().insert(name);
                    }
                }
                if let Some(worst) = held
                    .iter()
                    .filter(|h| h.rank >= *rank)
                    .max_by_key(|h| h.rank)
                {
                    violations.push(LockViolation::RankInversion {
                        acquired_rank: *rank,
                        acquired_name: (*name).to_string(),
                        acquired_site: site.clone(),
                        held_rank: worst.rank,
                        held_name: worst.name.to_string(),
                        held_site: worst.site.clone(),
                        thread: *thread,
                    });
                }
            }
            LockEvent::BlockingIo { op, held, thread } => {
                ios += 1;
                if !GUARDED_IO_OPS.contains(&op.as_str()) {
                    continue;
                }
                if let Some(h) = held.iter().find(|h| h.rank == LockRank::Catalog) {
                    violations.push(LockViolation::IoUnderCatalog {
                        op: op.clone(),
                        held_name: h.name.to_string(),
                        held_site: h.site.clone(),
                        thread: *thread,
                    });
                }
            }
        }
    }

    if let Some(cycle) = find_cycle(&edges) {
        violations.push(LockViolation::OrderCycle { cycle });
    }

    LocksReport {
        acquires,
        ios,
        locks_seen: names.len(),
        violations,
        fault,
    }
}

/// Finds one cycle in the observed order graph, if any, as a name path
/// with the entry node repeated at the end. Deterministic: nodes and
/// successors are visited in name order.
fn find_cycle(edges: &BTreeMap<&str, BTreeSet<&str>>) -> Option<Vec<String>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Mark {
        Open,
        Done,
    }
    fn visit<'a>(
        node: &'a str,
        edges: &BTreeMap<&'a str, BTreeSet<&'a str>>,
        marks: &mut BTreeMap<&'a str, Mark>,
        path: &mut Vec<&'a str>,
    ) -> Option<Vec<String>> {
        match marks.get(node) {
            Some(Mark::Done) => return None,
            Some(Mark::Open) => {
                let start = path.iter().position(|n| *n == node).unwrap_or(0);
                let mut cycle: Vec<String> =
                    path[start..].iter().map(|n| (*n).to_string()).collect();
                cycle.push(node.to_string());
                return Some(cycle);
            }
            None => {}
        }
        marks.insert(node, Mark::Open);
        path.push(node);
        if let Some(next) = edges.get(node) {
            for n in next {
                if let Some(cycle) = visit(n, edges, marks, path) {
                    return Some(cycle);
                }
            }
        }
        path.pop();
        marks.insert(node, Mark::Done);
        None
    }
    let mut marks = BTreeMap::new();
    for node in edges.keys() {
        let mut path = Vec::new();
        if let Some(cycle) = visit(node, edges, &mut marks, &mut path) {
            return Some(cycle);
        }
    }
    None
}

/// Runs the workload (plus any injected sabotage) and the oracles.
///
/// # Errors
/// A message when the configuration is invalid, the workload itself
/// fails, or the build carries no lock instrumentation (release).
pub fn run_verify_locks(config: &LocksConfig) -> Result<LocksReport, String> {
    if config.scale <= 0.0 || !config.scale.is_finite() {
        return Err("--scale must be a positive, finite number".to_string());
    }
    let rounds = ((BASE_ROUNDS as f64 * config.scale).round() as usize).max(2);
    let mut events = run_workload(rounds)?;
    if let Some(fault) = config.fault {
        inject(fault, &mut events)?;
    }
    if events.is_empty() {
        return Err(
            "no lock events were recorded — verify-locks needs the debug-build \
             instrumentation (run via `cargo run -p sj-lint` without --release)"
                .to_string(),
        );
    }
    Ok(analyze(&events, config.fault))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Observe mode is process-global: every test that toggles it runs
    /// under this lock (poison tolerated so one failure doesn't cascade).
    static SERIAL: Mutex<()> = Mutex::new(());

    fn serial() -> std::sync::MutexGuard<'static, ()> {
        SERIAL
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn fault_names_round_trip() {
        for fault in LockFault::ALL {
            assert_eq!(LockFault::parse(fault.name()), Some(fault));
        }
        assert_eq!(LockFault::parse("no-such-fault"), None);
    }

    #[test]
    fn clean_workload_satisfies_every_oracle() {
        let _serial = serial();
        let report = run_verify_locks(&LocksConfig::default()).expect("verify-locks run");
        assert!(
            report.is_clean(),
            "clean workload must verify: {}",
            report.render(Format::Human)
        );
        assert!(report.acquires > 0, "the workload must acquire locks");
        assert!(report.ios > 0, "the workload must hit the WAL");
        assert!(report.locks_seen >= 4, "conns/pipeline/catalog/wal_io");
    }

    #[test]
    fn invert_ranks_sabotage_is_caught() {
        let _serial = serial();
        let config = LocksConfig {
            fault: Some(LockFault::InvertRanks),
            ..LocksConfig::default()
        };
        let report = run_verify_locks(&config).expect("verify-locks run");
        assert!(!report.is_clean(), "the inversion must be caught");
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                LockViolation::RankInversion {
                    acquired_rank: LockRank::Catalog,
                    held_rank: LockRank::WalFile,
                    ..
                }
            )),
            "localized to the injected pair: {:?}",
            report.violations
        );
        assert!(
            report
                .violations
                .iter()
                .any(|v| matches!(v, LockViolation::OrderCycle { .. })),
            "the inverted pair also closes a cycle against the pipeline order"
        );
    }

    #[test]
    fn hold_across_fsync_sabotage_is_caught() {
        let _serial = serial();
        let config = LocksConfig {
            fault: Some(LockFault::HoldAcrossFsync),
            ..LocksConfig::default()
        };
        let report = run_verify_locks(&config).expect("verify-locks run");
        assert!(!report.is_clean(), "the held fsync must be caught");
        assert!(
            report.violations.iter().any(|v| matches!(
                v,
                LockViolation::IoUnderCatalog { op, .. } if op == "sync_file"
            )),
            "localized to the fsync: {:?}",
            report.violations
        );
    }

    #[test]
    fn cycle_detection_reports_a_closed_path() {
        let mut edges: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
        edges.entry("a").or_default().insert("b");
        edges.entry("b").or_default().insert("c");
        edges.entry("c").or_default().insert("a");
        let cycle = find_cycle(&edges).expect("cycle");
        assert_eq!(cycle.first(), cycle.last());
        assert!(cycle.len() == 4, "{cycle:?}");
        let acyclic: BTreeMap<&str, BTreeSet<&str>> = [
            ("a", BTreeSet::from(["b", "c"])),
            ("b", BTreeSet::from(["c"])),
        ]
        .into_iter()
        .collect();
        assert_eq!(find_cycle(&acyclic), None);
    }

    #[test]
    fn scale_must_be_positive_and_finite() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let config = LocksConfig {
                scale: bad,
                ..LocksConfig::default()
            };
            assert!(run_verify_locks(&config).is_err(), "scale {bad}");
        }
    }
}
