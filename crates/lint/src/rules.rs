//! The eleven named workspace invariants and their checkers.
//!
//! Each rule guards a promise an earlier PR made by construction:
//!
//! * **R1 determinism** — shard-merge equivalence and reproducible
//!   estimates require no wall-clock or OS entropy in estimator paths.
//! * **R2 fixed-point** — merge paths accumulate only through the exact
//!   128-bit `Mass` type; a stray `f64 +=` silently breaks bit-identical
//!   shard merges.
//! * **R3 panic-freedom** — non-test library code returns typed errors;
//!   decoders never index unchecked.
//! * **R4 truncating casts** — histogram/grid/mass numeric code uses
//!   `try_from` or documents why an `as` cast cannot truncate.
//! * **R5 crate hygiene** — every crate root forbids `unsafe` and warns
//!   on missing docs; suppressions name a real rule and a reason.
//! * **R6 error taxonomy** — public error enums are `#[non_exhaustive]`
//!   and implement `Display` + `Error`.
//! * **R7 persistence discipline** — `to_bytes`/`from_bytes` bodies are
//!   fingerprinted; changing one without bumping the envelope version
//!   fails the check (see [`crate::fingerprint`]).
//! * **R8 doc coverage** — public items of the estimator-facing crates
//!   carry doc comments.
//! * **R9 lock discipline** — non-test library code constructs no raw
//!   `std::sync` locks; everything goes through the ranked
//!   `sj_core::sync` wrappers so the hierarchy (DESIGN.md §15) is
//!   total.
//! * **R10 I/O under lock** — no blocking file/socket I/O lexically
//!   inside a live lock-guard region; fsyncs under the catalog lock
//!   stall every reader.
//! * **R11 atomic ordering** — every atomic `Ordering::` argument is
//!   `SeqCst` unless a suppression names the invariant that makes a
//!   weaker ordering sound.

use crate::scan::{find_token, has_token, Line, SourceFile};
use crate::{CrateView, Workspace};

/// Identifier of one lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// R1: no wall-clock / OS entropy outside bench and tests.
    Determinism,
    /// R2: no `f64` arithmetic in shard-merge paths except `Mass::from_f64`.
    FixedPoint,
    /// R3: no unwrap/expect/panic/unchecked decoder indexing in lib code.
    PanicFree,
    /// R4: no undocumented truncating `as` casts in histogram/query numeric code.
    Cast,
    /// R5: crate-root hygiene headers and suppression syntax.
    Hygiene,
    /// R6: public error enums are non_exhaustive + Display + Error.
    ErrorTaxonomy,
    /// R7: persistence schema fingerprint matches the envelope version.
    Persistence,
    /// R8: doc coverage on public items of sj-core/sj-histogram/sj-query.
    Docs,
    /// R9: no raw `std::sync::{Mutex,RwLock}` construction outside the
    /// ranked `sj_core::sync` wrappers.
    LockDiscipline,
    /// R10: no blocking file/socket I/O inside a live lock-guard region.
    IoUnderLock,
    /// R11: atomic `Ordering::` arguments are `SeqCst` or justified.
    AtomicOrdering,
}

impl RuleId {
    /// Every rule, in report order.
    pub const ALL: [RuleId; 11] = [
        RuleId::Determinism,
        RuleId::FixedPoint,
        RuleId::PanicFree,
        RuleId::Cast,
        RuleId::Hygiene,
        RuleId::ErrorTaxonomy,
        RuleId::Persistence,
        RuleId::Docs,
        RuleId::LockDiscipline,
        RuleId::IoUnderLock,
        RuleId::AtomicOrdering,
    ];

    /// Short code (`r1`..`r8`).
    #[must_use]
    pub fn code(self) -> &'static str {
        match self {
            RuleId::Determinism => "r1",
            RuleId::FixedPoint => "r2",
            RuleId::PanicFree => "r3",
            RuleId::Cast => "r4",
            RuleId::Hygiene => "r5",
            RuleId::ErrorTaxonomy => "r6",
            RuleId::Persistence => "r7",
            RuleId::Docs => "r8",
            RuleId::LockDiscipline => "r9",
            RuleId::IoUnderLock => "r10",
            RuleId::AtomicOrdering => "r11",
        }
    }

    /// Human slug, also accepted in `// sj-lint: allow(<slug>, ...)`.
    #[must_use]
    pub fn slug(self) -> &'static str {
        match self {
            RuleId::Determinism => "determinism",
            RuleId::FixedPoint => "fixed-point",
            RuleId::PanicFree => "panic",
            RuleId::Cast => "cast",
            RuleId::Hygiene => "hygiene",
            RuleId::ErrorTaxonomy => "error-taxonomy",
            RuleId::Persistence => "persistence",
            RuleId::Docs => "docs",
            RuleId::LockDiscipline => "lock-discipline",
            RuleId::IoUnderLock => "io-under-lock",
            RuleId::AtomicOrdering => "atomic-ordering",
        }
    }

    /// One-line description for `sj-lint rules`.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            RuleId::Determinism => {
                "no Instant::now/SystemTime/thread_rng/from_entropy outside crates/bench and tests"
            }
            RuleId::FixedPoint => {
                "no f64 arithmetic in band.rs / RowBanded / merge / kernel.rs bin_* paths except Mass::from_f64"
            }
            RuleId::PanicFree => {
                "no unwrap/expect/panic! and no unchecked slice indexing in decoders (non-test lib code)"
            }
            RuleId::Cast => {
                "no `as u32`/`as usize`/`as i64` in sj-histogram/sj-query numeric code without try_from or a reasoned suppression"
            }
            RuleId::Hygiene => {
                "crate roots carry #![forbid(unsafe_code)] + #![warn(missing_docs)]; suppressions name a real rule"
            }
            RuleId::ErrorTaxonomy => {
                "public *Error enums are #[non_exhaustive] and implement Display + Error"
            }
            RuleId::Persistence => {
                "to_bytes/from_bytes bodies match the checked-in schema fingerprint for the current envelope version"
            }
            RuleId::Docs => "public items of sj-core/sj-histogram/sj-query carry doc comments",
            RuleId::LockDiscipline => {
                "no raw std::sync::{Mutex,RwLock} construction in non-test lib code outside sj_core::sync"
            }
            RuleId::IoUnderLock => {
                "no blocking I/O (File::, TcpStream::, sync_all, read_to_end, write_all) inside a live lock-guard region"
            }
            RuleId::AtomicOrdering => {
                "atomic Ordering:: arguments are SeqCst unless a suppression names the weaker-ordering invariant"
            }
        }
    }

    /// Resolves a user-supplied rule name (`r4` or `cast`).
    #[must_use]
    pub fn parse(name: &str) -> Option<RuleId> {
        let name = name.trim();
        RuleId::ALL
            .iter()
            .copied()
            .find(|r| r.code() == name || r.slug() == name)
    }
}

/// How a finding affects the exit status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Counts toward a non-zero exit.
    Deny,
    /// Reported but does not fail the run.
    Warn,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: RuleId,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line number (0 for whole-file findings).
    pub line: usize,
    /// What is wrong and how to fix it.
    pub message: String,
    /// Effective severity under the active selection.
    pub severity: Severity,
}

/// Crate name (directory under `crates/`) of a workspace-relative path.
fn crate_of(rel_path: &str) -> &str {
    let mut parts = rel_path.split('/');
    match (parts.next(), parts.next()) {
        (Some("crates"), Some(name)) => name,
        _ => "",
    }
}

/// Whether `line` carries an effective suppression for `rule`. Emits a
/// finding instead when the suppression is present but missing its
/// mandatory reason.
fn suppressed(
    line: &Line,
    rule: RuleId,
    path: &str,
    lineno: usize,
    out: &mut Vec<Finding>,
) -> bool {
    let mut hit = false;
    for s in &line.effective_suppress {
        if RuleId::parse(&s.rule) == Some(rule) {
            if s.has_reason {
                hit = true;
            } else {
                out.push(Finding {
                    rule,
                    path: path.to_string(),
                    line: lineno,
                    message: format!(
                        "suppression `sj-lint: allow({})` is missing its mandatory reason: \
                         write `// sj-lint: allow({}, <why this is safe>)`",
                        s.rule,
                        rule.slug()
                    ),
                    severity: Severity::Deny,
                });
                hit = true; // reported as the missing-reason finding instead
            }
        }
    }
    hit
}

/// `true` when `code` invokes the macro `name!`.
fn has_macro(code: &str, name: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = find_token(code.get(start..).unwrap_or(""), name) {
        let i = start + pos;
        let end = i + name.len();
        if code.get(end..).and_then(|s| s.chars().next()) == Some('!') {
            return true;
        }
        start = end;
    }
    false
}

/// All whole-token occurrences of `tok` in `code`.
fn token_positions(code: &str, tok: &str) -> Vec<usize> {
    let mut out = Vec::new();
    let mut start = 0;
    while let Some(pos) = find_token(code.get(start..).unwrap_or(""), tok) {
        let i = start + pos;
        out.push(i);
        start = i + tok.len();
    }
    out
}

// ---------------------------------------------------------------------
// R1 — determinism
// ---------------------------------------------------------------------

/// Nondeterminism sources forbidden outside `crates/bench` and tests.
const R1_TOKENS: [&str; 4] = ["Instant::now", "SystemTime", "thread_rng", "from_entropy"];

/// R1: flags wall-clock and OS-entropy sources in non-test, non-bench
/// library code. Timing-measurement sites document themselves with
/// `// sj-lint: allow(determinism, <why>)`.
pub fn check_determinism(ws: &Workspace, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        if krate.name == "bench" {
            continue;
        }
        for file in &krate.files {
            for (i, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                for tok in R1_TOKENS {
                    if has_token(&line.code, tok)
                        && !suppressed(line, RuleId::Determinism, &file.rel_path, i + 1, out)
                    {
                        out.push(Finding {
                            rule: RuleId::Determinism,
                            path: file.rel_path.clone(),
                            line: i + 1,
                            message: format!(
                                "nondeterministic source `{tok}` in library code: estimator \
                                 paths must be reproducible (seeded RNG, no wall clock); \
                                 timing-only uses need `// sj-lint: allow(determinism, <why>)`"
                            ),
                            severity: Severity::Deny,
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R2 — fixed-point merge paths
// ---------------------------------------------------------------------

/// Whether a line lies in a shard-merge path: anywhere in `band.rs`,
/// inside a `RowBanded` impl, inside a `merge*` function of
/// sj-histogram, inside `Mass`'s `AddAssign`, or inside one of the
/// `bin_*` binning kernels of `kernel.rs` (the statistic-accumulation
/// loops `build_rows` delegates to — the same bit-identity contract).
/// The estimate-side kernels of `kernel.rs` (`*View`) legitimately
/// decode to `f64` and stay out of scope, like the estimate loops in
/// `ph.rs`/`gh.rs` always have.
fn r2_in_scope(file: &SourceFile, line: &Line) -> bool {
    if crate_of(&file.rel_path) != "histogram" || line.in_test {
        return false;
    }
    if file.rel_path.ends_with("/kernel.rs") {
        return line
            .fn_name
            .as_deref()
            .is_some_and(|f| f.starts_with("bin_") || f.starts_with("merge"));
    }
    if file.rel_path.ends_with("/band.rs") {
        return true;
    }
    if line
        .impl_header
        .as_deref()
        .is_some_and(|h| has_token(h, "RowBanded") || has_token(h, "AddAssign"))
    {
        return true;
    }
    line.fn_name
        .as_deref()
        .is_some_and(|f| f.starts_with("merge"))
}

/// `true` when `code` contains a float type or float literal after
/// removing sanctioned `Mass::from_f64` quantization calls.
fn has_float_use(code: &str) -> bool {
    let cleaned = code.replace("Mass::from_f64", "");
    if has_token(&cleaned, "f64") || has_token(&cleaned, "f32") {
        return true;
    }
    // `2f64` suffix literals (no token boundary) and `1.5` literals.
    let bytes = cleaned.as_bytes();
    for i in 0..bytes.len() {
        if bytes[i] == b'.'
            && i > 0
            && bytes.get(i - 1).is_some_and(u8::is_ascii_digit)
            && bytes.get(i + 1).is_some_and(u8::is_ascii_digit)
        {
            return true;
        }
        if (cleaned.get(i..).is_some_and(|s| s.starts_with("f64"))
            || cleaned.get(i..).is_some_and(|s| s.starts_with("f32")))
            && i > 0
            && bytes.get(i - 1).is_some_and(u8::is_ascii_digit)
        {
            return true;
        }
    }
    false
}

/// R2: flags any `f64`/`f32` use or float literal inside the exact
/// shard-merge paths. Merge code must stay on integers and `Mass`.
pub fn check_fixed_point(ws: &Workspace, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        for file in &krate.files {
            for (i, line) in file.lines.iter().enumerate() {
                if r2_in_scope(file, line)
                    && has_float_use(&line.code)
                    && !suppressed(line, RuleId::FixedPoint, &file.rel_path, i + 1, out)
                {
                    out.push(Finding {
                        rule: RuleId::FixedPoint,
                        path: file.rel_path.clone(),
                        line: i + 1,
                        message: "floating-point use in a shard-merge path: merge code must \
                                  accumulate only integers and `Mass` (quantize once via \
                                  `Mass::from_f64` outside the merge) or bit-identical \
                                  shard-and-merge breaks"
                            .to_string(),
                        severity: Severity::Deny,
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R3 — panic-freedom
// ---------------------------------------------------------------------

/// Panicking macros forbidden in non-test library code.
const R3_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Whether a function name marks a decoder (input under external
/// control, where an indexing panic violates the typed-error contract
/// pinned by `tests/fault_injection.rs`).
fn is_decoder_fn(name: &str) -> bool {
    name.starts_with("from_bytes") || name.starts_with("decode") || name.starts_with("load")
}

/// Keywords that may directly precede a `[`: what follows is a pattern
/// or array expression, never an index into a place.
const NOT_INDEX_BEFORE: [&str; 6] = ["let", "in", "return", "else", "match", "ref"];

/// Byte offsets of `arr[...]`-style indexing expressions in `code`.
fn index_sites(code: &str) -> Vec<usize> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    for i in 0..bytes.len() {
        if bytes[i] != b'[' {
            continue;
        }
        // Previous non-space char decides: identifier tail, `)` or `]`
        // mean an index expression; `#`, `&`, `<`, `!`, operators mean
        // attributes, slice types or macro brackets.
        let mut j = i;
        let mut prev = None;
        while j > 0 {
            j -= 1;
            let c = bytes[j];
            if c != b' ' {
                prev = Some(c);
                break;
            }
        }
        if !prev.is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_' || c == b')' || c == b']') {
            continue;
        }
        // Walk back over the preceding identifier: a keyword there means
        // `[` opens a pattern (`let [a, b] = ..`) or array expression,
        // not an index.
        let mut start = j + 1;
        while start > 0 && (bytes[start - 1].is_ascii_alphanumeric() || bytes[start - 1] == b'_') {
            start -= 1;
        }
        let word = &code[start..j + 1];
        if NOT_INDEX_BEFORE.contains(&word) {
            continue;
        }
        out.push(i);
    }
    out
}

/// R3: flags `.unwrap()`, `.expect(`, panicking macros, and unchecked
/// slice indexing inside decoder functions — in non-test library code
/// of every crate except the bench harness.
pub fn check_panic_free(ws: &Workspace, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        if krate.name == "bench" {
            continue;
        }
        for file in &krate.files {
            for (i, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                let mut violations: Vec<String> = Vec::new();
                if line.code.contains(".unwrap()") {
                    violations.push("`.unwrap()`".to_string());
                }
                if line.code.contains(".expect(") {
                    violations.push("`.expect(...)`".to_string());
                }
                for m in R3_MACROS {
                    if has_macro(&line.code, m) {
                        violations.push(format!("`{m}!`"));
                    }
                }
                if line.fn_name.as_deref().is_some_and(is_decoder_fn)
                    && !index_sites(&line.code).is_empty()
                {
                    violations.push("unchecked slice indexing in a decoder".to_string());
                }
                if violations.is_empty()
                    || suppressed(line, RuleId::PanicFree, &file.rel_path, i + 1, out)
                {
                    continue;
                }
                out.push(Finding {
                    rule: RuleId::PanicFree,
                    path: file.rel_path.clone(),
                    line: i + 1,
                    message: format!(
                        "{} in non-test library code: corrupt statistics must surface as \
                         typed errors, never a panic; restructure or add \
                         `// sj-lint: allow(panic, <invariant>)`",
                        violations.join(", ")
                    ),
                    severity: Severity::Deny,
                });
            }
        }
    }
}

// ---------------------------------------------------------------------
// R4 — truncating casts
// ---------------------------------------------------------------------

/// Cast targets that can truncate or change signedness silently.
const R4_TARGETS: [&str; 3] = ["u32", "usize", "i64"];

/// Crates whose numeric code is held to the r4 cast discipline:
/// sj-histogram (grid/cell-index/mass math) and sj-query (tuple-id
/// indexing in the executor).
const R4_CRATES: [&str; 2] = ["histogram", "query"];

/// R4: flags `as u32` / `as usize` / `as i64` in sj-histogram and
/// sj-query numeric code (grid/cell-index/mass math, tuple-id
/// indexing) unless converted to `try_from` or carrying a reasoned
/// suppression.
pub fn check_casts(ws: &Workspace, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        if !R4_CRATES.contains(&krate.name.as_str()) {
            continue;
        }
        for file in &krate.files {
            for (i, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                for pos in token_positions(&line.code, "as") {
                    let rest = line.code.get(pos + 2..).unwrap_or("").trim_start();
                    let target: String = rest
                        .chars()
                        .take_while(|c| c.is_ascii_alphanumeric())
                        .collect();
                    if R4_TARGETS.contains(&target.as_str())
                        && !suppressed(line, RuleId::Cast, &file.rel_path, i + 1, out)
                    {
                        out.push(Finding {
                            rule: RuleId::Cast,
                            path: file.rel_path.clone(),
                            line: i + 1,
                            message: format!(
                                "truncating `as {target}` cast in r4-scoped numeric code: \
                                 use `{target}::try_from(..)` (or document the bound with \
                                 `// sj-lint: allow(cast, <why it cannot truncate>)`)"
                            ),
                            severity: Severity::Deny,
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R5 — crate hygiene
// ---------------------------------------------------------------------

/// Attribute headers every crate root must carry.
const R5_FORBID: &str = "#![forbid(unsafe_code)]";

/// R5: every crate root (`src/lib.rs`, `src/main.rs`) carries the
/// `#![forbid(unsafe_code)]` + missing-docs headers, and every
/// suppression in the tree names a real rule.
pub fn check_hygiene(ws: &Workspace, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        for file in &krate.files {
            let root = file.rel_path == format!("crates/{}/src/lib.rs", krate.name)
                || file.rel_path == format!("crates/{}/src/main.rs", krate.name);
            if root {
                let has_forbid = file.lines.iter().any(|l| l.code.contains(R5_FORBID));
                let has_docs_gate = file.lines.iter().any(|l| {
                    l.code.contains("#![warn(missing_docs)]")
                        || l.code.contains("#![deny(missing_docs)]")
                });
                if !has_forbid {
                    out.push(Finding {
                        rule: RuleId::Hygiene,
                        path: file.rel_path.clone(),
                        line: 1,
                        message: "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
                        severity: Severity::Deny,
                    });
                }
                if !has_docs_gate {
                    out.push(Finding {
                        rule: RuleId::Hygiene,
                        path: file.rel_path.clone(),
                        line: 1,
                        message: "crate root is missing `#![warn(missing_docs)]` (or the \
                                  `deny` form)"
                            .to_string(),
                        severity: Severity::Deny,
                    });
                }
            }
            // Suppression syntax hygiene applies to every file.
            for (i, line) in file.lines.iter().enumerate() {
                for s in &line.suppress {
                    if RuleId::parse(&s.rule).is_none() {
                        out.push(Finding {
                            rule: RuleId::Hygiene,
                            path: file.rel_path.clone(),
                            line: i + 1,
                            message: format!(
                                "suppression names unknown rule `{}`; known rules: {}",
                                s.rule,
                                RuleId::ALL
                                    .iter()
                                    .map(|r| r.slug())
                                    .collect::<Vec<_>>()
                                    .join(", ")
                            ),
                            severity: Severity::Deny,
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R6 — error taxonomy
// ---------------------------------------------------------------------

/// R6: public enums named `*Error` must be `#[non_exhaustive]` and the
/// defining crate must implement `Display` and `Error` for them.
pub fn check_error_taxonomy(ws: &Workspace, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        for file in &krate.files {
            for (i, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                let Some(pos) = line.code.find("pub enum ") else {
                    continue;
                };
                let name: String = line
                    .code
                    .get(pos + "pub enum ".len()..)
                    .unwrap_or("")
                    .chars()
                    .take_while(|&c| c.is_ascii_alphanumeric() || c == '_')
                    .collect();
                if !name.ends_with("Error") || name.is_empty() {
                    continue;
                }
                if suppressed(line, RuleId::ErrorTaxonomy, &file.rel_path, i + 1, out) {
                    continue;
                }
                // Attributes sit on the lines directly above the item.
                let mut has_non_exhaustive = false;
                let mut j = i;
                while j > 0 {
                    j -= 1;
                    let Some(prev) = file.lines.get(j) else { break };
                    let t = prev.raw.trim();
                    let attr_ish =
                        t.starts_with("#[") || t.ends_with(")]") || t.ends_with(',') || prev.is_doc;
                    if !attr_ish {
                        break;
                    }
                    if prev.code.contains("non_exhaustive") {
                        has_non_exhaustive = true;
                    }
                }
                if !has_non_exhaustive {
                    out.push(Finding {
                        rule: RuleId::ErrorTaxonomy,
                        path: file.rel_path.clone(),
                        line: i + 1,
                        message: format!(
                            "public error enum `{name}` is not `#[non_exhaustive]`: new \
                             failure modes must be addable without breaking downstream matches"
                        ),
                        severity: Severity::Deny,
                    });
                }
                let impl_of = |trait_name: &str| {
                    krate.files.iter().any(|f| {
                        f.lines.iter().any(|l| {
                            l.code.contains(&format!("{trait_name} for {name}"))
                                && has_token(&l.code, "impl")
                        })
                    })
                };
                if !impl_of("Display") {
                    out.push(Finding {
                        rule: RuleId::ErrorTaxonomy,
                        path: file.rel_path.clone(),
                        line: i + 1,
                        message: format!("public error enum `{name}` has no `Display` impl"),
                        severity: Severity::Deny,
                    });
                }
                if !impl_of("Error") {
                    out.push(Finding {
                        rule: RuleId::ErrorTaxonomy,
                        path: file.rel_path.clone(),
                        line: i + 1,
                        message: format!(
                            "public error enum `{name}` has no `std::error::Error` impl"
                        ),
                        severity: Severity::Deny,
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R8 — doc coverage
// ---------------------------------------------------------------------

/// Crates whose public API must be fully documented.
const R8_CRATES: [&str; 3] = ["core", "histogram", "query"];

/// Item keywords that require a doc comment when `pub`.
const R8_ITEMS: [&str; 8] = [
    "fn", "struct", "enum", "trait", "const", "static", "type", "mod",
];

/// `true` when `decl` (`mod <name>;`) names a sibling module file whose
/// first non-empty line is an inner `//!` doc. Module docs belong in the
/// module file: outer docs on the declaration change the scope rustdoc
/// resolves the module's own intra-doc links in.
fn mod_file_has_inner_docs(krate: &CrateView, decl_path: &str, decl: &str) -> bool {
    let Some(name) = decl
        .strip_prefix("mod")
        .map(str::trim)
        .and_then(|r| r.strip_suffix(';'))
        .map(str::trim)
    else {
        return false;
    };
    let Some(dir) = decl_path.rfind('/').map(|i| &decl_path[..i]) else {
        return false;
    };
    let candidates = [format!("{dir}/{name}.rs"), format!("{dir}/{name}/mod.rs")];
    krate.files.iter().any(|f| {
        candidates.contains(&f.rel_path)
            && f.lines
                .iter()
                .find(|l| !l.raw.trim().is_empty())
                .is_some_and(|l| l.is_doc)
    })
}

/// R8: public items of the estimator-facing crates carry doc comments.
/// `pub(crate)` and `pub use` re-exports are exempt.
pub fn check_docs(ws: &Workspace, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        if !R8_CRATES.contains(&krate.name.as_str()) {
            continue;
        }
        for file in &krate.files {
            for (i, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                let t = line.code.trim_start();
                let Some(rest) = t.strip_prefix("pub ") else {
                    continue;
                };
                let mut words = rest.split_whitespace();
                let Some(first) = words.next() else { continue };
                // Skip modifiers to find the item keyword.
                let kw = if matches!(first, "unsafe" | "async" | "const" | "extern") {
                    // `pub const FOO:` is a const item; `pub const fn` is a fn.
                    match words.next() {
                        Some(second) if R8_ITEMS.contains(&second) => second,
                        _ if first == "const" => "const",
                        _ => continue,
                    }
                } else {
                    first
                };
                if !R8_ITEMS.contains(&kw) {
                    continue;
                }
                if suppressed(line, RuleId::Docs, &file.rel_path, i + 1, out) {
                    continue;
                }
                // Walk back over attribute lines to the doc comment.
                let mut documented =
                    kw == "mod" && mod_file_has_inner_docs(krate, &file.rel_path, rest);
                let mut j = i;
                while j > 0 {
                    j -= 1;
                    let Some(prev) = file.lines.get(j) else { break };
                    if prev.is_doc {
                        // Inner `//!` docs document the enclosing scope,
                        // not the item that happens to follow them.
                        documented |= !prev.raw.trim_start().starts_with("//!");
                        break;
                    }
                    let pt = prev.raw.trim();
                    let attr_ish = pt.starts_with("#[") || pt.ends_with(")]") || pt.ends_with(',');
                    if !attr_ish {
                        break;
                    }
                }
                if !documented {
                    out.push(Finding {
                        rule: RuleId::Docs,
                        path: file.rel_path.clone(),
                        line: i + 1,
                        message: format!(
                            "public `{kw}` item has no doc comment (sj-{} is an \
                             estimator-facing API)",
                            krate.name
                        ),
                        severity: Severity::Deny,
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R9 — lock discipline
// ---------------------------------------------------------------------

/// The one file allowed to construct raw `std::sync` locks: the ranked
/// wrapper layer itself (which also hosts the tracker's internal log
/// mutex — a ranked wrapper there would recurse into itself).
const R9_EXEMPT_FILE: &str = "crates/core/src/sync.rs";

/// Raw lock constructors forbidden outside [`R9_EXEMPT_FILE`].
const R9_TOKENS: [&str; 2] = ["Mutex::new", "RwLock::new"];

/// R9: non-test library code constructs no raw `std::sync` locks — a
/// lock outside the ranked `sj_core::sync` wrappers is invisible to the
/// hierarchy check and to `verify-locks`, so the deadlock-freedom
/// argument (DESIGN.md §15) no longer covers it. `find_token` is
/// identifier-boundary-aware, so `OrderedMutex::new` does not match.
pub fn check_lock_construction(ws: &Workspace, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        for file in &krate.files {
            if file.rel_path == R9_EXEMPT_FILE {
                continue;
            }
            for (i, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                for tok in R9_TOKENS {
                    if has_token(&line.code, tok)
                        && !suppressed(line, RuleId::LockDiscipline, &file.rel_path, i + 1, out)
                    {
                        out.push(Finding {
                            rule: RuleId::LockDiscipline,
                            path: file.rel_path.clone(),
                            line: i + 1,
                            message: format!(
                                "raw `{tok}` in library code: construct an \
                                 `sj_core::sync::Ordered{tok}` with a `LockRank` instead, so \
                                 the lock participates in the hierarchy check and \
                                 `verify-locks`; deliberate exceptions need \
                                 `// sj-lint: allow(lock-discipline, <why>)`"
                            ),
                            severity: Severity::Deny,
                        });
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// R10 — blocking I/O under a held lock guard
// ---------------------------------------------------------------------

/// Blocking file/socket I/O calls forbidden inside a guard region.
const R10_IO_TOKENS: [&str; 5] = [
    "File::",
    "TcpStream::",
    "sync_all",
    "read_to_end",
    "write_all",
];

/// Guard-producing calls whose retained `let` bindings open a region.
const R10_LOCK_CALLS: [&str; 3] = [".lock()", ".read()", ".write()"];

/// Poison-recovery chains that may trail a lock call without making the
/// binding a temporary.
const R10_POISON_CHAINS: [&str; 3] = [
    ".unwrap_or_else(std::sync::PoisonError::into_inner)",
    ".unwrap_or_else(PoisonError::into_inner)",
    ".unwrap_or_else(|e| e.into_inner())",
];

/// Whether `code` is a retained guard binding: a `let` whose right-hand
/// side *ends* with a lock call (temporaries like `queue.lock().next()`
/// release before the expression finishes and are not regions).
fn is_guard_binding(code: &str) -> bool {
    let t = code.trim();
    if !t.starts_with("let ") {
        return false;
    }
    let mut rest = t.to_string();
    for chain in R10_POISON_CHAINS {
        rest = rest.replace(chain, "");
    }
    let Some(pos) = R10_LOCK_CALLS
        .iter()
        .filter_map(|c| rest.rfind(c).map(|p| p + c.len()))
        .max()
    else {
        return false;
    };
    rest.get(pos..).unwrap_or("?").trim() == ";"
}

/// Net brace-depth tracking over blanked `code` (strings and comments
/// are already erased by the scanner, so every brace is structural).
fn brace_delta(code: &str) -> (usize, usize) {
    let opens = code.bytes().filter(|&b| b == b'{').count();
    let closes = code.bytes().filter(|&b| b == b'}').count();
    (opens, closes)
}

/// R10: flags blocking I/O calls lexically inside a live lock-guard
/// region. A region opens at a retained `let guard = ...lock();`
/// binding and closes when the brace depth drops below the binding's —
/// a lexical approximation: `drop(guard)` early releases are invisible
/// and need a reasoned suppression at the I/O site.
pub fn check_io_under_lock(ws: &Workspace, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        for file in &krate.files {
            // Depth at which each currently-open guard region began.
            let mut regions: Vec<usize> = Vec::new();
            let mut depth = 0usize;
            for (i, line) in file.lines.iter().enumerate() {
                if !regions.is_empty() && !line.in_test {
                    for tok in R10_IO_TOKENS {
                        if line.code.contains(tok)
                            && !suppressed(line, RuleId::IoUnderLock, &file.rel_path, i + 1, out)
                        {
                            out.push(Finding {
                                rule: RuleId::IoUnderLock,
                                path: file.rel_path.clone(),
                                line: i + 1,
                                message: format!(
                                    "blocking I/O `{tok}` inside a lock-guard region: an \
                                     fsync or socket wait under a held lock stalls every \
                                     contender — release the guard first (the catalog's \
                                     three-phase mutation path exists for exactly this), or \
                                     explain the early release with \
                                     `// sj-lint: allow(io-under-lock, <why>)`"
                                ),
                                severity: Severity::Deny,
                            });
                            break;
                        }
                    }
                }
                if !line.in_test && is_guard_binding(&line.code) {
                    regions.push(depth);
                }
                let (opens, closes) = brace_delta(&line.code);
                depth = (depth + opens).saturating_sub(closes);
                regions.retain(|&d| depth >= d);
            }
        }
    }
}

// ---------------------------------------------------------------------
// R11 — atomic ordering discipline
// ---------------------------------------------------------------------

/// Weaker-than-`SeqCst` atomic orderings that need a justification.
/// `SeqCst` itself is always clean; `cmp::Ordering` variants are not in
/// this list, so fully-qualified comparison code never collides.
const R11_TOKENS: [&str; 4] = [
    "Ordering::Relaxed",
    "Ordering::Acquire",
    "Ordering::Release",
    "Ordering::AcqRel",
];

/// R11: every atomic `Ordering::` argument in non-test library code is
/// `SeqCst` unless a suppression names the invariant that makes the
/// weaker ordering sound. Lock-free subtlety must be opt-in and
/// documented, never the accidental default.
pub fn check_atomic_ordering(ws: &Workspace, out: &mut Vec<Finding>) {
    for krate in &ws.crates {
        for file in &krate.files {
            for (i, line) in file.lines.iter().enumerate() {
                if line.in_test {
                    continue;
                }
                for tok in R11_TOKENS {
                    if has_token(&line.code, tok)
                        && !suppressed(line, RuleId::AtomicOrdering, &file.rel_path, i + 1, out)
                    {
                        out.push(Finding {
                            rule: RuleId::AtomicOrdering,
                            path: file.rel_path.clone(),
                            line: i + 1,
                            message: format!(
                                "weak atomic ordering `{tok}`: use `Ordering::SeqCst`, or \
                                 document the invariant that makes the relaxation sound with \
                                 `// sj-lint: allow(atomic-ordering, <invariant>)`"
                            ),
                            severity: Severity::Deny,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rule_parse_accepts_code_and_slug() {
        assert_eq!(RuleId::parse("r4"), Some(RuleId::Cast));
        assert_eq!(RuleId::parse("cast"), Some(RuleId::Cast));
        assert_eq!(RuleId::parse("nope"), None);
    }

    #[test]
    fn float_use_detection() {
        assert!(has_float_use("let x: f64 = y;"));
        assert!(has_float_use("acc += 0.5;"));
        assert!(has_float_use("let x = 2f64;"));
        assert!(!has_float_use("let m = Mass::from_f64(a);"));
        assert!(!has_float_use("for i in 0..9 {"));
        assert!(!has_float_use("let n = count + 1;"));
    }

    #[test]
    fn index_site_detection() {
        assert!(index_sites("let x: &[u8] = y;").is_empty());
        assert_eq!(index_sites("c[idx] = v;").len(), 1);
        assert!(index_sites("#[derive(Debug)]").is_empty());
        assert!(index_sites("vec![0; n]").is_empty());
        assert!(index_sites("let a: [u8; 8] = x;").is_empty());
        assert!(!index_sites("data[..4]").is_empty());
    }

    #[test]
    fn macro_detection() {
        assert!(has_macro("panic!(\"boom\")", "panic"));
        assert!(!has_macro("no_panic()", "panic"));
        assert!(!has_macro("panicky", "panic"));
    }
}
