//! Dynamic merge-equivalence verification — the `verify-merge`
//! subcommand.
//!
//! The static rules r1/r2 guard the *lexical* preconditions of
//! bit-identical shard-and-merge histogram builds (no nondeterminism, no
//! floats in merge paths). This module executes the contract end-to-end:
//! it generates seeded datasets (uniform + skewed, via `sj-datagen`),
//! builds every [`HistogramKind`] serially and sharded across several
//! shard counts under **both** partition schemes — row bands
//! ([`build_histogram_parallel`]) and rectangle ranges
//! ([`build_histogram_sharded`]) — and asserts the merged `.hist`
//! envelope bytes equal the serial build's. A mismatch is localized with
//! [`first_divergence`] to the first differing cell and statistic, not
//! reported as a bare "bytes differ".
//!
//! Everything is deterministic (lint rule r1): datasets come from fixed
//! seeds, the scenario matrix is a fixed product, and no wall clock or
//! OS entropy is consulted — two runs of `sj-lint verify-merge` produce
//! identical reports.
//!
//! Fault injection ([`Fault`]) deliberately breaks the merged side of
//! every trial so the self-tests (and `--inject` on the CLI) can prove
//! the verifier actually catches broken merges and names the right cell
//! and statistic.

use crate::report::Format;
use sj_datagen::presets;
use sj_geo::Rect;
use sj_histogram::{
    build_histogram, build_histogram_parallel, build_histogram_sharded, first_divergence,
    Divergence, Grid, HistogramError, HistogramKind,
};

/// How the input is partitioned before the shard builds are merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Partition {
    /// Grid rows banded across scoped worker threads
    /// ([`build_histogram_parallel`] with `shards` threads).
    RowBand,
    /// The rectangle array split into contiguous ranges, each built
    /// independently and merged ([`build_histogram_sharded`]).
    RectRange,
}

impl Partition {
    /// Both partition schemes, in report order.
    pub const ALL: [Partition; 2] = [Partition::RowBand, Partition::RectRange];

    /// Stable name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Partition::RowBand => "row-band",
            Partition::RectRange => "rect-range",
        }
    }
}

/// A deliberately broken merge, injected into the *merged* side of every
/// trial (the serial baseline stays untouched) so self-tests can prove
/// the verifier catches real faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Drop the final rectangle from the partitioned input — the moral
    /// equivalent of a merge that loses one shard's boundary-group
    /// count. Caught by every family as a scalar `n` divergence.
    DropLastRect,
    /// Nudge one coordinate of the first rectangle by `1e-7` — the moral
    /// equivalent of float-accumulation drift in a fractional statistic.
    /// Caught by the mass-carrying families (PH, revised GH) as a
    /// cell-level divergence; the integer-only families are insensitive
    /// to sub-cell geometry by design.
    NudgeFirstRect,
}

impl Fault {
    /// Stable name accepted by `--inject` and used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Fault::DropLastRect => "drop-last-rect",
            Fault::NudgeFirstRect => "nudge-first-rect",
        }
    }

    /// Resolves an `--inject` argument.
    #[must_use]
    pub fn parse(name: &str) -> Option<Fault> {
        [Fault::DropLastRect, Fault::NudgeFirstRect]
            .into_iter()
            .find(|f| f.name() == name)
    }
}

/// The scenario matrix the verifier runs.
#[derive(Debug, Clone)]
pub struct VerifyConfig {
    /// Scale factor on the scenario cardinalities
    /// ([`presets::VERIFY_COUNT`] at `1.0`).
    pub scale: f64,
    /// Grid levels to build at (`4^level` cells each).
    pub levels: Vec<u32>,
    /// Shard counts: thread counts for row-band partitions and range
    /// counts for rect-range partitions.
    pub shard_counts: Vec<usize>,
    /// Optional fault injected into the merged side of every trial.
    pub fault: Option<Fault>,
}

impl Default for VerifyConfig {
    fn default() -> Self {
        VerifyConfig {
            scale: 1.0,
            levels: vec![3, 6],
            shard_counts: vec![2, 3, 5, 8],
            fault: None,
        }
    }
}

/// Result of one trial's byte comparison.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// The merged `.hist` envelope is byte-identical to the serial one.
    Identical,
    /// The envelopes differ; the first differing cell/statistic.
    Diverged(Divergence),
    /// The envelopes differ but no statistic divergence was located —
    /// envelope-level disagreement that should be unreachable.
    BytesOnly,
}

/// One (scenario, kind, level, partition, shard-count) comparison.
#[derive(Debug, Clone, PartialEq)]
pub struct Trial {
    /// Scenario dataset name (`verify-uniform`, `verify-skewed`).
    pub scenario: String,
    /// Histogram family under test.
    pub kind: HistogramKind,
    /// Grid level of the build.
    pub level: u32,
    /// Partition scheme of the merged build.
    pub partition: Partition,
    /// Thread count (row-band) or range count (rect-range).
    pub shards: usize,
    /// Whether the merged bytes matched the serial bytes.
    pub outcome: Outcome,
}

impl Trial {
    /// `scenario/kind/L<level>/<partition>x<shards>` — the stable trial
    /// coordinate used in reports.
    #[must_use]
    pub fn coordinate(&self) -> String {
        format!(
            "{}/{}/L{}/{}x{}",
            self.scenario,
            self.kind.name(),
            self.level,
            self.partition.name(),
            self.shards
        )
    }
}

/// The full verification run: every trial in matrix order.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    /// All trials, in deterministic matrix order.
    pub trials: Vec<Trial>,
    /// The fault injected into the merged builds, if any.
    pub fault: Option<Fault>,
}

impl VerifyReport {
    /// Trials whose merged bytes differed from the serial build.
    pub fn divergent(&self) -> impl Iterator<Item = &Trial> {
        self.trials
            .iter()
            .filter(|t| t.outcome != Outcome::Identical)
    }

    /// Whether every trial was byte-identical.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.divergent().next().is_none()
    }

    /// Renders the report in the selected format, mirroring `check`:
    /// one line per divergence plus a summary (human), or a single JSON
    /// object (json).
    #[must_use]
    pub fn render(&self, format: Format) -> String {
        match format {
            Format::Human => self.render_human(),
            Format::Json => self.render_json(),
        }
    }

    fn render_human(&self) -> String {
        let mut out = String::new();
        if let Some(fault) = self.fault {
            out.push_str(&format!(
                "sj-lint verify-merge: injecting fault `{}` into every merged build\n",
                fault.name()
            ));
        }
        for t in self.divergent() {
            let detail = match &t.outcome {
                Outcome::Diverged(d) => d.to_string(),
                _ => "persisted bytes differ but no statistic divergence was located".to_string(),
            };
            out.push_str(&format!(
                "{}: error[verify-merge] merged envelope differs from serial build: {detail}\n",
                t.coordinate()
            ));
        }
        let divergent = self.divergent().count();
        if divergent == 0 {
            out.push_str(&format!(
                "sj-lint verify-merge: clean ({} trials, every merged build byte-identical \
                 to its serial build)\n",
                self.trials.len()
            ));
        } else {
            out.push_str(&format!(
                "sj-lint verify-merge: {divergent} of {} trials diverged\n",
                self.trials.len()
            ));
        }
        out
    }

    fn render_json(&self) -> String {
        use crate::report::escape;
        let mut out = String::from("{\n  \"divergences\": [\n");
        let divergent: Vec<&Trial> = self.divergent().collect();
        for (i, t) in divergent.iter().enumerate() {
            let (statistic, cell, left, right) = match &t.outcome {
                Outcome::Diverged(d) => (
                    format!("\"{}\"", escape(d.statistic)),
                    d.cell.map_or("null".to_string(), |c| {
                        format!(
                            "{{\"col\": {}, \"row\": {}, \"index\": {}}}",
                            c.col, c.row, c.index
                        )
                    }),
                    format!("\"{}\"", escape(&d.left)),
                    format!("\"{}\"", escape(&d.right)),
                ),
                _ => (
                    "null".to_string(),
                    "null".to_string(),
                    "null".to_string(),
                    "null".to_string(),
                ),
            };
            out.push_str(&format!(
                "    {{\"trial\": \"{}\", \"scenario\": \"{}\", \"kind\": \"{}\", \
                 \"level\": {}, \"partition\": \"{}\", \"shards\": {}, \
                 \"statistic\": {statistic}, \"cell\": {cell}, \
                 \"left\": {left}, \"right\": {right}}}{}\n",
                escape(&t.coordinate()),
                escape(&t.scenario),
                t.kind.name(),
                t.level,
                t.partition.name(),
                t.shards,
                if i + 1 < divergent.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str(&format!(
            "  \"fault\": {},\n",
            self.fault
                .map_or("null".to_string(), |f| format!("\"{}\"", f.name()))
        ));
        out.push_str(&format!("  \"trials\": {},\n", self.trials.len()));
        out.push_str(&format!("  \"divergent\": {},\n", divergent.len()));
        out.push_str(&format!("  \"clean\": {}\n}}\n", self.is_clean()));
        out
    }
}

/// Applies `fault` to a copy of the merged builds' input (also reused
/// by `verify-delta` on the delta's insert batch).
pub(crate) fn apply_fault(fault: Fault, rects: &[Rect]) -> Vec<Rect> {
    let mut out = rects.to_vec();
    match fault {
        Fault::DropLastRect => {
            out.pop();
        }
        Fault::NudgeFirstRect => {
            if let Some(first) = out.first_mut() {
                *first = Rect::new(first.xlo + 1e-7, first.ylo, first.xhi, first.yhi);
            }
        }
    }
    out
}

/// Runs the full scenario matrix: for every seeded scenario dataset,
/// grid level and histogram family, builds the serial baseline once and
/// compares it byte-for-byte against a merged build for every
/// (partition, shard-count) combination.
///
/// # Errors
/// Returns [`HistogramError`] when a configured grid level is invalid
/// (the builds and comparisons themselves cannot fail).
pub fn run_verify(config: &VerifyConfig) -> Result<VerifyReport, HistogramError> {
    let mut trials = Vec::new();
    for dataset in presets::verify_scenarios(config.scale) {
        let tampered = config.fault.map(|f| apply_fault(f, &dataset.rects));
        let merged_input: &[Rect] = tampered.as_deref().unwrap_or(&dataset.rects);
        for &level in &config.levels {
            let grid = Grid::new(level, dataset.extent)?;
            for kind in HistogramKind::ALL {
                let serial = build_histogram(kind, grid, &dataset.rects);
                let serial_envelope = serial.persist();
                for partition in Partition::ALL {
                    for &shards in &config.shard_counts {
                        let merged = match partition {
                            Partition::RowBand => {
                                build_histogram_parallel(kind, grid, merged_input, shards)
                            }
                            Partition::RectRange => {
                                let chunk = merged_input.len().div_ceil(shards).max(1);
                                let ranges: Vec<&[Rect]> = merged_input.chunks(chunk).collect();
                                build_histogram_sharded(kind, grid, &ranges)
                            }
                        };
                        let outcome = if merged.persist() == serial_envelope {
                            Outcome::Identical
                        } else {
                            match first_divergence(serial.as_ref(), merged.as_ref())? {
                                Some(d) => Outcome::Diverged(d),
                                None => Outcome::BytesOnly,
                            }
                        };
                        trials.push(Trial {
                            scenario: dataset.name.clone(),
                            kind,
                            level,
                            partition,
                            shards,
                            outcome,
                        });
                    }
                }
            }
        }
    }
    Ok(VerifyReport {
        trials,
        fault: config.fault,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A small matrix for fast tests: one level, two shard counts.
    fn small(fault: Option<Fault>) -> VerifyConfig {
        VerifyConfig {
            scale: 0.1,
            levels: vec![4],
            shard_counts: vec![2, 5],
            fault,
        }
    }

    #[test]
    fn real_builds_are_merge_equivalent() {
        let report = run_verify(&small(None)).unwrap();
        assert_eq!(report.trials.len(), 2 * 4 * 2 * 2, "full matrix ran");
        assert!(report.is_clean(), "{}", report.render(Format::Human));
        let human = report.render(Format::Human);
        assert!(human.contains("clean"), "{human}");
        let json = report.render(Format::Json);
        assert!(json.contains("\"clean\": true"), "{json}");
        assert!(json.contains("\"divergent\": 0"), "{json}");
    }

    #[test]
    fn report_is_deterministic() {
        let a = run_verify(&small(None)).unwrap();
        let b = run_verify(&small(None)).unwrap();
        assert_eq!(a.trials, b.trials, "rule r1: identical run-to-run");
    }

    #[test]
    fn fault_parse_roundtrip() {
        for fault in [Fault::DropLastRect, Fault::NudgeFirstRect] {
            assert_eq!(Fault::parse(fault.name()), Some(fault));
        }
        assert_eq!(Fault::parse("nope"), None);
    }
}
