//! R7 — persistence-schema fingerprinting.
//!
//! Every `to_bytes` / `from_bytes` function in `sj-histogram` defines
//! part of the on-disk statistics format, and every one in `sj-server`
//! defines part of the daemon's wire protocol. Changing one of those
//! bodies without bumping the owning format version (`ENVELOPE_VERSION`
//! for `.hist` files, `WIRE_VERSION` for server frames) would silently
//! break files written — or clients built — by older builds, so the
//! bodies are fingerprinted (CRC32 over comment-stripped,
//! whitespace-normalized source, string literals included — magic bytes
//! are part of the wire format) and the fingerprints are checked in at
//! `crates/lint/schema.fpr`.
//!
//! `cargo run -p sj-lint -- check` fails when a fingerprint drifts
//! while the recorded envelope version is still current;
//! `cargo run -p sj-lint -- fingerprint --update` re-baselines after a
//! version bump (and demands `--allow-same-version` for deliberately
//! wire-compatible refactors, so the easy path is the honest one).

use crate::rules::{Finding, RuleId, Severity};
use crate::scan::{find_token, SourceFile};
use crate::Workspace;

/// Workspace-relative location of the checked-in fingerprint file.
pub const SCHEMA_PATH: &str = "crates/lint/schema.fpr";

/// Function names whose bodies define the persistence schema.
const SCHEMA_FNS: [&str; 2] = ["to_bytes", "from_bytes"];

/// Crates whose schema functions are fingerprinted, paired with the
/// version constant that must be bumped when a body changes.
const SCHEMA_CRATES: [(&str, &str); 2] = [
    ("histogram", "ENVELOPE_VERSION"),
    ("server", "WIRE_VERSION"),
];

/// One fingerprinted persistence function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FpEntry {
    /// `<path> <fn>#<ordinal>`, e.g. `crates/histogram/src/gh.rs to_bytes#1`.
    pub key: String,
    /// CRC32 of the normalized body.
    pub crc: u32,
    /// First line of the function (1-based) — for finding anchors.
    pub line: usize,
}

/// Reflected IEEE CRC32, self-contained so the checker has no deps.
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    const POLY: u32 = 0xEDB8_8320;
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc ^= u32::from(byte);
        for _ in 0..8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
        }
    }
    !crc
}

/// Extracts a `const <token>: u16/u32 = N;` value from one crate.
fn const_version(ws: &Workspace, krate_name: &str, token: &str) -> Option<u32> {
    for krate in &ws.crates {
        if krate.name != krate_name {
            continue;
        }
        for file in &krate.files {
            for line in &file.lines {
                if find_token(&line.code, token).is_some()
                    && find_token(&line.code, "const").is_some()
                {
                    let after_eq = line.code.split('=').nth(1)?;
                    let digits: String = after_eq
                        .chars()
                        .skip_while(|c| !c.is_ascii_digit())
                        .take_while(char::is_ascii_digit)
                        .collect();
                    return digits.parse().ok();
                }
            }
        }
    }
    None
}

/// Extracts the current envelope version from sj-histogram's
/// `const ENVELOPE_VERSION: u32 = N;`.
#[must_use]
pub fn envelope_version(ws: &Workspace) -> Option<u32> {
    const_version(ws, "histogram", "ENVELOPE_VERSION")
}

/// Extracts the current daemon wire version from sj-server's
/// `const WIRE_VERSION: u16 = N;`. `None` while the crate is absent.
#[must_use]
pub fn wire_version(ws: &Workspace) -> Option<u32> {
    const_version(ws, "server", "WIRE_VERSION")
}

/// Computes fingerprints for every schema function in the fingerprinted
/// crates (sj-histogram on-disk format, sj-server wire protocol).
#[must_use]
pub fn fingerprint_entries(ws: &Workspace) -> Vec<FpEntry> {
    let mut out = Vec::new();
    for krate in &ws.crates {
        if !SCHEMA_CRATES.iter().any(|(name, _)| *name == krate.name) {
            continue;
        }
        for file in &krate.files {
            collect_file_entries(file, &mut out);
        }
    }
    out.sort_by(|a, b| a.key.cmp(&b.key));
    out
}

/// Which version constant guards an entry, judged from its path.
fn version_const_for(key: &str) -> &'static str {
    if key.starts_with("crates/server/") {
        "WIRE_VERSION"
    } else {
        "ENVELOPE_VERSION"
    }
}

/// Collects schema-fn fingerprints from one file, numbering same-name
/// functions by order of appearance.
fn collect_file_entries(file: &SourceFile, out: &mut Vec<FpEntry>) {
    for target in SCHEMA_FNS {
        let mut ordinal = 0usize;
        let mut i = 0usize;
        while i < file.lines.len() {
            let in_target = file
                .lines
                .get(i)
                .is_some_and(|l| !l.in_test && l.fn_name.as_deref() == Some(target));
            if !in_target {
                i += 1;
                continue;
            }
            // A run of lines attributed to this function is one body.
            let start = i;
            let mut body = String::new();
            while i < file.lines.len()
                && file
                    .lines
                    .get(i)
                    .is_some_and(|l| l.fn_name.as_deref() == Some(target))
            {
                if let Some(line) = file.lines.get(i) {
                    let norm = normalize(&line.nocomment);
                    if !norm.is_empty() {
                        body.push_str(&norm);
                        body.push('\n');
                    }
                }
                i += 1;
            }
            out.push(FpEntry {
                key: format!("{} {target}#{ordinal}", file.rel_path),
                crc: crc32(body.as_bytes()),
                line: start + 1,
            });
            ordinal += 1;
        }
    }
}

/// Collapses runs of whitespace so formatting-only edits don't count as
/// schema changes.
fn normalize(text: &str) -> String {
    let mut out = String::new();
    let mut last_space = true;
    for c in text.trim().chars() {
        if c.is_whitespace() {
            if !last_space {
                out.push(' ');
                last_space = true;
            }
        } else {
            out.push(c);
            last_space = false;
        }
    }
    out
}

/// Renders the fingerprint file contents.
#[must_use]
pub fn render(version: Option<u32>, wire: Option<u32>, entries: &[FpEntry]) -> String {
    let mut out = String::new();
    out.push_str("# sj-lint persistence schema fingerprint (rule R7).\n");
    out.push_str("# Regenerate with: cargo run -p sj-lint -- fingerprint --update\n");
    if let Some(v) = version {
        out.push_str(&format!("envelope-version {v}\n"));
    }
    if let Some(v) = wire {
        out.push_str(&format!("wire-version {v}\n"));
    }
    for e in entries {
        out.push_str(&format!("fn {:08x} {}\n", e.crc, e.key));
    }
    out
}

/// Parses a fingerprint file:
/// `(envelope_version, wire_version, entries)`. Unknown lines are
/// ignored so the format can grow.
#[must_use]
pub fn parse(text: &str) -> (Option<u32>, Option<u32>, Vec<FpEntry>) {
    let mut version = None;
    let mut wire = None;
    let mut entries = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(v) = line.strip_prefix("envelope-version ") {
            version = v.trim().parse().ok();
        } else if let Some(v) = line.strip_prefix("wire-version ") {
            wire = v.trim().parse().ok();
        } else if let Some(rest) = line.strip_prefix("fn ") {
            let mut parts = rest.splitn(2, ' ');
            let crc = parts.next().and_then(|h| u32::from_str_radix(h, 16).ok());
            let key = parts.next().map(str::trim);
            if let (Some(crc), Some(key)) = (crc, key) {
                entries.push(FpEntry {
                    key: key.to_string(),
                    crc,
                    line: 0,
                });
            }
        }
    }
    (version, wire, entries)
}

/// R7 check: compares the live fingerprints against the recorded file.
pub fn check_persistence(ws: &Workspace, out: &mut Vec<Finding>) {
    let current_version = envelope_version(ws);
    let current_wire = wire_version(ws);
    let current = fingerprint_entries(ws);
    let finding = |line: usize, path: &str, message: String| Finding {
        rule: RuleId::Persistence,
        path: path.to_string(),
        line,
        message,
        severity: Severity::Deny,
    };

    let Some(recorded_text) = ws.fingerprint.as_deref() else {
        out.push(finding(
            1,
            SCHEMA_PATH,
            format!(
                "schema fingerprint file `{SCHEMA_PATH}` is missing; generate it with \
                 `cargo run -p sj-lint -- fingerprint --update`"
            ),
        ));
        return;
    };
    let Some(cur_version) = current_version else {
        out.push(finding(
            1,
            "crates/histogram/src/traits.rs",
            "could not locate `const ENVELOPE_VERSION` in sj-histogram".to_string(),
        ));
        return;
    };
    let (recorded_version, recorded_wire, recorded) = parse(recorded_text);
    let Some(rec_version) = recorded_version else {
        out.push(finding(
            1,
            SCHEMA_PATH,
            "fingerprint file has no `envelope-version` line; regenerate it with \
             `cargo run -p sj-lint -- fingerprint --update`"
                .to_string(),
        ));
        return;
    };
    if rec_version != cur_version {
        out.push(finding(
            1,
            SCHEMA_PATH,
            format!(
                "ENVELOPE_VERSION is {cur_version} but the schema fingerprint was recorded \
                 at version {rec_version}; refresh it with \
                 `cargo run -p sj-lint -- fingerprint --update`"
            ),
        ));
        return;
    }
    if current_wire != recorded_wire {
        let show = |v: Option<u32>| v.map_or_else(|| "absent".to_string(), |n| n.to_string());
        out.push(finding(
            1,
            SCHEMA_PATH,
            format!(
                "WIRE_VERSION is {} but the schema fingerprint recorded {}; refresh it with \
                 `cargo run -p sj-lint -- fingerprint --update`",
                show(current_wire),
                show(recorded_wire)
            ),
        ));
        return;
    }
    for cur in &current {
        let vconst = version_const_for(&cur.key);
        match recorded.iter().find(|r| r.key == cur.key) {
            None => out.push(finding(
                cur.line,
                cur.key.split(' ').next().unwrap_or(SCHEMA_PATH),
                format!(
                    "new persistence function `{}` is not in the schema fingerprint: bump \
                     {vconst} and run `cargo run -p sj-lint -- fingerprint --update`",
                    cur.key
                ),
            )),
            Some(rec) if rec.crc != cur.crc => out.push(finding(
                cur.line,
                cur.key.split(' ').next().unwrap_or(SCHEMA_PATH),
                format!(
                    "persistence function `{}` changed without a format version bump \
                     (fingerprint {:08x} -> {:08x}): any wire-format change must bump \
                     {vconst} and refresh the fingerprint \
                     (`cargo run -p sj-lint -- fingerprint --update`)",
                    cur.key, rec.crc, cur.crc
                ),
            )),
            Some(_) => {}
        }
    }
    for rec in &recorded {
        if !current.iter().any(|c| c.key == rec.key) {
            out.push(finding(
                1,
                SCHEMA_PATH,
                format!(
                    "persistence function `{}` disappeared from the tree: bump \
                     ENVELOPE_VERSION and refresh the fingerprint",
                    rec.key
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn normalize_collapses_whitespace() {
        assert_eq!(normalize("  a   b\tc  "), "a b c");
        assert_eq!(normalize(""), "");
    }

    #[test]
    fn entry_paths_pick_their_version_constant() {
        assert_eq!(
            version_const_for("crates/server/src/wire.rs to_bytes#0"),
            "WIRE_VERSION"
        );
        assert_eq!(
            version_const_for("crates/histogram/src/gh.rs to_bytes#0"),
            "ENVELOPE_VERSION"
        );
    }

    #[test]
    fn render_parse_roundtrip() {
        let entries = vec![
            FpEntry {
                key: "crates/histogram/src/ph.rs to_bytes#0".to_string(),
                crc: 0xDEAD_BEEF,
                line: 10,
            },
            FpEntry {
                key: "crates/histogram/src/ph.rs from_bytes#0".to_string(),
                crc: 0x1234_5678,
                line: 40,
            },
        ];
        let text = render(Some(2), Some(1), &entries);
        let (version, wire, parsed) = parse(&text);
        assert_eq!(version, Some(2));
        assert_eq!(wire, Some(1));
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0].crc, 0xDEAD_BEEF);
        assert_eq!(parsed[0].key, "crates/histogram/src/ph.rs to_bytes#0");
    }
}
