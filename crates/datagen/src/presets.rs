//! Preset workloads simulating the paper's eight datasets.
//!
//! Every preset takes a `scale` factor multiplying the paper cardinality
//! (`1.0` = full size, the default for the figure harnesses; tests use
//! small scales). Datasets that the paper joins together share the same
//! underlying cluster field — streams and census blocks of the same four
//! states cover the same geography — which is what makes their join
//! selectivity meaningful.

use crate::generators::{ClusterField, Generator, Placement, SizeModel};
use crate::Dataset;
use rand::rngs::StdRng;
use rand::SeedableRng;
use sj_geo::Point;

/// Paper cardinality of TS (TIGER streams, IA/KS/MO/NE).
pub const TS_COUNT: usize = 194_971;
/// Paper cardinality of TCB (TIGER census blocks, IA/KS/MO/NE).
pub const TCB_COUNT: usize = 556_696;
/// Paper cardinality of CAS (TIGER California streams).
pub const CAS_COUNT: usize = 98_451;
/// Paper cardinality of CAR (TIGER California roads).
pub const CAR_COUNT: usize = 2_249_727;
/// Paper cardinality of SP (Sequoia points).
pub const SP_COUNT: usize = 62_555;
/// Paper cardinality of SPG (Sequoia polygons).
pub const SPG_COUNT: usize = 79_607;
/// Paper cardinality of SCRC (synthetic clustered rects).
pub const SCRC_COUNT: usize = 100_000;
/// Paper cardinality of SURA (synthetic uniform rects).
pub const SURA_COUNT: usize = 100_000;

// Region seeds: each joined pair shares one geography.
const MIDWEST_SEED: u64 = 0x4d49_4457; // "MIDW"
const CALIFORNIA_SEED: u64 = 0x4341_4c49; // "CALI"
const SEQUOIA_SEED: u64 = 0x5345_5155; // "SEQU"

fn scaled(count: usize, scale: f64) -> usize {
    assert!(scale > 0.0, "scale must be positive");
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let n = (count as f64 * scale).round() as usize;
    n.max(1)
}

/// The four-state midwest geography: moderate clustering (the paper notes
/// TS/TCB are "clustered", giving PH its level-5 sweet spot).
fn midwest_field() -> ClusterField {
    let mut rng = StdRng::seed_from_u64(MIDWEST_SEED);
    ClusterField::random(&mut rng, 40, (0.03, 0.12), 0.8)
}

/// California geography: highly skewed, small dense clusters (the paper
/// attributes CAR/CAS behaviour to heavy skew).
fn california_field() -> ClusterField {
    let mut rng = StdRng::seed_from_u64(CALIFORNIA_SEED);
    ClusterField::random(&mut rng, 150, (0.004, 0.04), 1.6)
}

/// Sequoia geography: clustered environmental observation sites.
fn sequoia_field() -> ClusterField {
    let mut rng = StdRng::seed_from_u64(SEQUOIA_SEED);
    ClusterField::random(&mut rng, 60, (0.01, 0.06), 1.2)
}

/// TS — stream polyline MBRs over the midwest field: elongated,
/// irregular random-walk MBRs.
#[must_use]
pub fn ts(scale: f64) -> Dataset {
    Generator {
        name: "TS".into(),
        count: scaled(TS_COUNT, scale),
        placement: Placement::Clustered(midwest_field()),
        size: SizeModel::RandomWalk {
            steps: 12,
            step_len: 0.003,
        },
        seed: 101,
    }
    .generate()
}

/// TCB — census-block polygon MBRs over the midwest field: small compact
/// boxes with log-normal sides.
#[must_use]
pub fn tcb(scale: f64) -> Dataset {
    Generator {
        name: "TCB".into(),
        count: scaled(TCB_COUNT, scale),
        placement: Placement::Clustered(midwest_field()),
        size: SizeModel::LogNormalBox {
            mu: -6.3,
            sigma: 0.8,
            aspect_sigma: 0.3,
            max_side: 0.03,
        },
        seed: 102,
    }
    .generate()
}

/// CAS — California stream MBRs: elongated walks over the highly skewed
/// California field.
#[must_use]
pub fn cas(scale: f64) -> Dataset {
    Generator {
        name: "CAS".into(),
        count: scaled(CAS_COUNT, scale),
        placement: Placement::Clustered(california_field()),
        size: SizeModel::RandomWalk {
            steps: 14,
            step_len: 0.003,
        },
        seed: 103,
    }
    .generate()
}

/// CAR — California road-segment MBRs: tiny walks, enormous cardinality.
#[must_use]
pub fn car(scale: f64) -> Dataset {
    Generator {
        name: "CAR".into(),
        count: scaled(CAR_COUNT, scale),
        placement: Placement::Clustered(california_field()),
        size: SizeModel::RandomWalk {
            steps: 3,
            step_len: 0.0008,
        },
        seed: 104,
    }
    .generate()
}

/// SP — Sequoia point data: degenerate MBRs over the Sequoia field.
#[must_use]
pub fn sp(scale: f64) -> Dataset {
    Generator {
        name: "SP".into(),
        count: scaled(SP_COUNT, scale),
        placement: Placement::Clustered(sequoia_field()),
        size: SizeModel::Point,
        seed: 105,
    }
    .generate()
}

/// SPG — Sequoia polygon MBRs over the same field as SP.
#[must_use]
pub fn spg(scale: f64) -> Dataset {
    Generator {
        name: "SPG".into(),
        count: scaled(SPG_COUNT, scale),
        placement: Placement::Clustered(sequoia_field()),
        size: SizeModel::LogNormalBox {
            mu: -5.3,
            sigma: 1.0,
            aspect_sigma: 0.5,
            max_side: 0.08,
        },
        seed: 106,
    }
    .generate()
}

/// SCRC — 100,000 rectangles clustered around `(0.4, 0.7)`, exactly as the
/// paper describes its synthetic clustered dataset.
#[must_use]
pub fn scrc(scale: f64) -> Dataset {
    Generator {
        name: "SCRC".into(),
        count: scaled(SCRC_COUNT, scale),
        placement: Placement::Clustered(ClusterField::single(Point::new(0.4, 0.7), 0.12)),
        size: SizeModel::UniformSides {
            max_w: 0.004,
            max_h: 0.004,
        },
        seed: 107,
    }
    .generate()
}

/// SURA — 100,000 rectangles uniformly distributed in the unit square,
/// exactly as the paper describes its synthetic uniform dataset.
#[must_use]
pub fn sura(scale: f64) -> Dataset {
    Generator {
        name: "SURA".into(),
        count: scaled(SURA_COUNT, scale),
        placement: Placement::Uniform,
        size: SizeModel::UniformSides {
            max_w: 0.004,
            max_h: 0.004,
        },
        seed: 108,
    }
    .generate()
}

// ---------------------------------------------------------------------
// Merge-equivalence verification scenarios (`sj-lint verify-merge`)
// ---------------------------------------------------------------------

/// Base cardinality of each verification scenario at `scale = 1.0` —
/// small enough that the full verify-merge matrix runs in seconds, large
/// enough that every cell class (contained, boundary-crossing, spanning)
/// is populated at the levels the verifier builds.
pub const VERIFY_COUNT: usize = 3_000;

/// Seed of the skewed verification scenario's cluster field.
const VERIFY_FIELD_SEED: u64 = 0x5652_4659; // "VRFY"

/// `verify-uniform` — uniformly placed rectangles with uniform sides, the
/// benign scenario of the merge-equivalence verifier. Deterministic:
/// the same scale always yields the same rectangles (lint rule r1).
#[must_use]
pub fn verify_uniform(scale: f64) -> Dataset {
    Generator {
        name: "verify-uniform".into(),
        count: scaled(VERIFY_COUNT, scale),
        placement: Placement::Uniform,
        size: SizeModel::UniformSides {
            max_w: 0.06,
            max_h: 0.06,
        },
        seed: 201,
    }
    .generate()
}

/// `verify-skewed` — heavily clustered rectangles with log-normal sides:
/// skew concentrates many MBRs (and their clipped masses) in few cells,
/// the regime where a broken merge would accumulate order-dependent
/// error fastest. Deterministic like [`verify_uniform`].
#[must_use]
pub fn verify_skewed(scale: f64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(VERIFY_FIELD_SEED);
    let field = ClusterField::random(&mut rng, 12, (0.01, 0.08), 1.5);
    Generator {
        name: "verify-skewed".into(),
        count: scaled(VERIFY_COUNT, scale),
        placement: Placement::Clustered(field),
        size: SizeModel::LogNormalBox {
            mu: -4.4,
            sigma: 1.1,
            aspect_sigma: 0.6,
            max_side: 0.2,
        },
        seed: 202,
    }
    .generate()
}

/// Both seeded scenario datasets of the merge-equivalence verifier, in a
/// stable order: uniform then skewed.
#[must_use]
pub fn verify_scenarios(scale: f64) -> Vec<Dataset> {
    vec![verify_uniform(scale), verify_skewed(scale)]
}

/// The four joins evaluated in the paper's Figures 6 and 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PaperJoin {
    /// TS ⋈ TCB — polylines with polygons, moderate clustering.
    TsTcb,
    /// CAS ⋈ CAR — unequal cardinalities (1 : 23), heavy skew.
    CasCar,
    /// SP ⋈ SPG — points with polygons.
    SpSpg,
    /// SCRC ⋈ SURA — clustered with uniform synthetic rects.
    ScrcSura,
}

/// All four paper joins, in figure order.
pub const ALL_JOINS: [PaperJoin; 4] = [
    PaperJoin::TsTcb,
    PaperJoin::CasCar,
    PaperJoin::SpSpg,
    PaperJoin::ScrcSura,
];

impl PaperJoin {
    /// Display name matching the paper's figure captions.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PaperJoin::TsTcb => "TS with TCB",
            PaperJoin::CasCar => "CAS with CAR",
            PaperJoin::SpSpg => "SP with SPG",
            PaperJoin::ScrcSura => "SCRC with SURA",
        }
    }

    /// Materializes the two datasets at the given scale.
    #[must_use]
    pub fn datasets(self, scale: f64) -> (Dataset, Dataset) {
        match self {
            PaperJoin::TsTcb => (ts(scale), tcb(scale)),
            PaperJoin::CasCar => (cas(scale), car(scale)),
            PaperJoin::SpSpg => (sp(scale), spg(scale)),
            PaperJoin::ScrcSura => (scrc(scale), sura(scale)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_cardinalities() {
        assert_eq!(ts(0.01).len(), 1950);
        assert_eq!(tcb(0.001).len(), 557);
        assert_eq!(scrc(1.0e-4).len(), 10);
        assert_eq!(
            sura(1.0e-6).len(),
            1,
            "scale never produces an empty dataset"
        );
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_scale_panics() {
        let _ = ts(0.0);
    }

    #[test]
    fn presets_are_deterministic() {
        assert_eq!(cas(0.005).rects, cas(0.005).rects);
        assert_eq!(sp(0.01).rects, sp(0.01).rects);
    }

    #[test]
    fn verify_scenarios_are_deterministic_and_distinct() {
        let a = verify_scenarios(0.1);
        let b = verify_scenarios(0.1);
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].name, "verify-uniform");
        assert_eq!(a[1].name, "verify-skewed");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.rects, y.rects, "{} must be seeded", x.name);
        }
        assert_ne!(a[0].rects, a[1].rects);
        assert_eq!(a[0].len(), 300);
    }

    #[test]
    fn verify_skewed_is_more_clustered_than_uniform() {
        // The skewed scenario must actually exercise the skew regime:
        // its densest cells hold more mass than the uniform scenario's.
        fn top_cell_mass(ds: &Dataset) -> f64 {
            let mut counts = [0usize; 64];
            for r in &ds.rects {
                let c = r.center();
                let i = ((c.x * 8.0) as usize).min(7);
                let j = ((c.y * 8.0) as usize).min(7);
                counts[j * 8 + i] += 1;
            }
            counts.sort_unstable_by(|a, b| b.cmp(a));
            counts[..4].iter().sum::<usize>() as f64 / ds.len() as f64
        }
        let uni = top_cell_mass(&verify_uniform(0.5));
        let skew = top_cell_mass(&verify_skewed(0.5));
        assert!(
            skew > 2.0 * uni,
            "expected strong skew (uniform {uni:.3}, skewed {skew:.3})"
        );
    }

    #[test]
    fn sp_is_a_point_dataset() {
        let ds = sp(0.01);
        assert!((ds.stats().degenerate_fraction - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn paired_datasets_share_geography() {
        // The joined pairs must overlap spatially, otherwise their join
        // selectivity is degenerate. Check the mass centers are close and
        // the pairwise join is non-empty at a small scale.
        for join in ALL_JOINS {
            let (a, b) = join.datasets(0.02);
            let pairs = sj_sweep_shim::count(&a.rects, &b.rects);
            assert!(pairs > 0, "{} produced an empty join", join.name());
        }
    }

    // Minimal local shim so sj-datagen does not depend on sj-sweep just
    // for this test (workspace layering: sweep depends on geo only, and
    // the cross-crate agreement is tested in the integration suite).
    mod sj_sweep_shim {
        use sj_geo::Rect;
        pub fn count(a: &[Rect], b: &[Rect]) -> u64 {
            let mut n = 0;
            for ra in a {
                for rb in b {
                    if ra.intersects(rb) {
                        n += 1;
                    }
                }
            }
            n
        }
    }

    #[test]
    fn cardinality_ratio_preserved() {
        let (a, b) = PaperJoin::CasCar.datasets(0.01);
        let ratio = b.len() as f64 / a.len() as f64;
        assert!((ratio - 22.85).abs() < 0.5, "CAS:CAR ratio {ratio}");
    }

    #[test]
    fn skew_differs_between_regions() {
        // California should be more skewed than the midwest: measure the
        // fraction of mass in the densest 4 of 64 grid cells.
        fn top_cell_mass(ds: &Dataset) -> f64 {
            let mut counts = [0usize; 64];
            for r in &ds.rects {
                let c = r.center();
                let i = ((c.x * 8.0) as usize).min(7);
                let j = ((c.y * 8.0) as usize).min(7);
                counts[j * 8 + i] += 1;
            }
            counts.sort_unstable_by(|a, b| b.cmp(a));
            counts[..4].iter().sum::<usize>() as f64 / ds.len() as f64
        }
        let midwest = top_cell_mass(&ts(0.05));
        let cali = top_cell_mass(&cas(0.05));
        assert!(
            cali > midwest,
            "expected CA ({cali:.3}) more skewed than midwest ({midwest:.3})"
        );
    }
}
