//! Typed dataset-ingestion errors with line and field provenance.

use sj_geo::RectIssue;
use std::fmt;
use std::io;

/// Why a dataset failed to ingest.
///
/// `#[non_exhaustive]`: future PRs add failure modes without a semver
/// break; downstream matches keep a `_` arm.
#[derive(Debug)]
#[non_exhaustive]
pub enum DatasetError {
    /// An underlying I/O failure.
    Io(io::Error),
    /// A record could not be parsed; 1-based `line` and the offending
    /// `field` position name the spot.
    Parse {
        /// 1-based line number of the malformed record.
        line: usize,
        /// Name of the offending field (`"xlo"`, `"ylo"`, `"xhi"`, `"yhi"`).
        field: &'static str,
        /// Parser diagnostic.
        detail: String,
    },
    /// A record parsed but failed geometric validation under
    /// [`sj_geo::ValidationPolicy::Strict`].
    Invalid {
        /// 1-based line number of the invalid record.
        line: usize,
        /// What was wrong with the rectangle.
        issue: RectIssue,
    },
    /// The source contained no records at all.
    Empty,
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "dataset I/O error: {e}"),
            Self::Parse {
                line,
                field,
                detail,
            } => write!(f, "line {line}, field {field}: {detail}"),
            Self::Invalid { line, issue } => write!(f, "line {line}: {issue}"),
            Self::Empty => write!(f, "dataset is empty (no records)"),
        }
    }
}

impl std::error::Error for DatasetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for DatasetError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<DatasetError> for io::Error {
    fn from(e: DatasetError) -> Self {
        match e {
            DatasetError::Io(inner) => inner,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}
