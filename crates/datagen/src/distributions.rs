//! Random variates beyond `rand`'s uniform primitives.
//!
//! Implemented here (Box–Muller, inverse-CDF exponential, Zipf weights)
//! rather than adding a `rand_distr` dependency: the workspace's approved
//! dependency list is deliberately small and these are a few lines each.

use rand::{Rng, RngExt};

/// Standard normal variate via the Box–Muller transform, scaled to
/// `N(mu, sigma²)`.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    debug_assert!(sigma >= 0.0);
    // Avoid ln(0) by sampling the half-open interval away from zero.
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    mu + sigma * z
}

/// Log-normal variate: `exp(N(mu, sigma²))`. `mu`/`sigma` are the
/// parameters of the underlying normal (i.e. of the log).
pub fn lognormal<R: Rng + ?Sized>(rng: &mut R, mu: f64, sigma: f64) -> f64 {
    normal(rng, mu, sigma).exp()
}

/// Exponential variate with the given rate `lambda` (mean `1/lambda`).
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, lambda: f64) -> f64 {
    debug_assert!(lambda > 0.0);
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    -u.ln() / lambda
}

/// Zipf weights for `n` ranks with skew parameter `s`: weight of rank `k`
/// (0-based) is `1/(k+1)^s`, normalized to sum to 1. `s = 0` is uniform;
/// larger `s` concentrates mass on low ranks.
#[must_use]
pub fn zipf_weights(n: usize, s: f64) -> Vec<f64> {
    assert!(n > 0, "need at least one rank");
    assert!(s >= 0.0, "skew must be non-negative");
    let mut w: Vec<f64> = (0..n).map(|k| 1.0 / ((k + 1) as f64).powf(s)).collect();
    let total: f64 = w.iter().sum();
    for x in &mut w {
        *x /= total;
    }
    w
}

/// Samples an index from a discrete distribution given by `weights`
/// (assumed normalized; a trailing imbalance from rounding falls on the
/// last index).
pub fn sample_weighted<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    debug_assert!(!weights.is_empty());
    let mut u: f64 = rng.random_range(0.0..1.0);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_moments() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut rng, 3.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.15, "var {var}");
    }

    #[test]
    fn lognormal_is_positive() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            assert!(lognormal(&mut rng, -3.0, 1.5) > 0.0);
        }
    }

    #[test]
    fn exponential_mean() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let mean = (0..n).map(|_| exponential(&mut rng, 4.0)).sum::<f64>() / f64::from(n);
        assert!((mean - 0.25).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn zipf_weights_normalized_and_decreasing() {
        let w = zipf_weights(100, 1.2);
        assert!((w.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] >= p[1]));
        // s = 0 is uniform.
        let u = zipf_weights(10, 0.0);
        assert!(u.iter().all(|&x| (x - 0.1).abs() < 1e-12));
    }

    #[test]
    fn sample_weighted_respects_distribution() {
        let mut rng = StdRng::seed_from_u64(4);
        let w = vec![0.7, 0.2, 0.1];
        let mut counts = [0usize; 3];
        let n = 100_000;
        for _ in 0..n {
            counts[sample_weighted(&mut rng, &w)] += 1;
        }
        for (i, &expected) in w.iter().enumerate() {
            let got = counts[i] as f64 / n as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "rank {i}: {got} vs {expected}"
            );
        }
    }

    #[test]
    fn sample_weighted_degenerate() {
        let mut rng = StdRng::seed_from_u64(5);
        assert_eq!(sample_weighted(&mut rng, &[1.0]), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zipf_zero_ranks_panics() {
        let _ = zipf_weights(0, 1.0);
    }
}
