//! Dataset model, synthetic generators, and preset workloads.
//!
//! The paper evaluates on four joins drawn from real and synthetic data:
//!
//! | Join | Left | Right |
//! |---|---|---|
//! | TS ⋈ TCB | 194,971 TIGER stream polyline MBRs (IA/KS/MO/NE) | 556,696 TIGER census block polygon MBRs |
//! | CAS ⋈ CAR | 98,451 TIGER California stream MBRs | 2,249,727 TIGER California road MBRs |
//! | SP ⋈ SPG | 62,555 Sequoia 2000 points | 79,607 Sequoia 2000 polygon MBRs |
//! | SCRC ⋈ SURA | 100,000 rects clustered at (0.4, 0.7) | 100,000 uniform rects |
//!
//! TIGER/Line 1995 and the Sequoia 2000 benchmark data are not
//! redistributable in this repository, so [`presets`] provides *simulated*
//! stand-ins: seeded generators that reproduce the properties the paper's
//! conclusions depend on — cardinalities (scalable), spatial clustering /
//! skew, and the MBR size/aspect distributions of streams (elongated
//! random-walk MBRs), census blocks & polygons (small compact boxes),
//! roads (tiny segments) and points (degenerate MBRs). The SCRC/SURA
//! synthetic pair is generated exactly as described in the paper. See
//! DESIGN.md §5 for the substitution rationale.
//!
//! Everything is deterministic given a seed: the same
//! [`presets::PaperJoin`] at the same scale always produces the same
//! rectangles, so experiments are reproducible run-to-run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dataset;
mod distributions;
mod error;
mod generators;
pub mod presets;

pub use dataset::{Dataset, DatasetStats};
pub use distributions::{exponential, lognormal, normal, sample_weighted, zipf_weights};
pub use error::DatasetError;
pub use generators::{ClusterField, Generator, SizeModel};
