use crate::dataset::Dataset;
use crate::distributions::{lognormal, sample_weighted, zipf_weights};
use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};
use sj_geo::{Extent, Point, Rect};

/// A Gaussian mixture over the unit square: the placement model for
/// clustered datasets (population centres for census blocks, drainage
/// basins for streams, etc.).
#[derive(Debug, Clone)]
pub struct ClusterField {
    /// Cluster centres.
    pub centers: Vec<Point>,
    /// Per-cluster standard deviation (isotropic).
    pub sigmas: Vec<f64>,
    /// Per-cluster selection weights, normalized.
    pub weights: Vec<f64>,
}

impl ClusterField {
    /// A single cluster, e.g. the paper's SCRC dataset clustered around
    /// `(0.4, 0.7)`.
    #[must_use]
    pub fn single(center: Point, sigma: f64) -> Self {
        Self {
            centers: vec![center],
            sigmas: vec![sigma],
            weights: vec![1.0],
        }
    }

    /// A random field of `n` clusters with sigmas drawn uniformly from
    /// `sigma_range` and Zipf(`skew`) selection weights. Larger `skew`
    /// concentrates more of the data in few clusters (spatial skew).
    #[must_use]
    pub fn random(rng: &mut StdRng, n: usize, sigma_range: (f64, f64), skew: f64) -> Self {
        assert!(n > 0, "need at least one cluster");
        assert!(sigma_range.0 > 0.0 && sigma_range.0 <= sigma_range.1);
        let centers: Vec<Point> = (0..n)
            .map(|_| Point::new(rng.random_range(0.05..0.95), rng.random_range(0.05..0.95)))
            .collect();
        let sigmas: Vec<f64> = (0..n)
            .map(|_| rng.random_range(sigma_range.0..=sigma_range.1))
            .collect();
        Self {
            centers,
            sigmas,
            weights: zipf_weights(n, skew),
        }
    }

    /// Samples a point from the mixture, rejected back into the unit
    /// square (with a clamping fallback so sampling always terminates).
    pub fn sample_point<R: Rng + ?Sized>(&self, rng: &mut R) -> Point {
        let k = sample_weighted(rng, &self.weights);
        let (c, s) = (self.centers[k], self.sigmas[k]);
        for _ in 0..16 {
            let p = Point::new(
                crate::distributions::normal(rng, c.x, s),
                crate::distributions::normal(rng, c.y, s),
            );
            if (0.0..=1.0).contains(&p.x) && (0.0..=1.0).contains(&p.y) {
                return p;
            }
        }
        let p = Point::new(
            crate::distributions::normal(rng, c.x, s),
            crate::distributions::normal(rng, c.y, s),
        );
        Point::new(p.x.clamp(0.0, 1.0), p.y.clamp(0.0, 1.0))
    }
}

/// Where objects are placed in the unit square.
#[derive(Debug, Clone)]
pub enum Placement {
    /// Uniformly at random (the paper's SURA dataset).
    Uniform,
    /// From a Gaussian mixture (all clustered/skewed datasets).
    Clustered(ClusterField),
}

/// How the MBR around a placement point is shaped.
#[derive(Debug, Clone)]
pub enum SizeModel {
    /// Degenerate MBRs: point datasets (Sequoia SP).
    Point,
    /// Sides drawn independently and uniformly from `[0, max_w] × [0, max_h]`
    /// (the paper's synthetic rectangles).
    UniformSides {
        /// Maximum width.
        max_w: f64,
        /// Maximum height.
        max_h: f64,
    },
    /// Compact polygon MBRs (census blocks, Sequoia polygons): a base
    /// size drawn log-normally, split into width/height by a controlled
    /// aspect jitter so the boxes stay compact:
    /// `w = base·√a`, `h = base/√a` with `ln a ~ N(0, aspect_sigma²)`.
    LogNormalBox {
        /// Mean of the log of the base side length.
        mu: f64,
        /// Std-dev of the log of the base side length.
        sigma: f64,
        /// Std-dev of the log aspect ratio (0 = perfect squares).
        aspect_sigma: f64,
        /// Upper clamp on either side.
        max_side: f64,
    },
    /// MBR of a random walk starting at the placement point: elongated,
    /// irregular MBRs like those of digitized polylines (streams, roads).
    RandomWalk {
        /// Number of walk steps.
        steps: usize,
        /// Mean step length.
        step_len: f64,
    },
}

impl SizeModel {
    /// Builds an MBR anchored at `p`, clipped into the unit square.
    fn make_rect<R: Rng + ?Sized>(&self, rng: &mut R, p: Point) -> Rect {
        let raw = match *self {
            SizeModel::Point => Rect::from_point(p),
            SizeModel::UniformSides { max_w, max_h } => {
                let w = if max_w > 0.0 {
                    rng.random_range(0.0..max_w)
                } else {
                    0.0
                };
                let h = if max_h > 0.0 {
                    rng.random_range(0.0..max_h)
                } else {
                    0.0
                };
                Rect::centered(p, w, h)
            }
            SizeModel::LogNormalBox {
                mu,
                sigma,
                aspect_sigma,
                max_side,
            } => {
                let base = lognormal(rng, mu, sigma);
                let aspect = lognormal(rng, 0.0, aspect_sigma).sqrt();
                let w = (base * aspect).min(max_side);
                let h = (base / aspect).min(max_side);
                Rect::centered(p, w, h)
            }
            SizeModel::RandomWalk { steps, step_len } => {
                let (mut x, mut y) = (p.x, p.y);
                let mut mbr = Rect::from_point(p);
                for _ in 0..steps {
                    let angle = rng.random_range(0.0..std::f64::consts::TAU);
                    let len = rng.random_range(0.0..2.0 * step_len);
                    x += len * angle.cos();
                    y += len * angle.sin();
                    mbr = mbr.union(&Rect::from_point(Point::new(x, y)));
                }
                mbr
            }
        };
        clip_into_unit(raw)
    }
}

/// Translates a rect into the unit square if it pokes out, then clips any
/// remaining overhang (oversized rects). Every generated MBR therefore
/// lies inside the unit extent, as the paper's normalized datasets do.
fn clip_into_unit(r: Rect) -> Rect {
    let dx = if r.xlo < 0.0 {
        -r.xlo
    } else if r.xhi > 1.0 {
        1.0 - r.xhi
    } else {
        0.0
    };
    let dy = if r.ylo < 0.0 {
        -r.ylo
    } else if r.yhi > 1.0 {
        1.0 - r.yhi
    } else {
        0.0
    };
    let t = r.translated(dx, dy);
    Rect::new(
        t.xlo.clamp(0.0, 1.0),
        t.ylo.clamp(0.0, 1.0),
        t.xhi.clamp(0.0, 1.0),
        t.yhi.clamp(0.0, 1.0),
    )
}

/// A reproducible dataset generator: placement model + size model + seed.
#[derive(Debug, Clone)]
pub struct Generator {
    /// Dataset name.
    pub name: String,
    /// Number of MBRs to produce.
    pub count: usize,
    /// Placement model.
    pub placement: Placement,
    /// MBR shape model.
    pub size: SizeModel,
    /// RNG seed; same seed, same dataset.
    pub seed: u64,
}

impl Generator {
    /// Runs the generator, producing a [`Dataset`] over the unit extent.
    #[must_use]
    pub fn generate(&self) -> Dataset {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut rects = Vec::with_capacity(self.count);
        for _ in 0..self.count {
            let p = match &self.placement {
                Placement::Uniform => {
                    Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0))
                }
                Placement::Clustered(field) => field.sample_point(&mut rng),
            };
            rects.push(self.size.make_rect(&mut rng, p));
        }
        Dataset::new(self.name.clone(), Extent::unit(), rects)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit_contains(ds: &Dataset) -> bool {
        let unit = Rect::new(0.0, 0.0, 1.0, 1.0);
        ds.rects.iter().all(|r| unit.contains(r))
    }

    #[test]
    fn uniform_generator_fills_extent() {
        let g = Generator {
            name: "u".into(),
            count: 5000,
            placement: Placement::Uniform,
            size: SizeModel::UniformSides {
                max_w: 0.01,
                max_h: 0.01,
            },
            seed: 1,
        };
        let ds = g.generate();
        assert_eq!(ds.len(), 5000);
        assert!(unit_contains(&ds));
        // Roughly uniform: each quadrant holds ~25 %.
        let q = ds
            .rects
            .iter()
            .filter(|r| r.center().x < 0.5 && r.center().y < 0.5)
            .count();
        assert!(
            (q as f64 / 5000.0 - 0.25).abs() < 0.03,
            "quadrant share {q}"
        );
    }

    #[test]
    fn generator_is_deterministic() {
        let g = Generator {
            name: "d".into(),
            count: 100,
            placement: Placement::Uniform,
            size: SizeModel::UniformSides {
                max_w: 0.1,
                max_h: 0.1,
            },
            seed: 42,
        };
        assert_eq!(g.generate().rects, g.generate().rects);
        let g2 = Generator {
            seed: 43,
            ..g.clone()
        };
        assert_ne!(g.generate().rects, g2.generate().rects);
    }

    #[test]
    fn clustered_generator_concentrates_mass() {
        let field = ClusterField::single(Point::new(0.4, 0.7), 0.05);
        let g = Generator {
            name: "c".into(),
            count: 2000,
            placement: Placement::Clustered(field),
            size: SizeModel::UniformSides {
                max_w: 0.005,
                max_h: 0.005,
            },
            seed: 7,
        };
        let ds = g.generate();
        assert!(unit_contains(&ds));
        let near = ds
            .rects
            .iter()
            .filter(|r| r.center().distance(&Point::new(0.4, 0.7)) < 0.15)
            .count();
        assert!(near > 1800, "cluster mass too diffuse: {near}/2000");
    }

    #[test]
    fn point_size_model_is_degenerate() {
        let g = Generator {
            name: "p".into(),
            count: 500,
            placement: Placement::Uniform,
            size: SizeModel::Point,
            seed: 3,
        };
        let ds = g.generate();
        assert!(ds.rects.iter().all(Rect::is_degenerate));
        assert!((ds.stats().degenerate_fraction - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn random_walk_mbrs_are_elongated_irregular() {
        let g = Generator {
            name: "w".into(),
            count: 2000,
            placement: Placement::Uniform,
            size: SizeModel::RandomWalk {
                steps: 10,
                step_len: 0.004,
            },
            seed: 4,
        };
        let ds = g.generate();
        assert!(unit_contains(&ds));
        let s = ds.stats();
        assert!(s.avg_width > 0.0 && s.avg_height > 0.0);
        // Aspect ratios vary: some wide, some tall.
        let wide = ds
            .rects
            .iter()
            .filter(|r| r.width() > 2.0 * r.height())
            .count();
        let tall = ds
            .rects
            .iter()
            .filter(|r| r.height() > 2.0 * r.width())
            .count();
        assert!(wide > 50 && tall > 50, "wide={wide} tall={tall}");
    }

    #[test]
    fn lognormal_box_sides_clamped() {
        let g = Generator {
            name: "l".into(),
            count: 3000,
            placement: Placement::Uniform,
            size: SizeModel::LogNormalBox {
                mu: -5.0,
                sigma: 1.0,
                aspect_sigma: 0.4,
                max_side: 0.05,
            },
            seed: 5,
        };
        let ds = g.generate();
        assert!(unit_contains(&ds));
        assert!(ds
            .rects
            .iter()
            .all(|r| r.width() <= 0.05 + 1e-12 && r.height() <= 0.05 + 1e-12));
    }

    #[test]
    fn clip_into_unit_handles_oversized() {
        let big = Rect::new(-1.0, -1.0, 2.0, 2.0);
        let c = clip_into_unit(big);
        assert_eq!(c, Rect::new(0.0, 0.0, 1.0, 1.0));
        let edge = Rect::new(0.95, 0.2, 1.05, 0.3);
        let c = clip_into_unit(edge);
        assert!(Rect::new(0.0, 0.0, 1.0, 1.0).contains(&c));
        assert!(
            (c.width() - 0.1).abs() < 1e-12,
            "translation preserves size"
        );
    }

    #[test]
    fn random_field_weights_are_skewed() {
        let mut rng = StdRng::seed_from_u64(9);
        let f = ClusterField::random(&mut rng, 50, (0.01, 0.05), 1.5);
        assert_eq!(f.centers.len(), 50);
        assert!(f.weights[0] > 10.0 * f.weights[49]);
    }
}
