use crate::DatasetError;
use sj_geo::{apply_policy, Extent, Rect, Validated, ValidationPolicy, ValidationReport};
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// Field names of one CSV record, in column order.
const CSV_FIELDS: [&str; 4] = ["xlo", "ylo", "xhi", "yhi"];

/// Parses the four corner fields of one CSV record, naming the offending
/// field on failure. Extra trailing fields are ignored for compatibility
/// with annotated exports.
fn parse_csv_fields(lineno: usize, line: &str) -> Result<(f64, f64, f64, f64), DatasetError> {
    let mut parts = line.split(',');
    let mut vals = [0.0f64; 4];
    for (i, field) in CSV_FIELDS.iter().enumerate() {
        let raw = parts.next().ok_or_else(|| DatasetError::Parse {
            line: lineno,
            field,
            detail: "missing field (expected 4 comma-separated values)".to_string(),
        })?;
        vals[i] = raw.trim().parse::<f64>().map_err(|e| DatasetError::Parse {
            line: lineno,
            field,
            detail: format!("{e} (got {:?})", raw.trim()),
        })?;
    }
    Ok((vals[0], vals[1], vals[2], vals[3]))
}

/// A named collection of MBRs living in an extent.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name, e.g. `"TS"` or `"SCRC"`.
    pub name: String,
    /// Spatial universe (normally the unit square for presets).
    pub extent: Extent,
    /// The MBRs.
    pub rects: Vec<Rect>,
}

/// Whole-dataset statistics: the parameters of the Aref–Samet parametric
/// model (paper Eq. 1) plus general descriptive measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of data items `N`.
    pub count: usize,
    /// Data coverage `C`: sum of item areas over the extent area.
    pub coverage: f64,
    /// Average item width `W`.
    pub avg_width: f64,
    /// Average item height `H`.
    pub avg_height: f64,
    /// Fraction of items that are degenerate (points/segments).
    pub degenerate_fraction: f64,
}

impl Dataset {
    /// Creates a dataset, validating every rectangle is finite.
    ///
    /// # Panics
    /// Panics if any rectangle has a non-finite coordinate.
    #[must_use]
    pub fn new(name: impl Into<String>, extent: Extent, rects: Vec<Rect>) -> Self {
        let name = name.into();
        for (i, r) in rects.iter().enumerate() {
            assert!(r.is_finite(), "dataset {name}: rect {i} is non-finite");
        }
        Self {
            name,
            extent,
            rects,
        }
    }

    /// Number of data items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// `true` when the dataset holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Computes the whole-dataset statistics used by the parametric model.
    #[must_use]
    pub fn stats(&self) -> DatasetStats {
        let n = self.rects.len();
        if n == 0 {
            return DatasetStats {
                count: 0,
                coverage: 0.0,
                avg_width: 0.0,
                avg_height: 0.0,
                degenerate_fraction: 0.0,
            };
        }
        let mut area_sum = 0.0;
        let mut w_sum = 0.0;
        let mut h_sum = 0.0;
        let mut degenerate = 0usize;
        for r in &self.rects {
            area_sum += r.area();
            w_sum += r.width();
            h_sum += r.height();
            if r.is_degenerate() {
                degenerate += 1;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let nf = n as f64;
        DatasetStats {
            count: n,
            coverage: area_sum / self.extent.area(),
            avg_width: w_sum / nf,
            avg_height: h_sum / nf,
            degenerate_fraction: degenerate as f64 / nf,
        }
    }

    /// Writes the dataset as CSV (`xlo,ylo,xhi,yhi` per line, full `f64`
    /// round-trip precision) to `w`.
    ///
    /// # Errors
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut out = BufWriter::new(w);
        for r in &self.rects {
            writeln!(out, "{:?},{:?},{:?},{:?}", r.xlo, r.ylo, r.xhi, r.yhi)?;
        }
        out.flush()
    }

    /// Reads a dataset from CSV written by [`Dataset::write_csv`]. The
    /// extent is recomputed from the data.
    ///
    /// # Errors
    /// Returns `InvalidData` on malformed lines and propagates I/O errors.
    pub fn read_csv<R: BufRead>(name: impl Into<String>, r: R) -> io::Result<Self> {
        let mut rects = Vec::new();
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let lineno = i + 1;
            let (xlo, ylo, xhi, yhi) = parse_csv_fields(lineno, &line).map_err(io::Error::from)?;
            for (field, v) in CSV_FIELDS.iter().zip([xlo, ylo, xhi, yhi]) {
                if !v.is_finite() {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("line {lineno}, field {field}: non-finite coordinate"),
                    ));
                }
            }
            rects.push(Rect::new(xlo, ylo, xhi, yhi));
        }
        let extent = Extent::of_rects(&rects).unwrap_or_else(Extent::unit);
        Ok(Self::new(name, extent, rects))
    }

    /// Reads a CSV dataset under a [`ValidationPolicy`], optionally
    /// checking every record against a declared `extent`. Unlike
    /// [`Dataset::read_csv`], inverted raw corners are *detected* (not
    /// silently reordered), and an input with no surviving records is an
    /// explicit [`DatasetError::Empty`].
    ///
    /// # Errors
    /// [`DatasetError::Parse`] names the line and field of malformed
    /// input; [`DatasetError::Invalid`] is returned under
    /// [`ValidationPolicy::Strict`] for geometric defects;
    /// [`DatasetError::Empty`] when nothing survives validation.
    pub fn read_csv_validated<R: BufRead>(
        name: impl Into<String>,
        r: R,
        policy: ValidationPolicy,
        extent: Option<Extent>,
    ) -> Result<(Self, ValidationReport), DatasetError> {
        let mut rects = Vec::new();
        let mut report = ValidationReport::default();
        for (i, line) in r.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let lineno = i + 1;
            let raw = parse_csv_fields(lineno, &line)?;
            report.checked += 1;
            match apply_policy(policy, raw, extent.as_ref()) {
                Ok(Validated::Accepted(rect)) => {
                    report.accepted += 1;
                    rects.push(rect);
                }
                Ok(Validated::Repaired(rect)) => {
                    report.repaired += 1;
                    rects.push(rect);
                }
                Ok(Validated::Skipped(_)) => report.skipped += 1,
                Err(issue) => {
                    return Err(DatasetError::Invalid {
                        line: lineno,
                        issue,
                    })
                }
            }
        }
        if rects.is_empty() {
            return Err(DatasetError::Empty);
        }
        let extent = extent
            .or_else(|| Extent::of_rects(&rects))
            .unwrap_or_else(Extent::unit);
        Ok((
            Self {
                name: name.into(),
                extent,
                rects,
            },
            report,
        ))
    }

    /// Loads a CSV file under a [`ValidationPolicy`], naming the dataset
    /// after the file stem. See [`Dataset::read_csv_validated`].
    ///
    /// # Errors
    /// Propagates file-open errors as [`DatasetError::Io`] and all
    /// validation errors of [`Dataset::read_csv_validated`].
    pub fn load_csv_validated(
        path: &Path,
        policy: ValidationPolicy,
        extent: Option<Extent>,
    ) -> Result<(Self, ValidationReport), DatasetError> {
        let name = path.file_stem().map_or_else(
            || "dataset".to_string(),
            |s| s.to_string_lossy().into_owned(),
        );
        let f = std::fs::File::open(path)?;
        Self::read_csv_validated(name, io::BufReader::new(f), policy, extent)
    }

    /// Saves the dataset to a CSV file.
    ///
    /// # Errors
    /// Propagates file-creation and write errors.
    pub fn save_csv(&self, path: &Path) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        self.write_csv(&mut f)
    }

    /// Loads a dataset from a CSV file, naming it after the file stem.
    ///
    /// # Errors
    /// Propagates file-open and parse errors.
    pub fn load_csv(path: &Path) -> io::Result<Self> {
        let name = path.file_stem().map_or_else(
            || "dataset".to_string(),
            |s| s.to_string_lossy().into_owned(),
        );
        let f = std::fs::File::open(path)?;
        Self::read_csv(name, io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geo::Point;

    fn sample() -> Dataset {
        Dataset::new(
            "sample",
            Extent::unit(),
            vec![
                Rect::new(0.0, 0.0, 0.5, 0.5),
                Rect::new(0.25, 0.25, 0.75, 0.75),
                Rect::from_point(Point::new(0.9, 0.9)),
            ],
        )
    }

    #[test]
    fn stats_parametric_parameters() {
        let ds = sample();
        let s = ds.stats();
        assert_eq!(s.count, 3);
        assert!((s.coverage - 0.5).abs() < 1e-12); // 0.25 + 0.25 + 0
        assert!((s.avg_width - (0.5 + 0.5 + 0.0) / 3.0).abs() < 1e-12);
        assert!((s.avg_height - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.degenerate_fraction - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_dataset() {
        let ds = Dataset::new("empty", Extent::unit(), vec![]);
        let s = ds.stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.coverage, 0.0);
    }

    #[test]
    fn csv_roundtrip_preserves_bits() {
        let ds = sample();
        let mut buf = Vec::new();
        ds.write_csv(&mut buf).unwrap();
        let back = Dataset::read_csv("sample", &buf[..]).unwrap();
        assert_eq!(back.rects, ds.rects);
    }

    #[test]
    fn csv_rejects_garbage() {
        let err = Dataset::read_csv("x", "1.0,2.0,oops,4.0\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(
            err.to_string().contains("line 1") && err.to_string().contains("field xhi"),
            "error must name line and field: {err}"
        );
        let err = Dataset::read_csv("x", "1.0,2.0\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("field xhi"), "{err}");
    }

    #[test]
    fn validated_csv_strict_rejects_inversion_with_line() {
        let input = "0,0,1,1\n0.9,0.0,0.1,1.0\n";
        let err =
            Dataset::read_csv_validated("x", input.as_bytes(), ValidationPolicy::Strict, None)
                .unwrap_err();
        match err {
            DatasetError::Invalid { line, issue } => {
                assert_eq!(line, 2);
                assert_eq!(issue, sj_geo::RectIssue::Inverted { axis: 'x' });
            }
            other => panic!("expected Invalid, got {other:?}"),
        }
    }

    #[test]
    fn validated_csv_repair_fixes_and_reports() {
        let input = "0,0,1,1\n0.9,0.0,0.1,1.0\nnan,0,1,1\n";
        let (ds, report) =
            Dataset::read_csv_validated("x", input.as_bytes(), ValidationPolicy::Repair, None)
                .unwrap();
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.rects[1], Rect::new(0.1, 0.0, 0.9, 1.0));
        assert_eq!(report.checked, 3);
        assert_eq!(report.accepted, 1);
        assert_eq!(report.repaired, 1);
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn validated_csv_skip_drops_invalid() {
        let input = "0,0,1,1\ninf,0,1,1\n";
        let (ds, report) =
            Dataset::read_csv_validated("x", input.as_bytes(), ValidationPolicy::Skip, None)
                .unwrap();
        assert_eq!(ds.len(), 1);
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn validated_csv_empty_is_an_error() {
        assert!(matches!(
            Dataset::read_csv_validated("x", "\n\n".as_bytes(), ValidationPolicy::Strict, None),
            Err(DatasetError::Empty)
        ));
        // A file whose every record is dropped is also empty.
        assert!(matches!(
            Dataset::read_csv_validated(
                "x",
                "nan,0,1,1\n".as_bytes(),
                ValidationPolicy::Skip,
                None
            ),
            Err(DatasetError::Empty)
        ));
    }

    #[test]
    fn validated_csv_checks_declared_extent() {
        let input = "0,0,1,1\n-0.5,0,0.5,0.5\n";
        let err = Dataset::read_csv_validated(
            "x",
            input.as_bytes(),
            ValidationPolicy::Strict,
            Some(Extent::unit()),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            DatasetError::Invalid {
                line: 2,
                issue: sj_geo::RectIssue::OutOfExtent
            }
        ));
        let (ds, report) = Dataset::read_csv_validated(
            "x",
            input.as_bytes(),
            ValidationPolicy::Repair,
            Some(Extent::unit()),
        )
        .unwrap();
        assert_eq!(ds.rects[1], Rect::new(0.0, 0.0, 0.5, 0.5));
        assert_eq!(report.repaired, 1);
    }

    #[test]
    fn csv_skips_blank_lines() {
        let ds = Dataset::read_csv("x", "\n0,0,1,1\n\n".as_bytes()).unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn new_rejects_nan() {
        let _ = Dataset::new(
            "bad",
            Extent::unit(),
            vec![Rect {
                xlo: f64::NAN,
                ylo: 0.0,
                xhi: 1.0,
                yhi: 1.0,
            }],
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("sj_datagen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        let ds = sample();
        ds.save_csv(&path).unwrap();
        let back = Dataset::load_csv(&path).unwrap();
        assert_eq!(back.name, "sample");
        assert_eq!(back.rects, ds.rects);
        std::fs::remove_file(&path).ok();
    }
}

/// Binary dataset format: `SJDS` magic, version, count, then raw
/// little-endian `f64` quadruples. Loads paper-scale datasets (millions
/// of MBRs) an order of magnitude faster than CSV.
impl Dataset {
    const BIN_MAGIC: [u8; 4] = *b"SJDS";
    const BIN_VERSION: u8 = 1;

    /// Writes the binary representation.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_bin<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut out = BufWriter::new(w);
        out.write_all(&Self::BIN_MAGIC)?;
        out.write_all(&[Self::BIN_VERSION])?;
        out.write_all(&(self.rects.len() as u64).to_le_bytes())?;
        for r in &self.rects {
            for v in [r.xlo, r.ylo, r.xhi, r.yhi] {
                out.write_all(&v.to_le_bytes())?;
            }
        }
        out.flush()
    }

    /// Reads a dataset written by [`Self::write_bin`]. The extent is
    /// recomputed from the data.
    ///
    /// # Errors
    /// Returns `InvalidData` on malformed input and propagates I/O errors.
    pub fn read_bin<R: io::Read>(name: impl Into<String>, mut r: R) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut header = [0u8; 4 + 1 + 8];
        r.read_exact(&mut header)
            .map_err(|_| bad("truncated header"))?;
        if header[..4] != Self::BIN_MAGIC {
            return Err(bad("bad magic"));
        }
        if header[4] != Self::BIN_VERSION {
            return Err(bad("unsupported version"));
        }
        // sj-lint: allow(panic, header[5..13] is 8 bytes of a fixed 13-byte array, try_into cannot fail)
        let count = u64::from_le_bytes(header[5..13].try_into().expect("8 bytes"));
        let count = usize::try_from(count).map_err(|_| bad("count overflows usize"))?;
        let mut payload = Vec::new();
        r.read_to_end(&mut payload)?;
        if payload.len() != count * 32 {
            return Err(bad("payload size mismatch"));
        }
        let mut rects = Vec::with_capacity(count);
        for chunk in payload.chunks_exact(32) {
            let f = |i: usize| {
                // sj-lint: allow(panic, chunks_exact(32) yields 32-byte chunks and i <= 3, so the 8-byte window is in range)
                f64::from_le_bytes(chunk[i * 8..(i + 1) * 8].try_into().expect("8 bytes"))
            };
            let rect = Rect {
                xlo: f(0),
                ylo: f(1),
                xhi: f(2),
                yhi: f(3),
            };
            if !rect.is_finite() || rect.xhi < rect.xlo || rect.yhi < rect.ylo {
                return Err(bad("invalid rectangle"));
            }
            rects.push(rect);
        }
        let extent = Extent::of_rects(&rects).unwrap_or_else(Extent::unit);
        Ok(Self::new(name, extent, rects))
    }

    /// Saves the dataset in binary form.
    ///
    /// # Errors
    /// Propagates file-creation and write errors.
    pub fn save_bin(&self, path: &Path) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        self.write_bin(&mut f)
    }

    /// Loads a binary dataset file, naming it after the file stem.
    ///
    /// # Errors
    /// Propagates file-open and decode errors.
    pub fn load_bin(path: &Path) -> io::Result<Self> {
        let name = path.file_stem().map_or_else(
            || "dataset".to_string(),
            |s| s.to_string_lossy().into_owned(),
        );
        let f = std::fs::File::open(path)?;
        Self::read_bin(name, io::BufReader::new(f))
    }
}

#[cfg(test)]
mod bin_format_tests {
    use super::*;
    use sj_geo::Point;

    fn sample() -> Dataset {
        Dataset::new(
            "bin_sample",
            Extent::unit(),
            vec![
                Rect::new(0.125, 0.25, 0.5, 0.75),
                Rect::from_point(Point::new(0.9, 0.1)),
                Rect::new(1e-12, 0.0, 0.3333333333333333, 0.1),
            ],
        )
    }

    #[test]
    fn bin_roundtrip_is_bit_exact() {
        let ds = sample();
        let mut buf = Vec::new();
        ds.write_bin(&mut buf).unwrap();
        let back = Dataset::read_bin("bin_sample", &buf[..]).unwrap();
        assert_eq!(back.rects, ds.rects);
    }

    #[test]
    fn bin_rejects_corruption() {
        let ds = sample();
        let mut buf = Vec::new();
        ds.write_bin(&mut buf).unwrap();
        assert!(Dataset::read_bin("x", &buf[..buf.len() - 1]).is_err());
        assert!(Dataset::read_bin("x", &buf[..5]).is_err());
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(Dataset::read_bin("x", &bad_magic[..]).is_err());
        let mut bad_version = buf.clone();
        bad_version[4] = 99;
        assert!(Dataset::read_bin("x", &bad_version[..]).is_err());
        // NaN payload must be rejected.
        let mut nan_payload = buf.clone();
        nan_payload[13..21].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(Dataset::read_bin("x", &nan_payload[..]).is_err());
    }

    #[test]
    fn bin_file_roundtrip() {
        let dir = std::env::temp_dir().join("sj_datagen_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.bin");
        let ds = sample();
        ds.save_bin(&path).unwrap();
        let back = Dataset::load_bin(&path).unwrap();
        assert_eq!(back.name, "sample");
        assert_eq!(back.rects, ds.rects);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_dataset_bin_roundtrip() {
        let ds = Dataset::new("empty", Extent::unit(), vec![]);
        let mut buf = Vec::new();
        ds.write_bin(&mut buf).unwrap();
        let back = Dataset::read_bin("empty", &buf[..]).unwrap();
        assert!(back.is_empty());
    }
}
