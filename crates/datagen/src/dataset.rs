use sj_geo::{Extent, Rect};
use std::io::{self, BufRead, BufWriter, Write};
use std::path::Path;

/// A named collection of MBRs living in an extent.
#[derive(Debug, Clone)]
pub struct Dataset {
    /// Human-readable name, e.g. `"TS"` or `"SCRC"`.
    pub name: String,
    /// Spatial universe (normally the unit square for presets).
    pub extent: Extent,
    /// The MBRs.
    pub rects: Vec<Rect>,
}

/// Whole-dataset statistics: the parameters of the Aref–Samet parametric
/// model (paper Eq. 1) plus general descriptive measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DatasetStats {
    /// Number of data items `N`.
    pub count: usize,
    /// Data coverage `C`: sum of item areas over the extent area.
    pub coverage: f64,
    /// Average item width `W`.
    pub avg_width: f64,
    /// Average item height `H`.
    pub avg_height: f64,
    /// Fraction of items that are degenerate (points/segments).
    pub degenerate_fraction: f64,
}

impl Dataset {
    /// Creates a dataset, validating every rectangle is finite.
    ///
    /// # Panics
    /// Panics if any rectangle has a non-finite coordinate.
    #[must_use]
    pub fn new(name: impl Into<String>, extent: Extent, rects: Vec<Rect>) -> Self {
        let name = name.into();
        for (i, r) in rects.iter().enumerate() {
            assert!(r.is_finite(), "dataset {name}: rect {i} is non-finite");
        }
        Self {
            name,
            extent,
            rects,
        }
    }

    /// Number of data items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rects.len()
    }

    /// `true` when the dataset holds no items.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rects.is_empty()
    }

    /// Computes the whole-dataset statistics used by the parametric model.
    #[must_use]
    pub fn stats(&self) -> DatasetStats {
        let n = self.rects.len();
        if n == 0 {
            return DatasetStats {
                count: 0,
                coverage: 0.0,
                avg_width: 0.0,
                avg_height: 0.0,
                degenerate_fraction: 0.0,
            };
        }
        let mut area_sum = 0.0;
        let mut w_sum = 0.0;
        let mut h_sum = 0.0;
        let mut degenerate = 0usize;
        for r in &self.rects {
            area_sum += r.area();
            w_sum += r.width();
            h_sum += r.height();
            if r.is_degenerate() {
                degenerate += 1;
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let nf = n as f64;
        DatasetStats {
            count: n,
            coverage: area_sum / self.extent.area(),
            avg_width: w_sum / nf,
            avg_height: h_sum / nf,
            degenerate_fraction: degenerate as f64 / nf,
        }
    }

    /// Writes the dataset as CSV (`xlo,ylo,xhi,yhi` per line, full `f64`
    /// round-trip precision) to `w`.
    ///
    /// # Errors
    /// Propagates I/O errors from the writer.
    pub fn write_csv<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut out = BufWriter::new(w);
        for r in &self.rects {
            writeln!(out, "{:?},{:?},{:?},{:?}", r.xlo, r.ylo, r.xhi, r.yhi)?;
        }
        out.flush()
    }

    /// Reads a dataset from CSV written by [`Dataset::write_csv`]. The
    /// extent is recomputed from the data.
    ///
    /// # Errors
    /// Returns `InvalidData` on malformed lines and propagates I/O errors.
    pub fn read_csv<R: BufRead>(name: impl Into<String>, r: R) -> io::Result<Self> {
        let mut rects = Vec::new();
        for (lineno, line) in r.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let mut parts = line.split(',');
            let mut next = || -> io::Result<f64> {
                parts
                    .next()
                    .ok_or_else(|| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("line {}: expected 4 fields", lineno + 1),
                        )
                    })?
                    .trim()
                    .parse::<f64>()
                    .map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("line {}: {e}", lineno + 1),
                        )
                    })
            };
            let (xlo, ylo, xhi, yhi) = (next()?, next()?, next()?, next()?);
            let rect = Rect::new(xlo, ylo, xhi, yhi);
            if !rect.is_finite() {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("line {}: non-finite rectangle", lineno + 1),
                ));
            }
            rects.push(rect);
        }
        let extent = Extent::of_rects(&rects).unwrap_or_else(Extent::unit);
        Ok(Self::new(name, extent, rects))
    }

    /// Saves the dataset to a CSV file.
    ///
    /// # Errors
    /// Propagates file-creation and write errors.
    pub fn save_csv(&self, path: &Path) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        self.write_csv(&mut f)
    }

    /// Loads a dataset from a CSV file, naming it after the file stem.
    ///
    /// # Errors
    /// Propagates file-open and parse errors.
    pub fn load_csv(path: &Path) -> io::Result<Self> {
        let name = path.file_stem().map_or_else(
            || "dataset".to_string(),
            |s| s.to_string_lossy().into_owned(),
        );
        let f = std::fs::File::open(path)?;
        Self::read_csv(name, io::BufReader::new(f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geo::Point;

    fn sample() -> Dataset {
        Dataset::new(
            "sample",
            Extent::unit(),
            vec![
                Rect::new(0.0, 0.0, 0.5, 0.5),
                Rect::new(0.25, 0.25, 0.75, 0.75),
                Rect::from_point(Point::new(0.9, 0.9)),
            ],
        )
    }

    #[test]
    fn stats_parametric_parameters() {
        let ds = sample();
        let s = ds.stats();
        assert_eq!(s.count, 3);
        assert!((s.coverage - 0.5).abs() < 1e-12); // 0.25 + 0.25 + 0
        assert!((s.avg_width - (0.5 + 0.5 + 0.0) / 3.0).abs() < 1e-12);
        assert!((s.avg_height - 1.0 / 3.0).abs() < 1e-12);
        assert!((s.degenerate_fraction - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty_dataset() {
        let ds = Dataset::new("empty", Extent::unit(), vec![]);
        let s = ds.stats();
        assert_eq!(s.count, 0);
        assert_eq!(s.coverage, 0.0);
    }

    #[test]
    fn csv_roundtrip_preserves_bits() {
        let ds = sample();
        let mut buf = Vec::new();
        ds.write_csv(&mut buf).unwrap();
        let back = Dataset::read_csv("sample", &buf[..]).unwrap();
        assert_eq!(back.rects, ds.rects);
    }

    #[test]
    fn csv_rejects_garbage() {
        let err = Dataset::read_csv("x", "1.0,2.0,oops,4.0\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let err = Dataset::read_csv("x", "1.0,2.0\n".as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn csv_skips_blank_lines() {
        let ds = Dataset::read_csv("x", "\n0,0,1,1\n\n".as_bytes()).unwrap();
        assert_eq!(ds.len(), 1);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn new_rejects_nan() {
        let _ = Dataset::new(
            "bad",
            Extent::unit(),
            vec![Rect {
                xlo: f64::NAN,
                ylo: 0.0,
                xhi: 1.0,
                yhi: 1.0,
            }],
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("sj_datagen_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.csv");
        let ds = sample();
        ds.save_csv(&path).unwrap();
        let back = Dataset::load_csv(&path).unwrap();
        assert_eq!(back.name, "sample");
        assert_eq!(back.rects, ds.rects);
        std::fs::remove_file(&path).ok();
    }
}

/// Binary dataset format: `SJDS` magic, version, count, then raw
/// little-endian `f64` quadruples. Loads paper-scale datasets (millions
/// of MBRs) an order of magnitude faster than CSV.
impl Dataset {
    const BIN_MAGIC: [u8; 4] = *b"SJDS";
    const BIN_VERSION: u8 = 1;

    /// Writes the binary representation.
    ///
    /// # Errors
    /// Propagates I/O errors.
    pub fn write_bin<W: Write>(&self, w: &mut W) -> io::Result<()> {
        let mut out = BufWriter::new(w);
        out.write_all(&Self::BIN_MAGIC)?;
        out.write_all(&[Self::BIN_VERSION])?;
        out.write_all(&(self.rects.len() as u64).to_le_bytes())?;
        for r in &self.rects {
            for v in [r.xlo, r.ylo, r.xhi, r.yhi] {
                out.write_all(&v.to_le_bytes())?;
            }
        }
        out.flush()
    }

    /// Reads a dataset written by [`Self::write_bin`]. The extent is
    /// recomputed from the data.
    ///
    /// # Errors
    /// Returns `InvalidData` on malformed input and propagates I/O errors.
    pub fn read_bin<R: io::Read>(name: impl Into<String>, mut r: R) -> io::Result<Self> {
        let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
        let mut header = [0u8; 4 + 1 + 8];
        r.read_exact(&mut header)
            .map_err(|_| bad("truncated header"))?;
        if header[..4] != Self::BIN_MAGIC {
            return Err(bad("bad magic"));
        }
        if header[4] != Self::BIN_VERSION {
            return Err(bad("unsupported version"));
        }
        let count = u64::from_le_bytes(header[5..13].try_into().expect("8 bytes"));
        let count = usize::try_from(count).map_err(|_| bad("count overflows usize"))?;
        let mut payload = Vec::new();
        r.read_to_end(&mut payload)?;
        if payload.len() != count * 32 {
            return Err(bad("payload size mismatch"));
        }
        let mut rects = Vec::with_capacity(count);
        for chunk in payload.chunks_exact(32) {
            let f = |i: usize| {
                f64::from_le_bytes(chunk[i * 8..(i + 1) * 8].try_into().expect("8 bytes"))
            };
            let rect = Rect {
                xlo: f(0),
                ylo: f(1),
                xhi: f(2),
                yhi: f(3),
            };
            if !rect.is_finite() || rect.xhi < rect.xlo || rect.yhi < rect.ylo {
                return Err(bad("invalid rectangle"));
            }
            rects.push(rect);
        }
        let extent = Extent::of_rects(&rects).unwrap_or_else(Extent::unit);
        Ok(Self::new(name, extent, rects))
    }

    /// Saves the dataset in binary form.
    ///
    /// # Errors
    /// Propagates file-creation and write errors.
    pub fn save_bin(&self, path: &Path) -> io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        self.write_bin(&mut f)
    }

    /// Loads a binary dataset file, naming it after the file stem.
    ///
    /// # Errors
    /// Propagates file-open and decode errors.
    pub fn load_bin(path: &Path) -> io::Result<Self> {
        let name = path.file_stem().map_or_else(
            || "dataset".to_string(),
            |s| s.to_string_lossy().into_owned(),
        );
        let f = std::fs::File::open(path)?;
        Self::read_bin(name, io::BufReader::new(f))
    }
}

#[cfg(test)]
mod bin_format_tests {
    use super::*;
    use sj_geo::Point;

    fn sample() -> Dataset {
        Dataset::new(
            "bin_sample",
            Extent::unit(),
            vec![
                Rect::new(0.125, 0.25, 0.5, 0.75),
                Rect::from_point(Point::new(0.9, 0.1)),
                Rect::new(1e-12, 0.0, 0.3333333333333333, 0.1),
            ],
        )
    }

    #[test]
    fn bin_roundtrip_is_bit_exact() {
        let ds = sample();
        let mut buf = Vec::new();
        ds.write_bin(&mut buf).unwrap();
        let back = Dataset::read_bin("bin_sample", &buf[..]).unwrap();
        assert_eq!(back.rects, ds.rects);
    }

    #[test]
    fn bin_rejects_corruption() {
        let ds = sample();
        let mut buf = Vec::new();
        ds.write_bin(&mut buf).unwrap();
        assert!(Dataset::read_bin("x", &buf[..buf.len() - 1]).is_err());
        assert!(Dataset::read_bin("x", &buf[..5]).is_err());
        let mut bad_magic = buf.clone();
        bad_magic[0] = b'X';
        assert!(Dataset::read_bin("x", &bad_magic[..]).is_err());
        let mut bad_version = buf.clone();
        bad_version[4] = 99;
        assert!(Dataset::read_bin("x", &bad_version[..]).is_err());
        // NaN payload must be rejected.
        let mut nan_payload = buf.clone();
        nan_payload[13..21].copy_from_slice(&f64::NAN.to_le_bytes());
        assert!(Dataset::read_bin("x", &nan_payload[..]).is_err());
    }

    #[test]
    fn bin_file_roundtrip() {
        let dir = std::env::temp_dir().join("sj_datagen_bin_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.bin");
        let ds = sample();
        ds.save_bin(&path).unwrap();
        let back = Dataset::load_bin(&path).unwrap();
        assert_eq!(back.name, "sample");
        assert_eq!(back.rects, ds.rects);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_dataset_bin_roundtrip() {
        let ds = Dataset::new("empty", Extent::unit(), vec![]);
        let mut buf = Vec::new();
        ds.write_bin(&mut buf).unwrap();
        let back = Dataset::read_bin("empty", &buf[..]).unwrap();
        assert!(back.is_empty());
    }
}
