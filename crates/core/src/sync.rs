//! Ranked lock wrappers — the concurrency-discipline layer (DESIGN.md §15).
//!
//! Every lock the workspace holds in library code is an
//! [`OrderedMutex`] or [`OrderedRwLock`] constructed with a
//! [`LockRank`]. The ranks form a total order and the discipline is
//! simple: **a thread may only acquire a lock of strictly higher rank
//! than every lock it already holds**. Any schedule that obeys a total
//! acquisition order is deadlock-free, so enforcing the order is
//! enforcing deadlock freedom.
//!
//! In debug builds (`cfg(debug_assertions)`) each wrapper keeps a
//! thread-local stack of held ranks and asserts the discipline on
//! every acquisition; when *observe mode* is enabled (by the dynamic
//! verifier `sj-lint verify-locks`) violations are recorded into a
//! global lock-event log instead of panicking, together with every
//! acquisition and every instrumented blocking-I/O call, so the
//! verifier can rebuild the observed lock-order graph after the
//! workload. In release builds the wrappers compile down to the bare
//! `std::sync` lock plus poison recovery — no rank field, no
//! thread-local, no event log (`BENCH_4.json` asserts the overhead is
//! ≤ 2% on the hot path).
//!
//! Poison recovery is part of the wrapper contract: a panic under a
//! guard must never wedge the next acquirer, so `lock()`/`read()`/
//! `write()` recover poison via [`PoisonError::into_inner`] — the
//! policy every call site in the workspace already used by hand.

#[cfg(debug_assertions)]
use std::sync::atomic::Ordering;
use std::sync::PoisonError;
use std::sync::{Mutex as StdMutex, RwLock as StdRwLock};

/// Position of a lock in the workspace-wide acquisition order.
///
/// Declaration order **is** rank order (`derive(PartialOrd, Ord)` on a
/// unit enum): a thread holding a lock may only acquire locks declared
/// *below* it here. The order encodes the call graph of the statistics
/// daemon — see DESIGN.md §15 for the full table and rationale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum LockRank {
    /// The server's live-connection registry (`Server::conns`). Taken
    /// briefly by the accept loop and handler teardown, never while any
    /// statistics lock is held.
    ConnRegistry,
    /// The statistics mutation pipeline (`CatalogService::pipeline`):
    /// one coarse mutex serializing mutations and compactions so the
    /// catalog's `RwLock` never has to be held across file I/O.
    StatsStore,
    /// The catalog itself (`Arc<OrderedRwLock<Catalog>>`): many
    /// concurrent readers (estimates), short exclusive writers
    /// (in-memory commit only — never I/O).
    Catalog,
    /// The WAL/store file-I/O mutex (`CatalogService::wal_io`):
    /// serializes appends, fsyncs and compaction rewrites. Deliberately
    /// *above* `Catalog` so holding the catalog across file I/O is a
    /// rank inversion the checker sees.
    WalFile,
    /// The work-distribution queue inside [`crate::parallel_map`].
    /// Ranked above every daemon lock: estimate paths may fan out to
    /// worker threads while a catalog read guard is held.
    WorkQueue,
    /// The result-collection vector inside [`crate::parallel_map`].
    WorkResults,
}

impl LockRank {
    /// Every rank, lowest (acquired first) to highest.
    pub const ALL: [LockRank; 6] = [
        LockRank::ConnRegistry,
        LockRank::StatsStore,
        LockRank::Catalog,
        LockRank::WalFile,
        LockRank::WorkQueue,
        LockRank::WorkResults,
    ];

    /// Stable human name used in reports and DESIGN.md §15.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            LockRank::ConnRegistry => "conn-registry",
            LockRank::StatsStore => "stats-store",
            LockRank::Catalog => "catalog",
            LockRank::WalFile => "wal-file",
            LockRank::WorkQueue => "work-queue",
            LockRank::WorkResults => "work-results",
        }
    }

    /// Numeric rank (the position in [`LockRank::ALL`]).
    #[must_use]
    pub fn level(self) -> usize {
        match self {
            LockRank::ConnRegistry => 0,
            LockRank::StatsStore => 1,
            LockRank::Catalog => 2,
            LockRank::WalFile => 3,
            LockRank::WorkQueue => 4,
            LockRank::WorkResults => 5,
        }
    }
}

/// A lock some thread held at the moment an event was recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HeldLock {
    /// The held lock's rank.
    pub rank: LockRank,
    /// The held lock's construction-time name (e.g. `server.conns`).
    pub name: &'static str,
    /// `file:line` of the acquisition call site.
    pub site: String,
}

/// One entry of the global lock-event log (debug builds, observe mode).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LockEvent {
    /// A ranked lock was acquired (`lock()`, `read()` or `write()`).
    Acquire {
        /// Rank of the acquired lock.
        rank: LockRank,
        /// Construction-time name of the acquired lock.
        name: &'static str,
        /// `file:line` of the acquisition call site.
        site: String,
        /// Snapshot of the locks the acquiring thread already held.
        held: Vec<HeldLock>,
        /// Ordinal of the acquiring thread (stable within a process).
        thread: u64,
    },
    /// An instrumented blocking-I/O call ran (see [`note_blocking_io`]).
    BlockingIo {
        /// Operation name (`append_wal`, `sync_file`, ...).
        op: String,
        /// Snapshot of the locks the calling thread held.
        held: Vec<HeldLock>,
        /// Ordinal of the calling thread.
        thread: u64,
    },
}

#[cfg(debug_assertions)]
mod tracking {
    use super::{HeldLock, LockEvent, LockRank};
    use std::cell::RefCell;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::{Mutex, PoisonError};

    /// Observe mode: record instead of panicking on violations.
    pub(super) static OBSERVE: AtomicBool = AtomicBool::new(false);
    /// The global lock-event log, drained by `take_events`. Its own
    /// mutex is internal to the tracker — never held across user code,
    /// and a ranked wrapper here would recurse into itself.
    pub(super) static EVENTS: Mutex<Vec<LockEvent>> = Mutex::new(Vec::new());
    static NEXT_THREAD: AtomicU64 = AtomicU64::new(0);

    thread_local! {
        static HELD: RefCell<Vec<HeldLock>> = const { RefCell::new(Vec::new()) };
        static ORDINAL: u64 = NEXT_THREAD.fetch_add(1, Ordering::SeqCst);
    }

    pub(super) fn thread_ordinal() -> u64 {
        ORDINAL.with(|o| *o)
    }

    pub(super) fn held_snapshot() -> Vec<HeldLock> {
        HELD.with(|h| h.borrow().clone())
    }

    /// Rank check, run *before* blocking on the lock. Panics on a rank
    /// inversion unless observing (the verifier wants the evidence, not
    /// the corpse).
    pub(super) fn check_order(rank: LockRank, name: &'static str, site: &str) {
        let held = held_snapshot();
        let Some(worst) = held
            .iter()
            .filter(|h| h.rank >= rank)
            .max_by_key(|h| h.rank)
        else {
            return;
        };
        if OBSERVE.load(Ordering::SeqCst) {
            return; // recorded with its held snapshot in note_acquired
        }
        // sj-lint: allow(panic, a rank inversion is a latent deadlock and must fail loudly in debug builds; observe mode records it for the verifier instead)
        panic!(
            "lock-order violation: acquiring {:?} (rank {}) `{name}` at {site} \
             while holding {:?} (rank {}) `{}` acquired at {} — acquisition \
             ranks must strictly increase (DESIGN.md §15)",
            rank,
            rank.level(),
            worst.rank,
            worst.rank.level(),
            worst.name,
            worst.site,
        );
    }

    /// Records a successful acquisition onto the thread-local stack and
    /// (in observe mode) into the global log.
    pub(super) fn note_acquired(rank: LockRank, name: &'static str, site: String) {
        if OBSERVE.load(Ordering::SeqCst) {
            let ev = LockEvent::Acquire {
                rank,
                name,
                site: site.clone(),
                held: held_snapshot(),
                thread: thread_ordinal(),
            };
            EVENTS
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(ev);
        }
        HELD.with(|h| h.borrow_mut().push(HeldLock { rank, name, site }));
    }

    /// Pops the matching acquisition off the thread-local stack (guards
    /// may be dropped out of LIFO order — `drop(guard)` is legal).
    pub(super) fn note_released(rank: LockRank, name: &'static str) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(pos) = held.iter().rposition(|e| e.rank == rank && e.name == name) {
                held.remove(pos);
            }
        });
    }
}

/// Enables or disables observe mode (debug builds only). Enabling
/// clears the event log; disabling leaves the log intact for
/// [`take_events`]. Release builds: no-op.
pub fn set_observe(enabled: bool) {
    #[cfg(debug_assertions)]
    {
        if enabled {
            tracking::EVENTS
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .clear();
        }
        tracking::OBSERVE.store(enabled, Ordering::SeqCst);
    }
    #[cfg(not(debug_assertions))]
    let _ = enabled;
}

/// Whether observe mode is currently enabled.
#[must_use]
pub fn observing() -> bool {
    #[cfg(debug_assertions)]
    {
        tracking::OBSERVE.load(Ordering::SeqCst)
    }
    #[cfg(not(debug_assertions))]
    {
        false
    }
}

/// Drains and returns the global lock-event log (debug builds; always
/// empty in release).
#[must_use]
pub fn take_events() -> Vec<LockEvent> {
    #[cfg(debug_assertions)]
    {
        std::mem::take(
            &mut tracking::EVENTS
                .lock()
                .unwrap_or_else(PoisonError::into_inner),
        )
    }
    #[cfg(not(debug_assertions))]
    {
        Vec::new()
    }
}

/// Instrumentation hook for blocking file/socket I/O: the storage layer
/// calls this with an operation name (`append_wal`, `sync_file`, ...)
/// so the verifier can see I/O performed while ranked locks are held.
/// Records only in observe mode; never panics (single-threaded CLI
/// paths legitimately do I/O with no locks held).
pub fn note_blocking_io(op: &str) {
    #[cfg(debug_assertions)]
    {
        if tracking::OBSERVE.load(Ordering::SeqCst) {
            let ev = LockEvent::BlockingIo {
                op: op.to_string(),
                held: tracking::held_snapshot(),
                thread: tracking::thread_ordinal(),
            };
            tracking::EVENTS
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push(ev);
        }
    }
    #[cfg(not(debug_assertions))]
    let _ = op;
}

#[cfg(debug_assertions)]
fn caller_site(loc: &std::panic::Location<'_>) -> String {
    format!("{}:{}", loc.file(), loc.line())
}

/// A [`StdMutex`] that participates in the workspace lock hierarchy.
pub struct OrderedMutex<T> {
    inner: StdMutex<T>,
    #[cfg(debug_assertions)]
    rank: LockRank,
    #[cfg(debug_assertions)]
    name: &'static str,
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedMutex")
            .field("inner", &self.inner)
            .finish()
    }
}

/// Guard returned by [`OrderedMutex::lock`]; in release builds this is
/// the bare [`std::sync::MutexGuard`].
#[cfg(debug_assertions)]
pub struct OrderedMutexGuard<'a, T> {
    guard: std::sync::MutexGuard<'a, T>,
    rank: LockRank,
    name: &'static str,
}

/// Guard returned by [`OrderedMutex::lock`] (release: the std guard).
#[cfg(not(debug_assertions))]
pub type OrderedMutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

#[cfg(debug_assertions)]
impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

#[cfg(debug_assertions)]
impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for OrderedMutexGuard<'_, T> {
    fn drop(&mut self) {
        tracking::note_released(self.rank, self.name);
    }
}

impl<T> OrderedMutex<T> {
    /// Wraps `value` in a mutex at `rank`, labelled `name` for reports.
    #[must_use]
    pub fn new(rank: LockRank, name: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = (rank, name);
        OrderedMutex {
            inner: StdMutex::new(value),
            #[cfg(debug_assertions)]
            rank,
            #[cfg(debug_assertions)]
            name,
        }
    }

    /// Acquires the mutex, recovering poison. Debug builds assert the
    /// acquisition respects the rank order (see module docs).
    #[track_caller]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        #[cfg(debug_assertions)]
        {
            let site = caller_site(std::panic::Location::caller());
            tracking::check_order(self.rank, self.name, &site);
            let guard = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
            tracking::note_acquired(self.rank, self.name, site);
            OrderedMutexGuard {
                guard,
                rank: self.rank,
                name: self.name,
            }
        }
        #[cfg(not(debug_assertions))]
        {
            self.inner.lock().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Consumes the mutex, returning the value (recovering poison).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

/// A [`StdRwLock`] that participates in the workspace lock hierarchy.
pub struct OrderedRwLock<T> {
    inner: StdRwLock<T>,
    #[cfg(debug_assertions)]
    rank: LockRank,
    #[cfg(debug_assertions)]
    name: &'static str,
}

impl<T: std::fmt::Debug> std::fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OrderedRwLock")
            .field("inner", &self.inner)
            .finish()
    }
}

/// Shared guard returned by [`OrderedRwLock::read`]; in release builds
/// this is the bare [`std::sync::RwLockReadGuard`].
#[cfg(debug_assertions)]
pub struct OrderedReadGuard<'a, T> {
    guard: std::sync::RwLockReadGuard<'a, T>,
    rank: LockRank,
    name: &'static str,
}

/// Shared guard returned by [`OrderedRwLock::read`] (release).
#[cfg(not(debug_assertions))]
pub type OrderedReadGuard<'a, T> = std::sync::RwLockReadGuard<'a, T>;

/// Exclusive guard returned by [`OrderedRwLock::write`]; in release
/// builds this is the bare [`std::sync::RwLockWriteGuard`].
#[cfg(debug_assertions)]
pub struct OrderedWriteGuard<'a, T> {
    guard: std::sync::RwLockWriteGuard<'a, T>,
    rank: LockRank,
    name: &'static str,
}

/// Exclusive guard returned by [`OrderedRwLock::write`] (release).
#[cfg(not(debug_assertions))]
pub type OrderedWriteGuard<'a, T> = std::sync::RwLockWriteGuard<'a, T>;

#[cfg(debug_assertions)]
impl<T> std::ops::Deref for OrderedReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for OrderedReadGuard<'_, T> {
    fn drop(&mut self) {
        tracking::note_released(self.rank, self.name);
    }
}

#[cfg(debug_assertions)]
impl<T> std::ops::Deref for OrderedWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.guard
    }
}

#[cfg(debug_assertions)]
impl<T> std::ops::DerefMut for OrderedWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

#[cfg(debug_assertions)]
impl<T> Drop for OrderedWriteGuard<'_, T> {
    fn drop(&mut self) {
        tracking::note_released(self.rank, self.name);
    }
}

impl<T> OrderedRwLock<T> {
    /// Wraps `value` in a reader-writer lock at `rank`, labelled `name`.
    #[must_use]
    pub fn new(rank: LockRank, name: &'static str, value: T) -> Self {
        #[cfg(not(debug_assertions))]
        let _ = (rank, name);
        OrderedRwLock {
            inner: StdRwLock::new(value),
            #[cfg(debug_assertions)]
            rank,
            #[cfg(debug_assertions)]
            name,
        }
    }

    /// Acquires a shared guard, recovering poison. Shared acquisitions
    /// obey the same rank discipline as exclusive ones — reader/writer
    /// deadlocks are still deadlocks.
    #[track_caller]
    pub fn read(&self) -> OrderedReadGuard<'_, T> {
        #[cfg(debug_assertions)]
        {
            let site = caller_site(std::panic::Location::caller());
            tracking::check_order(self.rank, self.name, &site);
            let guard = self.inner.read().unwrap_or_else(PoisonError::into_inner);
            tracking::note_acquired(self.rank, self.name, site);
            OrderedReadGuard {
                guard,
                rank: self.rank,
                name: self.name,
            }
        }
        #[cfg(not(debug_assertions))]
        {
            self.inner.read().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Acquires an exclusive guard, recovering poison.
    #[track_caller]
    pub fn write(&self) -> OrderedWriteGuard<'_, T> {
        #[cfg(debug_assertions)]
        {
            let site = caller_site(std::panic::Location::caller());
            tracking::check_order(self.rank, self.name, &site);
            let guard = self.inner.write().unwrap_or_else(PoisonError::into_inner);
            tracking::note_acquired(self.rank, self.name, site);
            OrderedWriteGuard {
                guard,
                rank: self.rank,
                name: self.name,
            }
        }
        #[cfg(not(debug_assertions))]
        {
            self.inner.write().unwrap_or_else(PoisonError::into_inner)
        }
    }

    /// Consumes the lock, returning the value (recovering poison).
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(all(test, debug_assertions))]
mod tests {
    use super::*;

    /// The observe flag and event log are process-global; tests that
    /// touch them must not interleave.
    static SERIAL: StdMutex<()> = StdMutex::new(());

    #[test]
    fn ranks_are_strictly_ordered_and_named() {
        for w in LockRank::ALL.windows(2) {
            assert!(w[0] < w[1], "{:?} must rank below {:?}", w[0], w[1]);
        }
        for (i, r) in LockRank::ALL.iter().enumerate() {
            assert_eq!(r.level(), i);
            assert!(!r.name().is_empty());
        }
    }

    #[test]
    fn increasing_acquisitions_pass() {
        let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let low = OrderedMutex::new(LockRank::ConnRegistry, "t.low", 1);
        let high = OrderedMutex::new(LockRank::Catalog, "t.high", 2);
        let a = low.lock();
        let b = high.lock();
        assert_eq!(*a + *b, 3);
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn rank_inversion_panics_outside_observe_mode() {
        let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let low = OrderedMutex::new(LockRank::ConnRegistry, "t.low", ());
        let high = OrderedMutex::new(LockRank::WalFile, "t.high", ());
        let _h = high.lock();
        let _l = low.lock(); // WalFile held, ConnRegistry requested: inversion
    }

    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn same_rank_reacquisition_panics() {
        let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let a = OrderedMutex::new(LockRank::Catalog, "t.a", ());
        let b = OrderedMutex::new(LockRank::Catalog, "t.b", ());
        let _a = a.lock();
        let _b = b.lock();
    }

    #[test]
    fn early_drop_reopens_the_rank_window() {
        let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let high = OrderedMutex::new(LockRank::WalFile, "t.high", ());
        let low = OrderedMutex::new(LockRank::StatsStore, "t.low", ());
        let g = high.lock();
        drop(g);
        let _l = low.lock(); // fine: nothing held any more
    }

    #[test]
    fn observe_mode_records_acquisitions_and_io() {
        let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        set_observe(true);
        let low = OrderedMutex::new(LockRank::StatsStore, "t.pipeline", ());
        let high = OrderedRwLock::new(LockRank::Catalog, "t.catalog", 7);
        {
            let _g = low.lock();
            let r = high.read();
            assert_eq!(*r, 7);
            note_blocking_io("sync_file");
        }
        set_observe(false);
        let events = take_events();
        assert!(events.iter().any(|e| matches!(
            e,
            LockEvent::Acquire { name: "t.pipeline", held, .. } if held.is_empty()
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            LockEvent::Acquire { name: "t.catalog", held, .. }
                if held.len() == 1 && held[0].rank == LockRank::StatsStore
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            LockEvent::BlockingIo { op, held, .. }
                if op == "sync_file" && held.iter().any(|h| h.rank == LockRank::Catalog)
        )));
        assert!(take_events().is_empty(), "take_events drains the log");
    }

    #[test]
    fn observe_mode_records_inversions_instead_of_panicking() {
        let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        set_observe(true);
        let low = OrderedMutex::new(LockRank::StatsStore, "t.low", ());
        let high = OrderedMutex::new(LockRank::WalFile, "t.high", ());
        {
            let _h = high.lock();
            let _l = low.lock(); // inversion: recorded, not fatal
        }
        set_observe(false);
        let events = take_events();
        let inverted = events.iter().any(|e| {
            matches!(
                e,
                LockEvent::Acquire { rank: LockRank::StatsStore, held, .. }
                    if held.iter().any(|h| h.rank >= LockRank::StatsStore)
            )
        });
        assert!(inverted, "the inversion must appear in the log: {events:?}");
    }

    #[test]
    fn poison_is_recovered_by_every_acquisition_path() {
        let _serial = SERIAL.lock().unwrap_or_else(PoisonError::into_inner);
        let lock = std::sync::Arc::new(OrderedRwLock::new(LockRank::Catalog, "t.poison", 41));
        let clone = std::sync::Arc::clone(&lock);
        let _ = std::thread::spawn(move || {
            let _g = clone.write();
            panic!("poison the lock");
        })
        .join();
        assert_eq!(*lock.read(), 41, "read after poison");
        *lock.write() = 42;
        assert_eq!(*lock.read(), 42, "write after poison");
        let m = OrderedMutex::new(LockRank::Catalog, "t.into", 5);
        assert_eq!(m.into_inner(), 5);
    }
}
