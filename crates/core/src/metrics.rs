//! The paper's evaluation metrics (Section 4.2), all relative:
//!
//! * **Estimation error** — `|estimated − actual| / actual`, in percent.
//! * **Estimation time** — estimation cost over the exact-join cost.
//! * **Building time** — auxiliary-structure build cost over the R-tree
//!   build cost.
//! * **Space cost** — auxiliary-structure bytes over the R-tree bytes.

use std::time::Duration;

/// Estimation error in percent: `|est − actual| / actual × 100`.
///
/// When the actual selectivity is zero, returns `0` for a zero estimate
/// and `f64::INFINITY` otherwise (any non-zero estimate of an empty join
/// is infinitely wrong in relative terms).
#[must_use]
pub fn error_pct(estimated: f64, actual: f64) -> f64 {
    if actual == 0.0 {
        return if estimated == 0.0 { 0.0 } else { f64::INFINITY };
    }
    ((estimated - actual) / actual).abs() * 100.0
}

/// `numerator / denominator` in percent, guarding a zero denominator
/// (sub-resolution baseline timings on very small inputs) by returning
/// `f64::NAN`, which the harness prints as `n/a`.
#[must_use]
pub fn ratio_pct(numerator: Duration, denominator: Duration) -> f64 {
    let d = denominator.as_secs_f64();
    if d == 0.0 {
        return f64::NAN;
    }
    numerator.as_secs_f64() / d * 100.0
}

/// Bytes ratio in percent, with the same zero-denominator guard.
#[must_use]
pub fn bytes_pct(numerator: usize, denominator: usize) -> f64 {
    if denominator == 0 {
        return f64::NAN;
    }
    #[allow(clippy::cast_precision_loss)]
    {
        numerator as f64 / denominator as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_pct_basics() {
        assert!((error_pct(0.11, 0.10) - 10.0).abs() < 1e-9);
        assert!((error_pct(0.09, 0.10) - 10.0).abs() < 1e-9);
        assert_eq!(error_pct(0.10, 0.10), 0.0);
        assert_eq!(error_pct(0.0, 0.0), 0.0);
        assert_eq!(error_pct(0.1, 0.0), f64::INFINITY);
    }

    #[test]
    fn error_is_symmetric_direction_agnostic() {
        // Over- and under-estimation by the same factor give the same
        // absolute relative error magnitude structure.
        assert!((error_pct(0.2, 0.1) - 100.0).abs() < 1e-9);
        assert!((error_pct(0.05, 0.1) - 50.0).abs() < 1e-9);
    }

    #[test]
    fn ratio_pct_basics() {
        let ms = Duration::from_millis;
        assert!((ratio_pct(ms(10), ms(100)) - 10.0).abs() < 1e-9);
        assert!((ratio_pct(ms(100), ms(10)) - 1000.0).abs() < 1e-9);
        assert!(ratio_pct(ms(5), Duration::ZERO).is_nan());
    }

    #[test]
    fn bytes_pct_basics() {
        assert!((bytes_pct(10, 1000) - 1.0).abs() < 1e-12);
        assert!(bytes_pct(10, 0).is_nan());
    }
}
