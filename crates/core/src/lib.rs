//! Spatial join selectivity estimation — the unified public API.
//!
//! This crate reproduces *"Selectivity Estimation for Spatial Joins"*
//! (An, Yang & Sivasubramaniam, ICDE 2001): given two datasets of
//! axis-parallel rectangles (MBRs), estimate the fraction of the cross
//! product whose MBRs intersect — without running the join.
//!
//! # Quick start
//!
//! ```
//! use sj_core::{presets, EstimatorKind, JoinBaseline, error_pct};
//!
//! // Two synthetic datasets from the paper (scaled down for the doctest).
//! let (left, right) = presets::PaperJoin::ScrcSura.datasets(0.01);
//!
//! // The exact join (the oracle estimators are judged against).
//! let baseline = JoinBaseline::compute(&left, &right);
//!
//! // The paper's headline estimator: the Geometric Histogram at level 5.
//! let report = EstimatorKind::Gh { level: 5 }.run(&left, &right);
//!
//! let err = error_pct(report.estimate.selectivity, baseline.selectivity);
//! assert!(err < 25.0, "GH error was {err:.1}%");
//! ```
//!
//! # What's inside
//!
//! * [`EstimatorKind`] — every estimator evaluated in the paper behind
//!   one entry point: the prior parametric model, the Parametric
//!   Histogram (PH), the basic and revised Geometric Histograms (GH),
//!   and the three sampling schemes (RS / RSWR / SS).
//! * [`JoinBaseline`] — the exact filter-step join with R-tree build and
//!   join timings, the denominator of every relative metric in the paper.
//! * [`experiment`] — runners that regenerate the paper's Figure 6
//!   (sampling) and Figure 7 (histograms) series.
//! * Re-exports of the substrate crates: geometry ([`Rect`], [`Extent`]),
//!   [`Dataset`] and generators ([`presets`]), the R-tree, the
//!   plane-sweep oracle, and the histogram/sampling implementations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod estimator;
pub mod exact;
pub mod experiment;
pub mod metrics;
pub mod parallel;
pub mod sync;

pub use estimator::{Estimate, EstimationReport, EstimatorKind};
pub use exact::{ExactBackend, JoinBaseline};
pub use metrics::{error_pct, ratio_pct};
pub use parallel::{parallel_map, Parallelism, ParallelismError};
pub use sync::{LockRank, OrderedMutex, OrderedRwLock};

/// The workspace's single CRC32-IEEE implementation (canonical home:
/// `sj_histogram::crc`, re-exported here so every crate shares one
/// table and one set of known-answer tests).
pub use sj_histogram::crc;

// Substrate re-exports: the whole workspace is usable through sj-core.
pub use sj_datagen::{presets, Dataset, DatasetError, DatasetStats, Generator, SizeModel};
pub use sj_geo::{
    apply_policy, check_raw_rect, Extent, Point, Rect, RectIssue, Validated, ValidationPolicy,
    ValidationReport,
};
pub use sj_histogram::{
    build_histogram, build_histogram_parallel, build_histogram_sharded, load_delta, load_histogram,
    load_histogram_json, parametric_selectivity, CorruptSection, EulerHistogram, GhBasicHistogram,
    GhHistogram, Grid, HistogramDelta, HistogramError, HistogramKind, ParametricInputs,
    PhHistogram, SelectivityEstimate, SpatialHistogram,
};
pub use sj_rtree::{
    join_count, join_count_parallel, join_pairs, mindist, RTree, RTreeConfig, SplitAlgorithm,
};
pub use sj_sampling::{
    draw_sample, JoinBackend, SamplingEstimator, SamplingOutcome, SamplingTechnique,
    ALL_TECHNIQUES, PAPER_TECHNIQUES,
};
pub use sj_sweep::{
    sweep_join_count, sweep_join_count_parallel, sweep_join_count_tiled, sweep_join_pairs,
    sweep_join_selectivity, tile_sweep, SweepTile, TiledSweep,
};
