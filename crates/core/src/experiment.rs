//! Experiment runners that regenerate the paper's evaluation series.
//!
//! * [`fig6_rows`] — Figure 6: sampling techniques × sample-size
//!   combinations, reporting estimation error, *Est. Time 1* (R-trees on
//!   the base data unavailable — the denominator includes building them)
//!   and *Est. Time 2* (R-trees available — denominator is the join
//!   alone).
//! * [`fig7_rows`] — Figure 7: PH and GH across gridding levels,
//!   reporting estimation error, estimation time, building time and
//!   space cost, all relative to the R-tree baseline.

use crate::metrics::{bytes_pct, error_pct, ratio_pct};
use crate::{Dataset, EstimatorKind, Extent, JoinBaseline, Parallelism, SamplingTechnique};
use serde::Serialize;
use sj_rtree::RTreeConfig;

/// A prepared join: both datasets, the join universe, and the exact-join
/// baseline every relative metric is computed against.
#[derive(Debug, Clone)]
pub struct JoinContext {
    /// Display name, e.g. `"TS with TCB"`.
    pub name: String,
    /// Left input.
    pub left: Dataset,
    /// Right input.
    pub right: Dataset,
    /// Join universe (union of the two datasets' extents).
    pub extent: Extent,
    /// Exact join result and baseline costs.
    pub baseline: JoinBaseline,
}

impl JoinContext {
    /// Runs the exact join and captures the baseline, using all available
    /// threads for the join traversal.
    #[must_use]
    pub fn prepare(name: impl Into<String>, left: Dataset, right: Dataset) -> Self {
        Self::prepare_with(name, left, right, Parallelism::default())
    }

    /// [`Self::prepare`] with an explicit thread count for the exact-join
    /// traversal. The baseline pair count is identical at every thread
    /// count; only the timings change.
    #[must_use]
    pub fn prepare_with(
        name: impl Into<String>,
        left: Dataset,
        right: Dataset,
        par: Parallelism,
    ) -> Self {
        let extent = Extent::new(left.extent.rect().union(&right.extent.rect()));
        let baseline =
            JoinBaseline::compute_with_parallelism(&left, &right, RTreeConfig::default(), par);
        Self {
            name: name.into(),
            left,
            right,
            extent,
            baseline,
        }
    }
}

/// The nine sample-size combinations on Figure 6's x-axis, as
/// `(left %, right %)`; `100` means the entire dataset.
pub const FIG6_COMBOS: [(f64, f64); 9] = [
    (0.1, 0.1),
    (1.0, 1.0),
    (10.0, 10.0),
    (0.1, 100.0),
    (100.0, 0.1),
    (1.0, 100.0),
    (100.0, 1.0),
    (10.0, 100.0),
    (100.0, 10.0),
];

/// One bar of Figure 6: a (join, technique, combo) triple.
#[derive(Debug, Clone, Serialize)]
pub struct SamplingRow {
    /// Join name.
    pub join: String,
    /// Technique name (RSWR / RS / SS).
    pub technique: String,
    /// Combination label, e.g. `"10/10"` or `"0.1/100"`.
    pub combo: String,
    /// Left sample percent.
    pub percent_left: f64,
    /// Right sample percent.
    pub percent_right: f64,
    /// Estimated selectivity.
    pub estimated: f64,
    /// Exact selectivity.
    pub actual: f64,
    /// Estimation error in percent.
    pub error_pct: f64,
    /// Est. Time 1: estimation cost / (R-tree build + join) cost, percent.
    pub est_time_1_pct: f64,
    /// Est. Time 2: estimation cost / join cost, percent.
    pub est_time_2_pct: f64,
    /// Worker threads the runner used to produce this row.
    pub threads: usize,
}

/// Formats a percentage the way the paper's x-axis labels do
/// (`0.1`, `1`, `10`, `100`).
fn combo_label(l: f64, r: f64) -> String {
    let one = |v: f64| {
        if (v - v.round()).abs() < f64::EPSILON {
            format!("{}", v.round() as i64)
        } else {
            format!("{v}")
        }
    };
    format!("{}/{}", one(l), one(r))
}

/// Runs one sampling technique at one combination.
#[must_use]
pub fn fig6_row(
    ctx: &JoinContext,
    technique: SamplingTechnique,
    percent_left: f64,
    percent_right: f64,
) -> SamplingRow {
    let kind = EstimatorKind::Sampling {
        technique,
        percent_left,
        percent_right,
    };
    let report = kind.run_in_extent(&ctx.left, &ctx.right, &ctx.extent);
    let join_only = ctx.baseline.join_time;
    let build_and_join = ctx.baseline.rtree_build_time + ctx.baseline.join_time;
    SamplingRow {
        join: ctx.name.clone(),
        technique: technique.name().to_string(),
        combo: combo_label(percent_left, percent_right),
        percent_left,
        percent_right,
        estimated: report.estimate.selectivity,
        actual: ctx.baseline.selectivity,
        error_pct: error_pct(report.estimate.selectivity, ctx.baseline.selectivity),
        est_time_1_pct: ratio_pct(report.estimate_time, build_and_join),
        est_time_2_pct: ratio_pct(report.estimate_time, join_only),
        threads: 1,
    }
}

/// Regenerates one panel of Figure 6: all 9 combinations × 3 techniques
/// (the paper's legend), serially.
#[must_use]
pub fn fig6_rows(ctx: &JoinContext) -> Vec<SamplingRow> {
    fig6_rows_par(ctx, Parallelism::serial())
}

/// [`fig6_rows`] with the independent (technique, combo) configurations
/// fanned out over a scoped worker pool. Row order matches the serial
/// runner; each configuration still runs its estimator serially, so
/// estimate timings stay comparable across thread counts.
#[must_use]
pub fn fig6_rows_par(ctx: &JoinContext, par: Parallelism) -> Vec<SamplingRow> {
    let configs: Vec<(SamplingTechnique, f64, f64)> = FIG6_COMBOS
        .into_iter()
        .flat_map(|(l, r)| crate::PAPER_TECHNIQUES.into_iter().map(move |t| (t, l, r)))
        .collect();
    let mut rows = crate::parallel_map(configs, par, |(technique, l, r)| {
        fig6_row(ctx, technique, l, r)
    });
    for row in &mut rows {
        row.threads = par.threads();
    }
    rows
}

/// One point of Figure 7: a (join, scheme, level) triple.
#[derive(Debug, Clone, Serialize)]
pub struct HistogramRow {
    /// Join name.
    pub join: String,
    /// Scheme name (`"PH"`, `"GH"`, or `"GH-basic"` for the ablation).
    pub scheme: String,
    /// Gridding level `h`.
    pub level: u32,
    /// Estimated selectivity.
    pub estimated: f64,
    /// Exact selectivity.
    pub actual: f64,
    /// Estimation error in percent.
    pub error_pct: f64,
    /// Estimation time / exact join time, percent.
    pub est_time_pct: f64,
    /// Histogram build time / R-tree build time, percent.
    pub build_time_pct: f64,
    /// Histogram bytes / R-tree bytes, percent.
    pub space_pct: f64,
    /// Worker threads the runner used to produce this row.
    pub threads: usize,
}

/// Which histogram schemes to run per level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HistogramScheme {
    /// Parametric Histogram.
    Ph,
    /// Revised Geometric Histogram (the paper's "GH").
    Gh,
    /// Basic Geometric Histogram (ablation only — not in Figure 7).
    GhBasic,
}

impl HistogramScheme {
    /// Display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            HistogramScheme::Ph => "PH",
            HistogramScheme::Gh => "GH",
            HistogramScheme::GhBasic => "GH-basic",
        }
    }

    fn kind(self, level: u32) -> EstimatorKind {
        match self {
            HistogramScheme::Ph => EstimatorKind::Ph { level },
            HistogramScheme::Gh => EstimatorKind::Gh { level },
            HistogramScheme::GhBasic => EstimatorKind::GhBasic { level },
        }
    }
}

/// Runs one histogram scheme at one level.
#[must_use]
pub fn fig7_row(ctx: &JoinContext, scheme: HistogramScheme, level: u32) -> HistogramRow {
    let report = scheme
        .kind(level)
        .run_in_extent(&ctx.left, &ctx.right, &ctx.extent);
    HistogramRow {
        join: ctx.name.clone(),
        scheme: scheme.name().to_string(),
        level,
        estimated: report.estimate.selectivity,
        actual: ctx.baseline.selectivity,
        error_pct: error_pct(report.estimate.selectivity, ctx.baseline.selectivity),
        est_time_pct: ratio_pct(report.estimate_time, ctx.baseline.join_time),
        build_time_pct: ratio_pct(report.build_time, ctx.baseline.rtree_build_time),
        space_pct: bytes_pct(report.space_bytes, ctx.baseline.rtree_bytes),
        threads: 1,
    }
}

/// Regenerates one panel of Figure 7: PH and GH for `levels`
/// (the paper sweeps 0..=9), serially.
#[must_use]
pub fn fig7_rows(ctx: &JoinContext, levels: std::ops::RangeInclusive<u32>) -> Vec<HistogramRow> {
    fig7_rows_par(ctx, levels, Parallelism::serial())
}

/// [`fig7_rows`] with the independent (scheme, level) configurations
/// fanned out over a scoped worker pool. Histogram builds are
/// bit-identical across thread counts, so the estimates match the serial
/// runner exactly; row order matches too.
#[must_use]
pub fn fig7_rows_par(
    ctx: &JoinContext,
    levels: std::ops::RangeInclusive<u32>,
    par: Parallelism,
) -> Vec<HistogramRow> {
    let configs: Vec<(HistogramScheme, u32)> = levels
        .flat_map(|level| [(HistogramScheme::Ph, level), (HistogramScheme::Gh, level)])
        .collect();
    let mut rows =
        crate::parallel_map(configs, par, |(scheme, level)| fig7_row(ctx, scheme, level));
    for row in &mut rows {
        row.threads = par.threads();
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    fn ctx() -> JoinContext {
        let (a, b) = presets::PaperJoin::ScrcSura.datasets(0.005);
        JoinContext::prepare("SCRC with SURA", a, b)
    }

    #[test]
    fn combo_labels_match_paper_axis() {
        assert_eq!(combo_label(0.1, 0.1), "0.1/0.1");
        assert_eq!(combo_label(10.0, 100.0), "10/100");
        assert_eq!(combo_label(100.0, 1.0), "100/1");
    }

    #[test]
    fn fig6_produces_27_rows() {
        let rows = fig6_rows(&ctx());
        assert_eq!(rows.len(), 27);
        // Full-sample combos of deterministic techniques have zero error.
        let exact_row = rows
            .iter()
            .find(|r| r.technique == "RS" && r.combo == "10/100")
            .expect("row exists");
        assert!(exact_row.error_pct.is_finite());
        // Est. Time 1 uses a strictly larger denominator than Est. Time 2.
        for r in &rows {
            if r.est_time_1_pct.is_finite() && r.est_time_2_pct.is_finite() {
                assert!(
                    r.est_time_1_pct <= r.est_time_2_pct + 1e-9,
                    "Est.Time1 ({}) must not exceed Est.Time2 ({})",
                    r.est_time_1_pct,
                    r.est_time_2_pct
                );
            }
        }
    }

    #[test]
    fn fig7_produces_two_schemes_per_level() {
        let rows = fig7_rows(&ctx(), 0..=3);
        assert_eq!(rows.len(), 8);
        assert!(rows.iter().any(|r| r.scheme == "PH" && r.level == 0));
        assert!(rows.iter().any(|r| r.scheme == "GH" && r.level == 3));
        for r in &rows {
            assert!(
                r.error_pct.is_finite(),
                "{}/{}: error must be finite",
                r.scheme,
                r.level
            );
            assert!(r.space_pct > 0.0);
        }
    }

    #[test]
    fn gh_space_below_ph_space() {
        let rows = fig7_rows(&ctx(), 4..=4);
        let ph = rows.iter().find(|r| r.scheme == "PH").unwrap();
        let gh = rows.iter().find(|r| r.scheme == "GH").unwrap();
        assert!(gh.space_pct < ph.space_pct);
    }

    #[test]
    fn parallel_runners_match_serial() {
        let c = ctx();
        let serial = fig7_rows(&c, 0..=2);
        let par = fig7_rows_par(&c, 0..=2, Parallelism::saturating_new(4));
        assert_eq!(serial.len(), par.len());
        for (s, p) in serial.iter().zip(&par) {
            assert_eq!((s.scheme.as_str(), s.level), (p.scheme.as_str(), p.level));
            assert_eq!(s.estimated, p.estimated, "{}/{}", s.scheme, s.level);
            assert_eq!(s.threads, 1);
            assert_eq!(p.threads, 4);
        }
        let s6 = fig6_rows(&c);
        let p6 = fig6_rows_par(&c, Parallelism::saturating_new(3));
        assert_eq!(s6.len(), p6.len());
        for (s, p) in s6.iter().zip(&p6) {
            assert_eq!(
                (s.technique.as_str(), s.combo.as_str()),
                (p.technique.as_str(), p.combo.as_str())
            );
            // Sampling draws from a fixed seed, so estimates agree exactly.
            assert_eq!(s.estimated, p.estimated, "{}/{}", s.technique, s.combo);
        }
    }

    #[test]
    fn sampling_full_combo_is_exact() {
        let c = ctx();
        let row = fig6_row(&c, SamplingTechnique::Regular, 100.0, 100.0);
        assert!(
            row.error_pct < 1e-9,
            "100/100 RS must be exact, got {}",
            row.error_pct
        );
    }
}
