//! One entry point for every estimator evaluated in the paper.

use crate::{Dataset, Extent, Parallelism};
use serde::Serialize;
use sj_histogram::{
    build_histogram_parallel, parametric_selectivity, Grid, HistogramKind, ParametricInputs,
    SelectivityEstimate,
};
use sj_sampling::{JoinBackend, SamplingEstimator, SamplingTechnique};
use std::time::{Duration, Instant};

/// A selectivity estimate plus the implied result size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Estimate {
    /// Estimated selectivity in `[0, 1]`.
    pub selectivity: f64,
    /// Estimated number of intersecting pairs.
    pub pairs: f64,
}

/// Everything an estimation run produces: the estimate plus the raw costs
/// from which the paper's relative metrics are computed.
#[derive(Debug, Clone, Serialize)]
pub struct EstimationReport {
    /// Human-readable estimator label, e.g. `"GH(level=7)"`.
    pub estimator: String,
    /// The estimate.
    pub estimate: Estimate,
    /// Time spent building per-dataset auxiliary structures (histogram
    /// files). Zero for sampling, whose whole cost is per-query.
    pub build_time: Duration,
    /// Time spent answering the estimation query. For sampling this
    /// includes drawing the samples, indexing them and joining them.
    pub estimate_time: Duration,
    /// Bytes of auxiliary state: the two histogram files, or the two
    /// samples (16 bytes would undercount — 40 bytes/entry matches the
    /// R-tree entry model used for the space baseline).
    pub space_bytes: usize,
}

/// Every estimator from the paper, selectable by value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EstimatorKind {
    /// The prior parametric model (Aref & Samet; paper Eq. 1–2).
    Parametric,
    /// Parametric Histogram at grid level `level` (paper Section 3.1.2).
    Ph {
        /// Gridding level `h` (`4^h` cells).
        level: u32,
    },
    /// Basic Geometric Histogram (paper Section 3.2.1, Eq. 4).
    GhBasic {
        /// Gridding level `h`.
        level: u32,
    },
    /// Revised Geometric Histogram — the paper's headline scheme
    /// (Section 3.2.2, Eq. 5).
    Gh {
        /// Gridding level `h`.
        level: u32,
    },
    /// Euler histogram (exact block-intersection counting at cell
    /// resolution; extension beyond the paper).
    Euler {
        /// Gridding level `h`.
        level: u32,
    },
    /// Sampling with the given technique and per-side sample percentages.
    Sampling {
        /// RS, RSWR or SS.
        technique: SamplingTechnique,
        /// Left sample size in percent `(0, 100]`.
        percent_left: f64,
        /// Right sample size in percent `(0, 100]`.
        percent_right: f64,
    },
}

/// Modeled bytes per stored sample rectangle (MBR + id), aligned with the
/// R-tree entry model so sampling space costs are comparable.
const SAMPLE_ENTRY_BYTES: usize = 40;

impl EstimatorKind {
    /// Label used in reports and figure output.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            EstimatorKind::Parametric => "Parametric".to_string(),
            EstimatorKind::Ph { level } => format!("PH(level={level})"),
            EstimatorKind::GhBasic { level } => format!("GH-basic(level={level})"),
            EstimatorKind::Gh { level } => format!("GH(level={level})"),
            EstimatorKind::Euler { level } => format!("Euler(level={level})"),
            EstimatorKind::Sampling {
                technique,
                percent_left,
                percent_right,
            } => {
                format!("{}({percent_left}%/{percent_right}%)", technique.name())
            }
        }
    }

    /// The histogram family and grid level behind this estimator, when it
    /// is histogram-based (`None` for the parametric model and sampling).
    #[must_use]
    pub fn histogram_config(&self) -> Option<(HistogramKind, u32)> {
        match *self {
            EstimatorKind::Ph { level } => Some((HistogramKind::Ph, level)),
            EstimatorKind::GhBasic { level } => Some((HistogramKind::GhBasic, level)),
            EstimatorKind::Gh { level } => Some((HistogramKind::Gh, level)),
            EstimatorKind::Euler { level } => Some((HistogramKind::Euler, level)),
            EstimatorKind::Parametric | EstimatorKind::Sampling { .. } => None,
        }
    }

    /// Runs the estimator on a pair of datasets, using the joint extent of
    /// the two datasets' declared extents. Histogram builds run serially —
    /// use [`Self::run_par`] to shard them across threads.
    ///
    /// # Panics
    /// Panics if a histogram level exceeds [`Grid::MAX_LEVEL`] — levels are
    /// caller-chosen configuration, not data.
    #[must_use]
    pub fn run(&self, left: &Dataset, right: &Dataset) -> EstimationReport {
        let extent = Extent::new(left.extent.rect().union(&right.extent.rect()));
        self.run_in_extent(left, right, &extent)
    }

    /// [`Self::run`] with an explicit [`Parallelism`] for the histogram
    /// builds. Histogram builds are bit-identical across thread counts
    /// (row-band accumulation), so only `build_time` changes; sampling and
    /// the parametric model are unaffected by `par`.
    #[must_use]
    pub fn run_par(&self, left: &Dataset, right: &Dataset, par: Parallelism) -> EstimationReport {
        let extent = Extent::new(left.extent.rect().union(&right.extent.rect()));
        self.run_in_extent_par(left, right, &extent, par)
    }

    /// Runs the estimator within an explicit extent (the join universe),
    /// serially.
    #[must_use]
    pub fn run_in_extent(
        &self,
        left: &Dataset,
        right: &Dataset,
        extent: &Extent,
    ) -> EstimationReport {
        self.run_in_extent_par(left, right, extent, Parallelism::serial())
    }

    /// [`Self::run_in_extent`] with an explicit [`Parallelism`] for the
    /// histogram builds.
    #[must_use]
    pub fn run_in_extent_par(
        &self,
        left: &Dataset,
        right: &Dataset,
        extent: &Extent,
        par: Parallelism,
    ) -> EstimationReport {
        let threads = par.threads();
        // Every histogram family goes through the one SpatialHistogram
        // code path; the families only differ by the boxed builder.
        if let Some((kind, level)) = self.histogram_config() {
            // sj-lint: allow(panic, every EstimatorKind level is validated <= Grid::MAX_LEVEL at construction)
            let grid = Grid::new(level, *extent).expect("level within Grid::MAX_LEVEL");
            // sj-lint: allow(determinism, wall-clock measures reported build cost, never estimator input)
            let t0 = Instant::now();
            let ha = build_histogram_parallel(kind, grid, &left.rects, threads);
            let hb = build_histogram_parallel(kind, grid, &right.rects, threads);
            let build_time = t0.elapsed();
            // sj-lint: allow(determinism, wall-clock measures reported estimate cost, never estimator input)
            let t1 = Instant::now();
            let est = ha
                .estimate_join(hb.as_ref())
                // sj-lint: allow(panic, both histograms share kind and grid by construction two lines up)
                .expect("same kind and grid by construction");
            let estimate_time = t1.elapsed();
            return EstimationReport {
                estimator: self.label(),
                estimate: est.into(),
                build_time,
                estimate_time,
                space_bytes: ha.space_bytes() + hb.space_bytes(),
            };
        }
        match *self {
            EstimatorKind::Parametric => {
                // sj-lint: allow(determinism, wall-clock measures reported build cost, never estimator input)
                let t0 = Instant::now();
                // DatasetStats::coverage is relative to the dataset's own
                // extent; re-express it against the join extent.
                let to_inputs = |s: crate::DatasetStats, own: &Extent| ParametricInputs {
                    count: s.count,
                    coverage: s.coverage * own.area() / extent.area(),
                    avg_width: s.avg_width,
                    avg_height: s.avg_height,
                };
                let ia = to_inputs(left.stats(), &left.extent);
                let ib = to_inputs(right.stats(), &right.extent);
                let build_time = t0.elapsed();
                // sj-lint: allow(determinism, wall-clock measures reported estimate cost, never estimator input)
                let t1 = Instant::now();
                let selectivity = parametric_selectivity(&ia, &ib, extent.area());
                let estimate_time = t1.elapsed();
                EstimationReport {
                    estimator: self.label(),
                    estimate: Estimate::from_selectivity(selectivity, left.len(), right.len()),
                    build_time,
                    estimate_time,
                    // N, C, W, H per dataset: 4 × 8 bytes each.
                    space_bytes: 2 * 32,
                }
            }
            EstimatorKind::Ph { .. }
            | EstimatorKind::GhBasic { .. }
            | EstimatorKind::Gh { .. }
            | EstimatorKind::Euler { .. } => {
                // sj-lint: allow(panic, histogram_config() returned Some for these kinds, so the early return above fired)
                unreachable!("histogram kinds are handled by the trait path above")
            }
            EstimatorKind::Sampling {
                technique,
                percent_left,
                percent_right,
            } => {
                let est = SamplingEstimator {
                    backend: JoinBackend::RTree,
                    ..SamplingEstimator::new(technique, percent_left, percent_right)
                };
                let out = est.estimate(&left.rects, &right.rects, extent);
                EstimationReport {
                    estimator: self.label(),
                    estimate: Estimate {
                        selectivity: out.selectivity,
                        pairs: out.pairs,
                    },
                    build_time: Duration::ZERO,
                    estimate_time: out.timings.total(),
                    space_bytes: (out.sample_sizes.0 + out.sample_sizes.1) * SAMPLE_ENTRY_BYTES,
                }
            }
        }
    }
}

impl Estimate {
    /// Builds an estimate from a raw selectivity and cardinalities.
    /// Delegates to [`SelectivityEstimate::from_selectivity`] so the
    /// clamping convention lives in exactly one place.
    #[must_use]
    pub fn from_selectivity(raw: f64, n1: usize, n2: usize) -> Self {
        SelectivityEstimate::from_selectivity(raw, n1, n2).into()
    }
}

impl From<SelectivityEstimate> for Estimate {
    fn from(est: SelectivityEstimate) -> Self {
        Self {
            selectivity: est.selectivity,
            pairs: est.pairs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{presets, JoinBaseline};

    fn pair() -> (Dataset, Dataset) {
        // 5 % scale ≈ 5000 × 5000 rects: enough actual pairs (~10³) that
        // relative error reflects the estimator, not join-size noise.
        presets::PaperJoin::ScrcSura.datasets(0.05)
    }

    #[test]
    fn labels() {
        assert_eq!(EstimatorKind::Parametric.label(), "Parametric");
        assert_eq!(EstimatorKind::Gh { level: 7 }.label(), "GH(level=7)");
        assert_eq!(EstimatorKind::Ph { level: 5 }.label(), "PH(level=5)");
        assert_eq!(
            EstimatorKind::GhBasic { level: 3 }.label(),
            "GH-basic(level=3)"
        );
        assert_eq!(EstimatorKind::Euler { level: 4 }.label(), "Euler(level=4)");
        let s = EstimatorKind::Sampling {
            technique: SamplingTechnique::RandomWithReplacement,
            percent_left: 10.0,
            percent_right: 10.0,
        };
        assert_eq!(s.label(), "RSWR(10%/10%)");
    }

    #[test]
    fn all_estimators_run_and_report() {
        let (a, b) = pair();
        let baseline = JoinBaseline::compute(&a, &b);
        assert!(baseline.pairs > 0, "fixture join must be non-empty");
        let kinds = [
            EstimatorKind::Parametric,
            EstimatorKind::Ph { level: 4 },
            EstimatorKind::GhBasic { level: 4 },
            EstimatorKind::Gh { level: 4 },
            EstimatorKind::Euler { level: 4 },
            EstimatorKind::Sampling {
                technique: SamplingTechnique::Regular,
                percent_left: 10.0,
                percent_right: 10.0,
            },
        ];
        for kind in kinds {
            let r = kind.run(&a, &b);
            assert!(
                r.estimate.selectivity.is_finite() && r.estimate.selectivity >= 0.0,
                "{}: bad selectivity",
                r.estimator
            );
            assert!(r.space_bytes > 0, "{}: no space accounted", r.estimator);
        }
    }

    #[test]
    fn gh_beats_parametric_on_clustered_join() {
        // The paper's core claim in miniature: when *both* sides are
        // clustered (TS ⋈ TCB), the global uniformity assumption
        // underestimates badly, while GH at a decent level stays accurate.
        // (On clustered ⋈ uniform joins like SCRC ⋈ SURA the parametric
        // model is actually fine — the paper notes this for Figure 7d.)
        let (a, b) = presets::PaperJoin::TsTcb.datasets(0.02);
        let baseline = JoinBaseline::compute(&a, &b);
        let gh = EstimatorKind::Gh { level: 6 }.run(&a, &b);
        let pm = EstimatorKind::Parametric.run(&a, &b);
        let gh_err = crate::error_pct(gh.estimate.selectivity, baseline.selectivity);
        let pm_err = crate::error_pct(pm.estimate.selectivity, baseline.selectivity);
        assert!(
            gh_err < pm_err,
            "GH ({gh_err:.1}%) should beat parametric ({pm_err:.1}%)"
        );
        assert!(gh_err < 15.0, "GH level-6 error too high: {gh_err:.1}%");
    }

    #[test]
    fn histograms_report_build_and_estimate_times() {
        let (a, b) = pair();
        let r = EstimatorKind::Gh { level: 5 }.run(&a, &b);
        assert!(r.build_time > Duration::ZERO);
        // Sampling charges everything to estimate_time.
        let s = EstimatorKind::Sampling {
            technique: SamplingTechnique::Regular,
            percent_left: 5.0,
            percent_right: 5.0,
        }
        .run(&a, &b);
        assert_eq!(s.build_time, Duration::ZERO);
        assert!(s.estimate_time > Duration::ZERO);
    }

    #[test]
    fn ph_level_zero_equals_parametric_kind() {
        let (a, b) = pair();
        let ph0 = EstimatorKind::Ph { level: 0 }.run(&a, &b);
        let pm = EstimatorKind::Parametric.run(&a, &b);
        // Same unit extent for both datasets, so coverages line up exactly.
        assert!(
            (ph0.estimate.selectivity - pm.estimate.selectivity).abs()
                < 1e-12 * pm.estimate.selectivity.max(1e-300),
            "PH level 0 ({}) must equal the parametric model ({})",
            ph0.estimate.selectivity,
            pm.estimate.selectivity
        );
    }
}
