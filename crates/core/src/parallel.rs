//! The workspace-wide parallel execution model.
//!
//! Every parallel code path in the workspace is driven by a
//! [`Parallelism`] value: the exact join dispatches to the R-tree's
//! parallel traversal, histogram builds shard rows across threads, and
//! the experiment runners fan independent configurations out over
//! [`parallel_map`]. All of it uses `std::thread::scope` — no extra
//! dependencies — and every parallel path keeps its serial twin intact
//! behind `threads == 1` so results can be equality-checked against the
//! serial oracle.

use crate::sync::{LockRank, OrderedMutex};
use std::num::NonZeroUsize;

/// Errors constructing a [`Parallelism`].
///
/// `#[non_exhaustive]`: future constructors may add failure modes
/// without a semver break; downstream matches keep a `_` arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ParallelismError {
    /// Zero threads cannot run anything. Callers that want "clamp to
    /// serial" semantics must say so via [`Parallelism::saturating_new`].
    ZeroThreads,
}

impl std::fmt::Display for ParallelismError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParallelismError::ZeroThreads => {
                f.write_str("thread count must be at least 1 (0 threads cannot run anything)")
            }
        }
    }
}

impl std::error::Error for ParallelismError {}

/// How many OS threads a pipeline stage may use.
///
/// `Parallelism::default()` uses the machine's available parallelism;
/// [`Parallelism::serial`] pins everything to the sequential reference
/// implementations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    threads: NonZeroUsize,
}

impl Parallelism {
    /// Single-threaded execution: every stage runs its serial reference
    /// implementation.
    #[must_use]
    pub fn serial() -> Self {
        Self {
            threads: NonZeroUsize::MIN,
        }
    }

    /// Exactly `threads` OS threads.
    ///
    /// # Errors
    /// [`ParallelismError::ZeroThreads`] for `threads == 0` — library
    /// callers get the same typed rejection the CLI gives `--threads 0`,
    /// instead of a silent behavior change to serial execution.
    pub fn try_new(threads: usize) -> Result<Self, ParallelismError> {
        NonZeroUsize::new(threads)
            .map(|threads| Self { threads })
            .ok_or(ParallelismError::ZeroThreads)
    }

    /// Exactly `threads` OS threads, with `0` *documented* to saturate
    /// to 1 (serial). Use [`Parallelism::try_new`] when a zero from user
    /// input should be an error rather than a silent clamp.
    #[must_use]
    pub fn saturating_new(threads: usize) -> Self {
        Self {
            threads: NonZeroUsize::new(threads).unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// One thread per available hardware thread, falling back to serial
    /// when the platform cannot report its parallelism.
    #[must_use]
    pub fn available() -> Self {
        Self {
            threads: std::thread::available_parallelism().unwrap_or(NonZeroUsize::MIN),
        }
    }

    /// The configured thread count (always at least 1).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads.get()
    }

    /// `true` when the serial reference paths will run.
    #[must_use]
    pub fn is_serial(&self) -> bool {
        self.threads.get() == 1
    }
}

impl Default for Parallelism {
    fn default() -> Self {
        Self::available()
    }
}

/// Maps `f` over `items` on a scoped worker pool of `par.threads()`
/// threads, preserving input order in the output.
///
/// Items are pulled from a shared queue, so uneven per-item costs (an
/// exact join at scale 1.0 next to one at scale 0.01) still balance.
/// With `par.is_serial()` the items are mapped on the caller's thread in
/// order — the serial oracle path.
///
/// # Panics
/// Propagates a panic from any worker thread.
pub fn parallel_map<T, U, F>(items: Vec<T>, par: Parallelism, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(T) -> U + Sync,
{
    let workers = par.threads().min(items.len());
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Ranked above every daemon lock (DESIGN.md §15): an estimate path
    // may fan out here while holding a catalog read guard. A worker
    // panicking mid-item poisons the std lock underneath, but the queue
    // iterator itself is never left inconsistent: the wrappers recover
    // the guard instead of propagating a second panic.
    let queue = OrderedMutex::new(
        LockRank::WorkQueue,
        "parallel.queue",
        items.into_iter().enumerate(),
    );
    let results = OrderedMutex::new(LockRank::WorkResults, "parallel.results", Vec::new());
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let next = queue.lock().next();
                let Some((idx, item)) = next else {
                    break;
                };
                let out = f(item);
                results.lock().push((idx, out));
            });
        }
    });
    let mut out = results.into_inner();
    out.sort_unstable_by_key(|(idx, _)| *idx);
    out.into_iter().map(|(_, u)| u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_counts() {
        assert_eq!(Parallelism::serial().threads(), 1);
        assert!(Parallelism::serial().is_serial());
        assert_eq!(Parallelism::saturating_new(0).threads(), 1);
        assert_eq!(Parallelism::saturating_new(6).threads(), 6);
        assert!(!Parallelism::saturating_new(6).is_serial());
        assert!(Parallelism::available().threads() >= 1);
    }

    #[test]
    fn try_new_rejects_zero_with_typed_error() {
        assert_eq!(
            Parallelism::try_new(0).unwrap_err(),
            ParallelismError::ZeroThreads
        );
        let msg = ParallelismError::ZeroThreads.to_string();
        assert!(msg.contains("at least 1"), "{msg}");
        assert_eq!(Parallelism::try_new(4).unwrap().threads(), 4);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..257).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * 3).collect();
        for threads in [1, 2, 3, 8] {
            let got = parallel_map(items.clone(), Parallelism::saturating_new(threads), |x| {
                x * 3
            });
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = parallel_map(vec![], Parallelism::saturating_new(4), |x: u32| x);
        assert!(empty.is_empty());
        let one = parallel_map(vec![9u32], Parallelism::saturating_new(4), |x| x + 1);
        assert_eq!(one, vec![10]);
    }

    #[test]
    #[should_panic]
    fn parallel_map_propagates_worker_panics() {
        parallel_map(vec![0u32, 1], Parallelism::saturating_new(2), |x| {
            assert!(x != 1, "worker boom");
            x
        });
    }
}
