//! The exact filter-step join: the oracle all estimators are judged
//! against, and the source of the baseline timings for the paper's
//! relative metrics.

use crate::{Dataset, Parallelism};
use serde::Serialize;
use sj_rtree::{join_count_parallel, RTree, RTreeConfig};
use std::time::{Duration, Instant};

/// Algorithm used to compute the exact join.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExactBackend {
    /// Bulk-load an R-tree per dataset, then synchronized-traversal join —
    /// the paper's reference implementation and the timing baseline.
    #[default]
    RTree,
    /// Forward plane sweep (no index). Produces identical pair counts;
    /// useful when no baseline timings are needed.
    PlaneSweep,
}

/// The exact join result plus the baseline costs of the paper's metrics:
///
/// * *Estimation time* is reported relative to [`JoinBaseline::join_time`]
///   (the join itself, R-trees already built);
/// * *Est. Time 1* for sampling adds [`JoinBaseline::rtree_build_time`]
///   to the denominator (R-trees not available);
/// * *Building time* is relative to [`JoinBaseline::rtree_build_time`];
/// * *Space cost* is relative to [`JoinBaseline::rtree_bytes`].
#[derive(Debug, Clone, Copy, Serialize)]
pub struct JoinBaseline {
    /// Number of intersecting MBR pairs (filter-step result size).
    pub pairs: u64,
    /// Exact selectivity `pairs / (N₁·N₂)`.
    pub selectivity: f64,
    /// Time to bulk-load the two R-trees.
    pub rtree_build_time: Duration,
    /// Time to run the R-tree join (trees already built).
    pub join_time: Duration,
    /// Combined modeled size of the two R-trees in bytes.
    pub rtree_bytes: usize,
}

impl JoinBaseline {
    /// Computes the exact join with the default R-tree configuration,
    /// using all available hardware threads for the join traversal. Pair
    /// counts are integers, so the result is identical at every thread
    /// count; only the timings change.
    #[must_use]
    pub fn compute(left: &Dataset, right: &Dataset) -> Self {
        Self::compute_with(left, right, RTreeConfig::default())
    }

    /// Computes the exact join with an explicit R-tree configuration
    /// (default [`Parallelism`]).
    #[must_use]
    pub fn compute_with(left: &Dataset, right: &Dataset, cfg: RTreeConfig) -> Self {
        Self::compute_with_parallelism(left, right, cfg, Parallelism::default())
    }

    /// Computes the exact join with an explicit R-tree configuration and
    /// thread count. The per-phase timings keep their meaning: build time
    /// covers the two bulk loads, join time the (parallel) traversal.
    #[must_use]
    pub fn compute_with_parallelism(
        left: &Dataset,
        right: &Dataset,
        cfg: RTreeConfig,
        par: Parallelism,
    ) -> Self {
        // sj-lint: allow(determinism, wall-clock measures reported build cost, never join input)
        let t0 = Instant::now();
        let ta = RTree::bulk_load_str(cfg, &left.rects);
        let tb = RTree::bulk_load_str(cfg, &right.rects);
        let rtree_build_time = t0.elapsed();
        // sj-lint: allow(determinism, wall-clock measures reported join cost, never join input)
        let t1 = Instant::now();
        let pairs = join_count_parallel(&ta, &tb, par.threads());
        let join_time = t1.elapsed();
        Self::from_parts(
            pairs,
            left.len(),
            right.len(),
            rtree_build_time,
            join_time,
            ta.size_bytes() + tb.size_bytes(),
        )
    }

    /// Computes the exact pair count with the chosen backend. The
    /// plane-sweep backend leaves the R-tree timings at zero.
    #[must_use]
    pub fn compute_with_backend(left: &Dataset, right: &Dataset, backend: ExactBackend) -> Self {
        Self::compute_with_backend_parallelism(left, right, backend, Parallelism::default())
    }

    /// [`Self::compute_with_backend`] with an explicit thread count.
    #[must_use]
    pub fn compute_with_backend_parallelism(
        left: &Dataset,
        right: &Dataset,
        backend: ExactBackend,
        par: Parallelism,
    ) -> Self {
        match backend {
            ExactBackend::RTree => {
                Self::compute_with_parallelism(left, right, RTreeConfig::default(), par)
            }
            ExactBackend::PlaneSweep => {
                // sj-lint: allow(determinism, wall-clock measures reported join cost, never join input)
                let t0 = Instant::now();
                // Partition-based parallel plane sweep: tile the joint
                // extent, sweep tiles independently through the shared
                // `parallel_map` pool, dedup by reference point. Pair
                // counts are integers, so the result is identical to the
                // serial sweep at every thread count.
                let plan = sj_sweep::tile_sweep(&left.rects, &right.rects, 4 * par.threads());
                let tiles = plan.into_tiles();
                let pairs: u64 = crate::parallel_map(tiles, par, |tile| tile.count())
                    .into_iter()
                    .sum();
                let join_time = t0.elapsed();
                Self::from_parts(pairs, left.len(), right.len(), Duration::ZERO, join_time, 0)
            }
        }
    }

    fn from_parts(
        pairs: u64,
        n1: usize,
        n2: usize,
        rtree_build_time: Duration,
        join_time: Duration,
        rtree_bytes: usize,
    ) -> Self {
        #[allow(clippy::cast_precision_loss)]
        let denom = n1 as f64 * n2 as f64;
        #[allow(clippy::cast_precision_loss)]
        let selectivity = if denom == 0.0 {
            0.0
        } else {
            pairs as f64 / denom
        };
        Self {
            pairs,
            selectivity,
            rtree_build_time,
            join_time,
            rtree_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{presets, Extent};
    use sj_geo::Rect;

    fn tiny_pair() -> (Dataset, Dataset) {
        presets::PaperJoin::ScrcSura.datasets(0.005)
    }

    #[test]
    fn backends_agree() {
        let (a, b) = tiny_pair();
        let rt = JoinBaseline::compute(&a, &b);
        let ps = JoinBaseline::compute_with_backend(&a, &b, ExactBackend::PlaneSweep);
        assert_eq!(rt.pairs, ps.pairs);
        assert_eq!(rt.selectivity, ps.selectivity);
        assert!(rt.rtree_bytes > 0);
        assert_eq!(ps.rtree_bytes, 0);
    }

    #[test]
    fn selectivity_definition() {
        let a = Dataset::new(
            "a",
            Extent::unit(),
            vec![Rect::new(0.0, 0.0, 0.5, 0.5), Rect::new(0.6, 0.6, 0.7, 0.7)],
        );
        let b = Dataset::new("b", Extent::unit(), vec![Rect::new(0.4, 0.4, 0.65, 0.65)]);
        let r = JoinBaseline::compute(&a, &b);
        assert_eq!(r.pairs, 2);
        assert!((r.selectivity - 1.0).abs() < 1e-15);
    }

    #[test]
    fn empty_dataset_baseline() {
        let a = Dataset::new("a", Extent::unit(), vec![]);
        let b = Dataset::new("b", Extent::unit(), vec![Rect::new(0.0, 0.0, 1.0, 1.0)]);
        let r = JoinBaseline::compute(&a, &b);
        assert_eq!(r.pairs, 0);
        assert_eq!(r.selectivity, 0.0);
    }
}
