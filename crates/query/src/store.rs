//! Incremental statistics maintenance for the catalog: write-ahead
//! delta logging, in-memory delta tiers, and LSM-style compaction.
//!
//! Registration still builds each table's base histogram in one shot,
//! but the catalog no longer has to rebuild on every mutation. Instead,
//! an insert/delete batch flows through three layers:
//!
//! 1. **WAL** — when a statistics directory is attached
//!    ([`Catalog::open_stats_store`]), the raw batch is appended to
//!    `<dir>/<table>.wal` *before* the in-memory state changes, so a
//!    crash between mutation and compaction loses nothing: on the next
//!    open, pending records replay on top of the base `.hist` envelope.
//! 2. **Tiers** — the batch's signed [`HistogramDelta`] is applied to
//!    the table's live histogram (exactly: the result is byte-identical
//!    to a full rebuild) and retained as a pending tier with provenance
//!    ([`TierInfo`]): sequence number, batch sizes, delta bytes.
//! 3. **Compaction** — when the [`CompactionPolicy`] thresholds trip
//!    (tier count or pending delta bytes), or on an explicit
//!    [`Catalog::compact`], the effective histogram is written to
//!    `<table>.hist.tmp` and atomically renamed over the base envelope,
//!    a *dataset snapshot* (`<table>.base`) capturing the exact
//!    rectangles that envelope describes is swapped in the same way,
//!    the WAL is deleted, and the tiers are cleared. Readers never see
//!    a torn base file: every swap is write-new + rename.
//!
//! The snapshot is what makes recovery independent of the caller's
//! registration source: after a compaction has folded inserts into the
//! base, the original source files no longer match the statistics, so
//! [`Catalog::open_stats_store`] installs the snapshot's dataset and the
//! paired histogram over whatever was registered, then replays only the
//! WAL records the snapshot's sequence fence has not folded yet.
//!
//! Read paths need no changes — the live histogram *is* base ⊕ pending
//! deltas at all times — but [`Catalog::stats_provenance`] exposes the
//! tier structure so callers can tell a freshly-compacted table from one
//! carrying uncheckpointed writes.
//!
//! WAL record layout (little-endian, one record per applied batch):
//!
//! ```text
//! magic "SJWL" u32 | version u32 (= 2) | seq u64
//!   | id_token u64 | id_seq u64 | n_ins u32 | n_del u32
//!   | (n_ins + n_del) rects × 4 f64 | crc32 u32
//! ```
//!
//! The CRC32 covers every preceding byte of the record. A torn tail
//! (crash mid-append) is tolerated and reported; a checksum or magic
//! mismatch before the tail is a typed corruption error. Version-1
//! records (no `id_token`/`id_seq` fields) are still decoded, with an
//! unstamped [`MutationId`].
//!
//! `id_token`/`id_seq` are the client-stamped [`MutationId`] of the
//! batch (zero for unstamped batches). Stamped IDs are remembered in a
//! bounded per-table ring and deduplicated both on apply and on replay,
//! so a client retrying a mutation after an ambiguous failure (the
//! connection died after the server applied the batch but before the
//! reply arrived) cannot double-apply it — see
//! [`Catalog::apply_delta_idempotent`].
//!
//! Snapshot file layout (`<table>.base`, little-endian):
//!
//! ```text
//! magic "SJSB" u32 | version u32 (= 2) | next_seq u64 | hist_crc u32
//!   | n u64 | n rects × 4 f64 | n_ids u32 | n_ids × (token u64, seq u64)
//!   | crc32 u32
//! ```
//!
//! `next_seq` is the first WAL sequence number *not* folded into the
//! paired `<table>.hist`; `hist_crc` is the CRC32 of that file's bytes
//! minus its own CRC trailer (see [`hist_pair_crc`] for why the trailer
//! must be excluded), tying the pair together so a crash between the
//! two renames is detected (and finished) on the next open instead of
//! silently mixing generations. The trailing ID section persists the
//! mutation-ID dedup ring: compaction deletes the WAL, so without it a
//! retry that straddles a compaction would lose its duplicate guard.
//! Version-1 snapshots (no ID section) are still decoded.
//!
//! All file I/O in this module flows through the [`StoreIo`] trait
//! ([`RealStoreIo`] in production), so a fault-injecting implementation
//! can deterministically simulate process death, torn writes, and lost
//! unsynced data at every crash point — that is what
//! `sj-lint -- verify-recovery` does.

use crate::catalog::StatsState;
use crate::error::QueryError;
use crate::Catalog;
use sj_geo::Rect;
use sj_histogram::{build_histogram, CorruptSection, HistogramDelta, HistogramError};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Magic prefix of every WAL record.
pub(crate) const WAL_MAGIC: u32 = 0x534a_574c; // "SJWL"
/// WAL record format version; bump on incompatible layout changes.
/// Version 2 added the mutation-ID fields; version-1 records are still
/// decoded (with an unstamped ID).
pub(crate) const WAL_VERSION: u32 = 2;
/// Fixed bytes of a version-1 WAL record before its rectangles: magic,
/// version, sequence number, and the two batch lengths.
const WAL_V1_HEADER_LEN: usize = 24;
/// Fixed bytes of a version-2 WAL record before its rectangles: the
/// version-1 header plus the 16-byte mutation ID.
const WAL_HEADER_LEN: usize = 40;
/// Magic prefix of a dataset snapshot (`<table>.base`) file.
pub(crate) const SNAPSHOT_MAGIC: u32 = 0x534a_5342; // "SJSB"
/// Snapshot format version; bump on incompatible layout changes.
/// Version 2 appended the mutation-ID dedup ring; version-1 snapshots
/// are still decoded (with an empty ring).
pub(crate) const SNAPSHOT_VERSION: u32 = 2;
/// Fixed bytes of a snapshot before its rectangles: magic, version,
/// sequence fence, paired-histogram CRC, and the rectangle count.
const SNAPSHOT_HEADER_LEN: usize = 28;
/// How many applied mutation IDs each table remembers for retry
/// deduplication. A retry lands within the client's bounded
/// `RETRY_BACKOFF` window, so a ring this deep outlives any plausible
/// in-flight duplicate by orders of magnitude.
pub const REMEMBERED_MUTATIONS: usize = 1024;

/// A client-stamped identity for one mutation batch, carried in wire
/// frames and WAL records so a retried batch is applied exactly once.
///
/// The all-zero value is *unstamped*: such batches are never
/// deduplicated (local callers that cannot retry don't pay for a
/// guard). Stamped IDs pair a per-client `token` with a per-client
/// monotone `seq`, which makes them deterministic — no randomness — yet
/// unique across the clients of one daemon.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct MutationId {
    /// Identifies the stamping client (stable across its reconnects).
    pub token: u64,
    /// Monotone per-client counter, starting at 1 for stamped IDs.
    pub seq: u64,
}

impl MutationId {
    /// The "no identity" value: batches carrying it skip deduplication.
    pub const UNSTAMPED: MutationId = MutationId { token: 0, seq: 0 };

    /// Builds a stamped ID.
    #[must_use]
    pub fn new(token: u64, seq: u64) -> Self {
        Self { token, seq }
    }

    /// Whether this ID participates in deduplication.
    #[must_use]
    pub fn is_stamped(&self) -> bool {
        *self != Self::UNSTAMPED
    }
}

/// The filesystem surface of the statistics store.
///
/// Every file operation the store performs — WAL appends, tier folds,
/// tmp-file writes, renames, fsyncs — goes through this trait, so a
/// test harness can substitute an implementation that injects crashes,
/// torn writes, and lost unsynced data at deterministic points
/// (`sj-lint -- verify-recovery`). [`RealStoreIo`] is the production
/// implementation.
pub trait StoreIo: Send + Sync {
    /// Creates a directory and any missing parents.
    ///
    /// # Errors
    /// Propagates the underlying filesystem error.
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()>;

    /// Whether a path currently exists.
    fn exists(&self, path: &Path) -> bool;

    /// Reads a whole file.
    ///
    /// # Errors
    /// Propagates the underlying filesystem error.
    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>>;

    /// Appends `record` to `path` (creating it if absent) and makes the
    /// append durable before returning — the WAL's one-op contract.
    ///
    /// # Errors
    /// Propagates the underlying filesystem error.
    fn append_wal(&self, path: &Path, record: &[u8]) -> std::io::Result<()>;

    /// Writes a whole file (create or truncate), *without* any
    /// durability guarantee — pair with [`StoreIo::sync_file`].
    ///
    /// # Errors
    /// Propagates the underlying filesystem error.
    fn write(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()>;

    /// Flushes a previously written file's data to stable storage.
    ///
    /// # Errors
    /// Propagates the underlying filesystem error.
    fn sync_file(&self, path: &Path) -> std::io::Result<()>;

    /// Atomically renames `from` to `to`.
    ///
    /// # Errors
    /// Propagates the underlying filesystem error.
    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()>;

    /// Removes a file.
    ///
    /// # Errors
    /// Propagates the underlying filesystem error (including
    /// `NotFound`, which callers may choose to tolerate).
    fn remove(&self, path: &Path) -> std::io::Result<()>;

    /// Best-effort fsync of a directory, making completed renames in it
    /// durable on filesystems that require it.
    ///
    /// # Errors
    /// Propagates the underlying filesystem error.
    fn sync_dir(&self, dir: &Path) -> std::io::Result<()>;
}

/// The production [`StoreIo`]: plain `std::fs`, with real fsyncs.
#[derive(Debug, Default, Clone, Copy)]
pub struct RealStoreIo;

// Every blocking operation reports itself to the lock-event log via
// `sj_core::sync::note_blocking_io` (a no-op outside observe mode), so
// the dynamic verifier `sj-lint verify-locks` can see file I/O that
// runs while ranked locks are held — an fsync under the catalog lock is
// the latency bug this workspace's mutation pipeline is structured to
// avoid (DESIGN.md §15).
impl StoreIo for RealStoreIo {
    fn create_dir_all(&self, dir: &Path) -> std::io::Result<()> {
        sj_core::sync::note_blocking_io("create_dir_all");
        std::fs::create_dir_all(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn read(&self, path: &Path) -> std::io::Result<Vec<u8>> {
        sj_core::sync::note_blocking_io("read");
        std::fs::read(path)
    }

    fn append_wal(&self, path: &Path, record: &[u8]) -> std::io::Result<()> {
        use std::io::Write;
        sj_core::sync::note_blocking_io("append_wal");
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(record)?;
        file.sync_all()
    }

    fn write(&self, path: &Path, bytes: &[u8]) -> std::io::Result<()> {
        sj_core::sync::note_blocking_io("write");
        std::fs::write(path, bytes)
    }

    fn sync_file(&self, path: &Path) -> std::io::Result<()> {
        sj_core::sync::note_blocking_io("sync_file");
        std::fs::File::open(path)?.sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> std::io::Result<()> {
        sj_core::sync::note_blocking_io("rename");
        std::fs::rename(from, to)
    }

    fn remove(&self, path: &Path) -> std::io::Result<()> {
        sj_core::sync::note_blocking_io("remove");
        std::fs::remove_file(path)
    }

    fn sync_dir(&self, dir: &Path) -> std::io::Result<()> {
        sj_core::sync::note_blocking_io("sync_dir");
        std::fs::File::open(dir)?.sync_all()
    }
}

/// When pending delta tiers fold into the base envelope.
///
/// Both thresholds are checked after every applied batch; crossing
/// either triggers an automatic [`Catalog::compact`] of that table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactionPolicy {
    /// Compact when a table accumulates this many pending tiers.
    pub max_tiers: usize,
    /// Compact when a table's pending deltas exceed this many bytes.
    pub max_pending_bytes: usize,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        Self {
            max_tiers: 4,
            max_pending_bytes: 1 << 20,
        }
    }
}

/// Provenance of one pending delta tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TierInfo {
    /// Monotone per-table sequence number (also recorded in the WAL).
    pub seq: u64,
    /// Rectangles inserted by this batch.
    pub inserts: u64,
    /// Rectangles deleted by this batch.
    pub deletes: u64,
    /// Serialized size of the tier's delta.
    pub bytes: usize,
}

/// What [`Catalog::apply_delta`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeltaReceipt {
    /// Rectangles inserted.
    pub inserts: usize,
    /// Rectangles deleted.
    pub deletes: usize,
    /// Pending tiers on the table after this batch (0 right after an
    /// automatic compaction).
    pub pending_tiers: usize,
    /// Whether the batch tripped the compaction policy.
    pub compacted: bool,
    /// Whether the batch's [`MutationId`] had already been applied, so
    /// this call mutated nothing (a detected retry duplicate).
    pub deduplicated: bool,
}

/// What [`Catalog::compact`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReceipt {
    /// Pending tiers folded into the base envelope.
    pub tiers_folded: usize,
    /// Whether a new base `.hist` envelope was atomically swapped in
    /// (`false` when no statistics directory is attached).
    pub persisted: bool,
}

/// Outcome of [`Catalog::prepare_delta`]: either the batch was already
/// applied (retry duplicate — nothing further to do) or it validated
/// and is staged for the WAL-append and commit phases.
///
/// No `Debug` impl: the staged WAL handle is an opaque `dyn` [`StoreIo`].
pub enum PreparedOutcome {
    /// The batch's [`MutationId`] was already applied; the receipt is
    /// final and no further phase may run.
    Duplicate(DeltaReceipt),
    /// The batch validated; drive it through
    /// [`PreparedDelta::append_wal`] and [`Catalog::commit_prepared`].
    /// Boxed: the staged batch (delta, liveness mask, WAL record) dwarfs
    /// the duplicate receipt.
    Fresh(Box<PreparedDelta>),
}

/// A validated, staged mutation batch between the prepare and commit
/// phases of the three-phase mutation path (DESIGN.md §15).
///
/// Produced under a shared catalog borrow by [`Catalog::prepare_delta`];
/// carries everything the later phases need so the WAL fsync
/// ([`PreparedDelta::append_wal`]) runs without any catalog borrow at
/// all, and the commit ([`Catalog::commit_prepared`]) is pure in-memory
/// work. The caller must serialize mutations across all three phases —
/// the staged sequence number and delete resolution are only valid
/// against the state observed at prepare time.
pub struct PreparedDelta {
    table: String,
    id: MutationId,
    seq: u64,
    delta: HistogramDelta,
    /// Liveness mask over the dataset at prepare time: `false` marks
    /// the rectangles this batch's deletes resolved to.
    live: Vec<bool>,
    inserts: Vec<Rect>,
    deletes_len: usize,
    /// WAL destination and encoded record, absent when no statistics
    /// directory is attached (or during replay, which must not re-log).
    wal: Option<(Arc<dyn StoreIo>, PathBuf, Vec<u8>)>,
}

impl PreparedDelta {
    /// The table this batch mutates.
    #[must_use]
    pub fn table(&self) -> &str {
        &self.table
    }

    /// Phase 2 of the mutation path: appends the staged WAL record —
    /// the only file I/O on the mutation path. Once this returns, the
    /// batch is durable and [`Catalog::commit_prepared`] is recoverable
    /// even if the process dies before it runs. A no-op when no
    /// statistics directory is attached.
    ///
    /// # Errors
    /// [`QueryError::Io`] when the append fails; the batch was not made
    /// durable and must not be committed.
    pub fn append_wal(&self) -> Result<(), QueryError> {
        if let Some((io, path, record)) = &self.wal {
            io.append_wal(path, record)
                .map_err(|e| io_err("appending WAL record", &e))?;
        }
        Ok(())
    }
}

/// A staged compaction between the plan and finish phases of the
/// three-phase compaction path (DESIGN.md §15).
///
/// Produced under a shared catalog borrow by
/// [`Catalog::plan_compaction`]; owns byte-exact copies of everything
/// [`CompactionPlan::persist`] writes, so the fsync-heavy persistence
/// runs without any catalog borrow. The caller must serialize
/// mutations/compactions across the phases so the snapshot cannot go
/// stale between plan and finish.
pub struct CompactionPlan {
    table: String,
    io: Arc<dyn StoreIo>,
    dir: PathBuf,
    hist_bytes: Vec<u8>,
    snap_bytes: Vec<u8>,
}

impl CompactionPlan {
    /// Phase 2 of the compaction path: writes the compacted histogram
    /// envelope and dataset snapshot (each write-new + fsync + atomic
    /// rename), best-effort-syncs the directory, then removes the
    /// now-folded WAL (tolerating its absence).
    ///
    /// The operation order is load-bearing: the fault-injection matrix
    /// in `verify-recovery` kills the process at every one of these I/O
    /// operations and asserts recovery, so reordering or coalescing
    /// them changes the crash surface.
    ///
    /// # Errors
    /// [`QueryError::Io`] on any filesystem failure; the old base pair
    /// stays intact (every swap is write-new + rename) and the catalog
    /// is unchanged until [`Catalog::finish_compaction`] runs.
    pub fn persist(&self) -> Result<(), QueryError> {
        let name = &self.table;
        let io = &self.io;
        let dir = &self.dir;
        let tmp = dir.join(format!("{name}.hist.tmp"));
        let dst = dir.join(format!("{name}.hist"));
        io.write(&tmp, &self.hist_bytes)
            .map_err(|e| io_err("writing compacted statistics", &e))?;
        io.sync_file(&tmp)
            .map_err(|e| io_err("syncing compacted statistics", &e))?;
        io.rename(&tmp, &dst)
            .map_err(|e| io_err("swapping compacted statistics", &e))?;
        let snap_tmp = dir.join(format!("{name}.base.tmp"));
        let snap_dst = dir.join(format!("{name}.base"));
        io.write(&snap_tmp, &self.snap_bytes)
            .map_err(|e| io_err("writing dataset snapshot", &e))?;
        io.sync_file(&snap_tmp)
            .map_err(|e| io_err("syncing dataset snapshot", &e))?;
        io.rename(&snap_tmp, &snap_dst)
            .map_err(|e| io_err("swapping dataset snapshot", &e))?;
        let _ = io.sync_dir(dir);
        match io.remove(&dir.join(format!("{name}.wal"))) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
            Err(e) => return Err(io_err("removing compacted WAL", &e)),
        }
        Ok(())
    }
}

/// Tier structure of one table's statistics, from
/// [`Catalog::stats_provenance`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatsProvenance {
    /// Pending (uncompacted) tiers, oldest first.
    pub pending: Vec<TierInfo>,
    /// Total serialized bytes across the pending tiers.
    pub pending_bytes: usize,
}

impl StatsProvenance {
    /// Whether every applied batch has been folded into the base.
    #[must_use]
    pub fn is_compacted(&self) -> bool {
        self.pending.is_empty()
    }
}

/// Result of replaying write-ahead logs in [`Catalog::open_stats_store`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WalRecovery {
    /// WAL records replayed across all tables.
    pub replayed: usize,
    /// Records dropped because the final one was torn mid-append.
    pub torn_tails: usize,
    /// Records skipped because a snapshot's sequence fence showed them
    /// already folded into the compacted base (a stale WAL left by a
    /// crash between the snapshot swap and the WAL unlink).
    pub skipped: usize,
    /// Tables whose dataset and statistics were installed from a
    /// compaction snapshot (`<table>.base`), superseding whatever the
    /// caller registered them with.
    pub installed: usize,
    /// Records skipped because their [`MutationId`] was already applied
    /// (a duplicate WAL append left by a crashed retry).
    pub deduplicated: usize,
}

/// One pending delta tier: provenance plus the retained signed delta.
struct Tier {
    info: TierInfo,
    #[allow(dead_code)] // retained for inspection; stats are applied live
    delta: HistogramDelta,
}

/// Per-table incremental state.
#[derive(Default)]
struct TableStore {
    tiers: Vec<Tier>,
    pending_bytes: usize,
    next_seq: u64,
    /// The last [`REMEMBERED_MUTATIONS`] applied stamped mutation IDs,
    /// oldest first, with a set index for O(log n) duplicate checks.
    recent_ids: VecDeque<MutationId>,
    id_index: BTreeSet<MutationId>,
}

impl TableStore {
    /// Whether a stamped ID has already been applied.
    fn is_applied(&self, id: MutationId) -> bool {
        id.is_stamped() && self.id_index.contains(&id)
    }

    /// Records a stamped ID in the bounded ring.
    fn remember(&mut self, id: MutationId) {
        if !id.is_stamped() || !self.id_index.insert(id) {
            return;
        }
        self.recent_ids.push_back(id);
        while self.recent_ids.len() > REMEMBERED_MUTATIONS {
            if let Some(evicted) = self.recent_ids.pop_front() {
                self.id_index.remove(&evicted);
            }
        }
    }
}

/// The catalog's incremental-statistics layer: an optional on-disk
/// directory (base envelopes + WALs) and per-table pending tiers.
pub(crate) struct StatsStore {
    dir: Option<PathBuf>,
    policy: CompactionPolicy,
    tables: BTreeMap<String, TableStore>,
    io: Arc<dyn StoreIo>,
}

impl Default for StatsStore {
    fn default() -> Self {
        Self {
            dir: None,
            policy: CompactionPolicy::default(),
            tables: BTreeMap::new(),
            io: Arc::new(RealStoreIo),
        }
    }
}

impl StatsStore {
    fn table(&mut self, name: &str) -> &mut TableStore {
        self.tables.entry(name.to_string()).or_default()
    }
}

fn io_err(context: &str, e: &std::io::Error) -> QueryError {
    QueryError::Io(format!("{context}: {e}"))
}

/// Encodes one WAL record for an applied batch.
fn encode_wal_record(seq: u64, id: MutationId, inserts: &[Rect], deletes: &[Rect]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(WAL_HEADER_LEN + (inserts.len() + deletes.len()) * 32 + 4);
    buf.extend_from_slice(&WAL_MAGIC.to_le_bytes());
    buf.extend_from_slice(&WAL_VERSION.to_le_bytes());
    buf.extend_from_slice(&seq.to_le_bytes());
    buf.extend_from_slice(&id.token.to_le_bytes());
    buf.extend_from_slice(&id.seq.to_le_bytes());
    buf.extend_from_slice(&(u32::try_from(inserts.len()).unwrap_or(u32::MAX)).to_le_bytes());
    buf.extend_from_slice(&(u32::try_from(deletes.len()).unwrap_or(u32::MAX)).to_le_bytes());
    for r in inserts.iter().chain(deletes) {
        for v in [r.xlo, r.ylo, r.xhi, r.yhi] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// One decoded WAL record.
struct WalRecord {
    seq: u64,
    id: MutationId,
    inserts: Vec<Rect>,
    deletes: Vec<Rect>,
}

/// Decodes a WAL file into its records. A truncated final record (torn
/// mid-append by a crash) is tolerated and counted; corruption anywhere
/// else — bad magic, bad version, failed CRC — is a typed error.
fn decode_wal(data: &[u8]) -> Result<(Vec<WalRecord>, usize), QueryError> {
    let corrupt = |detail: String| {
        QueryError::Histogram(HistogramError::corrupt(CorruptSection::Payload, detail))
    };
    let u32_at = |at: usize| -> Option<u32> {
        data.get(at..at + 4)
            .and_then(|s| s.try_into().ok())
            .map(u32::from_le_bytes)
    };
    let u64_at = |at: usize| -> Option<u64> {
        data.get(at..at + 8)
            .and_then(|s| s.try_into().ok())
            .map(u64::from_le_bytes)
    };
    let f64_at = |at: usize| -> Option<f64> {
        data.get(at..at + 8)
            .and_then(|s| s.try_into().ok())
            .map(f64::from_le_bytes)
    };
    let mut records = Vec::new();
    let mut offset = 0usize;
    while offset < data.len() {
        if data.len() - offset < 8 {
            return Ok((records, 1)); // torn tail: magic/version cut short
        }
        let magic = u32_at(offset).unwrap_or(0);
        if magic != WAL_MAGIC {
            return Err(corrupt(format!(
                "WAL record at offset {offset} has bad magic {magic:#010x}"
            )));
        }
        let version = u32_at(offset + 4).unwrap_or(0);
        // Version 1 lacked the 16-byte mutation ID; decode both.
        let header_len = match version {
            1 => WAL_V1_HEADER_LEN,
            WAL_VERSION => WAL_HEADER_LEN,
            other => {
                return Err(corrupt(format!(
                    "WAL record at offset {offset} has unsupported version {other}"
                )))
            }
        };
        if data.len() - offset < header_len {
            return Ok((records, 1)); // torn tail: header cut short
        }
        let seq = u64_at(offset + 8).unwrap_or(0);
        let id = if version == 1 {
            MutationId::UNSTAMPED
        } else {
            MutationId::new(
                u64_at(offset + 16).unwrap_or(0),
                u64_at(offset + 24).unwrap_or(0),
            )
        };
        let counts_at = offset + header_len - 8;
        // sj-lint: allow(cast, u32 always fits in usize on supported targets)
        let n_ins = u32_at(counts_at).unwrap_or(0) as usize;
        // sj-lint: allow(cast, u32 always fits in usize on supported targets)
        let n_del = u32_at(counts_at + 4).unwrap_or(0) as usize;
        let body_len = header_len + (n_ins + n_del) * 32;
        let Some(total) = body_len.checked_add(4) else {
            return Err(corrupt(format!(
                "WAL record at offset {offset} declares an absurd batch size"
            )));
        };
        if data.len() - offset < total {
            return Ok((records, 1)); // torn tail: body or CRC cut short
        }
        let body = data
            .get(offset..offset + body_len)
            .ok_or_else(|| corrupt("WAL record slice out of bounds".to_string()))?;
        let stored = u32_at(offset + body_len).unwrap_or(0);
        let computed = crc32(body);
        if stored != computed {
            return Err(corrupt(format!(
                "WAL record at offset {offset} failed its checksum \
                 (stored {stored:#010x}, computed {computed:#010x})"
            )));
        }
        let mut rects = Vec::with_capacity(n_ins + n_del);
        for i in 0..n_ins + n_del {
            let at = offset + header_len + i * 32;
            let (Some(xlo), Some(ylo), Some(xhi), Some(yhi)) =
                (f64_at(at), f64_at(at + 8), f64_at(at + 16), f64_at(at + 24))
            else {
                return Err(corrupt("WAL rectangle slice out of bounds".to_string()));
            };
            rects.push(Rect::new(xlo, ylo, xhi, yhi));
        }
        let deletes = rects.split_off(n_ins);
        records.push(WalRecord {
            seq,
            id,
            inserts: rects,
            deletes,
        });
        offset += total;
    }
    Ok((records, 0))
}

/// End offsets of the complete records in a WAL image, in file order.
/// A torn tail is ignored, exactly as recovery would ignore it; the
/// offsets let external harnesses (the `verify-recovery` sabotage
/// fault) truncate a WAL on a record boundary without re-implementing
/// the record layout.
///
/// # Errors
/// The same typed corruption errors as recovery itself: bad magic, bad
/// version, or a failed checksum before the tail.
pub fn wal_record_ends(data: &[u8]) -> Result<Vec<usize>, QueryError> {
    let (records, _torn) = decode_wal(data)?;
    let mut ends = Vec::with_capacity(records.len());
    let mut offset = 0usize;
    for record in &records {
        let header_len = if record.id.is_stamped() || wal_header_is_v2(data, offset) {
            WAL_HEADER_LEN
        } else {
            WAL_V1_HEADER_LEN
        };
        offset += header_len + (record.inserts.len() + record.deletes.len()) * 32 + 4;
        ends.push(offset);
    }
    Ok(ends)
}

/// Whether the record starting at `offset` carries a version-2 header.
fn wal_header_is_v2(data: &[u8], offset: usize) -> bool {
    data.get(offset + 4..offset + 8)
        .and_then(|s| s.try_into().ok())
        .map(u32::from_le_bytes)
        == Some(WAL_VERSION)
}

/// A decoded dataset snapshot: the exact rectangles the paired
/// compacted histogram describes, plus the data fencing the stale part
/// of a surviving WAL off the already-folded part.
struct Snapshot {
    /// First WAL sequence number *not* folded into the paired base.
    next_seq: u64,
    /// [`hist_pair_crc`] of the `<table>.hist` bytes written by the
    /// same compaction.
    hist_crc: u32,
    rects: Vec<Rect>,
    /// The mutation-ID dedup ring at compaction time, oldest first.
    ids: Vec<MutationId>,
}

/// Encodes a dataset snapshot (`<table>.base`).
fn encode_snapshot(next_seq: u64, hist_crc: u32, rects: &[Rect], ids: &[MutationId]) -> Vec<u8> {
    let mut buf =
        Vec::with_capacity(SNAPSHOT_HEADER_LEN + rects.len() * 32 + 4 + ids.len() * 16 + 4);
    buf.extend_from_slice(&SNAPSHOT_MAGIC.to_le_bytes());
    buf.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    buf.extend_from_slice(&next_seq.to_le_bytes());
    buf.extend_from_slice(&hist_crc.to_le_bytes());
    buf.extend_from_slice(&(rects.len() as u64).to_le_bytes());
    for r in rects {
        for v in [r.xlo, r.ylo, r.xhi, r.yhi] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    buf.extend_from_slice(&(u32::try_from(ids.len()).unwrap_or(u32::MAX)).to_le_bytes());
    for id in ids {
        buf.extend_from_slice(&id.token.to_le_bytes());
        buf.extend_from_slice(&id.seq.to_le_bytes());
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// Decodes a dataset snapshot. Unlike the WAL, a snapshot is written
/// atomically (write-new + rename), so *any* damage — truncation, bad
/// magic, failed CRC — is a typed corruption error, never tolerated.
fn decode_snapshot(data: &[u8]) -> Result<Snapshot, QueryError> {
    let corrupt = |detail: String| {
        QueryError::Histogram(HistogramError::corrupt(
            CorruptSection::Payload,
            format!("dataset snapshot {detail}"),
        ))
    };
    let u32_at = |at: usize| -> Option<u32> {
        data.get(at..at + 4)
            .and_then(|s| s.try_into().ok())
            .map(u32::from_le_bytes)
    };
    let u64_at = |at: usize| -> Option<u64> {
        data.get(at..at + 8)
            .and_then(|s| s.try_into().ok())
            .map(u64::from_le_bytes)
    };
    let f64_at = |at: usize| -> Option<f64> {
        data.get(at..at + 8)
            .and_then(|s| s.try_into().ok())
            .map(f64::from_le_bytes)
    };
    if data.len() < SNAPSHOT_HEADER_LEN + 4 {
        return Err(corrupt("is shorter than its fixed header".to_string()));
    }
    let magic = u32_at(0).unwrap_or(0);
    if magic != SNAPSHOT_MAGIC {
        return Err(corrupt(format!("has bad magic {magic:#010x}")));
    }
    let version = u32_at(4).unwrap_or(0);
    // Version 1 lacked the trailing mutation-ID section; decode both.
    if version != 1 && version != SNAPSHOT_VERSION {
        return Err(corrupt(format!("has unsupported version {version}")));
    }
    let next_seq = u64_at(8).unwrap_or(0);
    let hist_crc = u32_at(16).unwrap_or(0);
    let n = usize::try_from(u64_at(20).unwrap_or(0))
        .map_err(|_| corrupt("declares an absurd rectangle count".to_string()))?;
    let Some(rects_end) = n
        .checked_mul(32)
        .and_then(|b| b.checked_add(SNAPSHOT_HEADER_LEN))
    else {
        return Err(corrupt("declares an absurd rectangle count".to_string()));
    };
    let n_ids = if version == 1 {
        0
    } else {
        let declared = u32_at(rects_end)
            .ok_or_else(|| corrupt("is truncated before its mutation-ID count".to_string()))?;
        usize::try_from(declared)
            .map_err(|_| corrupt("declares an absurd mutation-ID count".to_string()))?
    };
    let id_section = if version == 1 { 0 } else { 4 + n_ids * 16 };
    let Some(body_len) = rects_end.checked_add(id_section) else {
        return Err(corrupt("declares an absurd mutation-ID count".to_string()));
    };
    if body_len.checked_add(4) != Some(data.len()) {
        return Err(corrupt(format!(
            "length mismatch: {n} rectangles and {n_ids} mutation IDs need {} bytes, \
             file has {}",
            body_len + 4,
            data.len()
        )));
    }
    let body = data
        .get(..body_len)
        .ok_or_else(|| corrupt("slice out of bounds".to_string()))?;
    let stored = u32_at(body_len).unwrap_or(0);
    let computed = crc32(body);
    if stored != computed {
        return Err(corrupt(format!(
            "failed its checksum (stored {stored:#010x}, computed {computed:#010x})"
        )));
    }
    let mut rects = Vec::with_capacity(n);
    for i in 0..n {
        let at = SNAPSHOT_HEADER_LEN + i * 32;
        let (Some(xlo), Some(ylo), Some(xhi), Some(yhi)) =
            (f64_at(at), f64_at(at + 8), f64_at(at + 16), f64_at(at + 24))
        else {
            return Err(corrupt("rectangle slice out of bounds".to_string()));
        };
        rects.push(Rect::new(xlo, ylo, xhi, yhi));
    }
    let mut ids = Vec::with_capacity(n_ids);
    for i in 0..n_ids {
        let at = rects_end + 4 + i * 16;
        let (Some(token), Some(seq)) = (u64_at(at), u64_at(at + 8)) else {
            return Err(corrupt("mutation-ID slice out of bounds".to_string()));
        };
        ids.push(MutationId::new(token, seq));
    }
    Ok(Snapshot {
        next_seq,
        hist_crc,
        rects,
        ids,
    })
}

/// The CRC binding a snapshot to its paired histogram file. Histogram
/// envelopes end with their own CRC32 trailer, and any message suffixed
/// with its own CRC has the same constant overall CRC (the residue
/// property), so hashing the whole file could not tell one generation
/// from another — hash everything *before* the trailer instead.
fn hist_pair_crc(hist_bytes: &[u8]) -> u32 {
    let end = hist_bytes.len().saturating_sub(4);
    crc32(hist_bytes.get(..end).unwrap_or(hist_bytes))
}

// CRC32 (IEEE, reflected) — the workspace's single shared
// implementation, the same polynomial and table as the histogram
// envelopes whose trailers these records sit next to on disk.
use sj_core::crc::crc32;

impl Catalog {
    /// Attaches a statistics directory and recovers each registered
    /// table to its exact pre-shutdown state:
    ///
    /// 1. When a compaction snapshot (`<table>.base`) exists, its
    ///    dataset and the paired `<table>.hist` statistics are installed
    ///    over whatever the caller registered — after a compaction has
    ///    folded inserts into the base, the original source files no
    ///    longer describe the statistics, so the snapshot is the only
    ///    trustworthy base state. A crash that interrupted the
    ///    compaction between its two renames is detected by the
    ///    snapshot's recorded histogram CRC and finished here.
    /// 2. Pending WAL records then re-apply their insert/delete batches
    ///    (without re-logging); records the snapshot's sequence fence
    ///    shows as already folded are skipped.
    ///
    /// Also directs future [`Catalog::apply_delta`] calls to log to
    /// `<dir>/<table>.wal` and future compactions to atomically rewrite
    /// the `<dir>/<table>.hist` + `<dir>/<table>.base` pair.
    ///
    /// # Errors
    /// [`QueryError::Io`] on filesystem failures, or a typed corruption
    /// error when a WAL record before the tail fails its checksum, a
    /// snapshot is damaged, or a snapshot and its paired statistics
    /// disagree. A torn final WAL record (crash mid-append) is tolerated
    /// and counted in the returned [`WalRecovery`].
    pub fn open_stats_store(
        &mut self,
        dir: impl AsRef<Path>,
        policy: CompactionPolicy,
    ) -> Result<WalRecovery, QueryError> {
        self.open_stats_store_with_io(dir, policy, Arc::new(RealStoreIo))
    }

    /// [`Catalog::open_stats_store`] with an explicit [`StoreIo`]
    /// implementation. All subsequent store I/O (WAL appends,
    /// compaction folds) goes through `io` as well; production callers
    /// want [`RealStoreIo`], fault harnesses substitute their own.
    ///
    /// # Errors
    /// As [`Catalog::open_stats_store`].
    pub fn open_stats_store_with_io(
        &mut self,
        dir: impl AsRef<Path>,
        policy: CompactionPolicy,
        io: Arc<dyn StoreIo>,
    ) -> Result<WalRecovery, QueryError> {
        let dir = dir.as_ref();
        io.create_dir_all(dir)
            .map_err(|e| io_err("creating statistics directory", &e))?;
        self.store.dir = Some(dir.to_path_buf());
        self.store.policy = policy;
        self.store.io = Arc::clone(&io);
        let mut recovery = WalRecovery::default();
        for name in self
            .table_names()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
        {
            // Replay only records at or past this fence (None: all).
            let mut fence = None;
            let base_path = dir.join(format!("{name}.base"));
            if io.exists(&base_path) {
                let snap_bytes = io
                    .read(&base_path)
                    .map_err(|e| io_err("reading dataset snapshot", &e))?;
                let snapshot = decode_snapshot(&snap_bytes)?;
                let hist_bytes = io
                    .read(&dir.join(format!("{name}.hist")))
                    .map_err(|e| io_err("reading snapshotted base statistics", &e))?;
                recovery.installed += 1;
                if hist_pair_crc(&hist_bytes) == snapshot.hist_crc {
                    let histogram = self.decode_statistics(snapshot.rects.len(), &hist_bytes)?;
                    self.install_base(
                        &name,
                        snapshot.rects,
                        histogram,
                        snapshot.next_seq,
                        &snapshot.ids,
                    );
                    fence = Some(snapshot.next_seq);
                } else {
                    // Crash between the histogram swap and the snapshot
                    // swap: the histogram is one fold AHEAD of the
                    // snapshot, and the WAL still holds the batches that
                    // fold consumed.
                    self.recover_mid_compaction(&name, dir, snapshot, &hist_bytes, &mut recovery)?;
                    continue;
                }
            }
            let wal = dir.join(format!("{name}.wal"));
            if !io.exists(&wal) {
                continue;
            }
            let data = io.read(&wal).map_err(|e| io_err("reading WAL", &e))?;
            let (records, torn) = decode_wal(&data)?;
            recovery.torn_tails += torn;
            // With no snapshot the WAL's base state is the registered
            // dataset itself. Replay needs live statistics to apply
            // batches to, so if registration left them unusable (e.g. a
            // lenient registration over a half-compacted histogram),
            // rebuild them from that dataset.
            if !records.is_empty() && fence.is_none() {
                self.ensure_stats_ready(&name);
            }
            for record in &records {
                if fence.is_some_and(|s| record.seq < s) {
                    recovery.skipped += 1;
                    continue;
                }
                let receipt = self.apply_delta_inner(
                    &name,
                    &record.inserts,
                    &record.deletes,
                    record.id,
                    false,
                )?;
                if receipt.deduplicated {
                    recovery.deduplicated += 1;
                } else {
                    recovery.replayed += 1;
                }
            }
        }
        Ok(recovery)
    }

    /// Installs a recovered base state: the snapshot's dataset, the
    /// paired statistics, a reset lazy index, the sequence fence, and
    /// the snapshotted mutation-ID dedup ring — with no pending tiers
    /// (the base is, by construction, compacted).
    fn install_base(
        &mut self,
        name: &str,
        rects: Vec<Rect>,
        histogram: Box<dyn sj_histogram::SpatialHistogram>,
        next_seq: u64,
        ids: &[MutationId],
    ) {
        if let Some(table) = self.tables.get_mut(name) {
            table.dataset.rects = rects;
            table.stats = StatsState::Ready(histogram);
            table.rtree = std::sync::OnceLock::new();
        }
        let entry = self.store.table(name);
        entry.next_seq = next_seq;
        entry.tiers.clear();
        entry.pending_bytes = 0;
        entry.recent_ids.clear();
        entry.id_index.clear();
        for id in ids {
            entry.remember(*id);
        }
    }

    /// Rebuilds a table's statistics from its registered dataset when
    /// registration left them unusable — WAL replay with no snapshot
    /// treats that dataset as the base state, so statistics over it are
    /// exactly what the pending batches expect to apply to.
    fn ensure_stats_ready(&mut self, name: &str) {
        if let Some(table) = self.tables.get_mut(name) {
            if matches!(table.stats, StatsState::Unavailable { .. }) {
                table.stats = StatsState::Ready(build_histogram(
                    self.config.kind,
                    self.grid,
                    &table.dataset.rects,
                ));
                table.rtree = std::sync::OnceLock::new();
            }
        }
    }

    /// Finishes a compaction that crashed between renaming the new
    /// histogram and renaming its snapshot: the on-disk histogram
    /// already contains the folded batches, the snapshot is one fold
    /// behind, and the WAL still holds exactly the batches in between.
    /// Reconstructs the dataset by applying those batches (dataset
    /// only — the statistics come from the new histogram wholesale),
    /// cross-checks the result against the histogram's cardinality, and
    /// re-runs the compaction to leave the directory consistent.
    fn recover_mid_compaction(
        &mut self,
        name: &str,
        dir: &Path,
        snapshot: Snapshot,
        hist_bytes: &[u8],
        recovery: &mut WalRecovery,
    ) -> Result<(), QueryError> {
        let corrupt = |detail: String| {
            QueryError::Histogram(HistogramError::corrupt(CorruptSection::Payload, detail))
        };
        let io = Arc::clone(&self.store.io);
        let wal_path = dir.join(format!("{name}.wal"));
        if !io.exists(&wal_path) {
            return Err(corrupt(format!(
                "snapshot for table {name:?} does not match its base statistics \
                 and no WAL remains to reconcile them"
            )));
        }
        let data = io.read(&wal_path).map_err(|e| io_err("reading WAL", &e))?;
        let (records, torn) = decode_wal(&data)?;
        recovery.torn_tails += torn;
        let mut rects = snapshot.rects;
        let mut next_seq = snapshot.next_seq;
        let mut ids = snapshot.ids;
        for record in &records {
            if record.seq < snapshot.next_seq {
                recovery.skipped += 1;
                continue;
            }
            // Mirror apply_delta_inner exactly: first match wins, order
            // preserved, inserts appended — so the reconstructed dataset
            // is byte-for-byte what the crashed process held.
            let mut live = vec![true; rects.len()];
            for del in &record.deletes {
                match rects
                    .iter()
                    .enumerate()
                    .position(|(i, r)| live[i] && r == del)
                {
                    Some(i) => live[i] = false,
                    None => {
                        return Err(corrupt(format!(
                            "WAL batch {} deletes a rectangle absent from table {name:?}'s \
                             snapshotted dataset",
                            record.seq
                        )))
                    }
                }
            }
            let mut kept: Vec<Rect> = rects
                .iter()
                .zip(&live)
                .filter(|(_, keep)| **keep)
                .map(|(r, _)| *r)
                .collect();
            kept.extend_from_slice(&record.inserts);
            rects = kept;
            next_seq = record.seq + 1;
            if record.id.is_stamped() {
                ids.push(record.id);
            }
            recovery.replayed += 1;
        }
        let histogram = self.decode_statistics(rects.len(), hist_bytes)?;
        self.install_base(name, rects, histogram, next_seq, &ids);
        // Resume the interrupted compaction: rewrite the snapshot to
        // pair with the already-swapped histogram and drop the WAL.
        self.compact(name)?;
        Ok(())
    }

    /// The active compaction policy.
    #[must_use]
    pub fn compaction_policy(&self) -> CompactionPolicy {
        self.store.policy
    }

    /// Applies an insert/delete batch to a table incrementally: the
    /// batch is WAL-logged (when a statistics directory is attached),
    /// its signed [`HistogramDelta`] is applied to the live histogram —
    /// byte-identical to a full rebuild over the mutated dataset — the
    /// raw dataset and lazy index are updated, and the delta is retained
    /// as a pending tier. Crossing the [`CompactionPolicy`] thresholds
    /// triggers an automatic [`Catalog::compact`].
    ///
    /// Every rectangle in `deletes` must currently exist in the table
    /// (exact coordinates); one matching object is removed per delete
    /// rectangle. A failed validation mutates nothing.
    ///
    /// # Errors
    /// [`QueryError::UnknownTable`] for unregistered names;
    /// [`QueryError::StatisticsUnavailable`] when the table carries no
    /// usable statistics; [`QueryError::DeleteNotFound`] when a delete
    /// rectangle matches no object; [`QueryError::Io`] on WAL append
    /// failures; [`QueryError::Histogram`] when the delta cannot apply.
    pub fn apply_delta(
        &mut self,
        name: &str,
        inserts: &[Rect],
        deletes: &[Rect],
    ) -> Result<DeltaReceipt, QueryError> {
        self.apply_delta_inner(name, inserts, deletes, MutationId::UNSTAMPED, true)
    }

    /// [`Catalog::apply_delta`] with a client-stamped [`MutationId`]: a
    /// stamped ID that has already been applied (it is in the table's
    /// bounded dedup ring, populated on apply, on WAL replay, and from
    /// compaction snapshots) short-circuits to a receipt with
    /// [`DeltaReceipt::deduplicated`] set and mutates nothing, so a
    /// retried batch lands exactly once. Unstamped IDs behave exactly
    /// like [`Catalog::apply_delta`].
    ///
    /// # Errors
    /// As [`Catalog::apply_delta`].
    pub fn apply_delta_idempotent(
        &mut self,
        name: &str,
        inserts: &[Rect],
        deletes: &[Rect],
        id: MutationId,
    ) -> Result<DeltaReceipt, QueryError> {
        self.apply_delta_inner(name, inserts, deletes, id, true)
    }

    fn apply_delta_inner(
        &mut self,
        name: &str,
        inserts: &[Rect],
        deletes: &[Rect],
        id: MutationId,
        log_to_wal: bool,
    ) -> Result<DeltaReceipt, QueryError> {
        // The single-threaded composition of the three-phase mutation
        // path below (prepare → WAL append → commit), byte-identical to
        // the historical monolithic sequence. The daemon drives the
        // same three phases under different locks (DESIGN.md §15) so
        // the catalog is never held across the fsync.
        let prepared = match self.prepare_delta_inner(name, inserts, deletes, id, log_to_wal)? {
            PreparedOutcome::Duplicate(receipt) => return Ok(receipt),
            PreparedOutcome::Fresh(p) => *p,
        };
        prepared.append_wal()?;
        let mut receipt = self.commit_prepared(prepared)?;
        if self.compaction_needed(name) {
            self.compact(name)?;
            receipt.pending_tiers = 0;
            receipt.compacted = true;
        }
        Ok(receipt)
    }

    /// Phase 1 of the mutation path: validates the batch against the
    /// current state and stages everything the later phases need —
    /// without mutating the catalog or touching a file. Callable under
    /// a shared (read) lock.
    ///
    /// The caller must serialize mutations (the daemon holds its
    /// pipeline mutex across all three phases; the single-threaded CLI
    /// is serial by construction): the staged sequence number and
    /// delete resolution are computed against the state at prepare
    /// time.
    ///
    /// # Errors
    /// As [`Catalog::apply_delta`], except WAL/commit failures which
    /// belong to the later phases.
    pub fn prepare_delta(
        &self,
        name: &str,
        inserts: &[Rect],
        deletes: &[Rect],
        id: MutationId,
    ) -> Result<PreparedOutcome, QueryError> {
        self.prepare_delta_inner(name, inserts, deletes, id, true)
    }

    fn prepare_delta_inner(
        &self,
        name: &str,
        inserts: &[Rect],
        deletes: &[Rect],
        id: MutationId,
        log_to_wal: bool,
    ) -> Result<PreparedOutcome, QueryError> {
        // Validate against the current dataset before touching anything.
        let table = self
            .tables
            .get(name)
            .ok_or_else(|| QueryError::UnknownTable(name.to_string()))?;
        // Duplicate detection precedes every other effect: a retry of
        // an already-applied batch must succeed without touching the
        // WAL, the histogram, or the dataset — its deletes may no
        // longer resolve, and re-validating them would wrongly fail.
        if self
            .store
            .tables
            .get(name)
            .is_some_and(|t| t.is_applied(id))
        {
            return Ok(PreparedOutcome::Duplicate(DeltaReceipt {
                inserts: inserts.len(),
                deletes: deletes.len(),
                pending_tiers: self.store.tables.get(name).map_or(0, |t| t.tiers.len()),
                compacted: false,
                deduplicated: true,
            }));
        }
        if let StatsState::Unavailable { reason } = &table.stats {
            return Err(QueryError::StatisticsUnavailable {
                table: name.to_string(),
                reason: reason.clone(),
            });
        }
        // Resolve each delete to one currently-live object, first match
        // wins; duplicates in the batch consume duplicates in the data.
        let mut live: Vec<bool> = vec![true; table.dataset.rects.len()];
        for (index, del) in deletes.iter().enumerate() {
            let found = table
                .dataset
                .rects
                .iter()
                .enumerate()
                .position(|(i, r)| live[i] && r == del);
            match found {
                Some(i) => live[i] = false,
                None => {
                    return Err(QueryError::DeleteNotFound {
                        table: name.to_string(),
                        index,
                    })
                }
            }
        }

        // Exact signed delta for this batch: both sides run through the
        // same shard driver as every other build in the workspace.
        let delta = HistogramDelta::build(self.config.kind, self.grid, inserts, deletes);

        let seq = self.store.tables.get(name).map_or(0, |t| t.next_seq);
        let wal = match (&self.store.dir, log_to_wal) {
            (Some(dir), true) => Some((
                Arc::clone(&self.store.io),
                dir.join(format!("{name}.wal")),
                encode_wal_record(seq, id, inserts, deletes),
            )),
            _ => None,
        };
        Ok(PreparedOutcome::Fresh(Box::new(PreparedDelta {
            table: name.to_string(),
            id,
            seq,
            delta,
            live,
            inserts: inserts.to_vec(),
            deletes_len: deletes.len(),
            wal,
        })))
    }

    /// Phase 3 of the mutation path: folds a [`PreparedDelta`] into the
    /// live statistics, dataset and tier bookkeeping. Pure in-memory
    /// work — no file I/O — so the daemon can run it under the catalog
    /// write lock without blocking readers behind an fsync. Never
    /// compacts; the caller checks [`Catalog::compaction_needed`]
    /// afterwards (exactly-once mutation semantics are preserved
    /// because the ID is remembered here, after the batch is known to
    /// apply).
    ///
    /// # Errors
    /// [`QueryError::UnknownTable`] when the table vanished between the
    /// phases; [`QueryError::Histogram`] when the delta cannot apply.
    pub fn commit_prepared(&mut self, prepared: PreparedDelta) -> Result<DeltaReceipt, QueryError> {
        let PreparedDelta {
            table: name,
            id,
            seq,
            delta,
            live,
            inserts,
            deletes_len,
            wal: _,
        } = prepared;
        // Commit: histogram (atomic apply), dataset, index.
        let table = self
            .tables
            .get_mut(&name)
            .ok_or_else(|| QueryError::UnknownTable(name.clone()))?;
        if let StatsState::Ready(h) = &mut table.stats {
            h.apply_delta(&delta)?;
        }
        let mut rects = Vec::with_capacity(table.dataset.rects.len() - deletes_len + inserts.len());
        rects.extend(
            table
                .dataset
                .rects
                .iter()
                .zip(&live)
                .filter(|(_, keep)| **keep)
                .map(|(r, _)| *r),
        );
        rects.extend_from_slice(&inserts);
        table.dataset.rects = rects;
        table.rtree = std::sync::OnceLock::new();

        // Tier bookkeeping. The ID is remembered only now: a batch that
        // failed validation in prepare must stay retryable under the
        // same ID.
        let entry = self.store.table(&name);
        entry.remember(id);
        entry.next_seq = seq + 1;
        let bytes = delta.space_bytes();
        entry.pending_bytes += bytes;
        entry.tiers.push(Tier {
            info: TierInfo {
                seq,
                inserts: inserts.len() as u64,
                deletes: deletes_len as u64,
                bytes,
            },
            delta,
        });
        Ok(DeltaReceipt {
            inserts: inserts.len(),
            deletes: deletes_len,
            pending_tiers: entry.tiers.len(),
            compacted: false,
            deduplicated: false,
        })
    }

    /// Whether the table's pending tiers have crossed the
    /// [`CompactionPolicy`] thresholds and [`Catalog::compact`] should
    /// run. Unregistered or tier-free tables answer `false`.
    #[must_use]
    pub fn compaction_needed(&self, name: &str) -> bool {
        let policy = self.store.policy;
        self.store.tables.get(name).is_some_and(|t| {
            t.tiers.len() >= policy.max_tiers || t.pending_bytes >= policy.max_pending_bytes
        })
    }

    /// Folds a table's pending delta tiers into its base envelope. The
    /// live histogram already *is* base ⊕ pending deltas, so folding
    /// persists it: the effective envelope is written to
    /// `<dir>/<table>.hist.tmp` and atomically renamed over
    /// `<dir>/<table>.hist`, a dataset snapshot is swapped into
    /// `<dir>/<table>.base` the same way, the WAL is deleted, and the
    /// tiers are cleared. Without an attached statistics directory only
    /// the in-memory tiers are cleared.
    ///
    /// A crash anywhere in that sequence recovers exactly on the next
    /// [`Catalog::open_stats_store`]: before the histogram rename the
    /// old hist/base pair plus the WAL reproduce the state; between the
    /// two renames the snapshot's recorded histogram CRC no longer
    /// matches and the fold is finished from the surviving WAL; after
    /// the snapshot rename a stale WAL is fenced off by sequence number.
    ///
    /// # Errors
    /// [`QueryError::UnknownTable`] for unregistered names;
    /// [`QueryError::Io`] on filesystem failures.
    pub fn compact(&mut self, name: &str) -> Result<CompactReceipt, QueryError> {
        // The single-threaded composition of the three-phase compaction
        // path (plan → persist → finish) the daemon drives under
        // different locks so readers are never blocked behind the
        // fsyncs (DESIGN.md §15).
        let plan = self.plan_compaction(name)?;
        let persisted = match &plan {
            Some(plan) => {
                plan.persist()?;
                true
            }
            None => false,
        };
        Ok(self.finish_compaction(name, persisted))
    }

    /// Phase 1 of the compaction path: snapshots everything
    /// [`CompactionPlan::persist`] will write — the effective histogram
    /// envelope and the dataset snapshot bytes — under a shared catalog
    /// borrow. Returns `Ok(None)` when there is nothing to persist (no
    /// statistics directory attached, or the table's statistics are
    /// unavailable); the caller still runs
    /// [`Catalog::finish_compaction`] to clear the in-memory tiers.
    ///
    /// The caller must serialize mutations/compactions across all three
    /// phases; the plan is only valid against the state observed here.
    ///
    /// # Errors
    /// [`QueryError::UnknownTable`] for unregistered names.
    pub fn plan_compaction(&self, name: &str) -> Result<Option<CompactionPlan>, QueryError> {
        let table = self
            .tables
            .get(name)
            .ok_or_else(|| QueryError::UnknownTable(name.to_string()))?;
        let next_seq = self.store.tables.get(name).map_or(0, |t| t.next_seq);
        let ids: Vec<MutationId> = self
            .store
            .tables
            .get(name)
            .map(|t| t.recent_ids.iter().copied().collect())
            .unwrap_or_default();
        let (Some(dir), StatsState::Ready(h)) = (&self.store.dir, &table.stats) else {
            return Ok(None);
        };
        // fsync before each rename (in persist): rename is atomic in
        // the namespace, but renaming a file whose data is still in the
        // page cache lets a power loss surface a torn target — the one
        // corruption the write-new + rename contract promises readers
        // never see.
        let hist_bytes = h.persist().to_vec();
        let snap_bytes = encode_snapshot(
            next_seq,
            hist_pair_crc(&hist_bytes),
            &table.dataset.rects,
            &ids,
        );
        Ok(Some(CompactionPlan {
            table: name.to_string(),
            io: Arc::clone(&self.store.io),
            dir: dir.clone(),
            hist_bytes,
            snap_bytes,
        }))
    }

    /// Phase 3 of the compaction path: clears the table's pending tiers
    /// after the plan was persisted (or skipped). Pure in-memory work —
    /// infallible, so the daemon can run it under the catalog write
    /// lock without blocking readers behind file I/O. `persisted` is
    /// echoed into the receipt; pass `false` when there was no plan to
    /// persist.
    pub fn finish_compaction(&mut self, name: &str, persisted: bool) -> CompactReceipt {
        let entry = self.store.table(name);
        let tiers_folded = entry.tiers.len();
        entry.tiers.clear();
        entry.pending_bytes = 0;
        CompactReceipt {
            tiers_folded,
            persisted,
        }
    }

    /// The tier structure behind a table's statistics: which applied
    /// batches are still pending (uncompacted), oldest first.
    ///
    /// # Errors
    /// [`QueryError::UnknownTable`] for unregistered names.
    pub fn stats_provenance(&self, name: &str) -> Result<StatsProvenance, QueryError> {
        if !self.tables.contains_key(name) {
            return Err(QueryError::UnknownTable(name.to_string()));
        }
        let (pending, pending_bytes) = match self.store.tables.get(name) {
            Some(t) => (
                t.tiers.iter().map(|tier| tier.info).collect(),
                t.pending_bytes,
            ),
            None => (Vec::new(), 0),
        };
        Ok(StatsProvenance {
            pending,
            pending_bytes,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_datagen::Dataset;
    use sj_geo::Extent;
    use sj_histogram::HistogramKind;

    fn rects(n: usize, offset: f64) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let t = (i as f64 + 0.5) / n as f64 * 0.8 + offset;
                Rect::new(t, t * 0.9, t + 0.05, t * 0.9 + 0.04)
            })
            .collect()
    }

    fn catalog_with(name: &str, n: usize, kind: HistogramKind) -> Catalog {
        let mut c = Catalog::with_kind(kind, 4);
        c.register(Dataset::new(name, Extent::unit(), rects(n, 0.0)))
            .unwrap();
        c
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("sj_store_test_{tag}"));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    /// The store invariant: after any batch sequence, the live histogram
    /// is byte-identical to a catalog freshly registered over the
    /// mutated dataset.
    #[test]
    fn incremental_equals_rebuild_every_kind() {
        for kind in HistogramKind::ALL {
            let mut c = catalog_with("t", 50, kind);
            let ins = rects(20, 0.1);
            let del: Vec<Rect> = rects(50, 0.0).into_iter().step_by(5).collect();
            let receipt = c.apply_delta("t", &ins, &del).unwrap();
            assert_eq!(receipt.inserts, 20);
            assert_eq!(receipt.deletes, 10);
            assert_eq!(c.table_len("t").unwrap(), 60);

            let mut fresh = Catalog::with_kind(kind, 4);
            fresh
                .register(Dataset::new(
                    "t",
                    Extent::unit(),
                    c.dataset("t").unwrap().rects.clone(),
                ))
                .unwrap();
            assert_eq!(
                c.histogram("t").unwrap().to_bytes(),
                fresh.histogram("t").unwrap().to_bytes(),
                "{kind}: incremental maintenance must equal full rebuild"
            );
        }
    }

    #[test]
    fn deleting_unknown_object_is_typed_and_mutates_nothing() {
        let mut c = catalog_with("t", 10, HistogramKind::Gh);
        let before = c.histogram("t").unwrap().to_bytes();
        let err = c
            .apply_delta("t", &[], &[Rect::new(0.9, 0.9, 0.95, 0.95)])
            .unwrap_err();
        assert!(matches!(err, QueryError::DeleteNotFound { index: 0, .. }));
        assert_eq!(c.histogram("t").unwrap().to_bytes(), before);
        assert_eq!(c.table_len("t").unwrap(), 10);
        assert!(c.stats_provenance("t").unwrap().is_compacted());
    }

    #[test]
    fn duplicate_objects_are_deleted_one_per_delete() {
        let r = Rect::new(0.2, 0.2, 0.3, 0.3);
        let mut c = Catalog::with_level(3);
        c.register(Dataset::new("t", Extent::unit(), vec![r, r, r]))
            .unwrap();
        c.apply_delta("t", &[], &[r, r]).unwrap();
        assert_eq!(c.table_len("t").unwrap(), 1);
        // A third and fourth delete: one succeeds, one has no match left.
        let err = c.apply_delta("t", &[], &[r, r]).unwrap_err();
        assert!(matches!(err, QueryError::DeleteNotFound { index: 1, .. }));
        assert_eq!(c.table_len("t").unwrap(), 1, "failed batch must not apply");
    }

    #[test]
    fn tiers_accumulate_and_policy_compacts() {
        let mut c = catalog_with("t", 30, HistogramKind::Gh);
        let dir = temp_dir("policy");
        c.open_stats_store(
            &dir,
            CompactionPolicy {
                max_tiers: 3,
                max_pending_bytes: usize::MAX,
            },
        )
        .unwrap();
        for round in 0..2 {
            let receipt = c
                .apply_delta("t", &rects(3, 0.02 * f64::from(round)), &[])
                .unwrap();
            assert!(!receipt.compacted);
            assert_eq!(receipt.pending_tiers, round as usize + 1);
        }
        let prov = c.stats_provenance("t").unwrap();
        assert_eq!(prov.pending.len(), 2);
        assert_eq!(prov.pending[0].seq, 0);
        assert_eq!(prov.pending[1].seq, 1);
        assert!(prov.pending_bytes > 0);
        assert!(dir.join("t.wal").exists());

        // The third tier trips max_tiers: automatic compaction.
        let receipt = c.apply_delta("t", &rects(3, 0.06), &[]).unwrap();
        assert!(receipt.compacted);
        assert_eq!(receipt.pending_tiers, 0);
        assert!(c.stats_provenance("t").unwrap().is_compacted());
        assert!(
            !dir.join("t.wal").exists(),
            "compaction must delete the WAL"
        );
        assert!(dir.join("t.hist").exists());
        assert!(!dir.join("t.hist.tmp").exists(), "swap must be atomic");
        assert!(
            dir.join("t.base").exists(),
            "compaction must snapshot the dataset"
        );
        assert!(!dir.join("t.base.tmp").exists(), "swap must be atomic");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The restart hazard the snapshot exists to prevent: once a
    /// compaction folds inserts into the base, the original source no
    /// longer matches the statistics. A new process registering from
    /// that source must still recover the exact pre-shutdown state.
    #[test]
    fn restart_after_compaction_recovers_exact_state() {
        let dir = temp_dir("restart");
        let mut c1 = catalog_with("t", 40, HistogramKind::Gh);
        c1.open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        c1.apply_delta("t", &rects(8, 0.1), &[]).unwrap();
        c1.compact("t").unwrap();
        let del: Vec<Rect> = rects(40, 0.0).into_iter().step_by(9).collect();
        c1.apply_delta("t", &[], &del).unwrap();
        let expected = c1.histogram("t").unwrap().to_bytes();
        let expected_rects = c1.dataset("t").unwrap().rects.clone();
        drop(c1);

        // Next process: registration defers to the snapshot.
        let mut c2 = Catalog::with_kind(HistogramKind::Gh, 4);
        c2.register_deferred(Dataset::new("t", Extent::unit(), rects(40, 0.0)))
            .unwrap();
        let recovery = c2
            .open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        assert_eq!(recovery.installed, 1);
        assert_eq!(recovery.replayed, 1, "the post-compaction delete batch");
        assert_eq!(recovery.skipped, 0);
        assert_eq!(c2.dataset("t").unwrap().rects, expected_rects);
        assert_eq!(
            c2.histogram("t").unwrap().to_bytes(),
            expected,
            "snapshot + fenced WAL replay must reproduce the exact state"
        );

        // A plain registration (statistics built from the stale source)
        // recovers identically: the snapshot supersedes it.
        let mut c3 = Catalog::with_kind(HistogramKind::Gh, 4);
        c3.register(Dataset::new("t", Extent::unit(), rects(40, 0.0)))
            .unwrap();
        c3.open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        assert_eq!(c3.histogram("t").unwrap().to_bytes(), expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash between the histogram swap and the snapshot swap: the
    /// snapshot's recorded CRC no longer matches the histogram, and the
    /// fold is reconstructed from the surviving WAL and finished.
    #[test]
    fn crash_between_histogram_and_snapshot_swap_is_finished_on_open() {
        let dir = temp_dir("midcompact");
        let mut c1 = catalog_with("t", 30, HistogramKind::Gh);
        c1.open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        c1.apply_delta("t", &rects(5, 0.1), &[]).unwrap();
        c1.compact("t").unwrap();
        // One more mixed batch, then a compaction that "crashes" after
        // swapping the histogram but before swapping the snapshot:
        // simulated by overwriting the base with the live histogram
        // while keeping the old snapshot and the WAL.
        let del: Vec<Rect> = rects(30, 0.0).into_iter().step_by(11).collect();
        c1.apply_delta("t", &rects(4, 0.2), &del).unwrap();
        let expected = c1.histogram("t").unwrap().to_bytes();
        let expected_rects = c1.dataset("t").unwrap().rects.clone();
        std::fs::write(dir.join("t.hist"), c1.histogram("t").unwrap().persist()).unwrap();
        drop(c1);

        let mut c2 = Catalog::with_kind(HistogramKind::Gh, 4);
        c2.register_deferred(Dataset::new("t", Extent::unit(), rects(30, 0.0)))
            .unwrap();
        let recovery = c2
            .open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        assert_eq!(recovery.installed, 1);
        assert_eq!(recovery.replayed, 1);
        assert_eq!(c2.dataset("t").unwrap().rects, expected_rects);
        assert_eq!(c2.histogram("t").unwrap().to_bytes(), expected);
        // The interrupted compaction was finished: the WAL is gone and
        // the snapshot now pairs with the histogram, so a further
        // reopen has nothing to replay.
        assert!(!dir.join("t.wal").exists());
        let mut c3 = Catalog::with_kind(HistogramKind::Gh, 4);
        c3.register_deferred(Dataset::new("t", Extent::unit(), rects(30, 0.0)))
            .unwrap();
        let r3 = c3
            .open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        assert_eq!((r3.replayed, r3.skipped), (0, 0));
        assert_eq!(c3.histogram("t").unwrap().to_bytes(), expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash between the snapshot swap and the WAL unlink: the folded
    /// WAL survives, and every record in it is fenced off by sequence
    /// number instead of being applied twice.
    #[test]
    fn stale_wal_left_by_crash_after_snapshot_swap_is_fenced_off() {
        let dir = temp_dir("fence");
        let mut c1 = catalog_with("t", 25, HistogramKind::Gh);
        c1.open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        c1.apply_delta("t", &rects(6, 0.1), &[]).unwrap();
        let stale = std::fs::read(dir.join("t.wal")).unwrap();
        c1.compact("t").unwrap();
        let expected = c1.histogram("t").unwrap().to_bytes();
        drop(c1);
        std::fs::write(dir.join("t.wal"), &stale).unwrap();

        let mut c2 = Catalog::with_kind(HistogramKind::Gh, 4);
        c2.register_deferred(Dataset::new("t", Extent::unit(), rects(25, 0.0)))
            .unwrap();
        let recovery = c2
            .open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        assert_eq!(recovery.skipped, 1, "folded record must not re-apply");
        assert_eq!(recovery.replayed, 0);
        assert_eq!(c2.histogram("t").unwrap().to_bytes(), expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A first-ever compaction crashing between its renames leaves a
    /// folded histogram with no snapshot at all; the WAL then still
    /// holds every batch since registration, so rebuilding statistics
    /// from the registered dataset and replaying recovers exactly.
    #[test]
    fn half_compacted_histogram_without_snapshot_recovers_from_source() {
        let dir = temp_dir("firstcrash");
        let mut c1 = catalog_with("t", 20, HistogramKind::Gh);
        c1.open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        c1.apply_delta("t", &rects(5, 0.1), &[]).unwrap();
        let expected = c1.histogram("t").unwrap().to_bytes();
        std::fs::write(dir.join("t.hist"), c1.histogram("t").unwrap().persist()).unwrap();
        drop(c1);

        // A lenient registration rejects the half-compacted histogram
        // (it covers 25 objects, the source has 20) ...
        let mut c2 = Catalog::with_kind(HistogramKind::Gh, 4);
        let reason = c2
            .register_with_statistics_lenient(
                Dataset::new("t", Extent::unit(), rects(20, 0.0)),
                &std::fs::read(dir.join("t.hist")).unwrap(),
            )
            .unwrap();
        assert!(reason.is_some());
        // ... but recovery rebuilds base statistics from the dataset
        // and replays the full WAL on top.
        let recovery = c2
            .open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        assert_eq!(recovery.replayed, 1);
        assert_eq!(c2.table_len("t").unwrap(), 25);
        assert_eq!(c2.histogram("t").unwrap().to_bytes(), expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Snapshots are swapped atomically, so unlike the WAL any damage —
    /// a flipped byte, a short file — is a typed error, never tolerated.
    #[test]
    fn corrupt_snapshot_is_a_typed_error() {
        let dir = temp_dir("badsnap");
        let mut c1 = catalog_with("t", 20, HistogramKind::Gh);
        c1.open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        c1.apply_delta("t", &rects(3, 0.1), &[]).unwrap();
        c1.compact("t").unwrap();
        drop(c1);
        let good = std::fs::read(dir.join("t.base")).unwrap();

        let reopen = |dir: &std::path::Path| {
            let mut c = Catalog::with_kind(HistogramKind::Gh, 4);
            c.register_deferred(Dataset::new("t", Extent::unit(), rects(20, 0.0)))
                .unwrap();
            c.open_stats_store(dir, CompactionPolicy::default())
        };
        let mut flipped = good.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0x01;
        std::fs::write(dir.join("t.base"), &flipped).unwrap();
        let err = reopen(&dir).unwrap_err();
        assert!(
            matches!(err, QueryError::Histogram(HistogramError::Corrupt { .. })),
            "flipped snapshot byte must be typed, got {err:?}"
        );

        std::fs::write(dir.join("t.base"), &good[..good.len() - 9]).unwrap();
        let err = reopen(&dir).unwrap_err();
        assert!(
            matches!(err, QueryError::Histogram(HistogramError::Corrupt { .. })),
            "truncated snapshot must be typed, got {err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Crash recovery: base envelope + WAL replay reproduces the exact
    /// pre-crash statistics, and a torn trailing record is tolerated.
    #[test]
    fn wal_replay_recovers_pre_crash_state() {
        let dir = temp_dir("replay");
        let ins = rects(8, 0.1);
        let del: Vec<Rect> = rects(40, 0.0).into_iter().step_by(7).collect();

        // Session 1: register, persist base, mutate (logged to WAL), "crash".
        let mut c1 = catalog_with("t", 40, HistogramKind::Gh);
        c1.save_statistics(&dir).unwrap();
        c1.open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        c1.apply_delta("t", &ins, &del).unwrap();
        let expected = c1.histogram("t").unwrap().to_bytes();
        let expected_len = c1.table_len("t").unwrap();

        // Session 2: reload the base envelope, then replay the WAL.
        let mut c2 = Catalog::with_kind(HistogramKind::Gh, 4);
        let base = std::fs::read(dir.join("t.hist")).unwrap();
        c2.register_with_statistics(Dataset::new("t", Extent::unit(), rects(40, 0.0)), &base)
            .unwrap();
        let recovery = c2
            .open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        assert_eq!(recovery.replayed, 1);
        assert_eq!(recovery.torn_tails, 0);
        assert_eq!(c2.table_len("t").unwrap(), expected_len);
        assert_eq!(
            c2.histogram("t").unwrap().to_bytes(),
            expected,
            "WAL replay must reproduce the pre-crash statistics exactly"
        );
        // Replay did not re-log: the WAL still holds exactly one record.
        let wal_len = std::fs::metadata(dir.join("t.wal")).unwrap().len();

        // Session 3: torn tail — append half a record; replay tolerates it.
        let mut torn = std::fs::read(dir.join("t.wal")).unwrap();
        torn.extend_from_slice(&torn.clone()[..WAL_HEADER_LEN + 7]);
        std::fs::write(dir.join("t.wal"), &torn).unwrap();
        let mut c3 = Catalog::with_kind(HistogramKind::Gh, 4);
        c3.register_with_statistics(
            Dataset::new("t", Extent::unit(), rects(40, 0.0)),
            &std::fs::read(dir.join("t.hist")).unwrap(),
        )
        .unwrap();
        let recovery = c3
            .open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        assert_eq!(recovery.replayed, 1);
        assert_eq!(recovery.torn_tails, 1);
        assert_eq!(c3.histogram("t").unwrap().to_bytes(), expected);

        // Mid-file corruption, by contrast, is a typed error.
        let mut bad = std::fs::read(dir.join("t.wal")).unwrap();
        bad[WAL_HEADER_LEN + 3] ^= 0x40;
        bad.truncate(wal_len as usize);
        std::fs::write(dir.join("t.wal"), &bad).unwrap();
        let mut c4 = Catalog::with_kind(HistogramKind::Gh, 4);
        c4.register_with_statistics(
            Dataset::new("t", Extent::unit(), rects(40, 0.0)),
            &std::fs::read(dir.join("t.hist")).unwrap(),
        )
        .unwrap();
        let err = c4
            .open_stats_store(&dir, CompactionPolicy::default())
            .unwrap_err();
        assert!(
            matches!(err, QueryError::Histogram(HistogramError::Corrupt { .. })),
            "checksum failure must be typed, got {err:?}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Retrying a stamped batch applies exactly once; the duplicate is
    /// reported, mutates nothing, and a *different* ID with identical
    /// content still applies (dedup is keyed by ID, not content).
    #[test]
    fn stamped_retry_is_deduplicated() {
        let mut c = catalog_with("t", 20, HistogramKind::Gh);
        let ins = rects(5, 0.1);
        let id = MutationId::new(7, 1);
        let first = c.apply_delta_idempotent("t", &ins, &[], id).unwrap();
        assert!(!first.deduplicated);
        assert_eq!(c.table_len("t").unwrap(), 25);
        let after_first = c.histogram("t").unwrap().to_bytes();

        let retry = c.apply_delta_idempotent("t", &ins, &[], id).unwrap();
        assert!(retry.deduplicated);
        assert_eq!(c.table_len("t").unwrap(), 25, "retry must not double-apply");
        assert_eq!(c.histogram("t").unwrap().to_bytes(), after_first);

        let fresh = c
            .apply_delta_idempotent("t", &ins, &[], MutationId::new(7, 2))
            .unwrap();
        assert!(
            !fresh.deduplicated,
            "a new ID applies even with identical content"
        );
        assert_eq!(c.table_len("t").unwrap(), 30);
    }

    /// A failed batch must stay retryable under the same ID: validation
    /// failures happen before the ID is remembered.
    #[test]
    fn failed_batch_does_not_burn_its_id() {
        let mut c = catalog_with("t", 10, HistogramKind::Gh);
        let id = MutationId::new(3, 1);
        let missing = Rect::new(0.9, 0.9, 0.95, 0.95);
        let err = c
            .apply_delta_idempotent("t", &[], &[missing], id)
            .unwrap_err();
        assert!(matches!(err, QueryError::DeleteNotFound { .. }));
        let ok = c
            .apply_delta_idempotent("t", &rects(2, 0.1), &[], id)
            .unwrap();
        assert!(
            !ok.deduplicated,
            "the failed attempt must not have burned the ID"
        );
    }

    /// The crash that motivates idempotency: the WAL holds the batch
    /// (the server applied it), the client never saw a reply and
    /// retries against a restarted server. Replay populates the dedup
    /// ring, so the retry lands exactly once.
    #[test]
    fn retry_after_crash_recovery_is_deduplicated() {
        let dir = temp_dir("retrycrash");
        let mut c1 = catalog_with("t", 20, HistogramKind::Gh);
        c1.save_statistics(&dir).unwrap();
        c1.open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        let ins = rects(4, 0.1);
        let id = MutationId::new(11, 1);
        c1.apply_delta_idempotent("t", &ins, &[], id).unwrap();
        let expected = c1.histogram("t").unwrap().to_bytes();
        drop(c1); // crash before the reply reached the client

        let mut c2 = Catalog::with_kind(HistogramKind::Gh, 4);
        c2.register_with_statistics(
            Dataset::new("t", Extent::unit(), rects(20, 0.0)),
            &std::fs::read(dir.join("t.hist")).unwrap(),
        )
        .unwrap();
        let recovery = c2
            .open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        assert_eq!(recovery.replayed, 1);
        let retry = c2.apply_delta_idempotent("t", &ins, &[], id).unwrap();
        assert!(retry.deduplicated, "replay must arm the dedup ring");
        assert_eq!(c2.table_len("t").unwrap(), 24);
        assert_eq!(c2.histogram("t").unwrap().to_bytes(), expected);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Compaction deletes the WAL, so the dedup ring rides in the
    /// snapshot: a retry that straddles compaction + restart still
    /// lands exactly once.
    #[test]
    fn dedup_ring_survives_compaction_and_restart() {
        let dir = temp_dir("dedupsnap");
        let mut c1 = catalog_with("t", 20, HistogramKind::Gh);
        c1.open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        let ins = rects(4, 0.1);
        let id = MutationId::new(21, 5);
        c1.apply_delta_idempotent("t", &ins, &[], id).unwrap();
        c1.compact("t").unwrap();
        assert!(!dir.join("t.wal").exists());
        drop(c1);

        let mut c2 = Catalog::with_kind(HistogramKind::Gh, 4);
        c2.register_deferred(Dataset::new("t", Extent::unit(), rects(20, 0.0)))
            .unwrap();
        c2.open_stats_store(&dir, CompactionPolicy::default())
            .unwrap();
        let retry = c2.apply_delta_idempotent("t", &ins, &[], id).unwrap();
        assert!(retry.deduplicated, "snapshot must carry the dedup ring");
        assert_eq!(c2.table_len("t").unwrap(), 24);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The ring is bounded: the oldest IDs are evicted once more than
    /// [`REMEMBERED_MUTATIONS`] stamped batches have applied.
    #[test]
    fn dedup_ring_is_bounded() {
        let mut store = TableStore::default();
        for seq in 1..=(REMEMBERED_MUTATIONS as u64 + 10) {
            store.remember(MutationId::new(1, seq));
        }
        assert_eq!(store.recent_ids.len(), REMEMBERED_MUTATIONS);
        assert_eq!(store.id_index.len(), REMEMBERED_MUTATIONS);
        assert!(!store.is_applied(MutationId::new(1, 1)), "oldest evicted");
        assert!(store.is_applied(MutationId::new(1, 11)));
        assert!(!store.is_applied(MutationId::UNSTAMPED));
    }

    /// Version-1 WAL records (pre-mutation-ID) still replay, as
    /// unstamped batches.
    #[test]
    fn v1_wal_records_still_decode() {
        // Hand-encode a v1 record: the v2 layout minus the 16 ID bytes.
        let ins = rects(3, 0.1);
        let mut buf = Vec::new();
        buf.extend_from_slice(&WAL_MAGIC.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes());
        buf.extend_from_slice(&3u32.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        for r in &ins {
            for v in [r.xlo, r.ylo, r.xhi, r.yhi] {
                buf.extend_from_slice(&v.to_le_bytes());
            }
        }
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());

        let (records, torn) = decode_wal(&buf).unwrap();
        assert_eq!(torn, 0);
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].id, MutationId::UNSTAMPED);
        assert_eq!(records[0].inserts, ins);

        // And a v2 record appended after it decodes too.
        buf.extend_from_slice(&encode_wal_record(1, MutationId::new(9, 9), &ins, &[]));
        let (records, _) = decode_wal(&buf).unwrap();
        assert_eq!(records.len(), 2);
        assert_eq!(records[1].id, MutationId::new(9, 9));
        assert_eq!(
            wal_record_ends(&buf).unwrap(),
            vec![
                WAL_V1_HEADER_LEN + 3 * 32 + 4,
                WAL_V1_HEADER_LEN + WAL_HEADER_LEN + 6 * 32 + 8,
            ]
        );
    }

    /// The compaction swap leaves no tmp files and (with `RealStoreIo`)
    /// fsyncs data before each rename; this pins the call order via a
    /// recording [`StoreIo`].
    #[test]
    fn compaction_syncs_before_renaming() {
        use std::sync::Mutex;
        struct Recording(Mutex<Vec<String>>, RealStoreIo);
        impl StoreIo for Recording {
            fn create_dir_all(&self, d: &Path) -> std::io::Result<()> {
                self.1.create_dir_all(d)
            }
            fn exists(&self, p: &Path) -> bool {
                self.1.exists(p)
            }
            fn read(&self, p: &Path) -> std::io::Result<Vec<u8>> {
                self.1.read(p)
            }
            fn append_wal(&self, p: &Path, r: &[u8]) -> std::io::Result<()> {
                self.log("append", p);
                self.1.append_wal(p, r)
            }
            fn write(&self, p: &Path, b: &[u8]) -> std::io::Result<()> {
                self.log("write", p);
                self.1.write(p, b)
            }
            fn sync_file(&self, p: &Path) -> std::io::Result<()> {
                self.log("sync", p);
                self.1.sync_file(p)
            }
            fn rename(&self, f: &Path, t: &Path) -> std::io::Result<()> {
                self.log("rename", t);
                self.1.rename(f, t)
            }
            fn remove(&self, p: &Path) -> std::io::Result<()> {
                self.log("remove", p);
                self.1.remove(p)
            }
            fn sync_dir(&self, d: &Path) -> std::io::Result<()> {
                self.log("syncdir", d);
                self.1.sync_dir(d)
            }
        }
        impl Recording {
            fn log(&self, op: &str, p: &Path) {
                let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("?");
                self.0.lock().unwrap().push(format!("{op} {name}"));
            }
        }

        let dir = temp_dir("synced");
        let io = Arc::new(Recording(Mutex::new(Vec::new()), RealStoreIo));
        let mut c = catalog_with("t", 15, HistogramKind::Gh);
        c.open_stats_store_with_io(&dir, CompactionPolicy::default(), io.clone())
            .unwrap();
        c.apply_delta("t", &rects(2, 0.1), &[]).unwrap();
        c.compact("t").unwrap();
        let ops = io.0.lock().unwrap().clone();
        assert_eq!(
            ops,
            vec![
                "append t.wal",
                "write t.hist.tmp",
                "sync t.hist.tmp",
                "rename t.hist",
                "write t.base.tmp",
                "sync t.base.tmp",
                "rename t.base",
                "syncdir sj_store_test_synced",
                "remove t.wal",
            ],
            "every tmp file must be fsynced before its rename"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn estimates_track_incremental_mutations() {
        let mut c = Catalog::with_level(4);
        c.register(Dataset::new("a", Extent::unit(), rects(30, 0.0)))
            .unwrap();
        c.register(Dataset::new("b", Extent::unit(), rects(30, 0.05)))
            .unwrap();
        let before = c.estimate_join_pairs("a", "b").unwrap();
        c.apply_delta("a", &rects(30, 0.02), &[]).unwrap();
        let after = c.estimate_join_pairs("a", "b").unwrap();
        assert!(
            after > before,
            "doubling a table must raise the estimate ({before} -> {after})"
        );
        // The lazy index rebuilt over the mutated dataset.
        assert_eq!(c.rtree("a").unwrap().len(), 60);
    }
}
