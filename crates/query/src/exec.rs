use crate::catalog::Catalog;
use crate::error::QueryError;
use crate::plan::{Plan, PlanStep};
use sj_datagen::Dataset;
use sj_geo::Rect;
use sj_rtree::join_pairs;
use std::time::{Duration, Instant};

/// Resolves a tuple slot to its dataset rectangle with bounds checking.
///
/// Tuple ids are `u64` (R-tree entry ids); an id outside the dataset is
/// a catalog-consistency bug (a dataset changed between planning and
/// execution) and comes back as [`QueryError::TupleIdOutOfRange`]
/// instead of an index panic — the same discipline sj-lint rule r4
/// enforces on grid coordinates in sj-histogram.
fn tuple_rect(ds: &Dataset, table: &str, id: u64) -> Result<Rect, QueryError> {
    usize::try_from(id)
        .ok()
        .and_then(|i| ds.rects.get(i).copied())
        .ok_or_else(|| QueryError::TupleIdOutOfRange {
            table: table.to_string(),
            id,
            len: ds.rects.len(),
        })
}

/// Execution statistics for one plan run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecStats {
    /// Total wall-clock execution time.
    pub elapsed: Duration,
    /// Tuples materialized by the opening join.
    pub opening_pairs: usize,
    /// R-tree probes issued by attach steps.
    pub probes: usize,
    /// Tuples discarded by the window filter.
    pub window_filtered: usize,
}

/// The result of executing a plan: tuples of object ids, one column per
/// table in the *original chain order* of [`Plan::tables`].
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Result tuples; `tuples[k][i]` is the id in table `i` (chain order).
    pub tuples: Vec<Vec<u64>>,
    /// Execution statistics.
    pub stats: ExecStats,
}

impl Plan {
    /// Executes the plan against the catalog it was planned on.
    ///
    /// # Errors
    /// Propagates unknown-table errors (catalog changed since planning)
    /// and aborts with [`QueryError::ResultTooLarge`] when an intermediate
    /// exceeds the catalog's tuple budget.
    pub fn execute(&self, catalog: &Catalog) -> Result<QueryResult, QueryError> {
        // sj-lint: allow(determinism, wall-clock fills ExecStats timing, never affects results)
        let start = Instant::now();
        let budget = catalog.config().tuple_budget;
        let mut stats = ExecStats::default();

        // Partial tuples carry one slot per chain position; unbound slots
        // hold u64::MAX until their attach step runs.
        const UNBOUND: u64 = u64::MAX;
        let n = self.tables.len();
        let mut tuples: Vec<Vec<u64>> = Vec::new();

        for step in &self.steps {
            match *step {
                PlanStep::JoinEdge { left, right, .. } => {
                    let tl = catalog.rtree(&self.tables[left])?;
                    let tr = catalog.rtree(&self.tables[right])?;
                    join_pairs(tl, tr, |a, b| {
                        let mut t = vec![UNBOUND; n];
                        t[left] = a;
                        t[right] = b;
                        tuples.push(t);
                    });
                    stats.opening_pairs = tuples.len();
                    // Early window filter on the two bound columns.
                    if let Some(w) = &self.window {
                        let dl = catalog.dataset(&self.tables[left])?;
                        let dr = catalog.dataset(&self.tables[right])?;
                        let before = tuples.len();
                        let mut kept = Vec::with_capacity(tuples.len());
                        for t in std::mem::take(&mut tuples) {
                            let keep = tuple_rect(dl, &self.tables[left], t[left])?.intersects(w)
                                && tuple_rect(dr, &self.tables[right], t[right])?.intersects(w);
                            if keep {
                                kept.push(t);
                            }
                        }
                        tuples = kept;
                        stats.window_filtered += before - tuples.len();
                    }
                }
                PlanStep::Probe { table, via, .. } => {
                    let probe_tree = catalog.rtree(&self.tables[table])?;
                    let via_ds = catalog.dataset(&self.tables[via])?;
                    let mut next: Vec<Vec<u64>> = Vec::with_capacity(tuples.len());
                    for t in &tuples {
                        let via_rect = tuple_rect(via_ds, &self.tables[via], t[via])?;
                        stats.probes += 1;
                        probe_tree.query_intersecting(&via_rect, |e| {
                            if let Some(w) = &self.window {
                                if !e.rect.intersects(w) {
                                    stats.window_filtered += 1;
                                    return;
                                }
                            }
                            let mut extended = t.clone();
                            extended[table] = e.id;
                            next.push(extended);
                        });
                        if next.len() > budget {
                            return Err(QueryError::ResultTooLarge {
                                produced: next.len(),
                                budget,
                            });
                        }
                    }
                    tuples = next;
                }
            }
            if tuples.len() > budget {
                return Err(QueryError::ResultTooLarge {
                    produced: tuples.len(),
                    budget,
                });
            }
        }

        debug_assert!(
            tuples.iter().all(|t| t.iter().all(|&id| id != UNBOUND)),
            "plan left unbound columns"
        );
        stats.elapsed = start.elapsed();
        Ok(QueryResult { tuples, stats })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CatalogConfig;
    use crate::plan::ChainJoinQuery;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};
    use sj_datagen::Dataset;
    use sj_geo::{Extent, Rect};

    fn random_table(name: &str, n: usize, seed: u64, side: f64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rects = (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0 - side);
                let y = rng.random_range(0.0..1.0 - side);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..side),
                    y + rng.random_range(0.0..side),
                )
            })
            .collect();
        Dataset::new(name, Extent::unit(), rects)
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::with_level(5);
        c.register(random_table("a", 300, 1, 0.06)).unwrap();
        c.register(random_table("b", 250, 2, 0.06)).unwrap();
        c.register(random_table("c", 200, 3, 0.06)).unwrap();
        c
    }

    /// Brute-force chain join for verification.
    fn brute_chain(cat: &Catalog, names: &[&str], window: Option<Rect>) -> Vec<Vec<u64>> {
        let tables: Vec<&Dataset> = names.iter().map(|n| cat.dataset(n).unwrap()).collect();
        let mut tuples: Vec<Vec<u64>> = (0..tables[0].len()).map(|i| vec![i as u64]).collect();
        for k in 1..tables.len() {
            let mut next = Vec::new();
            for t in &tuples {
                let prev_rect = tables[k - 1].rects[t[k - 1] as usize];
                for (j, r) in tables[k].rects.iter().enumerate() {
                    if prev_rect.intersects(r) {
                        let mut e = t.clone();
                        e.push(j as u64);
                        next.push(e);
                    }
                }
            }
            tuples = next;
        }
        if let Some(w) = window {
            tuples.retain(|t| {
                t.iter()
                    .enumerate()
                    .all(|(k, &id)| tables[k].rects[id as usize].intersects(&w))
            });
        }
        tuples.sort();
        tuples
    }

    #[test]
    fn two_way_join_matches_brute_force() {
        let c = catalog();
        let plan = c.plan(&ChainJoinQuery::new(["a", "b"])).unwrap();
        let mut got = plan.execute(&c).unwrap().tuples;
        got.sort();
        assert_eq!(got, brute_chain(&c, &["a", "b"], None));
        assert!(!got.is_empty(), "fixture join should be non-empty");
    }

    #[test]
    fn three_way_chain_matches_brute_force() {
        let c = catalog();
        let plan = c.plan(&ChainJoinQuery::new(["a", "b", "c"])).unwrap();
        let result = plan.execute(&c).unwrap();
        let mut got = result.tuples;
        got.sort();
        assert_eq!(got, brute_chain(&c, &["a", "b", "c"], None));
        assert!(result.stats.probes > 0, "three-way chains must probe");
    }

    #[test]
    fn windowed_chain_matches_brute_force() {
        let c = catalog();
        let w = Rect::new(0.2, 0.2, 0.7, 0.7);
        let plan = c
            .plan(&ChainJoinQuery::new(["a", "b", "c"]).within(w))
            .unwrap();
        let result = plan.execute(&c).unwrap();
        let mut got = result.tuples;
        got.sort();
        assert_eq!(got, brute_chain(&c, &["a", "b", "c"], Some(w)));
        assert!(
            result.stats.window_filtered > 0,
            "window should filter something"
        );
    }

    #[test]
    fn estimated_result_tracks_actual() {
        let c = catalog();
        let plan = c.plan(&ChainJoinQuery::new(["a", "b", "c"])).unwrap();
        let actual = plan.execute(&c).unwrap().tuples.len() as f64;
        assert!(actual > 0.0);
        let ratio = plan.estimated_result / actual;
        assert!(
            (0.4..2.5).contains(&ratio),
            "estimate {:.0} vs actual {actual:.0} (ratio {ratio:.2})",
            plan.estimated_result
        );
    }

    #[test]
    fn tuple_budget_aborts_runaway_plans() {
        let mut c = Catalog::new(CatalogConfig {
            tuple_budget: 10,
            ..CatalogConfig::default()
        });
        c.register(random_table("x", 200, 7, 0.3)).unwrap();
        c.register(random_table("y", 200, 8, 0.3)).unwrap();
        let plan = c.plan(&ChainJoinQuery::new(["x", "y"])).unwrap();
        assert!(matches!(
            plan.execute(&c),
            Err(QueryError::ResultTooLarge { budget: 10, .. })
        ));
    }

    #[test]
    fn tuple_order_is_chain_order_regardless_of_plan_order() {
        // Even when the planner opens in the middle of the chain, columns
        // come back in chain order.
        let c = catalog();
        let plan = c.plan(&ChainJoinQuery::new(["a", "b", "c"])).unwrap();
        let result = plan.execute(&c).unwrap();
        let (da, db, dc) = (
            c.dataset("a").unwrap(),
            c.dataset("b").unwrap(),
            c.dataset("c").unwrap(),
        );
        for t in result.tuples.iter().take(50) {
            let (ra, rb, rc) = (
                da.rects[t[0] as usize],
                db.rects[t[1] as usize],
                dc.rects[t[2] as usize],
            );
            assert!(ra.intersects(&rb), "a-b predicate violated");
            assert!(rb.intersects(&rc), "b-c predicate violated");
        }
    }
}
