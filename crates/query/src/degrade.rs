//! The graceful-degradation estimator ladder.
//!
//! A production optimizer must produce *some* cardinality estimate even
//! when a table's statistics file is missing, stale, or corrupt — a
//! failed estimate would take the whole query down with it. The ladder
//! walks the estimators in decreasing fidelity (and increasing cost
//! independence from precomputed state):
//!
//! 1. **Primary** — the configured histogram family, loaded or built at
//!    registration time (the paper's GH by default).
//! 2. **PH rebuild** — a Parametric Histogram rebuilt on the fly from
//!    the in-memory datasets at a configurable level.
//! 3. **Parametric** — the Aref–Samet closed-form model (paper Eq. 1–2),
//!    i.e. the `h = 0` point: needs only whole-dataset aggregates.
//! 4. **Sampling** — RSWR sampling over the raw rectangles (paper
//!    Section 2), the estimator of last resort.
//!
//! Every answer is an [`EstimateOutcome`] carrying full provenance: the
//! tier that served, and every higher tier that was skipped with the
//! reason why — so callers (the CLI surfaces this as stderr warnings and
//! a JSON `provenance` field) can tell a first-class estimate from a
//! degraded one.

use sj_histogram::HistogramKind;

/// Which estimator tier served an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EstimateTier {
    /// The configured histogram family answered from its statistics.
    Primary(HistogramKind),
    /// A Parametric Histogram rebuilt on the fly from the datasets.
    PhRebuild,
    /// The whole-dataset parametric model (`h = 0`).
    Parametric,
    /// RSWR sampling over the raw rectangles.
    Sampling,
}

impl EstimateTier {
    /// Stable lowercase name used in the CLI's JSON `provenance` field.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Primary(_) => "primary",
            Self::PhRebuild => "ph-rebuild",
            Self::Parametric => "parametric",
            Self::Sampling => "sampling",
        }
    }
}

impl std::fmt::Display for EstimateTier {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Primary(kind) => write!(f, "primary ({kind})"),
            other => f.write_str(other.name()),
        }
    }
}

/// A tier that could not serve an estimate, and why.
#[derive(Debug, Clone, PartialEq)]
pub struct SkippedTier {
    /// The tier that was skipped.
    pub tier: EstimateTier,
    /// Human-readable reason (corruption detail, policy gate, …).
    pub reason: String,
}

/// Configures which fallback tiers [`crate::Catalog::estimate_join_pairs`]
/// may descend to when the primary statistics cannot serve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegradationPolicy {
    /// Allow tier 2: rebuilding a Parametric Histogram from the raw
    /// datasets.
    pub allow_ph_rebuild: bool,
    /// Grid level for the tier-2 rebuild.
    pub ph_level: u32,
    /// Allow tier 3: the whole-dataset parametric model.
    pub allow_parametric: bool,
    /// Sample percentage for tier 4 (RSWR); `None` disables sampling.
    pub sampling_percent: Option<f64>,
}

impl Default for DegradationPolicy {
    fn default() -> Self {
        Self {
            allow_ph_rebuild: true,
            ph_level: 4,
            allow_parametric: true,
            sampling_percent: Some(1.0),
        }
    }
}

impl DegradationPolicy {
    /// A policy that never degrades: only the primary statistics may
    /// answer, anything else is an error.
    #[must_use]
    pub fn primary_only() -> Self {
        Self {
            allow_ph_rebuild: false,
            allow_parametric: false,
            sampling_percent: None,
            ..Self::default()
        }
    }
}

/// A join-size estimate with full provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct EstimateOutcome {
    /// Estimated number of intersecting pairs.
    pub pairs: f64,
    /// Estimated selectivity in `[0, 1]`.
    pub selectivity: f64,
    /// The tier that produced the numbers.
    pub tier: EstimateTier,
    /// Higher tiers that could not serve, in ladder order.
    pub skipped: Vec<SkippedTier>,
}

impl EstimateOutcome {
    /// `true` when a fallback tier (anything below the primary
    /// statistics) served the estimate.
    #[must_use]
    pub fn is_degraded(&self) -> bool {
        !matches!(self.tier, EstimateTier::Primary(_))
    }
}
