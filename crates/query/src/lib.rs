//! A miniature spatial query engine built on the selectivity estimators.
//!
//! The paper closes by proposing to "develop a SDBMS incorporating query
//! optimizations based on these analysis techniques". This crate is that
//! future-work sketch, realized at library scale:
//!
//! * [`Catalog`] — named datasets, each registered once; the catalog
//!   builds a Geometric Histogram file per table up front and an R-tree
//!   lazily on first use.
//! * [`ChainJoinQuery`] — a multi-way spatial join over a chain of
//!   tables: find tuples `(o₀, …, o_{n-1})` where consecutive objects'
//!   MBRs intersect (e.g. streams ⋈ roads ⋈ census blocks), optionally
//!   restricted to a window.
//! * [`Planner`] — a cost-based join-order optimizer driven entirely by
//!   GH selectivity estimates: it picks the cheapest starting edge and
//!   greedily extends toward the smaller estimated intermediate, then
//!   emits an EXPLAIN-style [`Plan`].
//! * [`Plan::execute`] — pipelined execution: the first edge runs as a
//!   synchronized-traversal R-tree join, later tables are attached by
//!   R-tree probes, the window is applied as early as possible.
//!
//! ```
//! use sj_query::{Catalog, ChainJoinQuery};
//! use sj_datagen::presets;
//!
//! let mut catalog = Catalog::with_level(5);
//! catalog.register(presets::ts(0.01)).unwrap();
//! catalog.register(presets::tcb(0.01)).unwrap();
//!
//! let query = ChainJoinQuery::new(["TS", "TCB"]);
//! let plan = catalog.plan(&query).unwrap();
//! println!("{plan}");                       // EXPLAIN output
//! let result = plan.execute(&catalog).unwrap();
//! assert_eq!(result.tuples[0].len(), 2);    // (ts_id, tcb_id) tuples
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

mod catalog;
mod degrade;
mod error;
mod exec;
mod plan;
mod store;

pub use catalog::{Catalog, CatalogConfig};
pub use degrade::{DegradationPolicy, EstimateOutcome, EstimateTier, SkippedTier};
pub use error::QueryError;
pub use store::{
    wal_record_ends, CompactReceipt, CompactionPlan, CompactionPolicy, DeltaReceipt, MutationId,
    PreparedDelta, PreparedOutcome, RealStoreIo, StatsProvenance, StoreIo, TierInfo, WalRecovery,
    REMEMBERED_MUTATIONS,
};
// Re-exported so downstream crates (sj-server) can match the histogram
// failure modes wrapped inside QueryError without a direct dependency.
pub use exec::{ExecStats, QueryResult};
pub use plan::{ChainJoinQuery, Plan, PlanStep, Planner, StarJoinQuery};
pub use sj_histogram::HistogramError;
