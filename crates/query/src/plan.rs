use crate::catalog::Catalog;
use crate::error::QueryError;
use sj_geo::Rect;
use std::fmt;

/// Estimates one join edge through the catalog's degradation ladder,
/// recording a warning when a fallback tier served it.
fn estimate_edge(
    catalog: &Catalog,
    a: &str,
    b: &str,
    warnings: &mut Vec<String>,
) -> Result<f64, QueryError> {
    let outcome = catalog.estimate_join_pairs_detailed(a, b, &catalog.config().degradation)?;
    if outcome.is_degraded() {
        let reasons = outcome
            .skipped
            .iter()
            .map(|s| format!("{}: {}", s.tier.name(), s.reason))
            .collect::<Vec<_>>()
            .join("; ");
        warnings.push(format!(
            "estimate for {a} ⋈ {b} degraded to the {} tier ({reasons})",
            outcome.tier
        ));
    }
    Ok(outcome.pairs)
}

/// A chain spatial join: find tuples `(o₀, …, o_{n-1})`, one object per
/// table, where each consecutive pair of objects' MBRs intersects —
/// optionally with every participating object intersecting a window.
#[derive(Debug, Clone)]
pub struct ChainJoinQuery {
    /// Tables in chain order (predicates connect neighbors).
    pub tables: Vec<String>,
    /// Optional window every tuple member must intersect.
    pub window: Option<Rect>,
}

impl ChainJoinQuery {
    /// Creates a chain join over the given tables.
    pub fn new<I, S>(tables: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            tables: tables.into_iter().map(Into::into).collect(),
            window: None,
        }
    }

    /// Restricts the query to a window.
    #[must_use]
    pub fn within(mut self, window: Rect) -> Self {
        self.window = Some(window);
        self
    }
}

/// One step of an executable plan.
#[derive(Debug, Clone, PartialEq)]
pub enum PlanStep {
    /// Open the plan with an R-tree join between two chain-adjacent
    /// tables (indices into [`Plan::tables`]).
    JoinEdge {
        /// Left table index (chain position).
        left: usize,
        /// Right table index.
        right: usize,
        /// Estimated result size of this edge.
        estimated_pairs: f64,
    },
    /// Attach a neighboring table by probing its R-tree with the MBRs of
    /// the adjacent, already-joined table.
    Probe {
        /// Chain index of the table being attached.
        table: usize,
        /// Chain index of the already-bound neighbor whose MBRs drive the
        /// probes.
        via: usize,
        /// Estimated intermediate size after this step.
        estimated_tuples: f64,
    },
}

/// An executable, explainable plan for a [`ChainJoinQuery`].
#[derive(Debug, Clone)]
pub struct Plan {
    /// Tables in the *original chain order* (tuple column order).
    pub tables: Vec<String>,
    /// Steps in execution order.
    pub steps: Vec<PlanStep>,
    /// Window, if any.
    pub window: Option<Rect>,
    /// Estimated final result size.
    pub estimated_result: f64,
    /// Degradation warnings: one entry per edge whose estimate was not
    /// served by the primary statistics (see
    /// [`crate::EstimateOutcome`]).
    pub warnings: Vec<String>,
}

impl fmt::Display for Plan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "ChainJoin [{}]", self.tables.join(" ⋈ "))?;
        if let Some(w) = &self.window {
            writeln!(
                f,
                "  window [{:.3},{:.3}]x[{:.3},{:.3}]",
                w.xlo, w.xhi, w.ylo, w.yhi
            )?;
        }
        for (i, step) in self.steps.iter().enumerate() {
            match step {
                PlanStep::JoinEdge {
                    left,
                    right,
                    estimated_pairs,
                } => writeln!(
                    f,
                    "  {i}. rtree-join {} ⋈ {}   (~{estimated_pairs:.0} pairs)",
                    self.tables[*left], self.tables[*right]
                )?,
                PlanStep::Probe {
                    table,
                    via,
                    estimated_tuples,
                } => writeln!(
                    f,
                    "  {i}. probe {} via {}      (~{estimated_tuples:.0} tuples)",
                    self.tables[*table], self.tables[*via]
                )?,
            }
        }
        for w in &self.warnings {
            writeln!(f, "  !! {w}")?;
        }
        write!(f, "  => ~{:.0} result tuples", self.estimated_result)
    }
}

/// The cost-based join-order optimizer.
///
/// For a chain `t₀ – t₁ – … – t_{n-1}` the executable orders are exactly:
/// start at some edge `(tᵢ, tᵢ₊₁)` and repeatedly extend the bound
/// interval left or right. The planner estimates every edge's result size
/// with the GH histogram files, opens with the cheapest edge, and at each
/// step extends to the side with the smaller estimated growth factor
/// (estimated partners per bound object).
pub struct Planner<'a> {
    catalog: &'a Catalog,
}

impl<'a> Planner<'a> {
    /// Creates a planner over a catalog.
    #[must_use]
    pub fn new(catalog: &'a Catalog) -> Self {
        Self { catalog }
    }

    /// Produces a plan for the query.
    ///
    /// # Errors
    /// Unknown tables, too-short chains and estimation failures.
    pub fn plan(&self, query: &ChainJoinQuery) -> Result<Plan, QueryError> {
        let n = query.tables.len();
        if n < 2 {
            return Err(QueryError::TooFewTables(n));
        }
        for name in &query.tables {
            let _ = self.catalog.table(name)?;
        }

        // Edge result-size estimates from the histogram files (or a
        // fallback tier, with a warning recorded on the plan).
        let mut warnings = Vec::new();
        let mut edge_pairs = Vec::with_capacity(n - 1);
        for i in 0..n - 1 {
            edge_pairs.push(estimate_edge(
                self.catalog,
                &query.tables[i],
                &query.tables[i + 1],
                &mut warnings,
            )?);
        }
        // Growth factor of attaching table b via its neighbor a: expected
        // partners in b per object of a.
        let growth = |edge: usize, via: usize| -> Result<f64, QueryError> {
            let via_len = self.catalog.table_len(&query.tables[via])?;
            #[allow(clippy::cast_precision_loss)]
            Ok(if via_len == 0 {
                0.0
            } else {
                edge_pairs[edge] / via_len as f64
            })
        };

        // Opening edge: the smallest estimated pair count. (`n >= 2`
        // guarantees at least one edge; the guard keeps this panic-free.)
        let Some((start, _)) = edge_pairs
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
        else {
            return Err(QueryError::TooFewTables(n));
        };

        let mut steps = vec![PlanStep::JoinEdge {
            left: start,
            right: start + 1,
            estimated_pairs: edge_pairs[start],
        }];
        let mut estimate = edge_pairs[start];
        let (mut lo, mut hi) = (start, start + 1);
        while lo > 0 || hi < n - 1 {
            // Candidate extensions: attach lo-1 via lo, or hi+1 via hi.
            let left_growth = if lo > 0 {
                Some(growth(lo - 1, lo)?)
            } else {
                None
            };
            let right_growth = if hi < n - 1 {
                Some(growth(hi, hi)?)
            } else {
                None
            };
            // Pick the cheaper extension; the loop condition guarantees
            // at least one side is available.
            let (g, go_left) = match (left_growth, right_growth) {
                (Some(l), Some(r)) if l <= r => (l, true),
                (Some(l), None) => (l, true),
                (_, Some(r)) => (r, false),
                (None, None) => break,
            };
            estimate *= g;
            if go_left {
                steps.push(PlanStep::Probe {
                    table: lo - 1,
                    via: lo,
                    estimated_tuples: estimate,
                });
                lo -= 1;
            } else {
                steps.push(PlanStep::Probe {
                    table: hi + 1,
                    via: hi,
                    estimated_tuples: estimate,
                });
                hi += 1;
            }
        }

        Ok(Plan {
            tables: query.tables.clone(),
            steps,
            window: query.window,
            estimated_result: estimate,
            warnings,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_datagen::Dataset;
    use sj_geo::Extent;

    fn grid_of_rects(name: &str, n_per_axis: usize, side: f64) -> Dataset {
        let mut rects = Vec::new();
        for i in 0..n_per_axis {
            for j in 0..n_per_axis {
                let x = (i as f64 + 0.5) / n_per_axis as f64;
                let y = (j as f64 + 0.5) / n_per_axis as f64;
                rects.push(Rect::centered(sj_geo::Point::new(x, y), side, side));
            }
        }
        Dataset::new(name, Extent::unit(), rects)
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::with_level(5);
        // "dense" overlaps heavily with everything; "sparse_*" only join
        // each other lightly.
        c.register(grid_of_rects("dense", 30, 0.08)).unwrap();
        c.register(grid_of_rects("sparse_a", 10, 0.01)).unwrap();
        c.register(grid_of_rects("sparse_b", 10, 0.01)).unwrap();
        c
    }

    #[test]
    fn chain_needs_two_tables() {
        let c = catalog();
        assert!(matches!(
            c.plan(&ChainJoinQuery::new(["dense"])),
            Err(QueryError::TooFewTables(1))
        ));
    }

    #[test]
    fn unknown_table_rejected() {
        let c = catalog();
        assert!(matches!(
            c.plan(&ChainJoinQuery::new(["dense", "nope"])),
            Err(QueryError::UnknownTable(_))
        ));
    }

    #[test]
    fn planner_opens_with_cheapest_edge() {
        let c = catalog();
        // Chain: dense – sparse_a – sparse_b. Edge (sparse_a, sparse_b)
        // is far cheaper than (dense, sparse_a): the plan must open there.
        let q = ChainJoinQuery::new(["dense", "sparse_a", "sparse_b"]);
        let plan = c.plan(&q).unwrap();
        assert!(
            matches!(
                plan.steps[0],
                PlanStep::JoinEdge {
                    left: 1,
                    right: 2,
                    ..
                }
            ),
            "expected to open with the sparse edge, got {:?}",
            plan.steps[0]
        );
        // The remaining step attaches `dense` via `sparse_a`.
        assert!(matches!(
            plan.steps[1],
            PlanStep::Probe {
                table: 0,
                via: 1,
                ..
            }
        ));
        assert_eq!(plan.steps.len(), 2);
    }

    #[test]
    fn explain_output_mentions_all_tables() {
        let c = catalog();
        let plan = c.plan(&ChainJoinQuery::new(["dense", "sparse_a"])).unwrap();
        let text = format!("{plan}");
        assert!(text.contains("dense"), "{text}");
        assert!(text.contains("sparse_a"), "{text}");
        assert!(text.contains("rtree-join"), "{text}");
    }

    #[test]
    fn estimates_are_positive_for_overlapping_tables() {
        let c = catalog();
        let plan = c
            .plan(&ChainJoinQuery::new(["dense", "sparse_a", "sparse_b"]))
            .unwrap();
        assert!(plan.estimated_result >= 0.0);
        assert!(plan.estimated_result.is_finite());
    }
}

/// A star spatial join: one `center` table and `satellites`; find tuples
/// `(c, s₁, …, s_k)` where every satellite object's MBR intersects the
/// center object's MBR ("census blocks containing a school, a hospital
/// and a fire station").
#[derive(Debug, Clone)]
pub struct StarJoinQuery {
    /// The hub table every predicate involves.
    pub center: String,
    /// The satellite tables.
    pub satellites: Vec<String>,
    /// Optional window every tuple member must intersect.
    pub window: Option<Rect>,
}

impl StarJoinQuery {
    /// Creates a star join.
    pub fn new<I, S>(center: impl Into<String>, satellites: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        Self {
            center: center.into(),
            satellites: satellites.into_iter().map(Into::into).collect(),
            window: None,
        }
    }

    /// Restricts the query to a window.
    #[must_use]
    pub fn within(mut self, window: Rect) -> Self {
        self.window = Some(window);
        self
    }

    /// Lowers the star to an executable [`Plan`] via the chain machinery:
    /// since every predicate involves the center, a star is a "chain"
    /// whose probes all go `via` the center. The planner orders the
    /// satellites by ascending estimated fan-out so the intermediate
    /// stays as small as possible for as long as possible.
    ///
    /// # Errors
    /// Unknown tables, an empty satellite list, and estimation failures.
    pub fn plan(&self, catalog: &Catalog) -> Result<Plan, QueryError> {
        if self.satellites.is_empty() {
            return Err(QueryError::TooFewTables(1));
        }
        let _ = catalog.table(&self.center)?;
        for s in &self.satellites {
            let _ = catalog.table(s)?;
        }
        let center_len = catalog.table_len(&self.center)?;

        // Estimated fan-out of each satellite: partners per center object.
        let mut warnings = Vec::new();
        let mut sats: Vec<(usize, f64, f64)> = Vec::new(); // (idx, pairs, growth)
        for (i, s) in self.satellites.iter().enumerate() {
            let pairs = estimate_edge(catalog, &self.center, s, &mut warnings)?;
            #[allow(clippy::cast_precision_loss)]
            let growth = if center_len == 0 {
                0.0
            } else {
                pairs / center_len as f64
            };
            sats.push((i, pairs, growth));
        }
        sats.sort_by(|a, b| a.2.total_cmp(&b.2));

        // Tuple layout: column 0 = center, column 1 + i = satellite i (in
        // the *query's* order). The plan visits them in fan-out order.
        let mut tables = Vec::with_capacity(1 + self.satellites.len());
        tables.push(self.center.clone());
        tables.extend(self.satellites.iter().cloned());

        let (first_idx, first_pairs, _) = sats[0];
        let mut steps = vec![PlanStep::JoinEdge {
            left: 0,
            right: 1 + first_idx,
            estimated_pairs: first_pairs,
        }];
        let mut estimate = first_pairs;
        for &(idx, _, growth) in &sats[1..] {
            estimate *= growth;
            steps.push(PlanStep::Probe {
                table: 1 + idx,
                via: 0,
                estimated_tuples: estimate,
            });
        }
        Ok(Plan {
            tables,
            steps,
            window: self.window,
            estimated_result: estimate,
            warnings,
        })
    }
}

#[cfg(test)]
mod star_tests {
    use super::*;
    use sj_datagen::Dataset;
    use sj_geo::{Extent, Point};

    fn grid_of_rects(name: &str, n_per_axis: usize, side: f64) -> Dataset {
        let mut rects = Vec::new();
        for i in 0..n_per_axis {
            for j in 0..n_per_axis {
                let x = (i as f64 + 0.5) / n_per_axis as f64;
                let y = (j as f64 + 0.5) / n_per_axis as f64;
                rects.push(Rect::centered(Point::new(x, y), side, side));
            }
        }
        Dataset::new(name, Extent::unit(), rects)
    }

    fn catalog() -> Catalog {
        let mut c = Catalog::with_level(5);
        c.register(grid_of_rects("center", 12, 0.1)).unwrap();
        c.register(grid_of_rects("dense_sat", 25, 0.06)).unwrap();
        c.register(grid_of_rects("sparse_sat", 8, 0.01)).unwrap();
        c
    }

    #[test]
    fn star_plan_orders_satellites_by_fanout() {
        let c = catalog();
        let q = StarJoinQuery::new("center", ["dense_sat", "sparse_sat"]);
        let plan = q.plan(&c).unwrap();
        // The sparse satellite (column 2) has the smaller fan-out, so the
        // plan must open with it, then probe the dense one (column 1).
        assert!(
            matches!(
                plan.steps[0],
                PlanStep::JoinEdge {
                    left: 0,
                    right: 2,
                    ..
                }
            ),
            "expected to open with the sparse satellite, got {:?}",
            plan.steps[0]
        );
        assert!(matches!(
            plan.steps[1],
            PlanStep::Probe {
                table: 1,
                via: 0,
                ..
            }
        ));
    }

    #[test]
    fn star_execution_matches_brute_force() {
        let c = catalog();
        let q = StarJoinQuery::new("center", ["dense_sat", "sparse_sat"]);
        let plan = q.plan(&c).unwrap();
        let mut got = plan.execute(&c).unwrap().tuples;
        got.sort();

        // Brute force: center × sat1 × sat2, both predicates via center.
        let (dc, d1, d2) = (
            c.dataset("center").unwrap(),
            c.dataset("dense_sat").unwrap(),
            c.dataset("sparse_sat").unwrap(),
        );
        let mut expected = Vec::new();
        for (ci, cr) in dc.rects.iter().enumerate() {
            for (i1, r1) in d1.rects.iter().enumerate() {
                if !cr.intersects(r1) {
                    continue;
                }
                for (i2, r2) in d2.rects.iter().enumerate() {
                    if cr.intersects(r2) {
                        expected.push(vec![ci as u64, i1 as u64, i2 as u64]);
                    }
                }
            }
        }
        expected.sort();
        assert_eq!(got, expected);
        assert!(!got.is_empty(), "fixture star join should be non-empty");
    }

    #[test]
    fn star_needs_a_satellite() {
        let c = catalog();
        let q = StarJoinQuery::new("center", Vec::<String>::new());
        assert!(matches!(q.plan(&c), Err(QueryError::TooFewTables(1))));
    }

    #[test]
    fn star_window_filters() {
        let c = catalog();
        let w = Rect::new(0.0, 0.0, 0.45, 0.45);
        let q = StarJoinQuery::new("center", ["sparse_sat"]).within(w);
        let result = q.plan(&c).unwrap().execute(&c).unwrap();
        let dc = c.dataset("center").unwrap();
        let ds = c.dataset("sparse_sat").unwrap();
        for t in &result.tuples {
            assert!(dc.rects[t[0] as usize].intersects(&w));
            assert!(ds.rects[t[1] as usize].intersects(&w));
        }
    }
}
