use crate::error::QueryError;
use crate::plan::{ChainJoinQuery, Plan, Planner};
use sj_datagen::Dataset;
use sj_geo::Extent;
use sj_histogram::{GhHistogram, Grid};
use sj_rtree::{RTree, RTreeConfig};
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Catalog configuration.
#[derive(Debug, Clone, Copy)]
pub struct CatalogConfig {
    /// Gridding level for the per-table GH histogram files.
    pub grid_level: u32,
    /// R-tree configuration for table indexes.
    pub rtree: RTreeConfig,
    /// Extent every registered table must live in (the join universe).
    pub extent: Extent,
    /// Execution guard: abort a plan when an intermediate result exceeds
    /// this many tuples.
    pub tuple_budget: usize,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            grid_level: 6,
            rtree: RTreeConfig::default(),
            extent: Extent::unit(),
            tuple_budget: 50_000_000,
        }
    }
}

pub(crate) struct Table {
    pub(crate) dataset: Dataset,
    pub(crate) histogram: GhHistogram,
    rtree: OnceLock<RTree>,
}

/// A catalog of named spatial tables with precomputed statistics.
///
/// Registration builds the GH histogram file immediately (the cheap,
/// always-useful statistic); R-trees are built lazily the first time a
/// plan needs one, mirroring how an SDBMS separates statistics collection
/// from index builds.
pub struct Catalog {
    config: CatalogConfig,
    grid: Grid,
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Creates a catalog with the given configuration.
    ///
    /// # Panics
    /// Panics if the configured grid level exceeds [`Grid::MAX_LEVEL`] —
    /// this is static configuration, not data.
    #[must_use]
    pub fn new(config: CatalogConfig) -> Self {
        let grid = Grid::new(config.grid_level, config.extent)
            .expect("catalog grid level within Grid::MAX_LEVEL");
        Self {
            config,
            grid,
            tables: BTreeMap::new(),
        }
    }

    /// Creates a catalog over the unit extent at the given histogram
    /// level, with defaults for everything else.
    #[must_use]
    pub fn with_level(grid_level: u32) -> Self {
        Self::new(CatalogConfig {
            grid_level,
            ..CatalogConfig::default()
        })
    }

    /// The catalog configuration.
    #[must_use]
    pub fn config(&self) -> CatalogConfig {
        self.config
    }

    /// Registers a dataset under its own name, building its histogram
    /// file.
    ///
    /// # Errors
    /// Returns [`QueryError::DuplicateTable`] if the name is taken.
    pub fn register(&mut self, dataset: Dataset) -> Result<(), QueryError> {
        if self.tables.contains_key(&dataset.name) {
            return Err(QueryError::DuplicateTable(dataset.name.clone()));
        }
        let histogram = GhHistogram::build(self.grid, &dataset.rects);
        self.tables.insert(
            dataset.name.clone(),
            Table {
                dataset,
                histogram,
                rtree: OnceLock::new(),
            },
        );
        Ok(())
    }

    /// Registered table names, sorted.
    #[must_use]
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of objects in a table.
    ///
    /// # Errors
    /// Returns [`QueryError::UnknownTable`] for unregistered names.
    pub fn table_len(&self, name: &str) -> Result<usize, QueryError> {
        Ok(self.table(name)?.dataset.len())
    }

    /// The GH histogram file of a table.
    ///
    /// # Errors
    /// Returns [`QueryError::UnknownTable`] for unregistered names.
    pub fn histogram(&self, name: &str) -> Result<&GhHistogram, QueryError> {
        Ok(&self.table(name)?.histogram)
    }

    /// The R-tree index of a table, built on first request.
    ///
    /// # Errors
    /// Returns [`QueryError::UnknownTable`] for unregistered names.
    pub fn rtree(&self, name: &str) -> Result<&RTree, QueryError> {
        let table = self.table(name)?;
        Ok(table
            .rtree
            .get_or_init(|| RTree::bulk_load_str(self.config.rtree, &table.dataset.rects)))
    }

    /// The underlying dataset of a table.
    ///
    /// # Errors
    /// Returns [`QueryError::UnknownTable`] for unregistered names.
    pub fn dataset(&self, name: &str) -> Result<&Dataset, QueryError> {
        Ok(&self.table(name)?.dataset)
    }

    /// Estimated number of intersecting pairs between two tables, from
    /// their histogram files alone.
    ///
    /// # Errors
    /// Returns [`QueryError::UnknownTable`] for unregistered names.
    pub fn estimate_join_pairs(&self, a: &str, b: &str) -> Result<f64, QueryError> {
        let est = self.histogram(a)?.estimate(self.histogram(b)?)?;
        Ok(est.pairs)
    }

    /// Plans a chain join query (see [`Planner`]).
    ///
    /// # Errors
    /// Propagates unknown-table and estimation errors.
    pub fn plan(&self, query: &ChainJoinQuery) -> Result<Plan, QueryError> {
        Planner::new(self).plan(query)
    }

    pub(crate) fn table(&self, name: &str) -> Result<&Table, QueryError> {
        self.tables
            .get(name)
            .ok_or_else(|| QueryError::UnknownTable(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geo::Rect;

    fn tiny(name: &str, rects: Vec<Rect>) -> Dataset {
        Dataset::new(name, Extent::unit(), rects)
    }

    #[test]
    fn register_and_introspect() {
        let mut c = Catalog::with_level(3);
        c.register(tiny("a", vec![Rect::new(0.1, 0.1, 0.2, 0.2)]))
            .unwrap();
        c.register(tiny("b", vec![Rect::new(0.15, 0.15, 0.3, 0.3)]))
            .unwrap();
        assert_eq!(c.table_names(), vec!["a", "b"]);
        assert_eq!(c.table_len("a").unwrap(), 1);
        assert!(c.histogram("a").is_ok());
        assert!(matches!(
            c.table_len("zzz"),
            Err(QueryError::UnknownTable(_))
        ));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut c = Catalog::with_level(3);
        c.register(tiny("a", vec![])).unwrap();
        assert!(matches!(
            c.register(tiny("a", vec![])),
            Err(QueryError::DuplicateTable(_))
        ));
    }

    #[test]
    fn rtree_is_lazy_and_cached() {
        let mut c = Catalog::with_level(3);
        c.register(tiny("a", vec![Rect::new(0.0, 0.0, 0.5, 0.5)]))
            .unwrap();
        let t1 = c.rtree("a").unwrap() as *const RTree;
        let t2 = c.rtree("a").unwrap() as *const RTree;
        assert_eq!(t1, t2, "R-tree must be built once and cached");
        assert_eq!(c.rtree("a").unwrap().len(), 1);
    }

    #[test]
    fn estimate_join_pairs_from_files() {
        let mut c = Catalog::with_level(4);
        c.register(tiny("a", vec![Rect::new(0.1, 0.1, 0.4, 0.4)]))
            .unwrap();
        c.register(tiny("b", vec![Rect::new(0.2, 0.2, 0.5, 0.5)]))
            .unwrap();
        let est = c.estimate_join_pairs("a", "b").unwrap();
        assert!(
            est > 0.0,
            "overlapping singletons should estimate > 0, got {est}"
        );
    }
}

/// Statistics persistence: write each table's GH histogram file to a
/// directory, and register tables from previously saved statistics
/// (skipping the histogram build — the SDBMS pattern of collecting
/// statistics once and reusing them across sessions).
impl Catalog {
    /// Writes every table's histogram file as `<dir>/<table>.gh`
    /// (sparse encoding — see [`GhHistogram::to_sparse_bytes`]).
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_statistics(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (name, table) in &self.tables {
            std::fs::write(
                dir.join(format!("{name}.gh")),
                table.histogram.to_sparse_bytes(),
            )?;
        }
        Ok(())
    }

    /// Registers a dataset reusing a previously saved histogram file
    /// instead of rebuilding it. The file must decode and match this
    /// catalog's grid and the dataset's cardinality, otherwise the stale
    /// statistics are rejected.
    ///
    /// # Errors
    /// [`QueryError::DuplicateTable`], or [`QueryError::Histogram`] when
    /// the statistics file is corrupt or does not match.
    pub fn register_with_statistics(
        &mut self,
        dataset: Dataset,
        stats_file: &[u8],
    ) -> Result<(), QueryError> {
        if self.tables.contains_key(&dataset.name) {
            return Err(QueryError::DuplicateTable(dataset.name.clone()));
        }
        let histogram = GhHistogram::from_sparse_bytes(stats_file)?;
        let expected_grid = self.grid;
        if !histogram.grid().compatible(&expected_grid) {
            return Err(QueryError::Histogram(
                sj_histogram::HistogramError::GridMismatch {
                    left_level: histogram.grid().level(),
                    right_level: expected_grid.level(),
                },
            ));
        }
        if histogram.dataset_len() != dataset.len() {
            return Err(QueryError::Histogram(
                sj_histogram::HistogramError::Corrupt(format!(
                    "statistics cover {} objects but the dataset has {}",
                    histogram.dataset_len(),
                    dataset.len()
                )),
            ));
        }
        self.tables.insert(
            dataset.name.clone(),
            Table {
                dataset,
                histogram,
                rtree: OnceLock::new(),
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::error::QueryError;
    use sj_geo::Rect;

    fn tiny(name: &str, n: usize) -> Dataset {
        let rects = (0..n)
            .map(|i| {
                let t = (i as f64 + 0.5) / n as f64;
                Rect::centered(sj_geo::Point::new(t, t), 0.02, 0.02)
            })
            .collect();
        Dataset::new(name, Extent::unit(), rects)
    }

    #[test]
    fn save_and_reload_statistics() {
        let dir = std::env::temp_dir().join("sj_query_stats_test");
        let mut c1 = Catalog::with_level(4);
        c1.register(tiny("alpha", 40)).unwrap();
        c1.register(tiny("beta", 30)).unwrap();
        c1.save_statistics(&dir).unwrap();
        let baseline = c1.estimate_join_pairs("alpha", "beta").unwrap();

        let mut c2 = Catalog::with_level(4);
        for name in ["alpha", "beta"] {
            let bytes = std::fs::read(dir.join(format!("{name}.gh"))).unwrap();
            c2.register_with_statistics(tiny(name, if name == "alpha" { 40 } else { 30 }), &bytes)
                .unwrap();
        }
        assert_eq!(
            c2.estimate_join_pairs("alpha", "beta").unwrap(),
            baseline,
            "reloaded statistics must estimate identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_statistics_rejected() {
        let mut c = Catalog::with_level(4);
        c.register(tiny("alpha", 40)).unwrap();
        let bytes = c.histogram("alpha").unwrap().to_sparse_bytes();

        // Wrong grid level.
        let mut other = Catalog::with_level(5);
        assert!(matches!(
            other.register_with_statistics(tiny("alpha", 40), &bytes),
            Err(QueryError::Histogram(
                sj_histogram::HistogramError::GridMismatch { .. }
            ))
        ));

        // Wrong cardinality (dataset changed since stats were taken).
        let mut same_grid = Catalog::with_level(4);
        assert!(matches!(
            same_grid.register_with_statistics(tiny("alpha", 41), &bytes),
            Err(QueryError::Histogram(
                sj_histogram::HistogramError::Corrupt(_)
            ))
        ));

        // Garbage bytes.
        let mut fresh = Catalog::with_level(4);
        assert!(fresh
            .register_with_statistics(tiny("alpha", 40), b"nonsense")
            .is_err());
    }
}
