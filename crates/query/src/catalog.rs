use crate::error::QueryError;
use crate::plan::{ChainJoinQuery, Plan, Planner};
use sj_datagen::Dataset;
use sj_geo::{Extent, Rect};
use sj_histogram::{
    build_histogram, load_histogram, GhHistogram, Grid, HistogramKind, SpatialHistogram,
};
use sj_rtree::{RTree, RTreeConfig};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Catalog configuration.
#[derive(Debug, Clone, Copy)]
pub struct CatalogConfig {
    /// Histogram family used for every table's statistics file.
    pub kind: HistogramKind,
    /// Gridding level for the per-table histogram files.
    pub grid_level: u32,
    /// R-tree configuration for table indexes.
    pub rtree: RTreeConfig,
    /// Extent every registered table must live in (the join universe).
    pub extent: Extent,
    /// Execution guard: abort a plan when an intermediate result exceeds
    /// this many tuples.
    pub tuple_budget: usize,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            kind: HistogramKind::Gh,
            grid_level: 6,
            rtree: RTreeConfig::default(),
            extent: Extent::unit(),
            tuple_budget: 50_000_000,
        }
    }
}

pub(crate) struct Table {
    pub(crate) dataset: Dataset,
    pub(crate) histogram: Box<dyn SpatialHistogram>,
    rtree: OnceLock<RTree>,
}

/// A table still being assembled from shards (see
/// [`Catalog::register_shard`]).
struct PendingTable {
    rects: Vec<Rect>,
    histogram: Box<dyn SpatialHistogram>,
}

/// A catalog of named spatial tables with precomputed statistics.
///
/// Registration builds the configured histogram file immediately (the
/// cheap, always-useful statistic); R-trees are built lazily the first
/// time a plan needs one, mirroring how an SDBMS separates statistics
/// collection from index builds.
///
/// Tables can also arrive in *shards* ([`Catalog::register_shard`] +
/// [`Catalog::merge_shards`]): each shard's histogram is built
/// independently and merged, and — because every family is a mergeable
/// sketch with exact accumulation — the merged statistics are
/// byte-identical to a direct [`Catalog::register`] over the
/// concatenated shards.
pub struct Catalog {
    config: CatalogConfig,
    grid: Grid,
    tables: BTreeMap<String, Table>,
    pending: BTreeMap<String, PendingTable>,
}

impl Catalog {
    /// Creates a catalog with the given configuration.
    ///
    /// # Panics
    /// Panics if the configured grid level exceeds [`Grid::MAX_LEVEL`] —
    /// this is static configuration, not data.
    #[must_use]
    pub fn new(config: CatalogConfig) -> Self {
        let grid = Grid::new(config.grid_level, config.extent)
            .expect("catalog grid level within Grid::MAX_LEVEL");
        Self {
            config,
            grid,
            tables: BTreeMap::new(),
            pending: BTreeMap::new(),
        }
    }

    /// Creates a catalog over the unit extent at the given histogram
    /// level, with defaults for everything else (GH statistics).
    #[must_use]
    pub fn with_level(grid_level: u32) -> Self {
        Self::new(CatalogConfig {
            grid_level,
            ..CatalogConfig::default()
        })
    }

    /// Creates a catalog using the given histogram family at the given
    /// level, with defaults for everything else.
    #[must_use]
    pub fn with_kind(kind: HistogramKind, grid_level: u32) -> Self {
        Self::new(CatalogConfig {
            kind,
            grid_level,
            ..CatalogConfig::default()
        })
    }

    /// The catalog configuration.
    #[must_use]
    pub fn config(&self) -> CatalogConfig {
        self.config
    }

    /// Registers a dataset under its own name, building its histogram
    /// file.
    ///
    /// # Errors
    /// Returns [`QueryError::DuplicateTable`] if the name is taken.
    pub fn register(&mut self, dataset: Dataset) -> Result<(), QueryError> {
        if self.tables.contains_key(&dataset.name) {
            return Err(QueryError::DuplicateTable(dataset.name.clone()));
        }
        let histogram = build_histogram(self.config.kind, self.grid, &dataset.rects);
        self.tables.insert(
            dataset.name.clone(),
            Table {
                dataset,
                histogram,
                rtree: OnceLock::new(),
            },
        );
        Ok(())
    }

    /// Adds one shard of a table that is being loaded piecewise: builds
    /// the shard's histogram and merges it into the pending statistics
    /// for `name`. Finish with [`Catalog::merge_shards`].
    ///
    /// Shard-and-merge registration produces statistics byte-identical
    /// to a single [`Catalog::register`] over the concatenated shards,
    /// in any shard order that preserves rectangle order.
    ///
    /// # Errors
    /// Returns [`QueryError::DuplicateTable`] if a *finalized* table
    /// already has this name, or propagates a histogram merge error.
    pub fn register_shard(&mut self, name: &str, rects: &[Rect]) -> Result<(), QueryError> {
        if self.tables.contains_key(name) {
            return Err(QueryError::DuplicateTable(name.to_string()));
        }
        let shard = build_histogram(self.config.kind, self.grid, rects);
        match self.pending.entry(name.to_string()) {
            Entry::Occupied(mut e) => {
                let p = e.get_mut();
                p.histogram.merge(shard.as_ref())?;
                p.rects.extend_from_slice(rects);
            }
            Entry::Vacant(v) => {
                v.insert(PendingTable {
                    rects: rects.to_vec(),
                    histogram: shard,
                });
            }
        }
        Ok(())
    }

    /// Finalizes a table assembled via [`Catalog::register_shard`]: the
    /// merged histogram becomes the table's statistics and the
    /// concatenated shards become its dataset.
    ///
    /// # Errors
    /// [`QueryError::UnknownTable`] if no shards were registered under
    /// `name`, [`QueryError::DuplicateTable`] if a finalized table took
    /// the name in the meantime.
    pub fn merge_shards(&mut self, name: &str) -> Result<(), QueryError> {
        if self.tables.contains_key(name) {
            return Err(QueryError::DuplicateTable(name.to_string()));
        }
        let p = self
            .pending
            .remove(name)
            .ok_or_else(|| QueryError::UnknownTable(name.to_string()))?;
        let dataset = Dataset::new(name, self.config.extent, p.rects);
        self.tables.insert(
            name.to_string(),
            Table {
                dataset,
                histogram: p.histogram,
                rtree: OnceLock::new(),
            },
        );
        Ok(())
    }

    /// Registered table names, sorted.
    #[must_use]
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of objects in a table.
    ///
    /// # Errors
    /// Returns [`QueryError::UnknownTable`] for unregistered names.
    pub fn table_len(&self, name: &str) -> Result<usize, QueryError> {
        Ok(self.table(name)?.dataset.len())
    }

    /// The histogram file of a table, whatever its configured family.
    ///
    /// # Errors
    /// Returns [`QueryError::UnknownTable`] for unregistered names.
    pub fn histogram(&self, name: &str) -> Result<&dyn SpatialHistogram, QueryError> {
        Ok(self.table(name)?.histogram.as_ref())
    }

    /// The table's histogram downcast to the revised Geometric
    /// Histogram, for callers that need GH-specific accessors (sparse
    /// encoding, window estimates).
    ///
    /// # Errors
    /// [`QueryError::UnknownTable`] for unregistered names, or
    /// [`QueryError::Histogram`] with a kind mismatch when the catalog
    /// is configured for a different family.
    pub fn gh_histogram(&self, name: &str) -> Result<&GhHistogram, QueryError> {
        let hist = self.histogram(name)?;
        hist.as_any().downcast_ref::<GhHistogram>().ok_or_else(|| {
            QueryError::Histogram(sj_histogram::HistogramError::KindMismatch {
                left: hist.kind(),
                right: HistogramKind::Gh,
            })
        })
    }

    /// The R-tree index of a table, built on first request.
    ///
    /// # Errors
    /// Returns [`QueryError::UnknownTable`] for unregistered names.
    pub fn rtree(&self, name: &str) -> Result<&RTree, QueryError> {
        let table = self.table(name)?;
        Ok(table
            .rtree
            .get_or_init(|| RTree::bulk_load_str(self.config.rtree, &table.dataset.rects)))
    }

    /// The underlying dataset of a table.
    ///
    /// # Errors
    /// Returns [`QueryError::UnknownTable`] for unregistered names.
    pub fn dataset(&self, name: &str) -> Result<&Dataset, QueryError> {
        Ok(&self.table(name)?.dataset)
    }

    /// Estimated number of intersecting pairs between two tables, from
    /// their histogram files alone.
    ///
    /// # Errors
    /// Returns [`QueryError::UnknownTable`] for unregistered names.
    pub fn estimate_join_pairs(&self, a: &str, b: &str) -> Result<f64, QueryError> {
        let est = self.histogram(a)?.estimate_join(self.histogram(b)?)?;
        Ok(est.pairs)
    }

    /// Plans a chain join query (see [`Planner`]).
    ///
    /// # Errors
    /// Propagates unknown-table and estimation errors.
    pub fn plan(&self, query: &ChainJoinQuery) -> Result<Plan, QueryError> {
        Planner::new(self).plan(query)
    }

    pub(crate) fn table(&self, name: &str) -> Result<&Table, QueryError> {
        self.tables
            .get(name)
            .ok_or_else(|| QueryError::UnknownTable(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geo::Rect;

    fn tiny(name: &str, rects: Vec<Rect>) -> Dataset {
        Dataset::new(name, Extent::unit(), rects)
    }

    #[test]
    fn register_and_introspect() {
        let mut c = Catalog::with_level(3);
        c.register(tiny("a", vec![Rect::new(0.1, 0.1, 0.2, 0.2)]))
            .unwrap();
        c.register(tiny("b", vec![Rect::new(0.15, 0.15, 0.3, 0.3)]))
            .unwrap();
        assert_eq!(c.table_names(), vec!["a", "b"]);
        assert_eq!(c.table_len("a").unwrap(), 1);
        assert!(c.histogram("a").is_ok());
        assert_eq!(c.histogram("a").unwrap().kind(), HistogramKind::Gh);
        assert!(c.gh_histogram("a").is_ok());
        assert!(matches!(
            c.table_len("zzz"),
            Err(QueryError::UnknownTable(_))
        ));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut c = Catalog::with_level(3);
        c.register(tiny("a", vec![])).unwrap();
        assert!(matches!(
            c.register(tiny("a", vec![])),
            Err(QueryError::DuplicateTable(_))
        ));
    }

    #[test]
    fn rtree_is_lazy_and_cached() {
        let mut c = Catalog::with_level(3);
        c.register(tiny("a", vec![Rect::new(0.0, 0.0, 0.5, 0.5)]))
            .unwrap();
        let t1 = c.rtree("a").unwrap() as *const RTree;
        let t2 = c.rtree("a").unwrap() as *const RTree;
        assert_eq!(t1, t2, "R-tree must be built once and cached");
        assert_eq!(c.rtree("a").unwrap().len(), 1);
    }

    #[test]
    fn estimate_join_pairs_from_files() {
        let mut c = Catalog::with_level(4);
        c.register(tiny("a", vec![Rect::new(0.1, 0.1, 0.4, 0.4)]))
            .unwrap();
        c.register(tiny("b", vec![Rect::new(0.2, 0.2, 0.5, 0.5)]))
            .unwrap();
        let est = c.estimate_join_pairs("a", "b").unwrap();
        assert!(
            est > 0.0,
            "overlapping singletons should estimate > 0, got {est}"
        );
    }

    #[test]
    fn every_kind_registers_and_estimates() {
        for kind in HistogramKind::ALL {
            let mut c = Catalog::with_kind(kind, 4);
            c.register(tiny("a", vec![Rect::new(0.1, 0.1, 0.4, 0.4)]))
                .unwrap();
            c.register(tiny("b", vec![Rect::new(0.2, 0.2, 0.5, 0.5)]))
                .unwrap();
            assert_eq!(c.histogram("a").unwrap().kind(), kind);
            let est = c.estimate_join_pairs("a", "b").unwrap();
            assert!(est > 0.0, "{kind}: overlapping singletons gave {est}");
        }
    }

    #[test]
    fn gh_downcast_rejects_other_kinds() {
        let mut c = Catalog::with_kind(HistogramKind::Euler, 3);
        c.register(tiny("a", vec![Rect::new(0.1, 0.1, 0.2, 0.2)]))
            .unwrap();
        assert!(matches!(
            c.gh_histogram("a"),
            Err(QueryError::Histogram(
                sj_histogram::HistogramError::KindMismatch { .. }
            ))
        ));
    }

    #[test]
    fn sharded_registration_matches_direct() {
        let rects: Vec<Rect> = (0..60)
            .map(|i| {
                let t = f64::from(i) / 60.0;
                Rect::new(
                    t * 0.9,
                    (1.0 - t) * 0.8,
                    t * 0.9 + 0.05,
                    (1.0 - t) * 0.8 + 0.07,
                )
            })
            .collect();
        for kind in HistogramKind::ALL {
            let mut direct = Catalog::with_kind(kind, 4);
            direct.register(tiny("t", rects.clone())).unwrap();

            let mut sharded = Catalog::with_kind(kind, 4);
            for chunk in rects.chunks(17) {
                sharded.register_shard("t", chunk).unwrap();
            }
            sharded.merge_shards("t").unwrap();

            assert_eq!(
                sharded.histogram("t").unwrap().to_bytes(),
                direct.histogram("t").unwrap().to_bytes(),
                "{kind}: shard-and-merge must be byte-identical to direct registration"
            );
            assert_eq!(sharded.table_len("t").unwrap(), rects.len());
        }
    }

    #[test]
    fn merge_shards_without_shards_is_an_error() {
        let mut c = Catalog::with_level(3);
        assert!(matches!(
            c.merge_shards("ghost"),
            Err(QueryError::UnknownTable(_))
        ));
    }

    #[test]
    fn shard_name_conflicts_with_finalized_table() {
        let mut c = Catalog::with_level(3);
        c.register(tiny("a", vec![])).unwrap();
        assert!(matches!(
            c.register_shard("a", &[]),
            Err(QueryError::DuplicateTable(_))
        ));
    }
}

/// Statistics persistence: write each table's histogram file to a
/// directory, and register tables from previously saved statistics
/// (skipping the histogram build — the SDBMS pattern of collecting
/// statistics once and reusing them across sessions).
impl Catalog {
    /// Writes every table's histogram file as `<dir>/<table>.hist`
    /// using the versioned [`SpatialHistogram::persist`] envelope, so
    /// any configured family round-trips.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_statistics(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (name, table) in &self.tables {
            std::fs::write(dir.join(format!("{name}.hist")), table.histogram.persist())?;
        }
        Ok(())
    }

    /// Registers a dataset reusing a previously saved histogram file
    /// instead of rebuilding it. Accepts the versioned envelope of any
    /// family (falling back to the legacy sparse-GH format for files
    /// written by older versions). The statistics must match this
    /// catalog's configured family and grid and the dataset's
    /// cardinality, otherwise they are rejected as stale.
    ///
    /// # Errors
    /// [`QueryError::DuplicateTable`], or [`QueryError::Histogram`] when
    /// the statistics file is corrupt or does not match.
    pub fn register_with_statistics(
        &mut self,
        dataset: Dataset,
        stats_file: &[u8],
    ) -> Result<(), QueryError> {
        if self.tables.contains_key(&dataset.name) {
            return Err(QueryError::DuplicateTable(dataset.name.clone()));
        }
        let histogram: Box<dyn SpatialHistogram> = match load_histogram(stats_file) {
            Ok(h) => h,
            // Legacy statistics predate the envelope: bare sparse GH.
            Err(_) => Box::new(GhHistogram::from_sparse_bytes(stats_file)?),
        };
        if histogram.kind() != self.config.kind {
            return Err(QueryError::Histogram(
                sj_histogram::HistogramError::KindMismatch {
                    left: histogram.kind(),
                    right: self.config.kind,
                },
            ));
        }
        let expected_grid = self.grid;
        if !histogram.grid().compatible(&expected_grid) {
            return Err(QueryError::Histogram(
                sj_histogram::HistogramError::GridMismatch {
                    left_level: histogram.grid().level(),
                    right_level: expected_grid.level(),
                },
            ));
        }
        if histogram.dataset_len() != dataset.len() {
            return Err(QueryError::Histogram(
                sj_histogram::HistogramError::Corrupt(format!(
                    "statistics cover {} objects but the dataset has {}",
                    histogram.dataset_len(),
                    dataset.len()
                )),
            ));
        }
        self.tables.insert(
            dataset.name.clone(),
            Table {
                dataset,
                histogram,
                rtree: OnceLock::new(),
            },
        );
        Ok(())
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::error::QueryError;
    use sj_geo::Rect;

    fn tiny(name: &str, n: usize) -> Dataset {
        let rects = (0..n)
            .map(|i| {
                let t = (i as f64 + 0.5) / n as f64;
                Rect::centered(sj_geo::Point::new(t, t), 0.02, 0.02)
            })
            .collect();
        Dataset::new(name, Extent::unit(), rects)
    }

    #[test]
    fn save_and_reload_statistics_every_kind() {
        for kind in HistogramKind::ALL {
            let dir = std::env::temp_dir().join(format!("sj_query_stats_test_{kind}"));
            let mut c1 = Catalog::with_kind(kind, 4);
            c1.register(tiny("alpha", 40)).unwrap();
            c1.register(tiny("beta", 30)).unwrap();
            c1.save_statistics(&dir).unwrap();
            let baseline = c1.estimate_join_pairs("alpha", "beta").unwrap();

            let mut c2 = Catalog::with_kind(kind, 4);
            for name in ["alpha", "beta"] {
                let bytes = std::fs::read(dir.join(format!("{name}.hist"))).unwrap();
                c2.register_with_statistics(
                    tiny(name, if name == "alpha" { 40 } else { 30 }),
                    &bytes,
                )
                .unwrap();
            }
            assert_eq!(
                c2.estimate_join_pairs("alpha", "beta").unwrap(),
                baseline,
                "{kind}: reloaded statistics must estimate identically"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn legacy_sparse_gh_statistics_still_load() {
        let mut c1 = Catalog::with_level(4);
        c1.register(tiny("alpha", 40)).unwrap();
        let legacy = c1.gh_histogram("alpha").unwrap().to_sparse_bytes();

        let mut c2 = Catalog::with_level(4);
        c2.register_with_statistics(tiny("alpha", 40), &legacy)
            .unwrap();
        assert_eq!(
            c2.gh_histogram("alpha").unwrap().to_bytes(),
            c1.gh_histogram("alpha").unwrap().to_bytes(),
            "legacy sparse statistics must decode to the same histogram"
        );
    }

    #[test]
    fn stale_statistics_rejected() {
        let mut c = Catalog::with_level(4);
        c.register(tiny("alpha", 40)).unwrap();
        let bytes = c.histogram("alpha").unwrap().persist();

        // Wrong grid level.
        let mut other = Catalog::with_level(5);
        assert!(matches!(
            other.register_with_statistics(tiny("alpha", 40), &bytes),
            Err(QueryError::Histogram(
                sj_histogram::HistogramError::GridMismatch { .. }
            ))
        ));

        // Wrong family (catalog wants Euler statistics, file holds GH).
        let mut euler = Catalog::with_kind(HistogramKind::Euler, 4);
        assert!(matches!(
            euler.register_with_statistics(tiny("alpha", 40), &bytes),
            Err(QueryError::Histogram(
                sj_histogram::HistogramError::KindMismatch { .. }
            ))
        ));

        // Wrong cardinality (dataset changed since stats were taken).
        let mut same_grid = Catalog::with_level(4);
        assert!(matches!(
            same_grid.register_with_statistics(tiny("alpha", 41), &bytes),
            Err(QueryError::Histogram(
                sj_histogram::HistogramError::Corrupt(_)
            ))
        ));

        // Garbage bytes.
        let mut fresh = Catalog::with_level(4);
        assert!(fresh
            .register_with_statistics(tiny("alpha", 40), b"nonsense")
            .is_err());
    }
}
