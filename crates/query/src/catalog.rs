use crate::degrade::{DegradationPolicy, EstimateOutcome, EstimateTier, SkippedTier};
use crate::error::QueryError;
use crate::plan::{ChainJoinQuery, Plan, Planner};
use sj_datagen::Dataset;
use sj_geo::{Extent, Rect};
use sj_histogram::{
    build_histogram, load_histogram, parametric_result_size, GhHistogram, Grid, HistogramKind,
    ParametricInputs, PhHistogram, SpatialHistogram,
};
use sj_rtree::{RTree, RTreeConfig};
use sj_sampling::{SamplingEstimator, SamplingTechnique};
use std::collections::btree_map::Entry;
use std::collections::BTreeMap;
use std::sync::OnceLock;

/// Catalog configuration.
#[derive(Debug, Clone, Copy)]
pub struct CatalogConfig {
    /// Histogram family used for every table's statistics file.
    pub kind: HistogramKind,
    /// Gridding level for the per-table histogram files.
    pub grid_level: u32,
    /// R-tree configuration for table indexes.
    pub rtree: RTreeConfig,
    /// Extent every registered table must live in (the join universe).
    pub extent: Extent,
    /// Execution guard: abort a plan when an intermediate result exceeds
    /// this many tuples.
    pub tuple_budget: usize,
    /// Fallback ladder for estimation when primary statistics cannot
    /// serve (see [`DegradationPolicy`]).
    pub degradation: DegradationPolicy,
}

impl Default for CatalogConfig {
    fn default() -> Self {
        Self {
            kind: HistogramKind::Gh,
            grid_level: 6,
            rtree: RTreeConfig::default(),
            extent: Extent::unit(),
            tuple_budget: 50_000_000,
            degradation: DegradationPolicy::default(),
        }
    }
}

/// A table's statistics: usable, or recorded as unusable with the reason
/// (so degraded tables still answer queries through the fallback ladder).
pub(crate) enum StatsState {
    Ready(Box<dyn SpatialHistogram>),
    Unavailable { reason: String },
}

impl StatsState {
    fn ready(&self) -> Result<&dyn SpatialHistogram, &str> {
        match self {
            Self::Ready(h) => Ok(h.as_ref()),
            Self::Unavailable { reason } => Err(reason),
        }
    }
}

pub(crate) struct Table {
    pub(crate) dataset: Dataset,
    pub(crate) stats: StatsState,
    pub(crate) rtree: OnceLock<RTree>,
}

/// A table still being assembled from shards (see
/// [`Catalog::register_shard`]).
struct PendingTable {
    rects: Vec<Rect>,
    histogram: Box<dyn SpatialHistogram>,
}

/// A catalog of named spatial tables with precomputed statistics.
///
/// Registration builds the configured histogram file immediately (the
/// cheap, always-useful statistic); R-trees are built lazily the first
/// time a plan needs one, mirroring how an SDBMS separates statistics
/// collection from index builds.
///
/// Tables can also arrive in *shards* ([`Catalog::register_shard`] +
/// [`Catalog::merge_shards`]): each shard's histogram is built
/// independently and merged, and — because every family is a mergeable
/// sketch with exact accumulation — the merged statistics are
/// byte-identical to a direct [`Catalog::register`] over the
/// concatenated shards.
pub struct Catalog {
    pub(crate) config: CatalogConfig,
    pub(crate) grid: Grid,
    pub(crate) tables: BTreeMap<String, Table>,
    pending: BTreeMap<String, PendingTable>,
    pub(crate) store: crate::store::StatsStore,
}

impl Catalog {
    /// Creates a catalog with the given configuration.
    ///
    /// # Panics
    /// Panics if the configured grid level exceeds [`Grid::MAX_LEVEL`] —
    /// this is static configuration, not data. Use [`Catalog::try_new`]
    /// to handle the error instead.
    #[must_use]
    pub fn new(config: CatalogConfig) -> Self {
        match Self::try_new(config) {
            Ok(c) => c,
            // sj-lint: allow(panic, documented contract: static misconfiguration, try_new is the fallible path)
            Err(e) => panic!("invalid catalog configuration: {e}"),
        }
    }

    /// Creates a catalog with the given configuration, rejecting invalid
    /// configurations instead of panicking.
    ///
    /// # Errors
    /// Returns [`QueryError::Histogram`] when the configured grid level
    /// exceeds [`Grid::MAX_LEVEL`].
    pub fn try_new(config: CatalogConfig) -> Result<Self, QueryError> {
        let grid = Grid::new(config.grid_level, config.extent)?;
        Ok(Self {
            config,
            grid,
            tables: BTreeMap::new(),
            pending: BTreeMap::new(),
            store: crate::store::StatsStore::default(),
        })
    }

    /// Creates a catalog over the unit extent at the given histogram
    /// level, with defaults for everything else (GH statistics).
    #[must_use]
    pub fn with_level(grid_level: u32) -> Self {
        Self::new(CatalogConfig {
            grid_level,
            ..CatalogConfig::default()
        })
    }

    /// Creates a catalog using the given histogram family at the given
    /// level, with defaults for everything else.
    #[must_use]
    pub fn with_kind(kind: HistogramKind, grid_level: u32) -> Self {
        Self::new(CatalogConfig {
            kind,
            grid_level,
            ..CatalogConfig::default()
        })
    }

    /// The catalog configuration.
    #[must_use]
    pub fn config(&self) -> CatalogConfig {
        self.config
    }

    /// Registers a dataset under its own name, building its histogram
    /// file.
    ///
    /// # Errors
    /// Returns [`QueryError::DuplicateTable`] if the name is taken.
    pub fn register(&mut self, dataset: Dataset) -> Result<(), QueryError> {
        if self.tables.contains_key(&dataset.name) {
            return Err(QueryError::DuplicateTable(dataset.name.clone()));
        }
        let histogram = build_histogram(self.config.kind, self.grid, &dataset.rects);
        self.tables.insert(
            dataset.name.clone(),
            Table {
                dataset,
                stats: StatsState::Ready(histogram),
                rtree: OnceLock::new(),
            },
        );
        Ok(())
    }

    /// Adds one shard of a table that is being loaded piecewise: builds
    /// the shard's histogram and merges it into the pending statistics
    /// for `name`. Finish with [`Catalog::merge_shards`].
    ///
    /// Shard-and-merge registration produces statistics byte-identical
    /// to a single [`Catalog::register`] over the concatenated shards,
    /// in any shard order that preserves rectangle order.
    ///
    /// # Errors
    /// Returns [`QueryError::DuplicateTable`] if a *finalized* table
    /// already has this name, or propagates a histogram merge error.
    pub fn register_shard(&mut self, name: &str, rects: &[Rect]) -> Result<(), QueryError> {
        if self.tables.contains_key(name) {
            return Err(QueryError::DuplicateTable(name.to_string()));
        }
        let shard = build_histogram(self.config.kind, self.grid, rects);
        match self.pending.entry(name.to_string()) {
            Entry::Occupied(mut e) => {
                let p = e.get_mut();
                p.histogram.merge(shard.as_ref())?;
                p.rects.extend_from_slice(rects);
            }
            Entry::Vacant(v) => {
                v.insert(PendingTable {
                    rects: rects.to_vec(),
                    histogram: shard,
                });
            }
        }
        Ok(())
    }

    /// Finalizes a table assembled via [`Catalog::register_shard`]: the
    /// merged histogram becomes the table's statistics and the
    /// concatenated shards become its dataset.
    ///
    /// # Errors
    /// [`QueryError::UnknownTable`] if no shards were registered under
    /// `name`, [`QueryError::DuplicateTable`] if a finalized table took
    /// the name in the meantime.
    pub fn merge_shards(&mut self, name: &str) -> Result<(), QueryError> {
        if self.tables.contains_key(name) {
            return Err(QueryError::DuplicateTable(name.to_string()));
        }
        let p = self
            .pending
            .remove(name)
            .ok_or_else(|| QueryError::UnknownTable(name.to_string()))?;
        let dataset = Dataset::new(name, self.config.extent, p.rects);
        self.tables.insert(
            name.to_string(),
            Table {
                dataset,
                stats: StatsState::Ready(p.histogram),
                rtree: OnceLock::new(),
            },
        );
        Ok(())
    }

    /// Registered table names, sorted.
    #[must_use]
    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(String::as_str).collect()
    }

    /// Number of objects in a table.
    ///
    /// # Errors
    /// Returns [`QueryError::UnknownTable`] for unregistered names.
    pub fn table_len(&self, name: &str) -> Result<usize, QueryError> {
        Ok(self.table(name)?.dataset.len())
    }

    /// The histogram file of a table, whatever its configured family.
    ///
    /// # Errors
    /// [`QueryError::UnknownTable`] for unregistered names;
    /// [`QueryError::StatisticsUnavailable`] for tables registered
    /// leniently whose statistics were unusable.
    pub fn histogram(&self, name: &str) -> Result<&dyn SpatialHistogram, QueryError> {
        self.table(name)?
            .stats
            .ready()
            .map_err(|reason| QueryError::StatisticsUnavailable {
                table: name.to_string(),
                reason: reason.to_string(),
            })
    }

    /// The table's histogram downcast to the revised Geometric
    /// Histogram, for callers that need GH-specific accessors (sparse
    /// encoding, window estimates).
    ///
    /// # Errors
    /// [`QueryError::UnknownTable`] for unregistered names, or
    /// [`QueryError::Histogram`] with a kind mismatch when the catalog
    /// is configured for a different family.
    pub fn gh_histogram(&self, name: &str) -> Result<&GhHistogram, QueryError> {
        let hist = self.histogram(name)?;
        hist.as_any().downcast_ref::<GhHistogram>().ok_or_else(|| {
            QueryError::Histogram(sj_histogram::HistogramError::KindMismatch {
                left: hist.kind(),
                right: HistogramKind::Gh,
            })
        })
    }

    /// The R-tree index of a table, built on first request.
    ///
    /// # Errors
    /// Returns [`QueryError::UnknownTable`] for unregistered names.
    pub fn rtree(&self, name: &str) -> Result<&RTree, QueryError> {
        let table = self.table(name)?;
        Ok(table
            .rtree
            .get_or_init(|| RTree::bulk_load_str(self.config.rtree, &table.dataset.rects)))
    }

    /// The underlying dataset of a table.
    ///
    /// # Errors
    /// Returns [`QueryError::UnknownTable`] for unregistered names.
    pub fn dataset(&self, name: &str) -> Result<&Dataset, QueryError> {
        Ok(&self.table(name)?.dataset)
    }

    /// Estimated number of intersecting pairs between two tables.
    ///
    /// Served by the graceful-degradation ladder: the primary histogram
    /// files when both are usable, otherwise the first fallback tier the
    /// configured [`DegradationPolicy`] allows (PH rebuild → parametric →
    /// sampling). Use [`Catalog::estimate_join_pairs_detailed`] to see
    /// which tier answered.
    ///
    /// # Errors
    /// [`QueryError::UnknownTable`] for unregistered names;
    /// [`QueryError::EstimatorsExhausted`] when every tier is disabled
    /// or failed.
    pub fn estimate_join_pairs(&self, a: &str, b: &str) -> Result<f64, QueryError> {
        Ok(self
            .estimate_join_pairs_detailed(a, b, &self.config.degradation)?
            .pairs)
    }

    /// Like [`Catalog::estimate_join_pairs`], with an explicit policy and
    /// full provenance: which tier served, and which tiers were skipped
    /// with the reasons why.
    ///
    /// # Errors
    /// [`QueryError::UnknownTable`] for unregistered names;
    /// [`QueryError::EstimatorsExhausted`] when every tier is disabled
    /// or failed.
    pub fn estimate_join_pairs_detailed(
        &self,
        a: &str,
        b: &str,
        policy: &DegradationPolicy,
    ) -> Result<EstimateOutcome, QueryError> {
        let (ta, tb) = (self.table(a)?, self.table(b)?);
        let mut skipped = Vec::new();
        let mut skip = |tier: EstimateTier, reason: String| {
            skipped.push(SkippedTier { tier, reason });
        };

        // Tier 1: the primary statistics of the configured family.
        let primary = EstimateTier::Primary(self.config.kind);
        match (ta.stats.ready(), tb.stats.ready()) {
            (Ok(ha), Ok(hb)) => match ha.estimate_join(hb) {
                Ok(est) => {
                    return Ok(EstimateOutcome {
                        pairs: est.pairs,
                        selectivity: est.selectivity,
                        tier: primary,
                        skipped,
                    })
                }
                Err(e) => skip(primary, format!("primary estimation failed: {e}")),
            },
            (ra, rb) => {
                for (name, r) in [(a, ra), (b, rb)] {
                    if let Err(reason) = r {
                        skip(primary, format!("table {name:?}: {reason}"));
                    }
                }
            }
        }

        // Tier 2: rebuild Parametric Histograms from the raw datasets.
        if !policy.allow_ph_rebuild {
            skip(EstimateTier::PhRebuild, "disabled by policy".to_string());
        } else {
            match Grid::new(policy.ph_level, self.config.extent) {
                Ok(grid) => {
                    let ha = PhHistogram::build(grid, &ta.dataset.rects);
                    let hb = PhHistogram::build(grid, &tb.dataset.rects);
                    match ha.estimate(&hb) {
                        Ok(est) => {
                            return Ok(EstimateOutcome {
                                pairs: est.pairs,
                                selectivity: est.selectivity,
                                tier: EstimateTier::PhRebuild,
                                skipped,
                            })
                        }
                        Err(e) => skip(EstimateTier::PhRebuild, format!("rebuild failed: {e}")),
                    }
                }
                Err(e) => skip(EstimateTier::PhRebuild, format!("bad rebuild level: {e}")),
            }
        }

        // Tier 3: the whole-dataset parametric model (h = 0).
        if !policy.allow_parametric {
            skip(EstimateTier::Parametric, "disabled by policy".to_string());
        } else {
            let inputs = |d: &Dataset| {
                let s = d.stats();
                ParametricInputs {
                    count: s.count,
                    coverage: s.coverage,
                    avg_width: s.avg_width,
                    avg_height: s.avg_height,
                }
            };
            let pairs = parametric_result_size(
                &inputs(&ta.dataset),
                &inputs(&tb.dataset),
                self.config.extent.area(),
            );
            #[allow(clippy::cast_precision_loss)]
            let denom = ta.dataset.len() as f64 * tb.dataset.len() as f64;
            let selectivity = if denom == 0.0 {
                0.0
            } else {
                (pairs / denom).clamp(0.0, 1.0)
            };
            return Ok(EstimateOutcome {
                pairs: selectivity * denom,
                selectivity,
                tier: EstimateTier::Parametric,
                skipped,
            });
        }

        // Tier 4: RSWR sampling over the raw rectangles.
        if let Some(percent) = policy.sampling_percent {
            if percent > 0.0 && percent <= 100.0 {
                let outcome = SamplingEstimator::new(
                    SamplingTechnique::RandomWithReplacement,
                    percent,
                    percent,
                )
                .estimate(
                    &ta.dataset.rects,
                    &tb.dataset.rects,
                    &self.config.extent,
                );
                return Ok(EstimateOutcome {
                    pairs: outcome.pairs,
                    selectivity: outcome.selectivity,
                    tier: EstimateTier::Sampling,
                    skipped,
                });
            }
            skip(
                EstimateTier::Sampling,
                format!("sample percent {percent} outside (0, 100]"),
            );
        } else {
            skip(EstimateTier::Sampling, "disabled by policy".to_string());
        }

        let detail = skipped
            .iter()
            .map(|s| format!("{}: {}", s.tier.name(), s.reason))
            .collect::<Vec<_>>()
            .join("; ");
        Err(QueryError::EstimatorsExhausted(detail))
    }

    /// Plans a chain join query (see [`Planner`]).
    ///
    /// # Errors
    /// Propagates unknown-table and estimation errors.
    pub fn plan(&self, query: &ChainJoinQuery) -> Result<Plan, QueryError> {
        Planner::new(self).plan(query)
    }

    pub(crate) fn table(&self, name: &str) -> Result<&Table, QueryError> {
        self.tables
            .get(name)
            .ok_or_else(|| QueryError::UnknownTable(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sj_geo::Rect;

    fn tiny(name: &str, rects: Vec<Rect>) -> Dataset {
        Dataset::new(name, Extent::unit(), rects)
    }

    #[test]
    fn register_and_introspect() {
        let mut c = Catalog::with_level(3);
        c.register(tiny("a", vec![Rect::new(0.1, 0.1, 0.2, 0.2)]))
            .unwrap();
        c.register(tiny("b", vec![Rect::new(0.15, 0.15, 0.3, 0.3)]))
            .unwrap();
        assert_eq!(c.table_names(), vec!["a", "b"]);
        assert_eq!(c.table_len("a").unwrap(), 1);
        assert!(c.histogram("a").is_ok());
        assert_eq!(c.histogram("a").unwrap().kind(), HistogramKind::Gh);
        assert!(c.gh_histogram("a").is_ok());
        assert!(matches!(
            c.table_len("zzz"),
            Err(QueryError::UnknownTable(_))
        ));
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut c = Catalog::with_level(3);
        c.register(tiny("a", vec![])).unwrap();
        assert!(matches!(
            c.register(tiny("a", vec![])),
            Err(QueryError::DuplicateTable(_))
        ));
    }

    #[test]
    fn rtree_is_lazy_and_cached() {
        let mut c = Catalog::with_level(3);
        c.register(tiny("a", vec![Rect::new(0.0, 0.0, 0.5, 0.5)]))
            .unwrap();
        let t1 = c.rtree("a").unwrap() as *const RTree;
        let t2 = c.rtree("a").unwrap() as *const RTree;
        assert_eq!(t1, t2, "R-tree must be built once and cached");
        assert_eq!(c.rtree("a").unwrap().len(), 1);
    }

    #[test]
    fn estimate_join_pairs_from_files() {
        let mut c = Catalog::with_level(4);
        c.register(tiny("a", vec![Rect::new(0.1, 0.1, 0.4, 0.4)]))
            .unwrap();
        c.register(tiny("b", vec![Rect::new(0.2, 0.2, 0.5, 0.5)]))
            .unwrap();
        let est = c.estimate_join_pairs("a", "b").unwrap();
        assert!(
            est > 0.0,
            "overlapping singletons should estimate > 0, got {est}"
        );
    }

    #[test]
    fn every_kind_registers_and_estimates() {
        for kind in HistogramKind::ALL {
            let mut c = Catalog::with_kind(kind, 4);
            c.register(tiny("a", vec![Rect::new(0.1, 0.1, 0.4, 0.4)]))
                .unwrap();
            c.register(tiny("b", vec![Rect::new(0.2, 0.2, 0.5, 0.5)]))
                .unwrap();
            assert_eq!(c.histogram("a").unwrap().kind(), kind);
            let est = c.estimate_join_pairs("a", "b").unwrap();
            assert!(est > 0.0, "{kind}: overlapping singletons gave {est}");
        }
    }

    #[test]
    fn gh_downcast_rejects_other_kinds() {
        let mut c = Catalog::with_kind(HistogramKind::Euler, 3);
        c.register(tiny("a", vec![Rect::new(0.1, 0.1, 0.2, 0.2)]))
            .unwrap();
        assert!(matches!(
            c.gh_histogram("a"),
            Err(QueryError::Histogram(
                sj_histogram::HistogramError::KindMismatch { .. }
            ))
        ));
    }

    #[test]
    fn sharded_registration_matches_direct() {
        let rects: Vec<Rect> = (0..60)
            .map(|i| {
                let t = f64::from(i) / 60.0;
                Rect::new(
                    t * 0.9,
                    (1.0 - t) * 0.8,
                    t * 0.9 + 0.05,
                    (1.0 - t) * 0.8 + 0.07,
                )
            })
            .collect();
        for kind in HistogramKind::ALL {
            let mut direct = Catalog::with_kind(kind, 4);
            direct.register(tiny("t", rects.clone())).unwrap();

            let mut sharded = Catalog::with_kind(kind, 4);
            for chunk in rects.chunks(17) {
                sharded.register_shard("t", chunk).unwrap();
            }
            sharded.merge_shards("t").unwrap();

            assert_eq!(
                sharded.histogram("t").unwrap().to_bytes(),
                direct.histogram("t").unwrap().to_bytes(),
                "{kind}: shard-and-merge must be byte-identical to direct registration"
            );
            assert_eq!(sharded.table_len("t").unwrap(), rects.len());
        }
    }

    #[test]
    fn merge_shards_without_shards_is_an_error() {
        let mut c = Catalog::with_level(3);
        assert!(matches!(
            c.merge_shards("ghost"),
            Err(QueryError::UnknownTable(_))
        ));
    }

    #[test]
    fn shard_name_conflicts_with_finalized_table() {
        let mut c = Catalog::with_level(3);
        c.register(tiny("a", vec![])).unwrap();
        assert!(matches!(
            c.register_shard("a", &[]),
            Err(QueryError::DuplicateTable(_))
        ));
    }
}

/// Statistics persistence: write each table's histogram file to a
/// directory, and register tables from previously saved statistics
/// (skipping the histogram build — the SDBMS pattern of collecting
/// statistics once and reusing them across sessions).
impl Catalog {
    /// Writes every table's histogram file as `<dir>/<table>.hist`
    /// using the versioned [`SpatialHistogram::persist`] envelope, so
    /// any configured family round-trips.
    ///
    /// # Errors
    /// Propagates filesystem errors.
    pub fn save_statistics(&self, dir: &std::path::Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        for (name, table) in &self.tables {
            // Degraded tables have nothing worth persisting.
            if let StatsState::Ready(histogram) = &table.stats {
                std::fs::write(dir.join(format!("{name}.hist")), histogram.persist())?;
            }
        }
        Ok(())
    }

    /// Registers a dataset reusing a previously saved histogram file
    /// instead of rebuilding it. Accepts the versioned envelope of any
    /// family (falling back to the legacy sparse-GH format for files
    /// written by older versions). The statistics must match this
    /// catalog's configured family and grid and the dataset's
    /// cardinality, otherwise they are rejected as stale.
    ///
    /// # Errors
    /// [`QueryError::DuplicateTable`], or [`QueryError::Histogram`] when
    /// the statistics file is corrupt or does not match.
    pub fn register_with_statistics(
        &mut self,
        dataset: Dataset,
        stats_file: &[u8],
    ) -> Result<(), QueryError> {
        if self.tables.contains_key(&dataset.name) {
            return Err(QueryError::DuplicateTable(dataset.name.clone()));
        }
        let histogram = self.decode_statistics(dataset.len(), stats_file)?;
        self.tables.insert(
            dataset.name.clone(),
            Table {
                dataset,
                stats: StatsState::Ready(histogram),
                rtree: OnceLock::new(),
            },
        );
        Ok(())
    }

    /// Like [`Catalog::register_with_statistics`], but unusable
    /// statistics (corrupt file, wrong family or grid, stale
    /// cardinality) do not fail the registration: the table is
    /// registered without statistics and answers estimates through the
    /// degradation ladder. Returns the recorded reason when statistics
    /// were unusable, `None` when they loaded cleanly.
    ///
    /// # Errors
    /// Only [`QueryError::DuplicateTable`] — statistics problems never
    /// error here.
    pub fn register_with_statistics_lenient(
        &mut self,
        dataset: Dataset,
        stats_file: &[u8],
    ) -> Result<Option<String>, QueryError> {
        if self.tables.contains_key(&dataset.name) {
            return Err(QueryError::DuplicateTable(dataset.name.clone()));
        }
        let (stats, reason) = match self.decode_statistics(dataset.len(), stats_file) {
            Ok(h) => (StatsState::Ready(h), None),
            Err(e) => {
                let reason = e.to_string();
                (
                    StatsState::Unavailable {
                        reason: reason.clone(),
                    },
                    Some(reason),
                )
            }
        };
        self.tables.insert(
            dataset.name.clone(),
            Table {
                dataset,
                stats,
                rtree: OnceLock::new(),
            },
        );
        Ok(reason)
    }

    /// Registers a dataset *without* building statistics: the table is
    /// degraded until statistics are installed by
    /// [`Catalog::open_stats_store`] from a compaction snapshot
    /// (`<table>.base`). Callers that find such a snapshot should prefer
    /// this over building statistics the snapshot will supersede, and
    /// over [`Catalog::register_with_statistics_lenient`] with the
    /// paired histogram (whose cardinality reflects folded mutations,
    /// not the registration source).
    ///
    /// # Errors
    /// Returns [`QueryError::DuplicateTable`] if the name is taken.
    pub fn register_deferred(&mut self, dataset: Dataset) -> Result<(), QueryError> {
        if self.tables.contains_key(&dataset.name) {
            return Err(QueryError::DuplicateTable(dataset.name.clone()));
        }
        self.tables.insert(
            dataset.name.clone(),
            Table {
                dataset,
                stats: StatsState::Unavailable {
                    reason: "statistics deferred to the statistics store \
                             (compaction snapshot not installed)"
                        .to_string(),
                },
                rtree: OnceLock::new(),
            },
        );
        Ok(())
    }

    /// Decodes and cross-checks a statistics file against this catalog's
    /// configuration and the cardinality of the dataset it is claimed to
    /// describe.
    pub(crate) fn decode_statistics(
        &self,
        expected_len: usize,
        stats_file: &[u8],
    ) -> Result<Box<dyn SpatialHistogram>, QueryError> {
        let histogram: Box<dyn SpatialHistogram> = match load_histogram(stats_file) {
            Ok(h) => h,
            // Legacy statistics predate the envelope: bare sparse GH.
            Err(_) => Box::new(GhHistogram::from_sparse_bytes(stats_file)?),
        };
        if histogram.kind() != self.config.kind {
            return Err(QueryError::Histogram(
                sj_histogram::HistogramError::KindMismatch {
                    left: histogram.kind(),
                    right: self.config.kind,
                },
            ));
        }
        let expected_grid = self.grid;
        if !histogram.grid().compatible(&expected_grid) {
            return Err(QueryError::Histogram(
                sj_histogram::HistogramError::GridMismatch {
                    left_level: histogram.grid().level(),
                    right_level: expected_grid.level(),
                },
            ));
        }
        if histogram.dataset_len() != expected_len {
            return Err(QueryError::Histogram(
                sj_histogram::HistogramError::corrupt(
                    sj_histogram::CorruptSection::Payload,
                    format!(
                        "statistics cover {} objects but the dataset has {expected_len}",
                        histogram.dataset_len(),
                    ),
                ),
            ));
        }
        Ok(histogram)
    }
}

#[cfg(test)]
mod persistence_tests {
    use super::*;
    use crate::error::QueryError;
    use sj_geo::Rect;

    fn tiny(name: &str, n: usize) -> Dataset {
        let rects = (0..n)
            .map(|i| {
                let t = (i as f64 + 0.5) / n as f64;
                Rect::centered(sj_geo::Point::new(t, t), 0.02, 0.02)
            })
            .collect();
        Dataset::new(name, Extent::unit(), rects)
    }

    #[test]
    fn save_and_reload_statistics_every_kind() {
        for kind in HistogramKind::ALL {
            let dir = std::env::temp_dir().join(format!("sj_query_stats_test_{kind}"));
            let mut c1 = Catalog::with_kind(kind, 4);
            c1.register(tiny("alpha", 40)).unwrap();
            c1.register(tiny("beta", 30)).unwrap();
            c1.save_statistics(&dir).unwrap();
            let baseline = c1.estimate_join_pairs("alpha", "beta").unwrap();

            let mut c2 = Catalog::with_kind(kind, 4);
            for name in ["alpha", "beta"] {
                let bytes = std::fs::read(dir.join(format!("{name}.hist"))).unwrap();
                c2.register_with_statistics(
                    tiny(name, if name == "alpha" { 40 } else { 30 }),
                    &bytes,
                )
                .unwrap();
            }
            assert_eq!(
                c2.estimate_join_pairs("alpha", "beta").unwrap(),
                baseline,
                "{kind}: reloaded statistics must estimate identically"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn legacy_sparse_gh_statistics_still_load() {
        let mut c1 = Catalog::with_level(4);
        c1.register(tiny("alpha", 40)).unwrap();
        let legacy = c1.gh_histogram("alpha").unwrap().to_sparse_bytes();

        let mut c2 = Catalog::with_level(4);
        c2.register_with_statistics(tiny("alpha", 40), &legacy)
            .unwrap();
        assert_eq!(
            c2.gh_histogram("alpha").unwrap().to_bytes(),
            c1.gh_histogram("alpha").unwrap().to_bytes(),
            "legacy sparse statistics must decode to the same histogram"
        );
    }

    #[test]
    fn stale_statistics_rejected() {
        let mut c = Catalog::with_level(4);
        c.register(tiny("alpha", 40)).unwrap();
        let bytes = c.histogram("alpha").unwrap().persist();

        // Wrong grid level.
        let mut other = Catalog::with_level(5);
        assert!(matches!(
            other.register_with_statistics(tiny("alpha", 40), &bytes),
            Err(QueryError::Histogram(
                sj_histogram::HistogramError::GridMismatch { .. }
            ))
        ));

        // Wrong family (catalog wants Euler statistics, file holds GH).
        let mut euler = Catalog::with_kind(HistogramKind::Euler, 4);
        assert!(matches!(
            euler.register_with_statistics(tiny("alpha", 40), &bytes),
            Err(QueryError::Histogram(
                sj_histogram::HistogramError::KindMismatch { .. }
            ))
        ));

        // Wrong cardinality (dataset changed since stats were taken).
        let mut same_grid = Catalog::with_level(4);
        assert!(matches!(
            same_grid.register_with_statistics(tiny("alpha", 41), &bytes),
            Err(QueryError::Histogram(
                sj_histogram::HistogramError::Corrupt { .. }
            ))
        ));

        // Garbage bytes.
        let mut fresh = Catalog::with_level(4);
        assert!(fresh
            .register_with_statistics(tiny("alpha", 40), b"nonsense")
            .is_err());
    }
}

#[cfg(test)]
mod degradation_tests {
    use super::*;
    use crate::degrade::{DegradationPolicy, EstimateTier};
    use sj_geo::Rect;

    fn tiny(name: &str, n: usize) -> Dataset {
        let rects = (0..n)
            .map(|i| {
                let t = (i as f64 + 0.5) / n as f64;
                Rect::centered(sj_geo::Point::new(t, t), 0.1, 0.1)
            })
            .collect();
        Dataset::new(name, Extent::unit(), rects)
    }

    /// Builds a catalog where "alpha" has deliberately corrupted GH
    /// statistics (registered leniently) and "beta" is healthy.
    fn degraded_catalog() -> Catalog {
        let mut source = Catalog::with_level(4);
        source.register(tiny("alpha", 40)).unwrap();
        let mut stats = source.histogram("alpha").unwrap().persist().to_vec();
        let mid = stats.len() / 2;
        stats[mid] ^= 0xFF; // bit-flip the payload: CRC must catch it

        let mut c = Catalog::with_level(4);
        let reason = c
            .register_with_statistics_lenient(tiny("alpha", 40), &stats)
            .unwrap();
        assert!(
            reason.as_deref().unwrap_or("").contains("corrupt"),
            "lenient registration must record the corruption reason, got {reason:?}"
        );
        c.register(tiny("beta", 30)).unwrap();
        c
    }

    #[test]
    fn healthy_catalog_serves_primary_tier() {
        let mut c = Catalog::with_level(4);
        c.register(tiny("a", 20)).unwrap();
        c.register(tiny("b", 20)).unwrap();
        let out = c
            .estimate_join_pairs_detailed("a", "b", &DegradationPolicy::default())
            .unwrap();
        assert_eq!(out.tier, EstimateTier::Primary(HistogramKind::Gh));
        assert!(out.skipped.is_empty());
        assert!(!out.is_degraded());
    }

    #[test]
    fn corrupt_statistics_fall_back_to_ph_rebuild() {
        let c = degraded_catalog();
        let out = c
            .estimate_join_pairs_detailed("alpha", "beta", &DegradationPolicy::default())
            .unwrap();
        assert_eq!(out.tier, EstimateTier::PhRebuild);
        assert_eq!(out.skipped.len(), 1);
        assert!(
            out.skipped[0].reason.contains("corrupt"),
            "{:?}",
            out.skipped
        );
        assert!(out.pairs > 0.0, "fallback must still estimate: {out:?}");
        // The plain API degrades transparently.
        assert!(c.estimate_join_pairs("alpha", "beta").unwrap() > 0.0);
    }

    /// Pinned: a corrupt GH file with PH rebuild disabled degrades to the
    /// parametric tier, with provenance naming the tier and the
    /// corruption reason.
    #[test]
    fn corrupt_gh_degrades_to_parametric_with_provenance() {
        let c = degraded_catalog();
        let policy = DegradationPolicy {
            allow_ph_rebuild: false,
            ..DegradationPolicy::default()
        };
        let out = c
            .estimate_join_pairs_detailed("alpha", "beta", &policy)
            .unwrap();
        assert_eq!(out.tier, EstimateTier::Parametric);
        assert_eq!(out.tier.name(), "parametric");
        let tiers: Vec<&str> = out.skipped.iter().map(|s| s.tier.name()).collect();
        assert_eq!(tiers, vec!["primary", "ph-rebuild"]);
        assert!(
            out.skipped[0].reason.contains("corrupt"),
            "provenance must carry the corruption reason: {:?}",
            out.skipped[0]
        );
        assert!(out.pairs > 0.0);
        assert!((0.0..=1.0).contains(&out.selectivity));
    }

    #[test]
    fn sampling_is_the_last_rung() {
        let c = degraded_catalog();
        let policy = DegradationPolicy {
            allow_ph_rebuild: false,
            allow_parametric: false,
            sampling_percent: Some(50.0),
            ..DegradationPolicy::default()
        };
        let out = c
            .estimate_join_pairs_detailed("alpha", "beta", &policy)
            .unwrap();
        assert_eq!(out.tier, EstimateTier::Sampling);
        assert_eq!(out.skipped.len(), 3);
        assert!(out.pairs > 0.0);
    }

    #[test]
    fn exhausted_ladder_is_a_typed_error() {
        let c = degraded_catalog();
        let err = c
            .estimate_join_pairs_detailed("alpha", "beta", &DegradationPolicy::primary_only())
            .unwrap_err();
        match err {
            QueryError::EstimatorsExhausted(detail) => {
                assert!(detail.contains("corrupt"), "{detail}");
                assert!(detail.contains("disabled by policy"), "{detail}");
            }
            other => panic!("expected EstimatorsExhausted, got {other:?}"),
        }
    }

    #[test]
    fn degraded_table_histogram_access_is_typed() {
        let c = degraded_catalog();
        assert!(matches!(
            c.histogram("alpha"),
            Err(QueryError::StatisticsUnavailable { .. })
        ));
        // Healthy tables are unaffected.
        assert!(c.histogram("beta").is_ok());
    }

    #[test]
    fn planning_with_degraded_table_warns_but_succeeds() {
        let c = degraded_catalog();
        let plan = c
            .plan(&crate::plan::ChainJoinQuery::new(["alpha", "beta"]))
            .unwrap();
        assert_eq!(plan.warnings.len(), 1, "{:?}", plan.warnings);
        assert!(
            plan.warnings[0].contains("ph-rebuild"),
            "{:?}",
            plan.warnings
        );
        assert!(
            format!("{plan}").contains("!!"),
            "Display must show warnings"
        );
        // The degraded plan still executes.
        assert!(plan.execute(&c).is_ok());
    }

    #[test]
    fn lenient_registration_with_good_stats_is_clean() {
        let mut source = Catalog::with_level(4);
        source.register(tiny("alpha", 40)).unwrap();
        let stats = source.histogram("alpha").unwrap().persist();

        let mut c = Catalog::with_level(4);
        let reason = c
            .register_with_statistics_lenient(tiny("alpha", 40), &stats)
            .unwrap();
        assert_eq!(reason, None);
        assert!(c.histogram("alpha").is_ok());
    }

    #[test]
    fn try_new_rejects_absurd_level() {
        let cfg = CatalogConfig {
            grid_level: Grid::MAX_LEVEL + 1,
            ..CatalogConfig::default()
        };
        assert!(matches!(
            Catalog::try_new(cfg),
            Err(QueryError::Histogram(
                sj_histogram::HistogramError::LevelTooLarge(_)
            ))
        ));
    }
}
