use sj_histogram::HistogramError;
use std::fmt;

/// Errors produced by the query engine.
///
/// `#[non_exhaustive]`: future PRs add failure modes without a semver
/// break; downstream matches keep a `_` arm.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum QueryError {
    /// The query references a table the catalog does not know.
    UnknownTable(String),
    /// A table with this name is already registered.
    DuplicateTable(String),
    /// A chain join needs at least two tables.
    TooFewTables(usize),
    /// Execution aborted because the intermediate result exceeded the
    /// configured tuple budget (the optimizer exists precisely to avoid
    /// plans like this).
    ResultTooLarge {
        /// Tuples materialized when the budget tripped.
        produced: usize,
        /// The configured budget.
        budget: usize,
    },
    /// An estimation failed (grid mismatch etc.).
    Histogram(HistogramError),
    /// A table registered leniently has no usable statistics (direct
    /// histogram access only — estimation degrades instead).
    StatisticsUnavailable {
        /// The degraded table.
        table: String,
        /// Why its statistics were rejected at registration.
        reason: String,
    },
    /// Every tier of the estimation ladder was disabled or failed; the
    /// string lists each skipped tier with its reason.
    EstimatorsExhausted(String),
    /// A delete batch referenced a rectangle the table does not
    /// currently contain; the whole batch is rejected without mutating
    /// anything (see [`crate::Catalog::apply_delta`]).
    DeleteNotFound {
        /// The table the batch targeted.
        table: String,
        /// Position of the unmatched rectangle within the delete batch.
        index: usize,
    },
    /// A filesystem operation failed (statistics directory, WAL append,
    /// compaction swap).
    Io(String),
    /// A tuple slot referenced an object id outside its dataset — a
    /// catalog-consistency bug (the dataset changed between planning and
    /// execution), surfaced as a typed error instead of a panic.
    TupleIdOutOfRange {
        /// The table whose dataset was indexed.
        table: String,
        /// The out-of-range object id.
        id: u64,
        /// The dataset's actual cardinality.
        len: usize,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::UnknownTable(name) => write!(f, "unknown table {name:?}"),
            QueryError::DuplicateTable(name) => {
                write!(f, "table {name:?} is already registered")
            }
            QueryError::TooFewTables(n) => {
                write!(f, "a chain join needs at least 2 tables, got {n}")
            }
            QueryError::ResultTooLarge { produced, budget } => write!(
                f,
                "intermediate result exceeded the tuple budget ({produced} > {budget})"
            ),
            QueryError::Histogram(e) => write!(f, "estimation failed: {e}"),
            QueryError::StatisticsUnavailable { table, reason } => {
                write!(f, "table {table:?} has no usable statistics: {reason}")
            }
            QueryError::EstimatorsExhausted(detail) => {
                write!(f, "no estimator tier could serve: {detail}")
            }
            QueryError::DeleteNotFound { table, index } => write!(
                f,
                "delete batch entry {index} matches no object in table {table:?}; \
                 nothing was applied"
            ),
            QueryError::Io(detail) => write!(f, "statistics I/O failure: {detail}"),
            QueryError::TupleIdOutOfRange { table, id, len } => write!(
                f,
                "tuple id {id} is out of range for table {table:?} (cardinality {len})"
            ),
        }
    }
}

impl std::error::Error for QueryError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            QueryError::Histogram(e) => Some(e),
            _ => None,
        }
    }
}

impl From<HistogramError> for QueryError {
    fn from(e: HistogramError) -> Self {
        QueryError::Histogram(e)
    }
}
