use serde::{Deserialize, Serialize};

/// A point in the 2-D plane.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a new point.
    #[must_use]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// Euclidean distance to another point.
    #[must_use]
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    /// Component-wise minimum of two points.
    #[must_use]
    pub fn min(&self, other: &Point) -> Point {
        Point::new(self.x.min(other.x), self.y.min(other.y))
    }

    /// Component-wise maximum of two points.
    #[must_use]
    pub fn max(&self, other: &Point) -> Point {
        Point::new(self.x.max(other.x), self.y.max(other.y))
    }

    /// Returns `true` if both coordinates are finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl From<(f64, f64)> for Point {
    fn from((x, y): (f64, f64)) -> Self {
        Point::new(x, y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_symmetric_and_zero_on_self() {
        let a = Point::new(1.0, 2.0);
        let b = Point::new(4.0, 6.0);
        assert_eq!(a.distance(&b), 5.0);
        assert_eq!(b.distance(&a), 5.0);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn min_max_are_componentwise() {
        let a = Point::new(1.0, 6.0);
        let b = Point::new(4.0, 2.0);
        assert_eq!(a.min(&b), Point::new(1.0, 2.0));
        assert_eq!(a.max(&b), Point::new(4.0, 6.0));
    }

    #[test]
    fn from_tuple() {
        let p: Point = (3.0, -1.5).into();
        assert_eq!(p, Point::new(3.0, -1.5));
    }

    #[test]
    fn finiteness() {
        assert!(Point::new(0.0, 0.0).is_finite());
        assert!(!Point::new(f64::NAN, 0.0).is_finite());
        assert!(!Point::new(0.0, f64::INFINITY).is_finite());
    }
}
