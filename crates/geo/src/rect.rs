use crate::Point;
use serde::{Deserialize, Serialize};

/// An axis-parallel rectangle: the Minimum Bounding Rectangle (MBR) of a
/// spatial object.
///
/// Invariant: `xlo <= xhi` and `ylo <= yhi` (enforced by [`Rect::new`]).
/// Degenerate rectangles (`xlo == xhi` and/or `ylo == yhi`) are valid and
/// represent points or axis-parallel line segments.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    /// Left edge.
    pub xlo: f64,
    /// Bottom edge.
    pub ylo: f64,
    /// Right edge.
    pub xhi: f64,
    /// Top edge.
    pub yhi: f64,
}

/// A horizontal edge (top or bottom side) of an MBR: a segment
/// `[xlo, xhi]` at height `y`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HEdge {
    /// Left endpoint.
    pub xlo: f64,
    /// Right endpoint.
    pub xhi: f64,
    /// Height of the segment.
    pub y: f64,
}

/// A vertical edge (left or right side) of an MBR: a segment
/// `[ylo, yhi]` at abscissa `x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VEdge {
    /// Bottom endpoint.
    pub ylo: f64,
    /// Top endpoint.
    pub yhi: f64,
    /// Abscissa of the segment.
    pub x: f64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates, normalizing the
    /// ordering so the invariant holds regardless of argument order.
    #[must_use]
    pub fn new(x0: f64, y0: f64, x1: f64, y1: f64) -> Self {
        Self {
            xlo: x0.min(x1),
            ylo: y0.min(y1),
            xhi: x0.max(x1),
            yhi: y0.max(y1),
        }
    }

    /// Creates a degenerate rectangle covering a single point.
    #[must_use]
    pub fn from_point(p: Point) -> Self {
        Self {
            xlo: p.x,
            ylo: p.y,
            xhi: p.x,
            yhi: p.y,
        }
    }

    /// Creates a rectangle from its center and full side lengths.
    #[must_use]
    pub fn centered(center: Point, width: f64, height: f64) -> Self {
        debug_assert!(width >= 0.0 && height >= 0.0);
        Self::new(
            center.x - width / 2.0,
            center.y - height / 2.0,
            center.x + width / 2.0,
            center.y + height / 2.0,
        )
    }

    /// The minimum bounding rectangle of a set of rectangles, or `None` for
    /// an empty iterator.
    pub fn mbr_of<I: IntoIterator<Item = Rect>>(rects: I) -> Option<Rect> {
        let mut it = rects.into_iter();
        let first = it.next()?;
        Some(it.fold(first, |acc, r| acc.union(&r)))
    }

    /// Width (`>= 0`).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.xhi - self.xlo
    }

    /// Height (`>= 0`).
    #[must_use]
    pub fn height(&self) -> f64 {
        self.yhi - self.ylo
    }

    /// Area (`>= 0`; zero for degenerate rectangles).
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width() * self.height()
    }

    /// Half-perimeter, the R-tree "margin" metric.
    #[must_use]
    pub fn margin(&self) -> f64 {
        self.width() + self.height()
    }

    /// Center point.
    #[must_use]
    pub fn center(&self) -> Point {
        Point::new((self.xlo + self.xhi) / 2.0, (self.ylo + self.yhi) / 2.0)
    }

    /// `true` if the rectangle has zero width or zero height.
    #[must_use]
    pub fn is_degenerate(&self) -> bool {
        self.width() == 0.0 || self.height() == 0.0
    }

    /// `true` if all coordinates are finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.xlo.is_finite() && self.ylo.is_finite() && self.xhi.is_finite() && self.yhi.is_finite()
    }

    /// Closed-interval intersection test: touching rectangles intersect.
    ///
    /// This is the spatial join predicate for the filter step.
    #[must_use]
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        self.xlo <= other.xhi
            && other.xlo <= self.xhi
            && self.ylo <= other.yhi
            && other.ylo <= self.yhi
    }

    /// `true` if `other` lies entirely within `self` (closed containment).
    #[must_use]
    #[inline]
    pub fn contains(&self, other: &Rect) -> bool {
        self.xlo <= other.xlo
            && other.xhi <= self.xhi
            && self.ylo <= other.ylo
            && other.yhi <= self.yhi
    }

    /// `true` if the point lies within the closed rectangle.
    #[must_use]
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.xlo <= p.x && p.x <= self.xhi && self.ylo <= p.y && p.y <= self.yhi
    }

    /// The intersection rectangle, or `None` if the rectangles are disjoint.
    ///
    /// Touching rectangles produce a degenerate (zero-area) intersection.
    #[must_use]
    pub fn intersection(&self, other: &Rect) -> Option<Rect> {
        if !self.intersects(other) {
            return None;
        }
        Some(Rect {
            xlo: self.xlo.max(other.xlo),
            ylo: self.ylo.max(other.ylo),
            xhi: self.xhi.min(other.xhi),
            yhi: self.yhi.min(other.yhi),
        })
    }

    /// Area of the intersection, `0.0` when disjoint.
    #[must_use]
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        let w = (self.xhi.min(other.xhi) - self.xlo.max(other.xlo)).max(0.0);
        let h = (self.yhi.min(other.yhi) - self.ylo.max(other.ylo)).max(0.0);
        w * h
    }

    /// The smallest rectangle covering both `self` and `other`.
    #[must_use]
    pub fn union(&self, other: &Rect) -> Rect {
        Rect {
            xlo: self.xlo.min(other.xlo),
            ylo: self.ylo.min(other.ylo),
            xhi: self.xhi.max(other.xhi),
            yhi: self.yhi.max(other.yhi),
        }
    }

    /// Area increase needed to enlarge `self` to cover `other`
    /// (the Guttman insertion heuristic).
    #[must_use]
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// The four corner points, in (lo,lo), (lo,hi), (hi,lo), (hi,hi) order.
    ///
    /// Degenerate rectangles return coincident corners — deliberately, so
    /// that the Geometric Histogram's intersection-point accounting stays
    /// unbiased for point data (every pairwise MBR intersection contributes
    /// exactly four corner/crossing points, coincident or not).
    #[must_use]
    pub fn corners(&self) -> [Point; 4] {
        [
            Point::new(self.xlo, self.ylo),
            Point::new(self.xlo, self.yhi),
            Point::new(self.xhi, self.ylo),
            Point::new(self.xhi, self.yhi),
        ]
    }

    /// The two horizontal edges (bottom, top).
    #[must_use]
    pub fn h_edges(&self) -> [HEdge; 2] {
        [
            HEdge {
                xlo: self.xlo,
                xhi: self.xhi,
                y: self.ylo,
            },
            HEdge {
                xlo: self.xlo,
                xhi: self.xhi,
                y: self.yhi,
            },
        ]
    }

    /// The two vertical edges (left, right).
    #[must_use]
    pub fn v_edges(&self) -> [VEdge; 2] {
        [
            VEdge {
                ylo: self.ylo,
                yhi: self.yhi,
                x: self.xlo,
            },
            VEdge {
                ylo: self.ylo,
                yhi: self.yhi,
                x: self.xhi,
            },
        ]
    }

    /// Translates the rectangle by `(dx, dy)`.
    #[must_use]
    pub fn translated(&self, dx: f64, dy: f64) -> Rect {
        Rect {
            xlo: self.xlo + dx,
            ylo: self.ylo + dy,
            xhi: self.xhi + dx,
            yhi: self.yhi + dy,
        }
    }

    /// Scales the rectangle about the origin by `(sx, sy)`.
    #[must_use]
    pub fn scaled(&self, sx: f64, sy: f64) -> Rect {
        Rect::new(self.xlo * sx, self.ylo * sy, self.xhi * sx, self.yhi * sy)
    }
}

impl HEdge {
    /// Length of the edge.
    #[must_use]
    pub fn len(&self) -> f64 {
        self.xhi - self.xlo
    }

    /// `true` for zero-length edges (point MBRs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0.0
    }

    /// `true` if any part of this segment lies within the closed rectangle.
    #[must_use]
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        r.ylo <= self.y && self.y <= r.yhi && self.xlo <= r.xhi && r.xlo <= self.xhi
    }

    /// Length of the portion of this segment inside the closed rectangle
    /// (`0.0` when outside; degenerate overlap counts as `0.0` length but
    /// still *intersects*).
    #[must_use]
    pub fn clipped_len(&self, r: &Rect) -> f64 {
        if !(r.ylo <= self.y && self.y <= r.yhi) {
            return 0.0;
        }
        (self.xhi.min(r.xhi) - self.xlo.max(r.xlo)).max(0.0)
    }

    /// `true` if this horizontal segment crosses the vertical segment `v`
    /// (closed-interval test; touching endpoints count).
    #[must_use]
    pub fn crosses(&self, v: &VEdge) -> bool {
        self.xlo <= v.x && v.x <= self.xhi && v.ylo <= self.y && self.y <= v.yhi
    }
}

impl VEdge {
    /// Length of the edge.
    #[must_use]
    pub fn len(&self) -> f64 {
        self.yhi - self.ylo
    }

    /// `true` for zero-length edges (point MBRs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0.0
    }

    /// `true` if any part of this segment lies within the closed rectangle.
    #[must_use]
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        r.xlo <= self.x && self.x <= r.xhi && self.ylo <= r.yhi && r.ylo <= self.yhi
    }

    /// Length of the portion of this segment inside the closed rectangle.
    #[must_use]
    pub fn clipped_len(&self, r: &Rect) -> f64 {
        if !(r.xlo <= self.x && self.x <= r.xhi) {
            return 0.0;
        }
        (self.yhi.min(r.yhi) - self.ylo.max(r.ylo)).max(0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use proptest::prelude::*;

    fn r(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new(x0, y0, x1, y1)
    }

    #[test]
    fn new_normalizes_corner_order() {
        let a = r(3.0, 4.0, 1.0, 2.0);
        assert_eq!(
            a,
            Rect {
                xlo: 1.0,
                ylo: 2.0,
                xhi: 3.0,
                yhi: 4.0
            }
        );
    }

    #[test]
    fn basic_measures() {
        let a = r(1.0, 2.0, 4.0, 6.0);
        assert_eq!(a.width(), 3.0);
        assert_eq!(a.height(), 4.0);
        assert_eq!(a.area(), 12.0);
        assert_eq!(a.margin(), 7.0);
        assert_eq!(a.center(), Point::new(2.5, 4.0));
        assert!(!a.is_degenerate());
        assert!(Rect::from_point(Point::new(1.0, 1.0)).is_degenerate());
    }

    #[test]
    fn intersection_is_closed_touching_counts() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.0, 0.0, 2.0, 1.0); // shares the x = 1 edge
        assert!(a.intersects(&b));
        let i = a.intersection(&b).unwrap();
        assert_eq!(i.area(), 0.0);
        assert!(i.is_degenerate());

        let c = r(1.0, 1.0, 2.0, 2.0); // shares only the corner (1,1)
        assert!(a.intersects(&c));
        assert_eq!(a.intersection_area(&c), 0.0);
    }

    #[test]
    fn disjoint_rectangles_do_not_intersect() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(1.1, 0.0, 2.0, 1.0);
        assert!(!a.intersects(&b));
        assert!(a.intersection(&b).is_none());
        assert_eq!(a.intersection_area(&b), 0.0);
    }

    #[test]
    fn containment() {
        let outer = r(0.0, 0.0, 10.0, 10.0);
        let inner = r(2.0, 2.0, 3.0, 3.0);
        assert!(outer.contains(&inner));
        assert!(!inner.contains(&outer));
        assert!(outer.contains(&outer), "containment is reflexive (closed)");
        assert!(
            outer.contains_point(&Point::new(0.0, 0.0)),
            "boundary points contained"
        );
        assert!(!outer.contains_point(&Point::new(-0.1, 5.0)));
    }

    #[test]
    fn union_and_enlargement() {
        let a = r(0.0, 0.0, 1.0, 1.0);
        let b = r(2.0, 2.0, 3.0, 3.0);
        let u = a.union(&b);
        assert_eq!(u, r(0.0, 0.0, 3.0, 3.0));
        assert!(approx_eq(a.enlargement(&b), 9.0 - 1.0));
        assert_eq!(a.enlargement(&a), 0.0);
    }

    #[test]
    fn mbr_of_collection() {
        assert!(Rect::mbr_of(std::iter::empty()).is_none());
        let m = Rect::mbr_of(vec![r(0.0, 0.0, 1.0, 1.0), r(-1.0, 2.0, 0.5, 3.0)]).unwrap();
        assert_eq!(m, r(-1.0, 0.0, 1.0, 3.0));
    }

    #[test]
    fn corners_and_edges_of_degenerate_rect() {
        let p = Rect::from_point(Point::new(2.0, 3.0));
        let cs = p.corners();
        assert!(
            cs.iter().all(|c| *c == Point::new(2.0, 3.0)),
            "4 coincident corners"
        );
        assert!(p.h_edges().iter().all(HEdge::is_empty));
        assert!(p.v_edges().iter().all(VEdge::is_empty));
    }

    #[test]
    fn edge_clipping() {
        let cell = r(0.0, 0.0, 1.0, 1.0);
        let h = HEdge {
            xlo: -0.5,
            xhi: 0.5,
            y: 0.25,
        };
        assert!(h.intersects_rect(&cell));
        assert!(approx_eq(h.clipped_len(&cell), 0.5));

        let h_outside = HEdge {
            xlo: -0.5,
            xhi: 0.5,
            y: 2.0,
        };
        assert!(!h_outside.intersects_rect(&cell));
        assert_eq!(h_outside.clipped_len(&cell), 0.0);

        let v = VEdge {
            ylo: 0.9,
            yhi: 3.0,
            x: 1.0,
        }; // on the right boundary
        assert!(v.intersects_rect(&cell));
        assert!(approx_eq(v.clipped_len(&cell), 0.1));
    }

    #[test]
    fn edge_crossing() {
        let h = HEdge {
            xlo: 0.0,
            xhi: 2.0,
            y: 1.0,
        };
        let v = VEdge {
            ylo: 0.0,
            yhi: 2.0,
            x: 1.0,
        };
        assert!(h.crosses(&v));
        let v_far = VEdge {
            ylo: 1.5,
            yhi: 2.0,
            x: 1.0,
        };
        assert!(!h.crosses(&v_far));
        // Touching at an endpoint counts (closed semantics).
        let v_touch = VEdge {
            ylo: 1.0,
            yhi: 2.0,
            x: 2.0,
        };
        assert!(h.crosses(&v_touch));
    }

    #[test]
    fn translate_scale() {
        let a = r(1.0, 1.0, 2.0, 3.0);
        assert_eq!(a.translated(1.0, -1.0), r(2.0, 0.0, 3.0, 2.0));
        assert_eq!(a.scaled(2.0, 0.5), r(2.0, 0.5, 4.0, 1.5));
    }

    /// The number of "intersection points" between two intersecting MBRs is
    /// always exactly 4 = (corners of a in b) + (corners of b in a) +
    /// (h-edge of a × v-edge of b crossings) + (h-edge of b × v-edge of a
    /// crossings), for rectangles in *general position* (no shared
    /// coordinates). This is the identity underlying the Geometric
    /// Histogram (paper Figure 2).
    fn intersection_points(a: &Rect, b: &Rect) -> usize {
        let corners_in =
            |r1: &Rect, r2: &Rect| r1.corners().iter().filter(|c| r2.contains_point(c)).count();
        let crossings = |r1: &Rect, r2: &Rect| {
            r1.h_edges()
                .iter()
                .map(|h| r2.v_edges().iter().filter(|v| h.crosses(v)).count())
                .sum::<usize>()
        };
        corners_in(a, b) + corners_in(b, a) + crossings(a, b) + crossings(b, a)
    }

    proptest! {
        #[test]
        fn prop_intersection_commutes(
            (ax0, ay0, ax1, ay1) in (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64),
            (bx0, by0, bx1, by1) in (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64),
        ) {
            let a = Rect::new(ax0, ay0, ax1, ay1);
            let b = Rect::new(bx0, by0, bx1, by1);
            prop_assert_eq!(a.intersects(&b), b.intersects(&a));
            prop_assert_eq!(a.intersection(&b), b.intersection(&a));
            prop_assert!(approx_eq(a.intersection_area(&b), b.intersection_area(&a)));
        }

        #[test]
        fn prop_intersection_contained_in_both(
            (ax0, ay0, ax1, ay1) in (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64),
            (bx0, by0, bx1, by1) in (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64),
        ) {
            let a = Rect::new(ax0, ay0, ax1, ay1);
            let b = Rect::new(bx0, by0, bx1, by1);
            if let Some(i) = a.intersection(&b) {
                prop_assert!(a.contains(&i));
                prop_assert!(b.contains(&i));
                prop_assert!(approx_eq(i.area(), a.intersection_area(&b)));
            }
        }

        #[test]
        fn prop_union_contains_both(
            (ax0, ay0, ax1, ay1) in (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64),
            (bx0, by0, bx1, by1) in (0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64, 0.0..1.0f64),
        ) {
            let a = Rect::new(ax0, ay0, ax1, ay1);
            let b = Rect::new(bx0, by0, bx1, by1);
            let u = a.union(&b);
            prop_assert!(u.contains(&a));
            prop_assert!(u.contains(&b));
            prop_assert!(u.area() + 1e-12 >= a.area().max(b.area()));
        }

        /// The Geometric Histogram identity: intersecting MBRs in general
        /// position have exactly 4 intersection points; disjoint MBRs 0.
        #[test]
        fn prop_four_intersection_points(
            // Distinct, irregular coordinates make general position
            // overwhelmingly likely; we skip the measure-zero exceptions.
            xs in proptest::collection::vec(0.0..1.0f64, 4),
            ys in proptest::collection::vec(0.0..1.0f64, 4),
        ) {
            let distinct = |v: &[f64]| {
                let mut s = v.to_vec();
                s.sort_by(f64::total_cmp);
                s.windows(2).all(|w| w[0] != w[1])
            };
            prop_assume!(distinct(&xs) && distinct(&ys));
            let a = Rect::new(xs[0], ys[0], xs[1], ys[1]);
            let b = Rect::new(xs[2], ys[2], xs[3], ys[3]);
            let expected = if a.intersects(&b) { 4 } else { 0 };
            prop_assert_eq!(intersection_points(&a, &b), expected);
        }
    }
}
