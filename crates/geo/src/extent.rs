use crate::{Point, Rect};
use serde::{Deserialize, Serialize};

/// The spatial universe a dataset lives in.
///
/// All histogram schemes grid the extent into `2^h × 2^h` equi-sized cells.
/// The extent also defines the area `A` used by the parametric model
/// (paper Eq. 1) and normalizes world coordinates into unit coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Extent {
    rect: Rect,
}

impl Extent {
    /// The unit square `[0,1] × [0,1]`, the extent used by the paper's
    /// synthetic datasets.
    #[must_use]
    pub fn unit() -> Self {
        Self {
            rect: Rect::new(0.0, 0.0, 1.0, 1.0),
        }
    }

    /// Creates an extent from an explicit rectangle.
    ///
    /// # Panics
    /// Panics if the rectangle is degenerate or non-finite: a universe must
    /// have positive area for selectivity formulas to be well defined.
    #[must_use]
    pub fn new(rect: Rect) -> Self {
        assert!(rect.is_finite(), "extent must be finite");
        assert!(rect.area() > 0.0, "extent must have positive area");
        Self { rect }
    }

    /// Computes the extent of a set of MBRs, slightly padded so that every
    /// object is strictly inside (avoids last-row boundary pile-ups when
    /// gridding). Returns `None` for an empty input.
    #[must_use]
    pub fn of_rects(rects: &[Rect]) -> Option<Self> {
        let mbr = Rect::mbr_of(rects.iter().copied())?;
        // Pad degenerate dimensions so the extent has positive area, and
        // add a hair of slack so max-coordinate objects do not straddle
        // the closing boundary of the last grid cell ambiguously.
        let pad_x = (mbr.width().max(mbr.height()).max(1.0)) * 1e-9;
        let pad_y = pad_x;
        let w = if mbr.width() > 0.0 { 0.0 } else { 0.5 };
        let h = if mbr.height() > 0.0 { 0.0 } else { 0.5 };
        Some(Self::new(Rect::new(
            mbr.xlo - pad_x - w,
            mbr.ylo - pad_y - h,
            mbr.xhi + pad_x + w,
            mbr.yhi + pad_y + h,
        )))
    }

    /// Computes the joint extent of two datasets (the join universe).
    #[must_use]
    pub fn of_datasets(a: &[Rect], b: &[Rect]) -> Option<Self> {
        match (Self::of_rects(a), Self::of_rects(b)) {
            (Some(ea), Some(eb)) => Some(Self::new(ea.rect.union(&eb.rect))),
            (Some(e), None) | (None, Some(e)) => Some(e),
            (None, None) => None,
        }
    }

    /// The underlying rectangle.
    #[must_use]
    pub fn rect(&self) -> Rect {
        self.rect
    }

    /// Area `A` of the universe (paper Eq. 1).
    #[must_use]
    pub fn area(&self) -> f64 {
        self.rect.area()
    }

    /// Width of the universe.
    #[must_use]
    pub fn width(&self) -> f64 {
        self.rect.width()
    }

    /// Height of the universe.
    #[must_use]
    pub fn height(&self) -> f64 {
        self.rect.height()
    }

    /// Maps a world point into `[0,1]²` (values outside the extent map
    /// outside the unit square and are clamped by callers that need it).
    #[must_use]
    pub fn normalize(&self, p: Point) -> Point {
        Point::new(
            (p.x - self.rect.xlo) / self.rect.width(),
            (p.y - self.rect.ylo) / self.rect.height(),
        )
    }

    /// Maps a unit-square point back into world coordinates.
    #[must_use]
    pub fn denormalize(&self, p: Point) -> Point {
        Point::new(
            self.rect.xlo + p.x * self.rect.width(),
            self.rect.ylo + p.y * self.rect.height(),
        )
    }

    /// `true` if the MBR lies fully inside the closed extent.
    #[must_use]
    pub fn contains(&self, r: &Rect) -> bool {
        self.rect.contains(r)
    }
}

impl Default for Extent {
    fn default() -> Self {
        Self::unit()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn unit_extent() {
        let e = Extent::unit();
        assert_eq!(e.area(), 1.0);
        assert_eq!(e.width(), 1.0);
        assert_eq!(e.height(), 1.0);
    }

    #[test]
    #[should_panic(expected = "positive area")]
    fn degenerate_extent_rejected() {
        let _ = Extent::new(Rect::new(0.0, 0.0, 0.0, 1.0));
    }

    #[test]
    fn of_rects_covers_all_and_pads() {
        let rects = vec![
            Rect::new(0.0, 0.0, 1.0, 1.0),
            Rect::new(5.0, -2.0, 6.0, 3.0),
        ];
        let e = Extent::of_rects(&rects).unwrap();
        for r in &rects {
            assert!(e.contains(r));
        }
        assert!(e.area() > 0.0);
    }

    #[test]
    fn of_rects_handles_all_points() {
        // A pure point dataset on a single vertical line: extent must still
        // have positive area.
        let rects: Vec<Rect> = (0..10)
            .map(|i| Rect::from_point(Point::new(2.0, f64::from(i))))
            .collect();
        let e = Extent::of_rects(&rects).unwrap();
        assert!(e.area() > 0.0);
        for r in &rects {
            assert!(e.contains(r));
        }
    }

    #[test]
    fn of_rects_empty_is_none() {
        assert!(Extent::of_rects(&[]).is_none());
    }

    #[test]
    fn of_datasets_unions() {
        let a = vec![Rect::new(0.0, 0.0, 1.0, 1.0)];
        let b = vec![Rect::new(10.0, 10.0, 11.0, 11.0)];
        let e = Extent::of_datasets(&a, &b).unwrap();
        assert!(e.contains(&a[0]));
        assert!(e.contains(&b[0]));
        assert!(Extent::of_datasets(&[], &[]).is_none());
        assert!(Extent::of_datasets(&a, &[]).is_some());
    }

    #[test]
    fn normalize_roundtrip() {
        let e = Extent::new(Rect::new(-10.0, 5.0, 30.0, 25.0));
        let p = Point::new(2.5, 7.0);
        let n = e.normalize(p);
        assert!((0.0..=1.0).contains(&n.x));
        assert!((0.0..=1.0).contains(&n.y));
        let back = e.denormalize(n);
        assert!(approx_eq(back.x, p.x));
        assert!(approx_eq(back.y, p.y));
    }
}
