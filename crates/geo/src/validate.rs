//! Ingestion-time validation of raw rectangle coordinates.
//!
//! Parsers hand the *raw* corner fields (pre-normalization) to
//! [`apply_policy`]; [`Rect::new`] silently reorders inverted corners, so
//! inversion can only be detected before construction. The policy decides
//! whether an invalid record aborts ingestion ([`ValidationPolicy::Strict`]),
//! is fixed up where possible ([`ValidationPolicy::Repair`]), or is dropped
//! ([`ValidationPolicy::Skip`]).

use crate::{Extent, Rect};
use std::fmt;

/// How ingestion treats an invalid raw rectangle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidationPolicy {
    /// Reject the whole dataset on the first invalid record (default).
    #[default]
    Strict,
    /// Fix records where a fix is well-defined: reorder inverted corners,
    /// clamp out-of-extent coordinates into the extent. Non-finite
    /// coordinates have no meaningful repair and are dropped.
    Repair,
    /// Drop every invalid record and keep going.
    Skip,
}

impl ValidationPolicy {
    /// Parses a policy name as used by CLI flags.
    ///
    /// # Errors
    /// Returns the offending string when it names no policy.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "strict" => Ok(Self::Strict),
            "repair" => Ok(Self::Repair),
            "skip" => Ok(Self::Skip),
            other => Err(format!(
                "unknown validation policy {other:?} (expected strict, repair or skip)"
            )),
        }
    }

    /// The canonical CLI name of the policy.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Strict => "strict",
            Self::Repair => "repair",
            Self::Skip => "skip",
        }
    }
}

/// A defect found in one raw rectangle record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RectIssue {
    /// A coordinate is NaN or infinite; `field` names it (`"xlo"`…).
    NonFinite {
        /// Name of the offending field.
        field: &'static str,
    },
    /// The raw corners are inverted on an axis (`'x'` or `'y'`).
    Inverted {
        /// Axis whose lo/hi fields are swapped.
        axis: char,
    },
    /// The rectangle lies (partly) outside the declared extent.
    OutOfExtent,
}

impl fmt::Display for RectIssue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::NonFinite { field } => write!(f, "non-finite coordinate in field {field}"),
            Self::Inverted { axis } => write!(f, "inverted corners on the {axis} axis"),
            Self::OutOfExtent => write!(f, "rectangle outside the declared extent"),
        }
    }
}

/// Running totals of one validated ingestion pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ValidationReport {
    /// Records inspected.
    pub checked: usize,
    /// Records accepted unchanged.
    pub accepted: usize,
    /// Records fixed up under [`ValidationPolicy::Repair`].
    pub repaired: usize,
    /// Records dropped under [`ValidationPolicy::Repair`] (unrepairable)
    /// or [`ValidationPolicy::Skip`].
    pub skipped: usize,
}

/// Checks the raw corner fields of one record, in increasing order of
/// repairability: non-finite first, then inversion, then extent bounds.
///
/// # Errors
/// Returns the first [`RectIssue`] found; `Ok` means the fields already
/// form a valid rectangle (inside `extent`, when one is declared).
pub fn check_raw_rect(
    (xlo, ylo, xhi, yhi): (f64, f64, f64, f64),
    extent: Option<&Extent>,
) -> Result<(), RectIssue> {
    for (field, v) in [("xlo", xlo), ("ylo", ylo), ("xhi", xhi), ("yhi", yhi)] {
        if !v.is_finite() {
            return Err(RectIssue::NonFinite { field });
        }
    }
    if xhi < xlo {
        return Err(RectIssue::Inverted { axis: 'x' });
    }
    if yhi < ylo {
        return Err(RectIssue::Inverted { axis: 'y' });
    }
    if let Some(e) = extent {
        let er = e.rect();
        if xlo < er.xlo || ylo < er.ylo || xhi > er.xhi || yhi > er.yhi {
            return Err(RectIssue::OutOfExtent);
        }
    }
    Ok(())
}

/// What [`apply_policy`] decided about one record.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Validated {
    /// The record was valid as-is.
    Accepted(Rect),
    /// The record was invalid and fixed up (`Repair`).
    Repaired(Rect),
    /// The record was invalid and dropped (`Skip`, or unrepairable under
    /// `Repair`).
    Skipped(RectIssue),
}

/// Applies `policy` to the raw corner fields of one record.
///
/// # Errors
/// Under [`ValidationPolicy::Strict`], any issue is returned as an error;
/// the other policies never error.
pub fn apply_policy(
    policy: ValidationPolicy,
    raw: (f64, f64, f64, f64),
    extent: Option<&Extent>,
) -> Result<Validated, RectIssue> {
    match check_raw_rect(raw, extent) {
        Ok(()) => {
            let (xlo, ylo, xhi, yhi) = raw;
            Ok(Validated::Accepted(Rect { xlo, ylo, xhi, yhi }))
        }
        Err(issue) => match policy {
            ValidationPolicy::Strict => Err(issue),
            ValidationPolicy::Skip => Ok(Validated::Skipped(issue)),
            ValidationPolicy::Repair => {
                if matches!(issue, RectIssue::NonFinite { .. }) {
                    return Ok(Validated::Skipped(issue));
                }
                let (xlo, ylo, xhi, yhi) = raw;
                let mut r = Rect::new(xlo, ylo, xhi, yhi); // reorders corners
                if let Some(e) = extent {
                    let er = e.rect();
                    r = Rect {
                        xlo: r.xlo.clamp(er.xlo, er.xhi),
                        ylo: r.ylo.clamp(er.ylo, er.yhi),
                        xhi: r.xhi.clamp(er.xlo, er.xhi),
                        yhi: r.yhi.clamp(er.ylo, er.yhi),
                    };
                }
                Ok(Validated::Repaired(r))
            }
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_rect_accepted_under_every_policy() {
        for policy in [
            ValidationPolicy::Strict,
            ValidationPolicy::Repair,
            ValidationPolicy::Skip,
        ] {
            let v = apply_policy(policy, (0.1, 0.2, 0.3, 0.4), Some(&Extent::unit())).unwrap();
            assert_eq!(v, Validated::Accepted(Rect::new(0.1, 0.2, 0.3, 0.4)));
        }
    }

    #[test]
    fn non_finite_names_the_field() {
        let err = check_raw_rect((0.0, f64::NAN, 1.0, 1.0), None).unwrap_err();
        assert_eq!(err, RectIssue::NonFinite { field: "ylo" });
        let err = check_raw_rect((0.0, 0.0, f64::INFINITY, 1.0), None).unwrap_err();
        assert_eq!(err, RectIssue::NonFinite { field: "xhi" });
    }

    #[test]
    fn inversion_detected_per_axis() {
        assert_eq!(
            check_raw_rect((0.9, 0.0, 0.1, 1.0), None).unwrap_err(),
            RectIssue::Inverted { axis: 'x' }
        );
        assert_eq!(
            check_raw_rect((0.0, 0.9, 1.0, 0.1), None).unwrap_err(),
            RectIssue::Inverted { axis: 'y' }
        );
    }

    #[test]
    fn out_of_extent_requires_declared_extent() {
        let raw = (-0.5, 0.0, 0.5, 0.5);
        assert!(check_raw_rect(raw, None).is_ok());
        assert_eq!(
            check_raw_rect(raw, Some(&Extent::unit())).unwrap_err(),
            RectIssue::OutOfExtent
        );
    }

    #[test]
    fn strict_rejects_repair_fixes_skip_drops() {
        let inverted = (0.9, 0.0, 0.1, 1.0);
        assert!(apply_policy(ValidationPolicy::Strict, inverted, None).is_err());
        assert_eq!(
            apply_policy(ValidationPolicy::Repair, inverted, None).unwrap(),
            Validated::Repaired(Rect::new(0.1, 0.0, 0.9, 1.0))
        );
        assert!(matches!(
            apply_policy(ValidationPolicy::Skip, inverted, None).unwrap(),
            Validated::Skipped(RectIssue::Inverted { axis: 'x' })
        ));
    }

    #[test]
    fn repair_clamps_out_of_extent() {
        let v = apply_policy(
            ValidationPolicy::Repair,
            (-0.5, 0.2, 1.5, 0.8),
            Some(&Extent::unit()),
        )
        .unwrap();
        assert_eq!(v, Validated::Repaired(Rect::new(0.0, 0.2, 1.0, 0.8)));
    }

    #[test]
    fn repair_cannot_fix_nan() {
        let v = apply_policy(ValidationPolicy::Repair, (f64::NAN, 0.0, 1.0, 1.0), None).unwrap();
        assert!(matches!(
            v,
            Validated::Skipped(RectIssue::NonFinite { field: "xlo" })
        ));
    }

    #[test]
    fn policy_names_roundtrip() {
        for policy in [
            ValidationPolicy::Strict,
            ValidationPolicy::Repair,
            ValidationPolicy::Skip,
        ] {
            assert_eq!(ValidationPolicy::parse(policy.name()).unwrap(), policy);
        }
        assert!(ValidationPolicy::parse("lenient").is_err());
    }
}
