//! 2-D geometry primitives for spatial join selectivity estimation.
//!
//! This crate provides the shared geometric substrate used by every other
//! crate in the workspace:
//!
//! * [`Point`] — a 2-D point.
//! * [`Rect`] — an axis-parallel rectangle, the Minimum Bounding Rectangle
//!   (MBR) abstraction of a spatial object. All join predicates in the
//!   workspace operate on MBRs, mirroring the *filter step* of spatial join
//!   processing (Orenstein, 1986).
//! * [`Extent`] — the spatial universe a dataset lives in, with helpers to
//!   normalize coordinates and to compute the universe of a set of MBRs.
//! * [`HEdge`] / [`VEdge`] — the horizontal/vertical edges of an MBR, used
//!   by the Geometric Histogram scheme, which counts edge crossings and
//!   corner containments.
//!
//! # Conventions
//!
//! * Rectangle intersection is **closed**: two MBRs that merely touch (share
//!   a boundary point) are considered intersecting. This matches the filter
//!   step semantics used by R-tree joins.
//! * Degenerate rectangles (zero width and/or height) are first-class: point
//!   datasets are represented as zero-extent MBRs. A degenerate MBR still
//!   has four (coincident) corners and four (zero-length) edges, which keeps
//!   the Geometric Histogram's "intersection points / 4" identity unbiased.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod extent;
mod point;
mod rect;
mod validate;

pub use extent::Extent;
pub use point::Point;
pub use rect::{HEdge, Rect, VEdge};
pub use validate::{
    apply_policy, check_raw_rect, RectIssue, Validated, ValidationPolicy, ValidationReport,
};

/// Workspace-wide floating point comparison slack for geometry tests.
///
/// Production code paths never compare with an epsilon (the estimators are
/// statistical, and the exact join uses closed-interval comparisons), but
/// tests validating algebraic identities need a tolerance.
pub const EPSILON: f64 = 1e-9;

/// Returns `true` if `a` and `b` are within [`EPSILON`] of each other,
/// scaled by magnitude for large values.
#[must_use]
pub fn approx_eq(a: f64, b: f64) -> bool {
    let scale = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() <= EPSILON * scale
}
