//! Plane-sweep rectangle intersection join (Preparata & Shamos, 1985 —
//! the paper's ref \[21\]).
//!
//! This crate implements the classic *forward plane sweep* over two sets
//! of axis-parallel rectangles sorted by their left edge: the rectangle
//! whose left edge comes first scans forward in the *other* set for
//! rectangles whose left edge falls inside its x-span, testing the y
//! intervals directly. Every intersecting pair is reported exactly once.
//!
//! It serves two roles in the workspace:
//!
//! * **Ground truth oracle** — an R-tree-free implementation against which
//!   the R-tree join is validated (the two must agree bit-for-bit on pair
//!   counts).
//! * **Alternative join backend** — Section 2 of the paper notes one could
//!   "directly perform a plane sweep algorithm on the two samples"; this
//!   backend makes that variant available to the sampling estimator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sj_geo::Rect;

/// Counts intersecting pairs between `a` and `b` with a forward plane
/// sweep. Complexity `O(n log n + m log m + S)` where `S` is the number of
/// x-overlapping pairs scanned.
///
/// ```
/// use sj_geo::Rect;
/// let a = vec![Rect::new(0.0, 0.0, 1.0, 1.0)];
/// let b = vec![Rect::new(0.5, 0.5, 2.0, 2.0), Rect::new(3.0, 3.0, 4.0, 4.0)];
/// assert_eq!(sj_sweep::sweep_join_count(&a, &b), 1);
/// ```
#[must_use]
pub fn sweep_join_count(a: &[Rect], b: &[Rect]) -> u64 {
    let mut n = 0u64;
    sweep_join_pairs(a, b, |_, _| n += 1);
    n
}

/// Counts intersecting pairs like [`sweep_join_count`], splitting `a`
/// into contiguous chunks swept against all of `b` on `threads` scoped
/// worker threads. Pair counts are integers, so the result is exactly
/// equal to the serial count for every thread count.
///
/// `threads <= 1` (or a small input) runs the serial [`sweep_join_count`]
/// on the caller's thread.
#[must_use]
pub fn sweep_join_count_parallel(a: &[Rect], b: &[Rect], threads: usize) -> u64 {
    let threads = threads.max(1).min(a.len().max(1));
    if threads == 1 || a.len() < 2 * threads {
        return sweep_join_count(a, b);
    }
    let chunk_len = a.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = a
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || sweep_join_count(chunk, b)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .sum()
    })
}

/// Visits every intersecting pair `(index_in_a, index_in_b)` exactly once.
pub fn sweep_join_pairs<F: FnMut(usize, usize)>(a: &[Rect], b: &[Rect], mut emit: F) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    let mut ia: Vec<u32> = (0..a.len() as u32).collect();
    let mut ib: Vec<u32> = (0..b.len() as u32).collect();
    ia.sort_by(|&p, &q| a[p as usize].xlo.total_cmp(&a[q as usize].xlo));
    ib.sort_by(|&p, &q| b[p as usize].xlo.total_cmp(&b[q as usize].xlo));

    let (mut i, mut j) = (0usize, 0usize);
    while i < ia.len() && j < ib.len() {
        let ra = a[ia[i] as usize];
        let rb = b[ib[j] as usize];
        if ra.xlo <= rb.xlo {
            // `ra` opens first; every b opening within ra's x-span
            // x-overlaps it (consumed b's all opened strictly earlier).
            for &jb in &ib[j..] {
                let rb2 = b[jb as usize];
                if rb2.xlo > ra.xhi {
                    break;
                }
                if ra.ylo <= rb2.yhi && rb2.ylo <= ra.yhi {
                    emit(ia[i] as usize, jb as usize);
                }
            }
            i += 1;
        } else {
            for &ja in &ia[i..] {
                let ra2 = a[ja as usize];
                if ra2.xlo > rb.xhi {
                    break;
                }
                if rb.ylo <= ra2.yhi && ra2.ylo <= rb.yhi {
                    emit(ja as usize, ib[j] as usize);
                }
            }
            j += 1;
        }
    }
}

// ---------------------------------------------------------------------
// Partition-based parallel plane sweep (Tsitsigkos & Mamoulis)
// ---------------------------------------------------------------------

/// The tile grid geometry of a [`TiledSweep`] plan: a `t × t` grid over
/// the joint bounding box of both inputs.
#[derive(Debug, Clone, Copy)]
struct TileGrid {
    xmin: f64,
    ymin: f64,
    dx: f64,
    dy: f64,
    t: u32,
}

impl TileGrid {
    /// Tile index along one axis, clamped into `0..t`. A degenerate axis
    /// (`d == 0`, or non-finite ratios) maps everything to tile 0, which
    /// keeps the partition total (every point owned by exactly one tile).
    fn axis_tile(v: f64, min: f64, d: f64, t: u32) -> u32 {
        let tf = f64::from(t);
        let u = (v - min) / d;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let i = u.floor().clamp(0.0, tf - 1.0) as u32;
        i
    }

    fn tile_of(&self, x: f64, y: f64) -> (u32, u32) {
        (
            Self::axis_tile(x, self.xmin, self.dx, self.t),
            Self::axis_tile(y, self.ymin, self.dy, self.t),
        )
    }
}

/// One tile of a [`TiledSweep`] partition plan: the rectangles of both
/// inputs replicated into this tile, plus the tile's own grid
/// coordinates for reference-point deduplication.
#[derive(Debug, Clone)]
pub struct SweepTile {
    grid: TileGrid,
    ti: u32,
    tj: u32,
    a: Vec<Rect>,
    b: Vec<Rect>,
}

impl SweepTile {
    /// Counts the intersecting pairs owned by this tile: a local
    /// [`sweep_join_pairs`] over the replicated rectangles, counting a
    /// pair only when its *reference point* — the bottom-left corner of
    /// the pairwise intersection, `(max(xlo), max(ylo))` — falls in this
    /// tile. The reference point lies inside both rectangles, so exactly
    /// one tile across the plan counts each pair; summing tile counts
    /// equals the serial [`sweep_join_count`] exactly (integer counts, no
    /// rounding to argue about).
    #[must_use]
    pub fn count(&self) -> u64 {
        let mut n = 0u64;
        sweep_join_pairs(&self.a, &self.b, |i, j| {
            let (ra, rb) = (&self.a[i], &self.b[j]);
            let rx = ra.xlo.max(rb.xlo);
            let ry = ra.ylo.max(rb.ylo);
            if self.grid.tile_of(rx, ry) == (self.ti, self.tj) {
                n += 1;
            }
        });
        n
    }

    /// Number of rectangles replicated into this tile, `(|a|, |b|)`.
    #[must_use]
    pub fn sizes(&self) -> (usize, usize) {
        (self.a.len(), self.b.len())
    }
}

/// A partition-based parallel plane-sweep plan (Tsitsigkos & Mamoulis,
/// "Parallel In-Memory Evaluation of Spatial Joins"): the joint bounding
/// box is tiled, every rectangle is replicated into each tile it
/// overlaps, and each tile is swept *independently* — no shared state —
/// with duplicates suppressed by the reference-point rule (see
/// [`SweepTile::count`]). Callers map [`SweepTile::count`] over
/// [`TiledSweep::into_tiles`] with whatever executor they own (sj-core
/// feeds it through its `Parallelism` layer) and sum.
#[derive(Debug, Clone)]
pub struct TiledSweep {
    tiles: Vec<SweepTile>,
}

impl TiledSweep {
    /// The per-tile work items. Tiles with either side empty are already
    /// pruned (they cannot own a pair).
    #[must_use]
    pub fn into_tiles(self) -> Vec<SweepTile> {
        self.tiles
    }

    /// Number of (non-empty) tiles in the plan.
    #[must_use]
    pub fn num_tiles(&self) -> usize {
        self.tiles.len()
    }

    /// Sums [`SweepTile::count`] serially — the single-threaded reference
    /// evaluation of the plan.
    #[must_use]
    pub fn count_serial(&self) -> u64 {
        self.tiles.iter().map(SweepTile::count).sum()
    }
}

/// Builds a [`TiledSweep`] plan over `a` and `b` with roughly
/// `tiles_hint` tiles (rounded up to a `t × t` grid, `t` capped at 64).
///
/// ```
/// use sj_geo::Rect;
/// let a = vec![Rect::new(0.0, 0.0, 1.0, 1.0), Rect::new(2.0, 2.0, 3.0, 3.0)];
/// let b = vec![Rect::new(0.5, 0.5, 2.5, 2.5)];
/// let plan = sj_sweep::tile_sweep(&a, &b, 16);
/// let total: u64 = plan.into_tiles().iter().map(|t| t.count()).sum();
/// assert_eq!(total, sj_sweep::sweep_join_count(&a, &b));
/// ```
#[must_use]
pub fn tile_sweep(a: &[Rect], b: &[Rect], tiles_hint: usize) -> TiledSweep {
    if a.is_empty() || b.is_empty() {
        return TiledSweep { tiles: Vec::new() };
    }
    // Joint bounding box of both inputs.
    let mut xmin = f64::INFINITY;
    let mut ymin = f64::INFINITY;
    let mut xmax = f64::NEG_INFINITY;
    let mut ymax = f64::NEG_INFINITY;
    for r in a.iter().chain(b) {
        xmin = xmin.min(r.xlo);
        ymin = ymin.min(r.ylo);
        xmax = xmax.max(r.xhi);
        ymax = ymax.max(r.yhi);
    }
    #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
    let t = ((tiles_hint.max(1) as f64).sqrt().ceil() as u32).clamp(1, 64);
    let grid = TileGrid {
        xmin,
        ymin,
        dx: (xmax - xmin) / f64::from(t),
        dy: (ymax - ymin) / f64::from(t),
        t,
    };
    let ts = t as usize;
    let mut tiles: Vec<SweepTile> = (0..t * t)
        .map(|k| SweepTile {
            grid,
            ti: k % t,
            tj: k / t,
            a: Vec::new(),
            b: Vec::new(),
        })
        .collect();
    // Replicate each rectangle into every tile it overlaps.
    let mut scatter = |rects: &[Rect], pick_a: bool| {
        for r in rects {
            let (i0, j0) = grid.tile_of(r.xlo, r.ylo);
            let (i1, j1) = grid.tile_of(r.xhi, r.yhi);
            for tj in j0..=j1 {
                for ti in i0..=i1 {
                    let tile = &mut tiles[tj as usize * ts + ti as usize];
                    if pick_a {
                        tile.a.push(*r);
                    } else {
                        tile.b.push(*r);
                    }
                }
            }
        }
    };
    scatter(a, true);
    scatter(b, false);
    tiles.retain(|tile| !tile.a.is_empty() && !tile.b.is_empty());
    TiledSweep { tiles }
}

/// Counts intersecting pairs via a [`tile_sweep`] plan evaluated on
/// `threads` scoped worker threads (`4 × threads` tiles for load
/// balance). Integer tile counts and reference-point deduplication make
/// the result exactly equal to the serial [`sweep_join_count`] for every
/// thread count; `threads <= 1` evaluates the plan serially.
///
/// This is the standalone entry point; `sj-core`'s exact oracle builds
/// the same plan and maps it over its own `Parallelism` layer instead.
#[must_use]
pub fn sweep_join_count_tiled(a: &[Rect], b: &[Rect], threads: usize) -> u64 {
    let threads = threads.max(1);
    let plan = tile_sweep(a, b, 4 * threads);
    if threads == 1 || plan.num_tiles() <= 1 {
        return plan.count_serial();
    }
    let tiles = plan.into_tiles();
    let chunk_len = tiles.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = tiles
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || chunk.iter().map(SweepTile::count).sum::<u64>()))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .sum()
    })
}

/// Naive `O(n·m)` join, for validating the sweep on small inputs and as a
/// last-resort backend for tiny samples.
#[must_use]
pub fn brute_force_count(a: &[Rect], b: &[Rect]) -> u64 {
    let mut n = 0u64;
    for ra in a {
        for rb in b {
            if ra.intersects(rb) {
                n += 1;
            }
        }
    }
    n
}

/// Exact selectivity of the spatial join: `pairs / (|a| · |b|)`.
/// Returns `0.0` when either input is empty.
#[must_use]
pub fn sweep_join_selectivity(a: &[Rect], b: &[Rect]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    {
        sweep_join_count(a, b) as f64 / (a.len() as f64 * b.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_rects(n: usize, seed: u64, max_side: f64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0);
                let y = rng.random_range(0.0..1.0);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..max_side),
                    y + rng.random_range(0.0..max_side),
                )
            })
            .collect()
    }

    #[test]
    fn sweep_matches_brute_force() {
        let a = random_rects(500, 21, 0.05);
        let b = random_rects(400, 22, 0.08);
        assert_eq!(sweep_join_count(&a, &b), brute_force_count(&a, &b));
    }

    #[test]
    fn parallel_matches_serial_for_all_thread_counts() {
        let a = random_rects(400, 31, 0.06);
        let b = random_rects(350, 32, 0.09);
        let serial = sweep_join_count(&a, &b);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                sweep_join_count_parallel(&a, &b, threads),
                serial,
                "threads={threads}"
            );
        }
        assert_eq!(sweep_join_count_parallel(&[], &b, 4), 0);
        assert_eq!(sweep_join_count_parallel(&a, &[], 4), 0);
    }

    #[test]
    fn sweep_is_symmetric() {
        let a = random_rects(300, 23, 0.1);
        let b = random_rects(300, 24, 0.02);
        assert_eq!(sweep_join_count(&a, &b), sweep_join_count(&b, &a));
    }

    #[test]
    fn empty_inputs() {
        let a = random_rects(10, 25, 0.1);
        assert_eq!(sweep_join_count(&a, &[]), 0);
        assert_eq!(sweep_join_count(&[], &a), 0);
        assert_eq!(sweep_join_selectivity(&[], &a), 0.0);
    }

    #[test]
    fn touching_rectangles_count() {
        let a = vec![Rect::new(0.0, 0.0, 1.0, 1.0)];
        let b = vec![Rect::new(1.0, 1.0, 2.0, 2.0)]; // corner touch
        assert_eq!(sweep_join_count(&a, &b), 1);
    }

    #[test]
    fn identical_rects_all_pairs() {
        let a = vec![Rect::new(0.25, 0.25, 0.75, 0.75); 13];
        let b = vec![Rect::new(0.5, 0.5, 0.9, 0.9); 7];
        assert_eq!(sweep_join_count(&a, &b), 13 * 7);
    }

    #[test]
    fn pairs_emitted_exactly_once() {
        let a = random_rects(200, 26, 0.2);
        let b = random_rects(200, 27, 0.2);
        let mut pairs = Vec::new();
        sweep_join_pairs(&a, &b, |i, j| pairs.push((i, j)));
        let total = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), total, "duplicate pair emitted");
        assert_eq!(total as u64, brute_force_count(&a, &b));
    }

    #[test]
    fn point_datasets() {
        let pts: Vec<Rect> = (0..100)
            .map(|i| Rect::new(f64::from(i), 0.0, f64::from(i), 0.0))
            .collect();
        // A point set joined with itself: only coincident points pair.
        assert_eq!(sweep_join_count(&pts, &pts), 100);
        let sel = sweep_join_selectivity(&pts, &pts);
        assert!((sel - 0.01).abs() < 1e-12);
    }

    #[test]
    fn tiled_matches_serial_for_all_thread_counts() {
        let a = random_rects(400, 41, 0.06);
        let b = random_rects(350, 42, 0.09);
        let serial = sweep_join_count(&a, &b);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                sweep_join_count_tiled(&a, &b, threads),
                serial,
                "threads={threads}"
            );
        }
        assert_eq!(sweep_join_count_tiled(&[], &b, 4), 0);
        assert_eq!(sweep_join_count_tiled(&a, &[], 4), 0);
    }

    #[test]
    fn tiled_plan_partitions_pairs_exactly() {
        // Large rects replicate into many tiles; reference-point dedup
        // must still count every pair exactly once.
        let a = random_rects(250, 43, 0.4);
        let b = random_rects(250, 44, 0.4);
        for hint in [1, 4, 16, 100] {
            let plan = tile_sweep(&a, &b, hint);
            assert_eq!(
                plan.count_serial(),
                sweep_join_count(&a, &b),
                "tiles_hint={hint}"
            );
        }
    }

    #[test]
    fn tiled_handles_boundary_and_degenerate_geometry() {
        // Corner-touching pair whose reference point sits exactly on a
        // tile boundary.
        let a = vec![Rect::new(0.0, 0.0, 1.0, 1.0)];
        let b = vec![Rect::new(1.0, 1.0, 2.0, 2.0)];
        assert_eq!(sweep_join_count_tiled(&a, &b, 4), 1);
        // Identical rects: all pairs, counted once each.
        let a = vec![Rect::new(0.25, 0.25, 0.75, 0.75); 13];
        let b = vec![Rect::new(0.5, 0.5, 0.9, 0.9); 7];
        assert_eq!(sweep_join_count_tiled(&a, &b, 8), 13 * 7);
        // Point datasets: degenerate extents on the y axis (all zero
        // height) still partition correctly.
        let pts: Vec<Rect> = (0..100)
            .map(|i| Rect::new(f64::from(i), 0.0, f64::from(i), 0.0))
            .collect();
        assert_eq!(sweep_join_count_tiled(&pts, &pts, 8), 100);
        // Single coincident point: fully degenerate bounding box.
        let p = vec![Rect::new(0.5, 0.5, 0.5, 0.5)];
        assert_eq!(sweep_join_count_tiled(&p, &p, 8), 1);
    }

    #[test]
    fn tiled_clustered_data() {
        // Heavy clustering stresses uneven tile occupancy.
        let mut rng = StdRng::seed_from_u64(45);
        let clustered: Vec<Rect> = (0..600)
            .map(|i| {
                let (cx, cy) = if i % 3 == 0 { (0.2, 0.2) } else { (0.8, 0.7) };
                let x = cx + rng.random_range(-0.05..0.05);
                let y = cy + rng.random_range(-0.05..0.05);
                Rect::new(x, y, x + 0.02, y + 0.02)
            })
            .collect();
        let other = random_rects(500, 46, 0.05);
        let serial = sweep_join_count(&clustered, &other);
        assert_eq!(sweep_join_count_tiled(&clustered, &other, 4), serial);
        assert_eq!(sweep_join_count_tiled(&clustered, &other, 16), serial);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_sweep_equals_brute_force(
            seed_a in 0u64..1000, seed_b in 0u64..1000,
            na in 0usize..80, nb in 0usize..80,
        ) {
            let a = random_rects(na, seed_a, 0.3);
            let b = random_rects(nb, seed_b, 0.3);
            prop_assert_eq!(sweep_join_count(&a, &b), brute_force_count(&a, &b));
        }

        #[test]
        fn prop_tiled_equals_serial(
            seed_a in 0u64..500, seed_b in 0u64..500,
            na in 0usize..60, nb in 0usize..60,
            hint in 1usize..40,
        ) {
            let a = random_rects(na, seed_a, 0.3);
            let b = random_rects(nb, seed_b, 0.3);
            prop_assert_eq!(
                tile_sweep(&a, &b, hint).count_serial(),
                sweep_join_count(&a, &b)
            );
        }
    }
}
