//! Plane-sweep rectangle intersection join (Preparata & Shamos, 1985 —
//! the paper's ref \[21\]).
//!
//! This crate implements the classic *forward plane sweep* over two sets
//! of axis-parallel rectangles sorted by their left edge: the rectangle
//! whose left edge comes first scans forward in the *other* set for
//! rectangles whose left edge falls inside its x-span, testing the y
//! intervals directly. Every intersecting pair is reported exactly once.
//!
//! It serves two roles in the workspace:
//!
//! * **Ground truth oracle** — an R-tree-free implementation against which
//!   the R-tree join is validated (the two must agree bit-for-bit on pair
//!   counts).
//! * **Alternative join backend** — Section 2 of the paper notes one could
//!   "directly perform a plane sweep algorithm on the two samples"; this
//!   backend makes that variant available to the sampling estimator.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use sj_geo::Rect;

/// Counts intersecting pairs between `a` and `b` with a forward plane
/// sweep. Complexity `O(n log n + m log m + S)` where `S` is the number of
/// x-overlapping pairs scanned.
///
/// ```
/// use sj_geo::Rect;
/// let a = vec![Rect::new(0.0, 0.0, 1.0, 1.0)];
/// let b = vec![Rect::new(0.5, 0.5, 2.0, 2.0), Rect::new(3.0, 3.0, 4.0, 4.0)];
/// assert_eq!(sj_sweep::sweep_join_count(&a, &b), 1);
/// ```
#[must_use]
pub fn sweep_join_count(a: &[Rect], b: &[Rect]) -> u64 {
    let mut n = 0u64;
    sweep_join_pairs(a, b, |_, _| n += 1);
    n
}

/// Counts intersecting pairs like [`sweep_join_count`], splitting `a`
/// into contiguous chunks swept against all of `b` on `threads` scoped
/// worker threads. Pair counts are integers, so the result is exactly
/// equal to the serial count for every thread count.
///
/// `threads <= 1` (or a small input) runs the serial [`sweep_join_count`]
/// on the caller's thread.
#[must_use]
pub fn sweep_join_count_parallel(a: &[Rect], b: &[Rect], threads: usize) -> u64 {
    let threads = threads.max(1).min(a.len().max(1));
    if threads == 1 || a.len() < 2 * threads {
        return sweep_join_count(a, b);
    }
    let chunk_len = a.len().div_ceil(threads);
    std::thread::scope(|scope| {
        let handles: Vec<_> = a
            .chunks(chunk_len)
            .map(|chunk| scope.spawn(move || sweep_join_count(chunk, b)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .sum()
    })
}

/// Visits every intersecting pair `(index_in_a, index_in_b)` exactly once.
pub fn sweep_join_pairs<F: FnMut(usize, usize)>(a: &[Rect], b: &[Rect], mut emit: F) {
    if a.is_empty() || b.is_empty() {
        return;
    }
    let mut ia: Vec<u32> = (0..a.len() as u32).collect();
    let mut ib: Vec<u32> = (0..b.len() as u32).collect();
    ia.sort_by(|&p, &q| a[p as usize].xlo.total_cmp(&a[q as usize].xlo));
    ib.sort_by(|&p, &q| b[p as usize].xlo.total_cmp(&b[q as usize].xlo));

    let (mut i, mut j) = (0usize, 0usize);
    while i < ia.len() && j < ib.len() {
        let ra = a[ia[i] as usize];
        let rb = b[ib[j] as usize];
        if ra.xlo <= rb.xlo {
            // `ra` opens first; every b opening within ra's x-span
            // x-overlaps it (consumed b's all opened strictly earlier).
            for &jb in &ib[j..] {
                let rb2 = b[jb as usize];
                if rb2.xlo > ra.xhi {
                    break;
                }
                if ra.ylo <= rb2.yhi && rb2.ylo <= ra.yhi {
                    emit(ia[i] as usize, jb as usize);
                }
            }
            i += 1;
        } else {
            for &ja in &ia[i..] {
                let ra2 = a[ja as usize];
                if ra2.xlo > rb.xhi {
                    break;
                }
                if rb.ylo <= ra2.yhi && ra2.ylo <= rb.yhi {
                    emit(ja as usize, ib[j] as usize);
                }
            }
            j += 1;
        }
    }
}

/// Naive `O(n·m)` join, for validating the sweep on small inputs and as a
/// last-resort backend for tiny samples.
#[must_use]
pub fn brute_force_count(a: &[Rect], b: &[Rect]) -> u64 {
    let mut n = 0u64;
    for ra in a {
        for rb in b {
            if ra.intersects(rb) {
                n += 1;
            }
        }
    }
    n
}

/// Exact selectivity of the spatial join: `pairs / (|a| · |b|)`.
/// Returns `0.0` when either input is empty.
#[must_use]
pub fn sweep_join_selectivity(a: &[Rect], b: &[Rect]) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    #[allow(clippy::cast_precision_loss)]
    {
        sweep_join_count(a, b) as f64 / (a.len() as f64 * b.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_rects(n: usize, seed: u64, max_side: f64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0);
                let y = rng.random_range(0.0..1.0);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..max_side),
                    y + rng.random_range(0.0..max_side),
                )
            })
            .collect()
    }

    #[test]
    fn sweep_matches_brute_force() {
        let a = random_rects(500, 21, 0.05);
        let b = random_rects(400, 22, 0.08);
        assert_eq!(sweep_join_count(&a, &b), brute_force_count(&a, &b));
    }

    #[test]
    fn parallel_matches_serial_for_all_thread_counts() {
        let a = random_rects(400, 31, 0.06);
        let b = random_rects(350, 32, 0.09);
        let serial = sweep_join_count(&a, &b);
        for threads in [1, 2, 3, 8] {
            assert_eq!(
                sweep_join_count_parallel(&a, &b, threads),
                serial,
                "threads={threads}"
            );
        }
        assert_eq!(sweep_join_count_parallel(&[], &b, 4), 0);
        assert_eq!(sweep_join_count_parallel(&a, &[], 4), 0);
    }

    #[test]
    fn sweep_is_symmetric() {
        let a = random_rects(300, 23, 0.1);
        let b = random_rects(300, 24, 0.02);
        assert_eq!(sweep_join_count(&a, &b), sweep_join_count(&b, &a));
    }

    #[test]
    fn empty_inputs() {
        let a = random_rects(10, 25, 0.1);
        assert_eq!(sweep_join_count(&a, &[]), 0);
        assert_eq!(sweep_join_count(&[], &a), 0);
        assert_eq!(sweep_join_selectivity(&[], &a), 0.0);
    }

    #[test]
    fn touching_rectangles_count() {
        let a = vec![Rect::new(0.0, 0.0, 1.0, 1.0)];
        let b = vec![Rect::new(1.0, 1.0, 2.0, 2.0)]; // corner touch
        assert_eq!(sweep_join_count(&a, &b), 1);
    }

    #[test]
    fn identical_rects_all_pairs() {
        let a = vec![Rect::new(0.25, 0.25, 0.75, 0.75); 13];
        let b = vec![Rect::new(0.5, 0.5, 0.9, 0.9); 7];
        assert_eq!(sweep_join_count(&a, &b), 13 * 7);
    }

    #[test]
    fn pairs_emitted_exactly_once() {
        let a = random_rects(200, 26, 0.2);
        let b = random_rects(200, 27, 0.2);
        let mut pairs = Vec::new();
        sweep_join_pairs(&a, &b, |i, j| pairs.push((i, j)));
        let total = pairs.len();
        pairs.sort_unstable();
        pairs.dedup();
        assert_eq!(pairs.len(), total, "duplicate pair emitted");
        assert_eq!(total as u64, brute_force_count(&a, &b));
    }

    #[test]
    fn point_datasets() {
        let pts: Vec<Rect> = (0..100)
            .map(|i| Rect::new(f64::from(i), 0.0, f64::from(i), 0.0))
            .collect();
        // A point set joined with itself: only coincident points pair.
        assert_eq!(sweep_join_count(&pts, &pts), 100);
        let sel = sweep_join_selectivity(&pts, &pts);
        assert!((sel - 0.01).abs() < 1e-12);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn prop_sweep_equals_brute_force(
            seed_a in 0u64..1000, seed_b in 0u64..1000,
            na in 0usize..80, nb in 0usize..80,
        ) {
            let a = random_rects(na, seed_a, 0.3);
            let b = random_rects(nb, seed_b, 0.3);
            prop_assert_eq!(sweep_join_count(&a, &b), brute_force_count(&a, &b));
        }
    }
}
