//! Model-based testing: a random interleaving of inserts, removals and
//! queries on the R-tree must behave exactly like a naive shadow set,
//! and the structural invariants must hold after every mutation.

use proptest::prelude::*;
use sj_geo::Rect;
use sj_rtree::{RTree, RTreeConfig, SplitAlgorithm};

#[derive(Debug, Clone)]
enum Op {
    Insert {
        x: f64,
        y: f64,
        w: f64,
        h: f64,
    },
    /// Remove the entry at this (modular) position of the shadow set.
    RemoveNth(usize),
    Query {
        x: f64,
        y: f64,
        w: f64,
        h: f64,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (0.0..1.0f64, 0.0..1.0f64, 0.0..0.2f64, 0.0..0.2f64)
            .prop_map(|(x, y, w, h)| Op::Insert { x, y, w, h }),
        1 => any::<usize>().prop_map(Op::RemoveNth),
        2 => (0.0..1.0f64, 0.0..1.0f64, 0.0..0.5f64, 0.0..0.5f64)
            .prop_map(|(x, y, w, h)| Op::Query { x, y, w, h }),
    ]
}

fn run_model(ops: Vec<Op>, config: RTreeConfig) {
    let mut tree = RTree::new(config);
    let mut shadow: Vec<(Rect, u64)> = Vec::new();
    let mut next_id = 0u64;

    for op in ops {
        match op {
            Op::Insert { x, y, w, h } => {
                let r = Rect::new(x, y, x + w, y + h);
                tree.insert(r, next_id);
                shadow.push((r, next_id));
                next_id += 1;
            }
            Op::RemoveNth(n) => {
                if shadow.is_empty() {
                    continue;
                }
                let (r, id) = shadow.swap_remove(n % shadow.len());
                assert!(tree.remove(&r, id), "shadow entry must be removable");
            }
            Op::Query { x, y, w, h } => {
                let q = Rect::new(x, y, x + w, y + h);
                let expected = shadow.iter().filter(|(r, _)| r.intersects(&q)).count();
                assert_eq!(tree.count_intersecting(&q), expected);
            }
        }
        tree.validate();
        assert_eq!(tree.len(), shadow.len());
    }

    // Final full sweep: every surviving id is findable, none extra.
    let mut ids: Vec<u64> = Vec::new();
    tree.for_each(|e| ids.push(e.id));
    ids.sort_unstable();
    let mut expected: Vec<u64> = shadow.iter().map(|(_, id)| *id).collect();
    expected.sort_unstable();
    assert_eq!(ids, expected);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]
    #[test]
    fn quadratic_tree_matches_shadow_model(
        ops in proptest::collection::vec(op_strategy(), 0..120)
    ) {
        run_model(
            ops,
            RTreeConfig { max_entries: 6, min_entries: 2, split: SplitAlgorithm::Quadratic },
        );
    }

    #[test]
    fn linear_tree_matches_shadow_model(
        ops in proptest::collection::vec(op_strategy(), 0..120)
    ) {
        run_model(
            ops,
            RTreeConfig { max_entries: 5, min_entries: 2, split: SplitAlgorithm::Linear },
        );
    }

    #[test]
    fn rstar_tree_matches_shadow_model(
        ops in proptest::collection::vec(op_strategy(), 0..120)
    ) {
        run_model(
            ops,
            RTreeConfig { max_entries: 8, min_entries: 3, split: SplitAlgorithm::RStar },
        );
    }
}
