use sj_geo::Rect;

/// A data entry in a leaf: the MBR of an object plus its identifier
/// (typically the index of the object in its dataset).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Entry {
    /// Minimum bounding rectangle of the object.
    pub rect: Rect,
    /// Caller-assigned object identifier.
    pub id: u64,
}

impl Entry {
    /// Creates a new entry.
    #[must_use]
    pub const fn new(rect: Rect, id: u64) -> Self {
        Self { rect, id }
    }
}

/// An R-tree node. Leaves hold data [`Entry`]s; inner nodes hold children
/// together with the MBR covering each child's subtree.
#[derive(Debug, Clone)]
pub enum Node {
    /// A leaf node holding data entries.
    Leaf(Vec<Entry>),
    /// An internal node holding `(subtree MBR, child)` pairs.
    Inner(Vec<(Rect, Node)>),
}

impl Node {
    /// Number of entries in this node (not the subtree).
    #[must_use]
    pub fn len(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Inner(c) => c.len(),
        }
    }

    /// `true` if this node has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// `true` if this is a leaf node.
    #[must_use]
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }

    /// The MBR covering every entry in this node, or `None` when empty.
    #[must_use]
    pub fn mbr(&self) -> Option<Rect> {
        match self {
            Node::Leaf(entries) => Rect::mbr_of(entries.iter().map(|e| e.rect)),
            Node::Inner(children) => Rect::mbr_of(children.iter().map(|(r, _)| *r)),
        }
    }

    /// Height of the subtree rooted at this node (leaf = 1).
    #[must_use]
    pub fn height(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Inner(children) => 1 + children.first().map_or(0, |(_, child)| child.height()),
        }
    }

    /// Total number of data entries in the subtree.
    #[must_use]
    pub fn count_entries(&self) -> usize {
        match self {
            Node::Leaf(e) => e.len(),
            Node::Inner(c) => c.iter().map(|(_, n)| n.count_entries()).sum(),
        }
    }

    /// Total number of nodes in the subtree (including this one).
    #[must_use]
    pub fn count_nodes(&self) -> usize {
        match self {
            Node::Leaf(_) => 1,
            Node::Inner(c) => 1 + c.iter().map(|(_, n)| n.count_nodes()).sum::<usize>(),
        }
    }
}
