//! R-tree index for axis-parallel rectangles (Guttman, SIGMOD 1984).
//!
//! The paper's evaluation is anchored on R-trees in three ways, all of
//! which this crate provides:
//!
//! * **Sample joins** (Section 2): each sample is indexed with an R-tree
//!   and joined with the synchronized-traversal R-tree join of Brinkhoff,
//!   Kriegel & Seeger (SIGMOD 1993) — see [`join_count`] / [`join_pairs`].
//! * **The exact join oracle**: estimation error is measured against the
//!   actual filter-step join performed on the full datasets.
//! * **Relative metrics**: estimation time, building time and space cost
//!   are all reported *relative to* the R-tree join time, R-tree build
//!   time and R-tree size — see [`RTree::size_bytes`].
//!
//! Construction options:
//!
//! * [`RTree::bulk_load_str`] — Sort-Tile-Recursive packing (the default
//!   everywhere in this workspace; deterministic and near-optimal).
//! * [`RTree::bulk_load_hilbert`] — Kamel–Faloutsos Hilbert packing.
//! * [`RTree::new`] + [`RTree::insert`] — dynamic Guttman insertion with
//!   a choice of [`SplitAlgorithm::Linear`] or
//!   [`SplitAlgorithm::Quadratic`] node splitting.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bulk;
mod delete;
mod join;
mod nn;
mod node;
mod split;
mod tree;

pub use join::{join_count, join_count_parallel, join_pairs};
pub use nn::mindist;
pub use node::{Entry, Node};
pub use split::SplitAlgorithm;
pub use tree::{RTree, RTreeConfig, RTreeStats};
