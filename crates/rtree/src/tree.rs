use crate::node::{Entry, Node};
use crate::split::{split, SplitAlgorithm};
use sj_geo::Rect;

/// Configuration for an [`RTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeConfig {
    /// Maximum entries per node (`M`). Default 50, a typical page fanout
    /// for 2-D rectangles on 4 KiB pages.
    pub max_entries: usize,
    /// Minimum entries per node (`m <= M/2`). Default 20 (40 % fill).
    pub min_entries: usize,
    /// Overflow split algorithm for dynamic insertion.
    pub split: SplitAlgorithm,
}

impl Default for RTreeConfig {
    fn default() -> Self {
        Self {
            max_entries: 50,
            min_entries: 20,
            split: SplitAlgorithm::Quadratic,
        }
    }
}

impl RTreeConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    /// Panics on inconsistent fanout bounds.
    pub fn validate(&self) {
        assert!(self.max_entries >= 4, "max_entries must be >= 4");
        assert!(
            self.min_entries >= 2 && 2 * self.min_entries <= self.max_entries,
            "need 2 <= min_entries <= max_entries/2 (got m={}, M={})",
            self.min_entries,
            self.max_entries
        );
    }
}

/// Structural statistics of an R-tree, used for the paper's space-cost
/// metric and for sanity reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeStats {
    /// Number of data entries.
    pub len: usize,
    /// Tree height (leaf-only tree = 1; empty tree = 0).
    pub height: usize,
    /// Total node count.
    pub nodes: usize,
    /// Modeled storage footprint in bytes (see [`RTree::size_bytes`]).
    pub bytes: usize,
}

/// An R-tree over axis-parallel rectangles.
///
/// ```
/// use sj_geo::Rect;
/// use sj_rtree::{join_count, RTree, RTreeConfig};
///
/// let homes = vec![Rect::new(0.1, 0.1, 0.2, 0.2), Rect::new(0.7, 0.7, 0.8, 0.8)];
/// let parks = vec![Rect::new(0.15, 0.15, 0.5, 0.5)];
/// let th = RTree::bulk_load_str(RTreeConfig::default(), &homes);
/// let tp = RTree::bulk_load_str(RTreeConfig::default(), &parks);
/// assert_eq!(th.count_intersecting(&Rect::new(0.0, 0.0, 0.3, 0.3)), 1);
/// assert_eq!(join_count(&th, &tp), 1);
/// ```
#[derive(Debug, Clone)]
pub struct RTree {
    root: Option<Node>,
    config: RTreeConfig,
    len: usize,
}

/// Modeled bytes per entry: 4 × f64 for the MBR + 8 bytes for a child
/// pointer / object id. This matches the standard "R-tree page" accounting
/// used when papers report index sizes.
pub(crate) const ENTRY_BYTES: usize = 4 * 8 + 8;
/// Modeled per-node header: entry count + node type + page bookkeeping.
pub(crate) const NODE_HEADER_BYTES: usize = 16;

impl RTree {
    /// Creates an empty tree with the given configuration.
    #[must_use]
    pub fn new(config: RTreeConfig) -> Self {
        config.validate();
        Self {
            root: None,
            config,
            len: 0,
        }
    }

    /// Creates an empty tree with the default configuration.
    #[must_use]
    pub fn with_defaults() -> Self {
        Self::new(RTreeConfig::default())
    }

    /// The tree's configuration.
    #[must_use]
    pub fn config(&self) -> RTreeConfig {
        self.config
    }

    /// Number of data entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the tree holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Tree height (0 when empty, 1 for a single leaf).
    #[must_use]
    pub fn height(&self) -> usize {
        self.root.as_ref().map_or(0, Node::height)
    }

    /// Root node, if any. Exposed for the join algorithm and tests.
    #[must_use]
    pub fn root(&self) -> Option<&Node> {
        self.root.as_ref()
    }

    /// MBR of the whole tree.
    #[must_use]
    pub fn mbr(&self) -> Option<Rect> {
        self.root.as_ref().and_then(Node::mbr)
    }

    pub(crate) fn from_root(root: Option<Node>, config: RTreeConfig) -> Self {
        let len = root.as_ref().map_or(0, Node::count_entries);
        Self { root, config, len }
    }

    /// Takes the root out for restructuring (deletion). The caller must
    /// restore a consistent state with [`Self::set_state`].
    pub(crate) fn take_root(&mut self) -> Option<Node> {
        self.root.take()
    }

    /// Restores the root and entry count after restructuring.
    pub(crate) fn set_state(&mut self, root: Option<Node>, len: usize) {
        self.root = root;
        self.len = len;
    }

    /// Inserts an entry (Guttman `Insert`): choose the leaf needing least
    /// enlargement, split on overflow, propagate splits upward, grow the
    /// root when it splits.
    pub fn insert(&mut self, rect: Rect, id: u64) {
        assert!(rect.is_finite(), "cannot index a non-finite rectangle");
        self.len += 1;
        // With the R* policy, the first leaf overflow triggers forced
        // reinsertion (Beckmann et al.: remove the ~30% of entries whose
        // centers are farthest from the node center and insert them
        // again) instead of an immediate split; ejected entries then go
        // through a reinsertion-free pass.
        let reinsert_allowed = self.config.split == crate::SplitAlgorithm::RStar;
        let mut pending = vec![Entry::new(rect, id)];
        let mut first_pass = true;
        while let Some(entry) = pending.pop() {
            let mut ejected = Vec::new();
            self.insert_one(entry, first_pass && reinsert_allowed, &mut ejected);
            pending.extend(ejected);
            first_pass = false;
        }
    }

    fn insert_one(&mut self, entry: Entry, allow_reinsert: bool, ejected: &mut Vec<Entry>) {
        match self.root.take() {
            None => {
                self.root = Some(Node::Leaf(vec![entry]));
            }
            Some(mut root) => {
                let mut reinsert_budget = allow_reinsert;
                if let Some((split_rect, split_node)) = insert_rec(
                    &mut root,
                    entry,
                    &self.config,
                    &mut reinsert_budget,
                    ejected,
                ) {
                    // sj-lint: allow(panic, the root held at least one entry before the insert that split it)
                    let old_rect = root.mbr().expect("non-empty root");
                    self.root = Some(Node::Inner(vec![
                        (old_rect, root),
                        (split_rect, split_node),
                    ]));
                } else {
                    self.root = Some(root);
                }
            }
        }
    }

    /// Visits every entry whose MBR intersects `query` (closed semantics).
    pub fn query_intersecting<F: FnMut(&Entry)>(&self, query: &Rect, mut visit: F) {
        if let Some(root) = &self.root {
            query_rec(root, query, &mut visit);
        }
    }

    /// Counts entries intersecting `query`.
    #[must_use]
    pub fn count_intersecting(&self, query: &Rect) -> usize {
        let mut n = 0usize;
        self.query_intersecting(query, |_| n += 1);
        n
    }

    /// Collects entries intersecting `query`.
    #[must_use]
    pub fn search(&self, query: &Rect) -> Vec<Entry> {
        let mut out = Vec::new();
        self.query_intersecting(query, |e| out.push(*e));
        out
    }

    /// Visits every entry in the tree.
    pub fn for_each<F: FnMut(&Entry)>(&self, mut visit: F) {
        if let Some(root) = &self.root {
            for_each_rec(root, &mut visit);
        }
    }

    /// Modeled storage footprint in bytes: per-node header plus
    /// 40 bytes/entry (MBR + pointer). The paper's *space cost* metric for
    /// histograms is `histogram bytes / (size of the two R-trees)`.
    #[must_use]
    pub fn size_bytes(&self) -> usize {
        self.root.as_ref().map_or(0, size_rec)
    }

    /// Structural statistics.
    #[must_use]
    pub fn stats(&self) -> RTreeStats {
        RTreeStats {
            len: self.len,
            height: self.height(),
            nodes: self.root.as_ref().map_or(0, Node::count_nodes),
            bytes: self.size_bytes(),
        }
    }

    /// Checks structural invariants; used by tests (and cheap enough for
    /// debug assertions in callers):
    ///
    /// * every inner entry's rect equals the MBR of its child subtree;
    /// * node occupancy is within `[min_entries, max_entries]` except the
    ///   root (and except bulk-loaded rightmost nodes, which may underfill
    ///   down to 1);
    /// * all leaves are at the same depth;
    /// * the number of reachable entries equals `len()`.
    ///
    /// # Panics
    /// Panics with a description of the violated invariant.
    pub fn validate(&self) {
        let Some(root) = &self.root else {
            assert_eq!(self.len, 0, "empty root but len != 0");
            return;
        };
        let mut leaf_depths = Vec::new();
        validate_rec(root, true, self.config, 1, &mut leaf_depths);
        assert!(
            leaf_depths.windows(2).all(|w| w[0] == w[1]),
            "leaves at unequal depths: {leaf_depths:?}"
        );
        assert_eq!(root.count_entries(), self.len, "len mismatch");
    }
}

fn size_rec(node: &Node) -> usize {
    match node {
        Node::Leaf(entries) => NODE_HEADER_BYTES + entries.len() * ENTRY_BYTES,
        Node::Inner(children) => {
            NODE_HEADER_BYTES
                + children.len() * ENTRY_BYTES
                + children.iter().map(|(_, c)| size_rec(c)).sum::<usize>()
        }
    }
}

fn for_each_rec<F: FnMut(&Entry)>(node: &Node, visit: &mut F) {
    match node {
        Node::Leaf(entries) => entries.iter().for_each(&mut *visit),
        Node::Inner(children) => {
            for (_, child) in children {
                for_each_rec(child, visit);
            }
        }
    }
}

fn query_rec<F: FnMut(&Entry)>(node: &Node, query: &Rect, visit: &mut F) {
    match node {
        Node::Leaf(entries) => {
            for e in entries {
                if e.rect.intersects(query) {
                    visit(e);
                }
            }
        }
        Node::Inner(children) => {
            for (rect, child) in children {
                if rect.intersects(query) {
                    query_rec(child, query, visit);
                }
            }
        }
    }
}

/// Recursive insert. Returns `Some((mbr, node))` when this node split and
/// the new sibling must be installed in the parent. When `reinsert_budget`
/// is true (R* policy, first leaf overflow of this insertion), a leaf
/// overflow ejects far entries into `ejected` instead of splitting.
fn insert_rec(
    node: &mut Node,
    entry: Entry,
    config: &RTreeConfig,
    reinsert_budget: &mut bool,
    ejected: &mut Vec<Entry>,
) -> Option<(Rect, Node)> {
    match node {
        Node::Leaf(entries) => {
            entries.push(entry);
            if entries.len() <= config.max_entries {
                return None;
            }
            if *reinsert_budget {
                *reinsert_budget = false;
                eject_far_entries(entries, config, ejected);
                debug_assert!(entries.len() <= config.max_entries);
                return None;
            }
            let overflow = std::mem::take(entries);
            let (g1, g2) = split(config.split, overflow, config.min_entries, |e| e.rect);
            *entries = g1;
            let sibling = Node::Leaf(g2);
            // sj-lint: allow(panic, split() guarantees both groups hold >= min_entries >= 1 entries)
            let rect = sibling.mbr().expect("split group non-empty");
            Some((rect, sibling))
        }
        Node::Inner(children) => {
            let idx = choose_subtree(children, &entry.rect);
            let split_result = insert_rec(
                &mut children[idx].1,
                entry,
                config,
                reinsert_budget,
                ejected,
            );
            // Refresh the chosen child's MBR after the descent.
            // sj-lint: allow(panic, insertion only grows the chosen child, it cannot empty it)
            children[idx].0 = children[idx].1.mbr().expect("child non-empty");
            if let Some((rect, new_node)) = split_result {
                children.push((rect, new_node));
                if children.len() > config.max_entries {
                    let overflow = std::mem::take(children);
                    let (g1, g2) = split(config.split, overflow, config.min_entries, |c| c.0);
                    *children = g1;
                    let sibling = Node::Inner(g2);
                    // sj-lint: allow(panic, split() guarantees both groups hold >= min_entries >= 1 children)
                    let rect = sibling.mbr().expect("split group non-empty");
                    return Some((rect, sibling));
                }
            }
            None
        }
    }
}

/// R* forced reinsertion: remove the ~30 % of entries whose centers lie
/// farthest from the overflowing node's MBR center (never dipping below
/// `min_entries`), pushing them onto `ejected` sorted closest-first —
/// Beckmann et al.'s "close reinsert", which re-inserts the nearest
/// ejected entry first.
fn eject_far_entries(entries: &mut Vec<Entry>, config: &RTreeConfig, ejected: &mut Vec<Entry>) {
    // sj-lint: allow(panic, called only on an overflowing node, which holds > max_entries >= 1 entries)
    let mbr = Rect::mbr_of(entries.iter().map(|e| e.rect)).expect("overflowing leaf");
    let center = mbr.center();
    let p = ((entries.len() as f64 * 0.3).ceil() as usize)
        .max(1)
        .min(entries.len() - config.min_entries);
    entries.sort_by(|a, b| {
        a.rect
            .center()
            .distance(&center)
            .total_cmp(&b.rect.center().distance(&center))
    });
    // The p farthest leave. Reversing puts the farthest first and the
    // closest last; the caller's `pending.pop()` consumes from the back,
    // so the closest ejected entry is re-inserted first (close reinsert).
    let keep = entries.len() - p;
    ejected.extend(entries.drain(keep..).rev());
}

/// Guttman `ChooseLeaf` step: the child needing least area enlargement,
/// ties broken by smaller area.
fn choose_subtree(children: &[(Rect, Node)], rect: &Rect) -> usize {
    let mut best = 0usize;
    let mut best_enlargement = f64::INFINITY;
    let mut best_area = f64::INFINITY;
    for (i, (r, _)) in children.iter().enumerate() {
        let enlargement = r.enlargement(rect);
        let area = r.area();
        if enlargement < best_enlargement || (enlargement == best_enlargement && area < best_area) {
            best = i;
            best_enlargement = enlargement;
            best_area = area;
        }
    }
    best
}

fn validate_rec(
    node: &Node,
    is_root: bool,
    config: RTreeConfig,
    depth: usize,
    leaf_depths: &mut Vec<usize>,
) {
    let occupancy_ok = if is_root {
        node.len() <= config.max_entries
    } else {
        // Bulk-loaded trees may have one underfilled rightmost node per
        // level; accept any non-empty node up to max_entries. Dynamic
        // inserts always satisfy the stricter Guttman bound, checked in
        // the insert-specific tests.
        !node.is_empty() && node.len() <= config.max_entries
    };
    assert!(
        occupancy_ok,
        "node occupancy {} out of bounds (root={is_root}, M={})",
        node.len(),
        config.max_entries
    );
    match node {
        Node::Leaf(_) => leaf_depths.push(depth),
        Node::Inner(children) => {
            for (rect, child) in children {
                // sj-lint: allow(panic, validate_rec is a structure checker that itself asserts on violation)
                let child_mbr = child.mbr().expect("child non-empty");
                assert_eq!(
                    *rect, child_mbr,
                    "inner entry rect does not match child subtree MBR"
                );
                validate_rec(child, false, config, depth + 1, leaf_depths);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_rects(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0);
                let y = rng.random_range(0.0..1.0);
                let w = rng.random_range(0.0..0.05);
                let h = rng.random_range(0.0..0.05);
                Rect::new(x, y, x + w, y + h)
            })
            .collect()
    }

    fn brute_force(rects: &[Rect], q: &Rect) -> usize {
        rects.iter().filter(|r| r.intersects(q)).count()
    }

    #[test]
    fn empty_tree() {
        let t = RTree::with_defaults();
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        assert_eq!(t.count_intersecting(&Rect::new(0.0, 0.0, 1.0, 1.0)), 0);
        assert_eq!(t.size_bytes(), 0);
        t.validate();
    }

    #[test]
    fn insert_and_query_matches_brute_force() {
        for algo in [SplitAlgorithm::Linear, SplitAlgorithm::Quadratic] {
            let rects = random_rects(500, 7);
            let mut t = RTree::new(RTreeConfig {
                max_entries: 8,
                min_entries: 3,
                split: algo,
            });
            for (i, r) in rects.iter().enumerate() {
                t.insert(*r, i as u64);
            }
            assert_eq!(t.len(), 500);
            t.validate();
            assert!(t.height() >= 3, "tree should have split ({algo:?})");
            for q in random_rects(50, 99) {
                assert_eq!(
                    t.count_intersecting(&q),
                    brute_force(&rects, &q),
                    "query mismatch under {algo:?}"
                );
            }
        }
    }

    #[test]
    fn insert_respects_min_occupancy() {
        // Stricter check than validate(): every non-root node of a purely
        // dynamic tree must have >= min_entries.
        let rects = random_rects(300, 3);
        let cfg = RTreeConfig {
            max_entries: 10,
            min_entries: 4,
            split: SplitAlgorithm::Quadratic,
        };
        let mut t = RTree::new(cfg);
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        fn check(node: &Node, is_root: bool, m: usize) {
            if !is_root {
                assert!(node.len() >= m, "underfilled node: {}", node.len());
            }
            if let Node::Inner(children) = node {
                for (_, c) in children {
                    check(c, false, m);
                }
            }
        }
        check(t.root().unwrap(), true, cfg.min_entries);
    }

    #[test]
    fn search_returns_ids() {
        let mut t = RTree::with_defaults();
        t.insert(Rect::new(0.0, 0.0, 1.0, 1.0), 42);
        t.insert(Rect::new(5.0, 5.0, 6.0, 6.0), 43);
        let hits = t.search(&Rect::new(0.5, 0.5, 0.6, 0.6));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 42);
    }

    #[test]
    fn for_each_visits_everything() {
        let rects = random_rects(100, 11);
        let mut t = RTree::with_defaults();
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        let mut ids: Vec<u64> = Vec::new();
        t.for_each(|e| ids.push(e.id));
        ids.sort_unstable();
        assert_eq!(ids, (0..100u64).collect::<Vec<_>>());
    }

    #[test]
    fn size_bytes_grows_with_content() {
        let mut t = RTree::with_defaults();
        let empty = t.size_bytes();
        for (i, r) in random_rects(200, 5).iter().enumerate() {
            t.insert(*r, i as u64);
        }
        assert!(t.size_bytes() > empty);
        let s = t.stats();
        assert_eq!(s.len, 200);
        assert_eq!(s.bytes, t.size_bytes());
        assert!(s.nodes > 200 / 50);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn inserting_nan_rect_panics() {
        let mut t = RTree::with_defaults();
        // Rect::new's min/max normalization silently drops a NaN in one
        // coordinate pair, so build the pathological rect directly.
        t.insert(
            Rect {
                xlo: f64::NAN,
                ylo: 0.0,
                xhi: f64::NAN,
                yhi: 1.0,
            },
            0,
        );
    }

    #[test]
    #[should_panic(expected = "min_entries")]
    fn bad_config_rejected() {
        let _ = RTree::new(RTreeConfig {
            max_entries: 10,
            min_entries: 6,
            split: SplitAlgorithm::Quadratic,
        });
    }
}

#[cfg(test)]
mod rstar_insert_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_rects(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0);
                let y = rng.random_range(0.0..1.0);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..0.04),
                    y + rng.random_range(0.0..0.04),
                )
            })
            .collect()
    }

    fn rstar_cfg() -> RTreeConfig {
        RTreeConfig {
            max_entries: 10,
            min_entries: 4,
            split: SplitAlgorithm::RStar,
        }
    }

    #[test]
    fn rstar_insert_is_correct_and_valid() {
        let rects = random_rects(800, 31);
        let mut t = RTree::new(rstar_cfg());
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        assert_eq!(t.len(), 800);
        t.validate();
        for q in random_rects(40, 32) {
            let expected = rects.iter().filter(|r| r.intersects(&q)).count();
            assert_eq!(t.count_intersecting(&q), expected);
        }
        // Every id present exactly once despite the reinsertion shuffles.
        let mut ids = Vec::new();
        t.for_each(|e| ids.push(e.id));
        ids.sort_unstable();
        assert_eq!(ids, (0..800u64).collect::<Vec<_>>());
    }

    /// The point of R*: less node overlap than the Guttman splits on the
    /// same input. Measure the total pairwise leaf-MBR overlap area.
    #[test]
    fn rstar_reduces_leaf_overlap_vs_linear() {
        fn leaf_mbrs(node: &Node, out: &mut Vec<Rect>) {
            match node {
                Node::Leaf(_) => out.push(node.mbr().expect("non-empty")),
                Node::Inner(children) => {
                    for (_, c) in children {
                        leaf_mbrs(c, out);
                    }
                }
            }
        }
        fn total_overlap(t: &RTree) -> f64 {
            let mut leaves = Vec::new();
            if let Some(root) = t.root() {
                leaf_mbrs(root, &mut leaves);
            }
            let mut total = 0.0;
            for i in 0..leaves.len() {
                for j in (i + 1)..leaves.len() {
                    total += leaves[i].intersection_area(&leaves[j]);
                }
            }
            total
        }
        let rects = random_rects(1500, 33);
        let build = |split| {
            let mut t = RTree::new(RTreeConfig {
                max_entries: 10,
                min_entries: 4,
                split,
            });
            for (i, r) in rects.iter().enumerate() {
                t.insert(*r, i as u64);
            }
            t
        };
        let rstar = total_overlap(&build(SplitAlgorithm::RStar));
        let linear = total_overlap(&build(SplitAlgorithm::Linear));
        assert!(
            rstar < linear,
            "R* should produce less leaf overlap: {rstar:.6} vs linear {linear:.6}"
        );
    }

    #[test]
    fn rstar_tree_deletion_still_works() {
        let rects = random_rects(300, 34);
        let mut t = RTree::new(rstar_cfg());
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        for (i, r) in rects.iter().enumerate().take(150) {
            assert!(t.remove(r, i as u64));
        }
        t.validate();
        assert_eq!(t.len(), 150);
    }
}
