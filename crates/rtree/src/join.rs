//! Synchronized-traversal R-tree spatial join (Brinkhoff, Kriegel &
//! Seeger, SIGMOD 1993).
//!
//! The join descends both trees simultaneously, only visiting child pairs
//! whose MBRs intersect. Within each node pair, candidate pairing uses a
//! mini plane-sweep over entries sorted by `xlo` (the "restricting the
//! search space" optimization of the original paper), which matters at
//! realistic fanouts.

use crate::node::Node;
use crate::tree::RTree;
use sj_geo::Rect;

/// Counts the pairs `(a, b)` with `a ∈ left`, `b ∈ right` whose MBRs
/// intersect. This is the filter-step spatial join result size.
#[must_use]
pub fn join_count(left: &RTree, right: &RTree) -> u64 {
    let mut n = 0u64;
    join_pairs(left, right, |_, _| n += 1);
    n
}

/// Visits every intersecting pair `(left_id, right_id)`.
pub fn join_pairs<F: FnMut(u64, u64)>(left: &RTree, right: &RTree, mut emit: F) {
    let (Some(lr), Some(rr)) = (left.root(), right.root()) else {
        return;
    };
    let (Some(lm), Some(rm)) = (lr.mbr(), rr.mbr()) else {
        return;
    };
    if !lm.intersects(&rm) {
        return;
    }
    join_rec(lr, rr, &mut emit);
}

fn join_rec<F: FnMut(u64, u64)>(a: &Node, b: &Node, emit: &mut F) {
    match (a, b) {
        (Node::Leaf(ea), Node::Leaf(eb)) => {
            sweep_pairs(
                ea.len(),
                eb.len(),
                |i| ea[i].rect,
                |j| eb[j].rect,
                &mut |i, j| emit(ea[i].id, eb[j].id),
            );
        }
        (Node::Inner(ca), Node::Inner(cb)) => {
            sweep_pairs(ca.len(), cb.len(), |i| ca[i].0, |j| cb[j].0, &mut |i, j| {
                join_rec(&ca[i].1, &cb[j].1, emit)
            });
        }
        // Unequal heights (samples of very different sizes): descend the
        // taller side against the whole other node.
        (Node::Leaf(_), Node::Inner(cb)) => {
            for (rect, child) in cb {
                if a.mbr().is_some_and(|m| m.intersects(rect)) {
                    join_rec(a, child, emit);
                }
            }
        }
        (Node::Inner(ca), Node::Leaf(_)) => {
            for (rect, child) in ca {
                if b.mbr().is_some_and(|m| m.intersects(rect)) {
                    join_rec(child, b, emit);
                }
            }
        }
    }
}

/// Plane-sweep pairing of two small rectangle collections: sort index
/// permutations by `xlo`, advance the lagging side, and scan forward while
/// x-intervals overlap, testing y only. Emits every intersecting `(i, j)`
/// index pair exactly once.
fn sweep_pairs<RA, RB, F>(na: usize, nb: usize, rect_a: RA, rect_b: RB, on_pair: &mut F)
where
    RA: Fn(usize) -> Rect,
    RB: Fn(usize) -> Rect,
    F: FnMut(usize, usize),
{
    let mut ia: Vec<usize> = (0..na).collect();
    let mut ib: Vec<usize> = (0..nb).collect();
    ia.sort_by(|&p, &q| rect_a(p).xlo.total_cmp(&rect_a(q).xlo));
    ib.sort_by(|&p, &q| rect_b(p).xlo.total_cmp(&rect_b(q).xlo));

    let (mut i, mut j) = (0usize, 0usize);
    while i < na && j < nb {
        let ra = rect_a(ia[i]);
        let rb = rect_b(ib[j]);
        if ra.xlo <= rb.xlo {
            // `ra` opens first: scan b's entries whose xlo falls within
            // ra's x-span.
            for &jb in ib[j..].iter() {
                let rb2 = rect_b(jb);
                if rb2.xlo > ra.xhi {
                    break;
                }
                if ra.ylo <= rb2.yhi && rb2.ylo <= ra.yhi {
                    on_pair(ia[i], jb);
                }
            }
            i += 1;
        } else {
            for &ja in ia[i..].iter() {
                let ra2 = rect_a(ja);
                if ra2.xlo > rb.xhi {
                    break;
                }
                if rb.ylo <= ra2.yhi && ra2.ylo <= rb.yhi {
                    on_pair(ja, ib[j]);
                }
            }
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeConfig;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_rects(n: usize, seed: u64, max_side: f64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0);
                let y = rng.random_range(0.0..1.0);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..max_side),
                    y + rng.random_range(0.0..max_side),
                )
            })
            .collect()
    }

    fn brute_force_count(a: &[Rect], b: &[Rect]) -> u64 {
        let mut n = 0u64;
        for ra in a {
            for rb in b {
                if ra.intersects(rb) {
                    n += 1;
                }
            }
        }
        n
    }

    #[test]
    fn join_matches_brute_force() {
        let a = random_rects(400, 1, 0.05);
        let b = random_rects(300, 2, 0.05);
        let ta = RTree::bulk_load_str(RTreeConfig::default(), &a);
        let tb = RTree::bulk_load_str(RTreeConfig::default(), &b);
        assert_eq!(join_count(&ta, &tb), brute_force_count(&a, &b));
    }

    #[test]
    fn join_is_symmetric() {
        let a = random_rects(250, 3, 0.08);
        let b = random_rects(350, 4, 0.03);
        let ta = RTree::bulk_load_str(RTreeConfig::default(), &a);
        let tb = RTree::bulk_load_hilbert(RTreeConfig::default(), &b);
        assert_eq!(join_count(&ta, &tb), join_count(&tb, &ta));
    }

    #[test]
    fn join_with_unequal_heights() {
        // 5 entries vs 5000: trees of very different heights, exercising
        // the leaf × inner descent.
        let a = random_rects(5, 5, 0.5);
        let b = random_rects(5000, 6, 0.01);
        let cfg = RTreeConfig {
            max_entries: 8,
            min_entries: 3,
            ..Default::default()
        };
        let ta = RTree::bulk_load_str(cfg, &a);
        let tb = RTree::bulk_load_str(cfg, &b);
        assert!(ta.height() < tb.height());
        assert_eq!(join_count(&ta, &tb), brute_force_count(&a, &b));
        assert_eq!(join_count(&tb, &ta), brute_force_count(&b, &a));
    }

    #[test]
    fn join_with_empty_tree_is_empty() {
        let a = random_rects(100, 7, 0.1);
        let ta = RTree::bulk_load_str(RTreeConfig::default(), &a);
        let empty = RTree::with_defaults();
        assert_eq!(join_count(&ta, &empty), 0);
        assert_eq!(join_count(&empty, &ta), 0);
    }

    #[test]
    fn join_disjoint_datasets_is_empty() {
        let a: Vec<Rect> = random_rects(100, 8, 0.05);
        let b: Vec<Rect> = a.iter().map(|r| r.translated(10.0, 0.0)).collect();
        let ta = RTree::bulk_load_str(RTreeConfig::default(), &a);
        let tb = RTree::bulk_load_str(RTreeConfig::default(), &b);
        assert_eq!(join_count(&ta, &tb), 0);
    }

    #[test]
    fn join_pairs_emits_correct_ids() {
        let a = vec![Rect::new(0.0, 0.0, 1.0, 1.0), Rect::new(5.0, 5.0, 6.0, 6.0)];
        let b = vec![Rect::new(0.5, 0.5, 1.5, 1.5), Rect::new(9.0, 9.0, 9.5, 9.5)];
        let ta = RTree::bulk_load_str(RTreeConfig::default(), &a);
        let tb = RTree::bulk_load_str(RTreeConfig::default(), &b);
        let mut pairs = Vec::new();
        join_pairs(&ta, &tb, |i, j| pairs.push((i, j)));
        assert_eq!(pairs, vec![(0, 0)]);
    }

    #[test]
    fn join_self_counts_all_pairs_including_self_pairs() {
        let a = random_rects(200, 9, 0.05);
        let ta = RTree::bulk_load_str(RTreeConfig::default(), &a);
        let n = join_count(&ta, &ta);
        // Self-join includes each element paired with itself.
        assert!(n >= a.len() as u64);
        assert_eq!(n, brute_force_count(&a, &a));
    }

    #[test]
    fn join_point_datasets() {
        // Degenerate rectangles: only exact coincidences (or containment)
        // join.
        let pts: Vec<Rect> = (0..50)
            .map(|i| Rect::from_point(sj_geo::Point::new(f64::from(i), f64::from(i))))
            .collect();
        let boxes = vec![Rect::new(-0.5, -0.5, 10.5, 10.5)];
        let tp = RTree::bulk_load_str(RTreeConfig::default(), &pts);
        let tb = RTree::bulk_load_str(RTreeConfig::default(), &boxes);
        assert_eq!(join_count(&tp, &tb), 11); // points 0..=10 inside
    }

    #[test]
    fn join_dynamic_vs_bulk_trees_agree() {
        let a = random_rects(600, 10, 0.04);
        let b = random_rects(600, 11, 0.04);
        let ta_bulk = RTree::bulk_load_str(RTreeConfig::default(), &a);
        let mut ta_dyn = RTree::with_defaults();
        for (i, r) in a.iter().enumerate() {
            ta_dyn.insert(*r, i as u64);
        }
        let tb = RTree::bulk_load_str(RTreeConfig::default(), &b);
        assert_eq!(join_count(&ta_bulk, &tb), join_count(&ta_dyn, &tb));
    }
}

/// Parallel [`join_count`]: splits the synchronized traversal into
/// independent node-pair tasks and counts them on `threads` OS threads
/// (`std::thread::scope`; no extra dependencies). Produces exactly the
/// same count as the sequential join.
///
/// Worth it for large joins (the full-scale CAS ⋈ CAR exact join counts
/// ~10⁹ pairs); for small trees the sequential version wins.
#[must_use]
pub fn join_count_parallel(left: &RTree, right: &RTree, threads: usize) -> u64 {
    let threads = threads.max(1);
    let (Some(lr), Some(rr)) = (left.root(), right.root()) else {
        return 0;
    };
    if threads == 1 {
        return join_count(left, right);
    }

    // Build a task list of intersecting node pairs, descending until
    // there are enough tasks to balance across threads.
    let mut tasks: Vec<(&Node, &Node)> = vec![(lr, rr)];
    let target = threads * 8;
    loop {
        if tasks.len() >= target {
            break;
        }
        // Expand the task whose subtrees are largest.
        let Some(pos) = tasks
            .iter()
            .position(|(a, b)| matches!((a, b), (Node::Inner(_), Node::Inner(_))))
        else {
            break;
        };
        let (a, b) = tasks.swap_remove(pos);
        let (Node::Inner(ca), Node::Inner(cb)) = (a, b) else {
            // sj-lint: allow(panic, position() above selected this pair precisely because both are Inner)
            unreachable!("position() matched Inner/Inner");
        };
        let mut expanded = false;
        for (ra, child_a) in ca {
            for (rb, child_b) in cb {
                if ra.intersects(rb) {
                    tasks.push((child_a, child_b));
                    expanded = true;
                }
            }
        }
        if !expanded && tasks.is_empty() {
            return 0;
        }
    }

    let chunk = tasks.len().div_ceil(threads);
    let mut total = 0u64;
    std::thread::scope(|scope| {
        let handles: Vec<_> = tasks
            .chunks(chunk.max(1))
            .map(|chunk| {
                scope.spawn(move || {
                    let mut local = 0u64;
                    for (a, b) in chunk {
                        join_rec(a, b, &mut |_, _| local += 1);
                    }
                    local
                })
            })
            .collect();
        for h in handles {
            total += h.join().unwrap_or_else(|e| std::panic::resume_unwind(e));
        }
    });
    total
}

#[cfg(test)]
mod parallel_tests {
    use super::*;
    use crate::tree::RTreeConfig;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_rects(n: usize, seed: u64, max_side: f64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0);
                let y = rng.random_range(0.0..1.0);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..max_side),
                    y + rng.random_range(0.0..max_side),
                )
            })
            .collect()
    }

    #[test]
    fn parallel_join_matches_sequential() {
        let a = random_rects(5000, 41, 0.02);
        let b = random_rects(5000, 42, 0.02);
        let ta = RTree::bulk_load_str(RTreeConfig::default(), &a);
        let tb = RTree::bulk_load_str(RTreeConfig::default(), &b);
        let sequential = join_count(&ta, &tb);
        for threads in [1, 2, 4, 7] {
            assert_eq!(
                join_count_parallel(&ta, &tb, threads),
                sequential,
                "{threads} threads"
            );
        }
    }

    #[test]
    fn parallel_join_small_and_empty_trees() {
        let a = random_rects(3, 43, 0.5);
        let ta = RTree::bulk_load_str(RTreeConfig::default(), &a);
        let empty = RTree::with_defaults();
        assert_eq!(join_count_parallel(&ta, &empty, 4), 0);
        assert_eq!(join_count_parallel(&empty, &ta, 4), 0);
        assert_eq!(join_count_parallel(&ta, &ta, 4), join_count(&ta, &ta));
        assert_eq!(
            join_count_parallel(&ta, &ta, 0),
            join_count(&ta, &ta),
            "0 clamps to 1"
        );
    }

    #[test]
    fn parallel_join_disjoint_is_zero() {
        let a = random_rects(2000, 44, 0.01);
        let b: Vec<Rect> = a.iter().map(|r| r.translated(5.0, 0.0)).collect();
        let ta = RTree::bulk_load_str(RTreeConfig::default(), &a);
        let tb = RTree::bulk_load_str(RTreeConfig::default(), &b);
        assert_eq!(join_count_parallel(&ta, &tb, 4), 0);
    }
}
