use sj_geo::Rect;

/// Node splitting algorithm used on overflow during dynamic insertion
/// (Guttman, SIGMOD 1984, Section 3.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitAlgorithm {
    /// Linear-cost split: pick the pair of seeds with the greatest
    /// normalized separation, then assign remaining entries greedily.
    Linear,
    /// Quadratic-cost split: pick the seed pair wasting the most area if
    /// grouped together, then repeatedly assign the entry with the largest
    /// preference difference. Default, matching common practice.
    #[default]
    Quadratic,
    /// R*-tree topological split (Beckmann et al., SIGMOD 1990): choose
    /// the split axis minimizing the summed margins of all candidate
    /// distributions, then the distribution minimizing overlap (ties on
    /// area). Produces squarer, less overlapping nodes than Guttman's
    /// splits at `O(M log M)` cost. Selecting this policy also enables
    /// R* forced reinsertion in [`crate::RTree::insert`]: the first leaf
    /// overflow of an insertion ejects the ~30 % of entries farthest from
    /// the node center and re-inserts them (close-reinsert order) instead
    /// of splitting immediately.
    RStar,
}

/// Splits `items` into two groups, each with at least `min_entries`
/// elements, according to the chosen algorithm. `rect_of` projects an item
/// onto its MBR.
///
/// # Panics
/// Panics if `items.len() < 2 * min_entries` — the caller only splits
/// nodes that overflowed past `max_entries >= 2 * min_entries`.
pub fn split<T, F>(
    algo: SplitAlgorithm,
    items: Vec<T>,
    min_entries: usize,
    rect_of: F,
) -> (Vec<T>, Vec<T>)
where
    F: Fn(&T) -> Rect,
{
    assert!(
        items.len() >= 2 * min_entries,
        "cannot split {} items with min_entries {min_entries}",
        items.len()
    );
    match algo {
        SplitAlgorithm::Linear => linear_split(items, min_entries, rect_of),
        SplitAlgorithm::Quadratic => quadratic_split(items, min_entries, rect_of),
        SplitAlgorithm::RStar => rstar_split(items, min_entries, rect_of),
    }
}

/// R* topological split: for each axis, sort by lower then by upper
/// coordinate and evaluate every legal split position; pick the axis with
/// the least total margin, then the position with the least overlap
/// (ties: least total area).
fn rstar_split<T, F>(items: Vec<T>, min_entries: usize, rect_of: F) -> (Vec<T>, Vec<T>)
where
    F: Fn(&T) -> Rect,
{
    let rects: Vec<Rect> = items.iter().map(&rect_of).collect();
    let n = rects.len();

    // Candidate orderings: (axis, by lower/upper edge).
    type SortKey = Box<dyn Fn(&Rect) -> f64>;
    let orderings: [SortKey; 4] = [
        Box::new(|r: &Rect| r.xlo),
        Box::new(|r: &Rect| r.xhi),
        Box::new(|r: &Rect| r.ylo),
        Box::new(|r: &Rect| r.yhi),
    ];

    // For an ordering, the margin sum over all legal split positions, and
    // the best (overlap, area, k) among them.
    struct AxisEval {
        margin_sum: f64,
        best_overlap: f64,
        best_area: f64,
        best_k: usize,
        perm: Vec<usize>,
    }
    let evaluate = |key: &dyn Fn(&Rect) -> f64| -> AxisEval {
        let mut perm: Vec<usize> = (0..n).collect();
        perm.sort_by(|&a, &b| key(&rects[a]).total_cmp(&key(&rects[b])));
        // Prefix/suffix MBRs for O(n) evaluation of all split points.
        let mut prefix = Vec::with_capacity(n);
        let mut acc = rects[perm[0]];
        for &i in &perm {
            acc = acc.union(&rects[i]);
            prefix.push(acc);
        }
        let mut suffix = vec![rects[perm[n - 1]]; n];
        let mut acc = rects[perm[n - 1]];
        for i in (0..n).rev() {
            acc = acc.union(&rects[perm[i]]);
            suffix[i] = acc;
        }
        let mut margin_sum = 0.0;
        let mut best = (f64::INFINITY, f64::INFINITY, min_entries);
        for k in min_entries..=(n - min_entries) {
            let (g1, g2) = (prefix[k - 1], suffix[k]);
            margin_sum += g1.margin() + g2.margin();
            let overlap = g1.intersection_area(&g2);
            let area = g1.area() + g2.area();
            if (overlap, area) < (best.0, best.1) {
                best = (overlap, area, k);
            }
        }
        AxisEval {
            margin_sum,
            best_overlap: best.0,
            best_area: best.1,
            best_k: best.2,
            perm,
        }
    };

    let evals: Vec<AxisEval> = orderings.iter().map(|key| evaluate(key.as_ref())).collect();
    // Axis choice: minimum margin sum between x (orderings 0,1) and
    // y (orderings 2,3); within the winning axis, the better ordering by
    // (overlap, area).
    let x_margin = evals[0].margin_sum + evals[1].margin_sum;
    let y_margin = evals[2].margin_sum + evals[3].margin_sum;
    let candidates: &[usize] = if x_margin <= y_margin {
        &[0, 1]
    } else {
        &[2, 3]
    };
    let winner = *candidates
        .iter()
        .min_by(|&&a, &&b| {
            (evals[a].best_overlap, evals[a].best_area)
                .partial_cmp(&(evals[b].best_overlap, evals[b].best_area))
                // sj-lint: allow(panic, metrics are sums/products of finite MBR coordinates, asserted finite on insert)
                .expect("finite split metrics")
        })
        // sj-lint: allow(panic, candidates is a literal two-element slice, min_by of it is Some)
        .expect("two candidates");
    let k = evals[winner].best_k;
    let in_first: Vec<bool> = {
        let mut v = vec![false; n];
        for &i in &evals[winner].perm[..k] {
            v[i] = true;
        }
        v
    };
    let mut g1 = Vec::with_capacity(k);
    let mut g2 = Vec::with_capacity(n - k);
    for (i, item) in items.into_iter().enumerate() {
        if in_first[i] {
            g1.push(item);
        } else {
            g2.push(item);
        }
    }
    (g1, g2)
}

/// Guttman's `PickSeeds` for the quadratic split: the pair whose combined
/// MBR wastes the most area.
fn pick_seeds_quadratic(rects: &[Rect]) -> (usize, usize) {
    let mut worst = f64::NEG_INFINITY;
    let mut pair = (0, 1);
    for i in 0..rects.len() {
        for j in (i + 1)..rects.len() {
            let waste = rects[i].union(&rects[j]).area() - rects[i].area() - rects[j].area();
            if waste > worst {
                worst = waste;
                pair = (i, j);
            }
        }
    }
    pair
}

/// Guttman's `LinearPickSeeds`: per dimension, find the entry with the
/// highest low side and the one with the lowest high side; normalize the
/// separation by the extent width; take the dimension with the greatest
/// normalized separation.
fn pick_seeds_linear(rects: &[Rect]) -> (usize, usize) {
    let n = rects.len();
    let mut best = f64::NEG_INFINITY;
    let mut pair = (0, 1);
    for dim in 0..2 {
        let lo = |r: &Rect| if dim == 0 { r.xlo } else { r.ylo };
        let hi = |r: &Rect| if dim == 0 { r.xhi } else { r.yhi };
        let mut highest_lo = 0usize;
        let mut lowest_hi = 0usize;
        let (mut min_lo, mut max_hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, r) in rects.iter().enumerate() {
            if lo(r) > lo(&rects[highest_lo]) {
                highest_lo = i;
            }
            if hi(r) < hi(&rects[lowest_hi]) {
                lowest_hi = i;
            }
            min_lo = min_lo.min(lo(r));
            max_hi = max_hi.max(hi(r));
        }
        let width = (max_hi - min_lo).max(f64::MIN_POSITIVE);
        let separation = (lo(&rects[highest_lo]) - hi(&rects[lowest_hi])) / width;
        if separation > best && highest_lo != lowest_hi {
            best = separation;
            pair = (lowest_hi, highest_lo);
        }
    }
    if pair.0 == pair.1 {
        // All rects identical in both dimensions: any split is as good.
        pair = (0, n - 1);
    }
    pair
}

fn quadratic_split<T, F>(items: Vec<T>, min_entries: usize, rect_of: F) -> (Vec<T>, Vec<T>)
where
    F: Fn(&T) -> Rect,
{
    let rects: Vec<Rect> = items.iter().map(&rect_of).collect();
    let (s1, s2) = pick_seeds_quadratic(&rects);
    distribute(items, rects, (s1, s2), min_entries, true)
}

fn linear_split<T, F>(items: Vec<T>, min_entries: usize, rect_of: F) -> (Vec<T>, Vec<T>)
where
    F: Fn(&T) -> Rect,
{
    let rects: Vec<Rect> = items.iter().map(&rect_of).collect();
    let (s1, s2) = pick_seeds_linear(&rects);
    distribute(items, rects, (s1, s2), min_entries, false)
}

/// Distributes the non-seed items into the two groups. With
/// `pick_next_quadratic` it uses Guttman's `PickNext` (max preference
/// difference); otherwise items are assigned in input order (linear cost).
fn distribute<T>(
    items: Vec<T>,
    rects: Vec<Rect>,
    (s1, s2): (usize, usize),
    min_entries: usize,
    pick_next_quadratic: bool,
) -> (Vec<T>, Vec<T>) {
    let n = items.len();
    let mut assigned = vec![false; n];
    assigned[s1] = true;
    assigned[s2] = true;
    let mut g1_idx = vec![s1];
    let mut g2_idx = vec![s2];
    let mut mbr1 = rects[s1];
    let mut mbr2 = rects[s2];
    let mut remaining = n - 2;

    while remaining > 0 {
        // If one group must absorb everything left to reach min occupancy,
        // short-circuit.
        if g1_idx.len() + remaining == min_entries {
            for (i, a) in assigned.iter_mut().enumerate() {
                if !*a {
                    *a = true;
                    mbr1 = mbr1.union(&rects[i]);
                    g1_idx.push(i);
                }
            }
            break;
        }
        if g2_idx.len() + remaining == min_entries {
            for (i, a) in assigned.iter_mut().enumerate() {
                if !*a {
                    *a = true;
                    mbr2 = mbr2.union(&rects[i]);
                    g2_idx.push(i);
                }
            }
            break;
        }

        let next = if pick_next_quadratic {
            // PickNext: the unassigned entry maximizing |d1 - d2|.
            let mut best = 0usize;
            let mut best_diff = f64::NEG_INFINITY;
            for (i, a) in assigned.iter().enumerate() {
                if *a {
                    continue;
                }
                let d1 = mbr1.enlargement(&rects[i]);
                let d2 = mbr2.enlargement(&rects[i]);
                let diff = (d1 - d2).abs();
                if diff > best_diff {
                    best_diff = diff;
                    best = i;
                }
            }
            best
        } else {
            // Linear: first unassigned in input order.
            // sj-lint: allow(panic, loop condition guarantees remaining > 0 unassigned items)
            assigned.iter().position(|a| !*a).expect("remaining > 0")
        };

        let d1 = mbr1.enlargement(&rects[next]);
        let d2 = mbr2.enlargement(&rects[next]);
        // Tie-break on smaller area, then fewer entries (Guttman).
        let to_first = match d1.partial_cmp(&d2) {
            Some(std::cmp::Ordering::Less) => true,
            Some(std::cmp::Ordering::Greater) => false,
            _ => {
                if mbr1.area() != mbr2.area() {
                    mbr1.area() < mbr2.area()
                } else {
                    g1_idx.len() <= g2_idx.len()
                }
            }
        };
        assigned[next] = true;
        if to_first {
            mbr1 = mbr1.union(&rects[next]);
            g1_idx.push(next);
        } else {
            mbr2 = mbr2.union(&rects[next]);
            g2_idx.push(next);
        }
        remaining -= 1;
    }

    // Materialize the two groups, consuming `items` in one pass.
    let mut where_to = vec![0u8; n];
    for &i in &g2_idx {
        where_to[i] = 1;
    }
    let mut g1 = Vec::with_capacity(g1_idx.len());
    let mut g2 = Vec::with_capacity(g2_idx.len());
    for (i, item) in items.into_iter().enumerate() {
        if where_to[i] == 0 {
            g1.push(item);
        } else {
            g2.push(item);
        }
    }
    (g1, g2)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rects_line(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                Rect::new(x, 0.0, x + 0.5, 1.0)
            })
            .collect()
    }

    #[test]
    fn quadratic_split_respects_min_entries() {
        for n in [4usize, 5, 10, 51] {
            let items = rects_line(n);
            let min = 2;
            let (g1, g2) = split(SplitAlgorithm::Quadratic, items, min, |r| *r);
            assert!(g1.len() >= min, "g1 too small: {}", g1.len());
            assert!(g2.len() >= min, "g2 too small: {}", g2.len());
            assert_eq!(g1.len() + g2.len(), n);
        }
    }

    #[test]
    fn linear_split_respects_min_entries() {
        for n in [4usize, 5, 10, 51] {
            let items = rects_line(n);
            let min = 2;
            let (g1, g2) = split(SplitAlgorithm::Linear, items, min, |r| *r);
            assert!(g1.len() >= min);
            assert!(g2.len() >= min);
            assert_eq!(g1.len() + g2.len(), n);
        }
    }

    #[test]
    fn split_separates_two_clusters() {
        // Two well-separated clusters: a sane split puts each cluster in
        // its own group.
        let mut items: Vec<Rect> = (0..5)
            .map(|i| Rect::new(f64::from(i) * 0.01, 0.0, f64::from(i) * 0.01 + 0.005, 0.01))
            .collect();
        items.extend((0..5).map(|i| {
            Rect::new(
                100.0 + f64::from(i) * 0.01,
                0.0,
                100.0 + f64::from(i) * 0.01 + 0.005,
                0.01,
            )
        }));
        for algo in [SplitAlgorithm::Linear, SplitAlgorithm::Quadratic] {
            let (g1, g2) = split(algo, items.clone(), 2, |r| *r);
            let m1 = Rect::mbr_of(g1.iter().copied()).unwrap();
            let m2 = Rect::mbr_of(g2.iter().copied()).unwrap();
            assert!(
                !m1.intersects(&m2),
                "{algo:?} split should separate disjoint clusters"
            );
        }
    }

    #[test]
    fn split_identical_rects_is_balancedish() {
        let items = vec![Rect::new(0.0, 0.0, 1.0, 1.0); 8];
        for algo in [SplitAlgorithm::Linear, SplitAlgorithm::Quadratic] {
            let (g1, g2) = split(algo, items.clone(), 3, |r| *r);
            assert!(g1.len() >= 3 && g2.len() >= 3);
        }
    }

    #[test]
    #[should_panic(expected = "cannot split")]
    fn split_too_few_items_panics() {
        let _ = split(SplitAlgorithm::Quadratic, rects_line(3), 2, |r| *r);
    }
}

#[cfg(test)]
mod rstar_tests {
    use super::*;

    fn rects_line(n: usize) -> Vec<Rect> {
        (0..n)
            .map(|i| {
                let x = i as f64;
                Rect::new(x, 0.0, x + 0.5, 1.0)
            })
            .collect()
    }

    #[test]
    fn rstar_split_respects_min_entries() {
        for n in [4usize, 5, 10, 51] {
            let (g1, g2) = split(SplitAlgorithm::RStar, rects_line(n), 2, |r| *r);
            assert!(g1.len() >= 2 && g2.len() >= 2);
            assert_eq!(g1.len() + g2.len(), n);
        }
    }

    #[test]
    fn rstar_split_on_a_line_has_zero_overlap() {
        // Rectangles along the x axis: the optimal split is a clean cut
        // with zero group overlap.
        let items = rects_line(10);
        let (g1, g2) = split(SplitAlgorithm::RStar, items, 3, |r| *r);
        let m1 = Rect::mbr_of(g1.iter().copied()).unwrap();
        let m2 = Rect::mbr_of(g2.iter().copied()).unwrap();
        assert_eq!(m1.intersection_area(&m2), 0.0);
    }

    #[test]
    fn rstar_no_worse_overlap_than_linear() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(88);
        let items: Vec<Rect> = (0..40)
            .map(|_| {
                let x = rng.random_range(0.0..1.0);
                let y = rng.random_range(0.0..1.0);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..0.2),
                    y + rng.random_range(0.0..0.2),
                )
            })
            .collect();
        let overlap = |algo| {
            let (g1, g2) = split(algo, items.clone(), 8, |r: &Rect| *r);
            let m1 = Rect::mbr_of(g1.iter().copied()).unwrap();
            let m2 = Rect::mbr_of(g2.iter().copied()).unwrap();
            m1.intersection_area(&m2)
        };
        assert!(overlap(SplitAlgorithm::RStar) <= overlap(SplitAlgorithm::Linear) + 1e-12);
    }

    #[test]
    fn rstar_identical_rects() {
        let items = vec![Rect::new(0.0, 0.0, 1.0, 1.0); 9];
        let (g1, g2) = split(SplitAlgorithm::RStar, items, 3, |r| *r);
        assert!(g1.len() >= 3 && g2.len() >= 3);
        assert_eq!(g1.len() + g2.len(), 9);
    }
}
