//! Bulk loading: Sort-Tile-Recursive (STR; Leutenegger et al., 1997) and
//! Hilbert packing (Kamel & Faloutsos, CIKM 1993 — the paper's ref [15]).
//!
//! Both algorithms pack leaves to `max_entries` occupancy and then build
//! the upper levels by packing the level below, producing compact trees
//! whose build time and size serve as the baselines for the paper's
//! relative metrics.

use crate::node::{Entry, Node};
use crate::tree::{RTree, RTreeConfig};
use sj_geo::{Extent, Rect};

impl RTree {
    /// Bulk-loads with Sort-Tile-Recursive packing: sort by center-x, cut
    /// into vertical slices of `ceil(sqrt(n/M))` tiles, sort each slice by
    /// center-y, emit runs of `M` as leaves.
    #[must_use]
    pub fn bulk_load_str(config: RTreeConfig, rects: &[Rect]) -> Self {
        config.validate();
        if rects.is_empty() {
            return RTree::from_root(None, config);
        }
        let mut entries: Vec<Entry> = rects
            .iter()
            .enumerate()
            .map(|(i, r)| {
                assert!(r.is_finite(), "cannot index a non-finite rectangle");
                Entry::new(*r, i as u64)
            })
            .collect();

        let m = config.max_entries;
        let n = entries.len();
        let leaf_count = n.div_ceil(m);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let slices = (leaf_count as f64).sqrt().ceil() as usize;
        let per_slice = n.div_ceil(slices);

        entries.sort_by(|a, b| a.rect.center().x.total_cmp(&b.rect.center().x));
        let mut leaves: Vec<Node> = Vec::with_capacity(leaf_count);
        for slice in entries.chunks_mut(per_slice) {
            slice.sort_by(|a, b| a.rect.center().y.total_cmp(&b.rect.center().y));
            for run in slice.chunks(m) {
                leaves.push(Node::Leaf(run.to_vec()));
            }
        }
        Self::from_root(Some(pack_levels(leaves, m)), config)
    }

    /// Bulk-loads in Hilbert order of MBR centers: sort by Hilbert key,
    /// emit runs of `M` as leaves, pack upward.
    #[must_use]
    pub fn bulk_load_hilbert(config: RTreeConfig, rects: &[Rect]) -> Self {
        config.validate();
        if rects.is_empty() {
            return RTree::from_root(None, config);
        }
        for r in rects {
            assert!(r.is_finite(), "cannot index a non-finite rectangle");
        }
        // sj-lint: allow(panic, rects.is_empty() returned above, so of_rects sees at least one rect)
        let extent = Extent::of_rects(rects).expect("non-empty");
        let perm = sj_hilbert::sort_by_hilbert(sj_hilbert::DEFAULT_ORDER, &extent, rects);
        let m = config.max_entries;
        let mut leaves: Vec<Node> = Vec::with_capacity(rects.len().div_ceil(m));
        for run in perm.chunks(m) {
            let entries: Vec<Entry> = run
                .iter()
                .map(|&i| Entry::new(rects[i], i as u64))
                .collect();
            leaves.push(Node::Leaf(entries));
        }
        Self::from_root(Some(pack_levels(leaves, m)), config)
    }
}

/// Packs a level of nodes into parents of at most `m` children until a
/// single root remains. Input order is preserved, so the spatial ordering
/// established at the leaf level carries upward.
fn pack_levels(mut level: Vec<Node>, m: usize) -> Node {
    while level.len() > 1 {
        let mut parents = Vec::with_capacity(level.len().div_ceil(m));
        let mut iter = level.into_iter().peekable();
        while iter.peek().is_some() {
            let children: Vec<(Rect, Node)> = iter
                .by_ref()
                .take(m)
                // sj-lint: allow(panic, every packed node was built from a non-empty chunk/run)
                .map(|n| (n.mbr().expect("packed nodes are non-empty"), n))
                .collect();
            parents.push(Node::Inner(children));
        }
        level = parents;
    }
    // sj-lint: allow(panic, the while loop exits only when exactly one node remains)
    level.into_iter().next().expect("at least one node")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_rects(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0);
                let y = rng.random_range(0.0..1.0);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..0.02),
                    y + rng.random_range(0.0..0.02),
                )
            })
            .collect()
    }

    #[test]
    fn str_bulk_load_valid_and_queryable() {
        let rects = random_rects(1234, 42);
        let t = RTree::bulk_load_str(RTreeConfig::default(), &rects);
        assert_eq!(t.len(), 1234);
        t.validate();
        let q = Rect::new(0.2, 0.2, 0.4, 0.4);
        let expected = rects.iter().filter(|r| r.intersects(&q)).count();
        assert_eq!(t.count_intersecting(&q), expected);
    }

    #[test]
    fn hilbert_bulk_load_valid_and_queryable() {
        let rects = random_rects(1234, 43);
        let t = RTree::bulk_load_hilbert(RTreeConfig::default(), &rects);
        assert_eq!(t.len(), 1234);
        t.validate();
        let q = Rect::new(0.6, 0.1, 0.9, 0.5);
        let expected = rects.iter().filter(|r| r.intersects(&q)).count();
        assert_eq!(t.count_intersecting(&q), expected);
    }

    #[test]
    fn bulk_load_empty() {
        let t = RTree::bulk_load_str(RTreeConfig::default(), &[]);
        assert!(t.is_empty());
        let t = RTree::bulk_load_hilbert(RTreeConfig::default(), &[]);
        assert!(t.is_empty());
    }

    #[test]
    fn bulk_load_single() {
        let rects = vec![Rect::new(0.0, 0.0, 1.0, 1.0)];
        let t = RTree::bulk_load_str(RTreeConfig::default(), &rects);
        assert_eq!(t.len(), 1);
        assert_eq!(t.height(), 1);
        t.validate();
    }

    #[test]
    fn bulk_load_exact_multiple_of_fanout() {
        let cfg = RTreeConfig {
            max_entries: 4,
            min_entries: 2,
            ..Default::default()
        };
        let rects = random_rects(64, 9);
        let t = RTree::bulk_load_str(cfg, &rects);
        t.validate();
        assert_eq!(t.len(), 64);
        // 64 entries at fanout 4 pack into exactly 16 leaves, 4 inners, 1 root.
        assert_eq!(t.height(), 3);
    }

    #[test]
    fn bulk_loads_preserve_ids() {
        let rects = random_rects(100, 5);
        for t in [
            RTree::bulk_load_str(RTreeConfig::default(), &rects),
            RTree::bulk_load_hilbert(RTreeConfig::default(), &rects),
        ] {
            let mut seen = vec![false; rects.len()];
            t.for_each(|e| {
                let idx = usize::try_from(e.id).unwrap();
                assert_eq!(e.rect, rects[idx], "entry rect must match source");
                assert!(!seen[idx], "duplicate id");
                seen[idx] = true;
            });
            assert!(seen.iter().all(|&s| s));
        }
    }

    #[test]
    fn str_is_more_compact_than_dynamic() {
        // Packed trees should not be larger than dynamically built ones.
        let rects = random_rects(2000, 77);
        let packed = RTree::bulk_load_str(RTreeConfig::default(), &rects);
        let mut dynamic = RTree::with_defaults();
        for (i, r) in rects.iter().enumerate() {
            dynamic.insert(*r, i as u64);
        }
        assert!(packed.size_bytes() <= dynamic.size_bytes());
        assert!(packed.height() <= dynamic.height());
    }
}
