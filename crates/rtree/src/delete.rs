//! Deletion (Guttman `Delete` + `CondenseTree`): remove an entry, dissolve
//! underfilled nodes along the path, and reinsert their orphaned entries.

use crate::node::{Entry, Node};
use crate::tree::{RTree, RTreeConfig};
use sj_geo::Rect;

impl RTree {
    /// Removes one entry matching `(rect, id)` exactly. Returns `true` if
    /// an entry was found and removed.
    ///
    /// Underfilled nodes on the deletion path are dissolved and their
    /// entries reinserted (`CondenseTree`); a root left with a single
    /// inner child is shortened.
    pub fn remove(&mut self, rect: &Rect, id: u64) -> bool {
        let prior_len = self.len();
        let Some(mut root) = self.take_root() else {
            return false;
        };
        let mut orphans: Vec<Entry> = Vec::new();
        let config = self.config();
        let removed = delete_rec(&mut root, rect, id, &config, &mut orphans, true);
        if !removed {
            debug_assert!(orphans.is_empty());
            self.set_state(Some(root), prior_len);
            return false;
        }

        // Shorten the root while it is an inner node with one child, and
        // drop it entirely when nothing is left.
        loop {
            match root {
                Node::Inner(ref mut children) if children.len() == 1 => {
                    // sj-lint: allow(panic, the guard just checked len() == 1)
                    root = children.pop().expect("one child").1;
                }
                Node::Inner(ref children) if children.is_empty() => {
                    self.set_state(None, 0);
                    break;
                }
                Node::Leaf(ref entries) if entries.is_empty() => {
                    self.set_state(None, 0);
                    break;
                }
                _ => {
                    // Entries currently reachable: everything except the
                    // removed one and the orphans awaiting reinsertion.
                    self.set_state(Some(root), prior_len - 1 - orphans.len());
                    break;
                }
            }
        }

        // Reinsert orphans through the normal insertion path (each call
        // bumps `len` back up; the final count is prior_len - 1).
        for e in orphans {
            self.insert(e.rect, e.id);
        }
        debug_assert_eq!(self.len(), prior_len - 1);
        removed
    }

    /// Removes every entry whose MBR equals `rect` (any id). Returns the
    /// number of entries removed. Convenience built on [`Self::remove`].
    pub fn remove_all_with_rect(&mut self, rect: &Rect) -> usize {
        let mut ids = Vec::new();
        self.query_intersecting(rect, |e| {
            if e.rect == *rect {
                ids.push(e.id);
            }
        });
        let mut removed = 0;
        for id in ids {
            if self.remove(rect, id) {
                removed += 1;
            }
        }
        removed
    }
}

/// Recursive delete. Returns `true` when the entry was removed somewhere in
/// this subtree. Underfilled non-root nodes push their residual entries
/// into `orphans` and empty themselves; the parent prunes empty children.
fn delete_rec(
    node: &mut Node,
    rect: &Rect,
    id: u64,
    config: &RTreeConfig,
    orphans: &mut Vec<Entry>,
    is_root: bool,
) -> bool {
    match node {
        Node::Leaf(entries) => {
            let Some(pos) = entries.iter().position(|e| e.id == id && e.rect == *rect) else {
                return false;
            };
            entries.swap_remove(pos);
            if !is_root && entries.len() < config.min_entries {
                orphans.append(entries);
            }
            true
        }
        Node::Inner(children) => {
            let mut removed = false;
            for (child_rect, child) in children.iter_mut() {
                if !child_rect.intersects(rect) {
                    continue;
                }
                if delete_rec(child, rect, id, config, orphans, false) {
                    if let Some(mbr) = child.mbr() {
                        *child_rect = mbr;
                    }
                    removed = true;
                    break;
                }
            }
            if removed {
                children.retain(|(_, c)| !c.is_empty());
                if !is_root && children.len() < config.min_entries {
                    // Dissolve this node: orphan every remaining data
                    // entry in the subtree.
                    for (_, child) in children.drain(..) {
                        collect_entries(child, orphans);
                    }
                }
            }
            removed
        }
    }
}

fn collect_entries(node: Node, out: &mut Vec<Entry>) {
    match node {
        Node::Leaf(entries) => out.extend(entries),
        Node::Inner(children) => {
            for (_, child) in children {
                collect_entries(child, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_rects(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0);
                let y = rng.random_range(0.0..1.0);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..0.05),
                    y + rng.random_range(0.0..0.05),
                )
            })
            .collect()
    }

    #[test]
    fn remove_single_entry() {
        let mut t = RTree::with_defaults();
        let r = Rect::new(0.1, 0.1, 0.2, 0.2);
        t.insert(r, 7);
        assert!(t.remove(&r, 7));
        assert!(t.is_empty());
        assert_eq!(t.height(), 0);
        t.validate();
        assert!(!t.remove(&r, 7), "double delete returns false");
    }

    #[test]
    fn remove_missing_entry_is_noop() {
        let mut t = RTree::with_defaults();
        t.insert(Rect::new(0.0, 0.0, 1.0, 1.0), 1);
        assert!(
            !t.remove(&Rect::new(0.5, 0.5, 0.6, 0.6), 1),
            "rect must match exactly"
        );
        assert!(
            !t.remove(&Rect::new(0.0, 0.0, 1.0, 1.0), 2),
            "id must match"
        );
        assert_eq!(t.len(), 1);
        t.validate();
    }

    #[test]
    fn remove_half_then_queries_stay_correct() {
        let rects = random_rects(400, 13);
        let cfg = RTreeConfig {
            max_entries: 8,
            min_entries: 3,
            ..Default::default()
        };
        let mut t = RTree::new(cfg);
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        // Remove every even id.
        for (i, r) in rects.iter().enumerate().step_by(2) {
            assert!(t.remove(r, i as u64), "entry {i} must be removable");
            t.validate();
        }
        assert_eq!(t.len(), 200);
        let q = Rect::new(0.2, 0.2, 0.6, 0.6);
        let expected = rects
            .iter()
            .enumerate()
            .filter(|(i, r)| i % 2 == 1 && r.intersects(&q))
            .count();
        assert_eq!(t.count_intersecting(&q), expected);
    }

    #[test]
    fn remove_everything_in_random_order() {
        let rects = random_rects(150, 14);
        let cfg = RTreeConfig {
            max_entries: 6,
            min_entries: 2,
            ..Default::default()
        };
        let mut t = RTree::new(cfg);
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        let mut order: Vec<usize> = (0..rects.len()).collect();
        let mut rng = StdRng::seed_from_u64(15);
        for i in (1..order.len()).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        for &i in &order {
            assert!(t.remove(&rects[i], i as u64));
        }
        assert!(t.is_empty());
        t.validate();
    }

    #[test]
    fn remove_from_bulk_loaded_tree() {
        let rects = random_rects(300, 16);
        let mut t = RTree::bulk_load_str(RTreeConfig::default(), &rects);
        assert!(t.remove(&rects[17], 17));
        assert!(t.remove(&rects[250], 250));
        assert_eq!(t.len(), 298);
        t.validate();
        let q = Rect::new(0.0, 0.0, 1.0, 1.0);
        assert_eq!(t.count_intersecting(&q), 298);
    }

    #[test]
    fn remove_all_with_rect_handles_duplicates() {
        let mut t = RTree::with_defaults();
        let r = Rect::new(0.3, 0.3, 0.4, 0.4);
        for id in 0..5 {
            t.insert(r, id);
        }
        t.insert(Rect::new(0.7, 0.7, 0.8, 0.8), 99);
        assert_eq!(t.remove_all_with_rect(&r), 5);
        assert_eq!(t.len(), 1);
        t.validate();
    }
}
