//! Nearest-neighbor search: best-first traversal with a min-heap ordered
//! by the minimum possible distance (`MINDIST`) between the query point
//! and a node MBR (Roussopoulos et al., SIGMOD 1995).

use crate::node::{Entry, Node};
use crate::tree::RTree;
use sj_geo::{Point, Rect};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Minimum distance from a point to a (closed) rectangle; zero when the
/// point lies inside.
#[must_use]
pub fn mindist(p: &Point, r: &Rect) -> f64 {
    let dx = (r.xlo - p.x).max(0.0).max(p.x - r.xhi);
    let dy = (r.ylo - p.y).max(0.0).max(p.y - r.yhi);
    dx.hypot(dy)
}

/// Heap element: either a node to expand or a data entry, keyed by
/// mindist. `BinaryHeap` is a max-heap, so the ordering is reversed.
enum HeapItem<'a> {
    Node(f64, &'a Node),
    Data(f64, Entry),
}

impl HeapItem<'_> {
    fn dist(&self) -> f64 {
        match self {
            HeapItem::Node(d, _) | HeapItem::Data(d, _) => *d,
        }
    }
}

impl PartialEq for HeapItem<'_> {
    fn eq(&self, other: &Self) -> bool {
        self.dist() == other.dist()
    }
}
impl Eq for HeapItem<'_> {}
impl PartialOrd for HeapItem<'_> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for HeapItem<'_> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse for a min-heap; distances are finite by construction.
        other.dist().total_cmp(&self.dist())
    }
}

impl RTree {
    /// Returns the `k` entries whose MBRs are nearest to `p` (by
    /// `MINDIST`, i.e. distance to the closest point of the MBR), in
    /// non-decreasing distance order. Fewer than `k` are returned when the
    /// tree is smaller than `k`.
    #[must_use]
    pub fn nearest_neighbors(&self, p: Point, k: usize) -> Vec<(Entry, f64)> {
        let mut out = Vec::with_capacity(k.min(self.len()));
        if k == 0 {
            return out;
        }
        let Some(root) = self.root() else {
            return out;
        };
        let mut heap: BinaryHeap<HeapItem> = BinaryHeap::new();
        heap.push(HeapItem::Node(
            root.mbr().map_or(0.0, |m| mindist(&p, &m)),
            root,
        ));
        while let Some(item) = heap.pop() {
            match item {
                HeapItem::Data(d, e) => {
                    out.push((e, d));
                    if out.len() == k {
                        break;
                    }
                }
                HeapItem::Node(_, node) => match node {
                    Node::Leaf(entries) => {
                        for e in entries {
                            heap.push(HeapItem::Data(mindist(&p, &e.rect), *e));
                        }
                    }
                    Node::Inner(children) => {
                        for (rect, child) in children {
                            heap.push(HeapItem::Node(mindist(&p, rect), child));
                        }
                    }
                },
            }
        }
        out
    }

    /// The single nearest entry to `p`, if the tree is non-empty.
    #[must_use]
    pub fn nearest_neighbor(&self, p: Point) -> Option<(Entry, f64)> {
        self.nearest_neighbors(p, 1).into_iter().next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tree::RTreeConfig;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn random_rects(n: usize, seed: u64) -> Vec<Rect> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let x = rng.random_range(0.0..1.0);
                let y = rng.random_range(0.0..1.0);
                Rect::new(
                    x,
                    y,
                    x + rng.random_range(0.0..0.03),
                    y + rng.random_range(0.0..0.03),
                )
            })
            .collect()
    }

    #[test]
    fn mindist_basics() {
        let r = Rect::new(1.0, 1.0, 2.0, 2.0);
        assert_eq!(mindist(&Point::new(1.5, 1.5), &r), 0.0, "inside");
        assert_eq!(mindist(&Point::new(1.5, 1.0), &r), 0.0, "on boundary");
        assert_eq!(mindist(&Point::new(0.0, 1.5), &r), 1.0, "left of");
        assert!(
            (mindist(&Point::new(0.0, 0.0), &r) - 2f64.sqrt()).abs() < 1e-12,
            "corner"
        );
    }

    #[test]
    fn nn_matches_brute_force() {
        let rects = random_rects(500, 21);
        let t = RTree::bulk_load_str(RTreeConfig::default(), &rects);
        let mut rng = StdRng::seed_from_u64(22);
        for _ in 0..25 {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            let got = t.nearest_neighbors(p, 5);
            let mut expected: Vec<(usize, f64)> = rects
                .iter()
                .enumerate()
                .map(|(i, r)| (i, mindist(&p, r)))
                .collect();
            expected.sort_by(|a, b| a.1.total_cmp(&b.1));
            assert_eq!(got.len(), 5);
            for (rank, (entry, d)) in got.iter().enumerate() {
                // Distances must match the brute-force ranking (ids may
                // differ under exact ties).
                assert!(
                    (d - expected[rank].1).abs() < 1e-12,
                    "rank {rank}: {d} vs {}",
                    expected[rank].1
                );
                assert!((mindist(&p, &entry.rect) - d).abs() < 1e-12);
            }
            // Ordering is non-decreasing.
            assert!(got.windows(2).all(|w| w[0].1 <= w[1].1));
        }
    }

    #[test]
    fn nn_on_dynamic_tree() {
        let rects = random_rects(200, 23);
        let mut t = RTree::with_defaults();
        for (i, r) in rects.iter().enumerate() {
            t.insert(*r, i as u64);
        }
        let p = Point::new(0.5, 0.5);
        let nn = t.nearest_neighbor(p).expect("non-empty");
        let best = rects
            .iter()
            .map(|r| mindist(&p, r))
            .fold(f64::INFINITY, f64::min);
        assert!((nn.1 - best).abs() < 1e-12);
    }

    #[test]
    fn nn_edge_cases() {
        let t = RTree::with_defaults();
        assert!(t.nearest_neighbor(Point::new(0.0, 0.0)).is_none());
        let mut t = RTree::with_defaults();
        t.insert(Rect::new(0.0, 0.0, 1.0, 1.0), 42);
        assert_eq!(t.nearest_neighbors(Point::new(5.0, 5.0), 0).len(), 0);
        let all = t.nearest_neighbors(Point::new(5.0, 5.0), 10);
        assert_eq!(all.len(), 1, "k beyond tree size returns everything");
        assert_eq!(all[0].0.id, 42);
    }

    #[test]
    fn nn_containing_rect_has_distance_zero() {
        let mut t = RTree::with_defaults();
        t.insert(Rect::new(0.0, 0.0, 10.0, 10.0), 1);
        t.insert(Rect::new(20.0, 20.0, 21.0, 21.0), 2);
        let (e, d) = t.nearest_neighbor(Point::new(5.0, 5.0)).unwrap();
        assert_eq!(e.id, 1);
        assert_eq!(d, 0.0);
    }
}
