//! `sj-server` — a long-running statistics daemon and its client.
//!
//! The paper's whole point is that selectivity estimates are *cheap*
//! once the histogram statistics exist — a handful of cell-array dot
//! products (Eq. 1–5). Paying full process startup and a cold catalog
//! load per estimate buries that cost advantage. This crate keeps the
//! catalog resident: load once, then answer `estimate` /
//! `window-count` / `explain` / `catalog-estimate` requests over a
//! simple length-framed binary protocol on std TCP, from as many
//! concurrent connections as the OS will hand us.
//!
//! Module split:
//!
//! * [`wire`] — the frame codec: magic + version + length + CRC32
//!   trailer (mirroring the v2 `.hist` envelope), payload primitives,
//!   the [`wire::status`] taxonomy shared with `sjsel` exit codes.
//! * [`service`] — [`service::StatisticsService`], the trait the server
//!   dispatches into, and [`service::CatalogService`], the
//!   `Arc<Catalog>`-backed implementation.
//! * [`server`] — TCP listener + one scoped handler thread per
//!   connection + the pure request dispatcher.
//! * [`client`] — the blocking client used by `sjsel client` and the
//!   in-process tests.
//!
//! No external dependencies: framing, checksums and threading are std
//! only, like everything else in the workspace.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), warn(clippy::unwrap_used, clippy::expect_used))]

pub mod client;
pub mod server;
pub mod service;
pub mod wire;

pub use client::{Client, ClientError, RemoteFailure, RETRY_BACKOFF};
pub use server::{handle_request, Server, ServerConfig, ServerError};
pub use service::{
    CatalogService, CompactReply, EstimateReply, MutationReply, RemoteOutcome, ServiceError,
    StatisticsService,
};
// Re-exported so wire-level callers can stamp mutation ids without a
// direct sj-query dependency.
pub use sj_query::MutationId;
pub use wire::{status, Frame, Opcode, WireError, MAX_PAYLOAD, WIRE_VERSION};
