//! The in-process client library: a blocking TCP connection speaking
//! one request/response frame pair at a time.

use crate::service::{CompactReply, EstimateReply, MutationReply, RemoteOutcome};
use crate::wire::{self, status, Frame, Opcode, PayloadReader, WireError};
use sj_geo::Rect;
use sj_query::MutationId;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Distinguishes clients created in the same process: combined with the
/// process id and the socket's local port into the mutation-id token,
/// so two clients opened back-to-back never collide even if the OS
/// recycles a port.
static CLIENT_INSTANCES: AtomicU64 = AtomicU64::new(0);

/// The deterministic backoff schedule used by [`Client::connect_with_retry`]:
/// the pause taken before each re-attempt after a failed connect. Fixed
/// durations — no clocks, no jitter — so the retry behaviour is exactly
/// reproducible: at most `RETRY_BACKOFF.len() + 1` connect attempts and
/// at most 375 ms of sleeping before the final error surfaces.
pub const RETRY_BACKOFF: [Duration; 4] = [
    Duration::from_millis(25),
    Duration::from_millis(50),
    Duration::from_millis(100),
    Duration::from_millis(200),
];

/// Errors a client call can produce.
///
/// `#[non_exhaustive]`: the protocol will grow; downstream matches keep
/// a `_` arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ClientError {
    /// The socket or the frame codec failed.
    Wire(WireError),
    /// The server answered with a non-OK status. The status byte reuses
    /// the `sjsel` exit-code taxonomy.
    Remote {
        /// The wire status code.
        status: u8,
        /// The server's message (the text the cold CLI would print).
        message: String,
    },
    /// The server broke protocol (unexpected response opcode).
    Protocol(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Wire(e) => write!(f, "{e}"),
            ClientError::Remote {
                status: code,
                message,
            } => {
                write!(f, "server error [{}]: {message}", status::name(*code))
            }
            ClientError::Protocol(why) => write!(f, "protocol violation: {why}"),
        }
    }
}

impl std::error::Error for ClientError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ClientError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for ClientError {
    fn from(e: WireError) -> Self {
        ClientError::Wire(e)
    }
}

/// One failed item inside an otherwise-successful batch response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemoteFailure {
    /// The wire status code (`sjsel` exit-code taxonomy).
    pub status: u8,
    /// The server's message for this item.
    pub message: String,
}

/// A blocking connection to a running `sj-server`.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
    /// The daemon's resolved address, kept so retry-safe mutations can
    /// reconnect after an ambiguous connection failure.
    addr: SocketAddr,
    /// Deterministic mutation-id namespace for this client instance:
    /// `pid << 32 | first local port << 16 | instance counter`. No
    /// clocks, no randomness — replayable and collision-free within the
    /// daemon's dedup window.
    token: u64,
    /// Next mutation sequence number; each stamped mutation consumes
    /// one, and a retry of the same logical mutation reuses it.
    next_seq: u64,
    /// Socket deadline re-applied after every reconnect.
    io_timeout: Option<Duration>,
}

impl Client {
    /// Connects to a daemon.
    ///
    /// # Errors
    /// [`ClientError::Wire`] when the TCP connect fails.
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let stream = TcpStream::connect(addr).map_err(WireError::from)?;
        let addr = stream.peer_addr().map_err(WireError::from)?;
        let port = stream
            .local_addr()
            .map(|a| u64::from(a.port()))
            .unwrap_or(0);
        // sj-lint: allow(atomic-ordering, the counter only disambiguates concurrently created clients; token uniqueness needs no cross-variable ordering)
        let instance = CLIENT_INSTANCES.fetch_add(1, Ordering::Relaxed) & 0xFFFF;
        let token = (u64::from(std::process::id()) << 32) | (port << 16) | instance;
        Ok(Self {
            stream,
            addr,
            token,
            next_seq: 1,
            io_timeout: None,
        })
    }

    /// Sets (or clears) the read/write deadline on the underlying socket.
    /// Also re-applied after every retry reconnect.
    ///
    /// # Errors
    /// [`ClientError::Wire`] when the socket refuses the deadline.
    pub fn set_io_timeout(&mut self, timeout: Option<Duration>) -> Result<(), ClientError> {
        self.stream
            .set_read_timeout(timeout)
            .map_err(WireError::from)?;
        self.stream
            .set_write_timeout(timeout)
            .map_err(WireError::from)?;
        self.io_timeout = timeout;
        Ok(())
    }

    /// Overrides the mutation-id token, e.g. to make a test's ids
    /// predictable or to resume a logical client identity.
    pub fn set_mutation_token(&mut self, token: u64) {
        self.token = token;
    }

    /// The mutation-id token stamped on this client's mutations.
    #[must_use]
    pub fn mutation_token(&self) -> u64 {
        self.token
    }

    /// Stamps the next mutation id in this client's sequence.
    fn next_mutation_id(&mut self) -> MutationId {
        let id = MutationId::new(self.token, self.next_seq);
        self.next_seq += 1;
        id
    }

    /// Replaces the connection after an ambiguous failure, re-applying
    /// the configured socket deadline.
    fn reconnect(&mut self) -> Result<(), ClientError> {
        let stream = TcpStream::connect(self.addr).map_err(WireError::from)?;
        stream
            .set_read_timeout(self.io_timeout)
            .map_err(WireError::from)?;
        stream
            .set_write_timeout(self.io_timeout)
            .map_err(WireError::from)?;
        self.stream = stream;
        Ok(())
    }

    /// Connects like [`Client::connect`], but retries transient connect
    /// failures (a daemon still binding its socket) on the fixed
    /// [`RETRY_BACKOFF`] schedule before giving up. Bounded: one initial
    /// attempt plus one per schedule entry, then the last connect error
    /// surfaces unchanged — a permanently absent server still fails with
    /// the same [`ClientError::Wire`] a single attempt would produce.
    ///
    /// # Errors
    /// [`ClientError::Wire`] when every attempt fails.
    pub fn connect_with_retry(addr: impl ToSocketAddrs) -> Result<Self, ClientError> {
        let mut last: Option<ClientError> = None;
        for pause in std::iter::once(None).chain(RETRY_BACKOFF.iter().copied().map(Some)) {
            if let Some(pause) = pause {
                std::thread::sleep(pause);
            }
            match Self::connect(&addr) {
                Ok(client) => return Ok(client),
                Err(e) => last = Some(e),
            }
        }
        Err(last.unwrap_or_else(|| ClientError::Protocol("empty retry schedule".to_string())))
    }

    /// Sends one request frame and returns the OK response payload with
    /// the status byte stripped, mapping non-OK statuses to
    /// [`ClientError::Remote`].
    fn call(&mut self, op: Opcode, payload: Vec<u8>) -> Result<Vec<u8>, ClientError> {
        Frame::request(op, payload).write_to(&mut self.stream)?;
        let resp = Frame::read_from(&mut self.stream)?;
        if resp.opcode != op.response() && resp.opcode != wire::ERROR_OPCODE {
            return Err(ClientError::Protocol(format!(
                "response opcode {:#04x} to request {:#04x}",
                resp.opcode,
                op.code()
            )));
        }
        let mut r = PayloadReader::new(&resp.payload);
        let code = r.u8()?;
        if code != status::OK {
            let message = r
                .str()
                .unwrap_or_else(|_| "malformed error response".to_string());
            return Err(ClientError::Remote {
                status: code,
                message,
            });
        }
        Ok(resp
            .payload
            .get(1..)
            .map(<[u8]>::to_vec)
            .unwrap_or_default())
    }

    /// Liveness check.
    ///
    /// # Errors
    /// [`ClientError`] on wire or remote failure.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        let body = self.call(Opcode::Ping, Vec::new())?;
        expect_empty(&body)
    }

    /// Primary-statistics join estimate between two registered tables.
    ///
    /// # Errors
    /// [`ClientError`] on wire or remote failure.
    pub fn estimate(&mut self, a: &str, b: &str) -> Result<EstimateReply, ClientError> {
        let mut p = Vec::new();
        wire::put_str(&mut p, a);
        wire::put_str(&mut p, b);
        let body = self.call(Opcode::Estimate, p)?;
        let mut r = PayloadReader::new(&body);
        let reply = EstimateReply {
            selectivity: r.f64()?,
            pairs: r.f64()?,
        };
        r.finish()?;
        Ok(reply)
    }

    /// Estimated number of objects of `table` intersecting `window`.
    ///
    /// # Errors
    /// [`ClientError`] on wire or remote failure.
    pub fn window_count(&mut self, table: &str, window: &Rect) -> Result<f64, ClientError> {
        let mut p = Vec::new();
        wire::put_str(&mut p, table);
        wire::put_f64(&mut p, window.xlo);
        wire::put_f64(&mut p, window.ylo);
        wire::put_f64(&mut p, window.xhi);
        wire::put_f64(&mut p, window.yhi);
        let body = self.call(Opcode::WindowCount, p)?;
        let mut r = PayloadReader::new(&body);
        let count = r.f64()?;
        r.finish()?;
        Ok(count)
    }

    /// The optimizer's plan for a chain join, as text.
    ///
    /// # Errors
    /// [`ClientError`] on wire or remote failure.
    pub fn explain(&mut self, tables: &[String]) -> Result<String, ClientError> {
        let mut p = Vec::new();
        wire::put_u16(&mut p, u16::try_from(tables.len()).unwrap_or(u16::MAX));
        for t in tables.iter().take(usize::from(u16::MAX)) {
            wire::put_str(&mut p, t);
        }
        let body = self.call(Opcode::Explain, p)?;
        let mut r = PayloadReader::new(&body);
        let text = r.str()?;
        r.finish()?;
        Ok(text)
    }

    /// Degradation-ladder estimate with full tier provenance.
    ///
    /// # Errors
    /// [`ClientError`] on wire or remote failure.
    pub fn catalog_estimate(&mut self, a: &str, b: &str) -> Result<RemoteOutcome, ClientError> {
        let mut p = Vec::new();
        wire::put_str(&mut p, a);
        wire::put_str(&mut p, b);
        let body = self.call(Opcode::CatalogEstimate, p)?;
        let mut r = PayloadReader::new(&body);
        let outcome = RemoteOutcome::from_bytes(&mut r)?;
        r.finish()?;
        Ok(outcome)
    }

    /// Batched primary estimates: one request frame, one response frame,
    /// each item individually status-wrapped.
    ///
    /// # Errors
    /// [`ClientError`] when the batch itself fails; per-item failures
    /// come back as `Err(RemoteFailure)` entries.
    #[allow(clippy::type_complexity)]
    pub fn batch_estimate(
        &mut self,
        pairs: &[(String, String)],
    ) -> Result<Vec<Result<EstimateReply, RemoteFailure>>, ClientError> {
        let mut p = Vec::new();
        wire::put_u16(&mut p, u16::try_from(pairs.len()).unwrap_or(u16::MAX));
        for (a, b) in pairs.iter().take(usize::from(u16::MAX)) {
            wire::put_str(&mut p, a);
            wire::put_str(&mut p, b);
        }
        let body = self.call(Opcode::BatchEstimate, p)?;
        let mut r = PayloadReader::new(&body);
        let n = usize::from(r.u16()?);
        let mut items = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let code = r.u8()?;
            if code == status::OK {
                items.push(Ok(EstimateReply {
                    selectivity: r.f64()?,
                    pairs: r.f64()?,
                }));
            } else {
                items.push(Err(RemoteFailure {
                    status: code,
                    message: r.str()?,
                }));
            }
        }
        r.finish()?;
        Ok(items)
    }

    /// Registered table names.
    ///
    /// # Errors
    /// [`ClientError`] on wire or remote failure.
    pub fn tables(&mut self) -> Result<Vec<String>, ClientError> {
        let body = self.call(Opcode::Tables, Vec::new())?;
        let mut r = PayloadReader::new(&body);
        let n = usize::from(r.u16()?);
        let mut names = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            names.push(r.str()?);
        }
        r.finish()?;
        Ok(names)
    }

    /// Inserts a batch of rectangles into a registered table; the daemon
    /// folds a signed histogram delta into its statistics without a
    /// restart. Stamped with a fresh mutation id so the daemon can
    /// recognize a duplicate, but does not retry on its own — see
    /// [`Client::insert_batch_with_retry`].
    ///
    /// # Errors
    /// [`ClientError`] on wire or remote failure.
    pub fn insert_batch(
        &mut self,
        table: &str,
        rects: &[Rect],
    ) -> Result<MutationReply, ClientError> {
        let id = self.next_mutation_id();
        let body = self.call(Opcode::InsertBatch, mutation_payload(table, id, rects))?;
        decode_mutation_reply(&body)
    }

    /// Deletes a batch of rectangles from a registered table. Every
    /// rectangle must match an object exactly or the daemon rejects the
    /// whole batch without mutating anything. Stamped like
    /// [`Client::insert_batch`].
    ///
    /// # Errors
    /// [`ClientError`] on wire or remote failure.
    pub fn delete_batch(
        &mut self,
        table: &str,
        rects: &[Rect],
    ) -> Result<MutationReply, ClientError> {
        let id = self.next_mutation_id();
        let body = self.call(Opcode::DeleteBatch, mutation_payload(table, id, rects))?;
        decode_mutation_reply(&body)
    }

    /// Like [`Client::insert_batch`], but survives ambiguous connection
    /// failures: the mutation id is stamped once, and on a wire error
    /// (connection died before, during, or after the server applied the
    /// batch) the client reconnects on the [`RETRY_BACKOFF`] schedule
    /// and resends the *same* id — the daemon's dedup window turns the
    /// resend into a no-op if the first attempt landed, so the mutation
    /// is applied exactly once. Remote (typed) errors are never retried.
    ///
    /// # Errors
    /// [`ClientError`] when every attempt fails, or immediately on a
    /// remote/protocol error.
    pub fn insert_batch_with_retry(
        &mut self,
        table: &str,
        rects: &[Rect],
    ) -> Result<MutationReply, ClientError> {
        self.mutate_with_retry(Opcode::InsertBatch, table, rects)
    }

    /// Like [`Client::delete_batch`], but retry-safe — see
    /// [`Client::insert_batch_with_retry`] for the exactly-once
    /// contract.
    ///
    /// # Errors
    /// [`ClientError`] when every attempt fails, or immediately on a
    /// remote/protocol error.
    pub fn delete_batch_with_retry(
        &mut self,
        table: &str,
        rects: &[Rect],
    ) -> Result<MutationReply, ClientError> {
        self.mutate_with_retry(Opcode::DeleteBatch, table, rects)
    }

    /// Shared retry loop: one stamped id across all attempts; only
    /// [`ClientError::Wire`] triggers a reconnect-and-resend.
    fn mutate_with_retry(
        &mut self,
        op: Opcode,
        table: &str,
        rects: &[Rect],
    ) -> Result<MutationReply, ClientError> {
        let id = self.next_mutation_id();
        let payload = mutation_payload(table, id, rects);
        let mut last = match self.call(op, payload.clone()) {
            Ok(body) => return decode_mutation_reply(&body),
            Err(e @ ClientError::Wire(_)) => e,
            Err(e) => return Err(e),
        };
        for pause in RETRY_BACKOFF {
            std::thread::sleep(pause);
            if let Err(e) = self.reconnect() {
                last = e;
                continue;
            }
            match self.call(op, payload.clone()) {
                Ok(body) => return decode_mutation_reply(&body),
                Err(e @ ClientError::Wire(_)) => last = e,
                Err(e) => return Err(e),
            }
        }
        Err(last)
    }

    /// Forces a compaction: pending delta tiers fold into the table's
    /// base statistics and the write-ahead log is truncated.
    ///
    /// # Errors
    /// [`ClientError`] on wire or remote failure.
    pub fn compact(&mut self, table: &str) -> Result<CompactReply, ClientError> {
        let mut p = Vec::new();
        wire::put_str(&mut p, table);
        let body = self.call(Opcode::Compact, p)?;
        let mut r = PayloadReader::new(&body);
        let reply = CompactReply {
            tiers_folded: r.u16()?,
            persisted: r.u8()? != 0,
        };
        r.finish()?;
        Ok(reply)
    }

    /// Asks the daemon to shut down gracefully.
    ///
    /// # Errors
    /// [`ClientError`] on wire or remote failure.
    pub fn shutdown_server(&mut self) -> Result<(), ClientError> {
        let body = self.call(Opcode::Shutdown, Vec::new())?;
        expect_empty(&body)
    }
}

/// Encodes the shared `insert-batch`/`delete-batch` request payload
/// (wire v3: table, mutation id, rects).
fn mutation_payload(table: &str, id: MutationId, rects: &[Rect]) -> Vec<u8> {
    let mut p = Vec::new();
    wire::put_str(&mut p, table);
    wire::put_u64(&mut p, id.token);
    wire::put_u64(&mut p, id.seq);
    wire::put_u32(&mut p, u32::try_from(rects.len()).unwrap_or(u32::MAX));
    for r in rects.iter().take(u32::MAX as usize) {
        wire::put_f64(&mut p, r.xlo);
        wire::put_f64(&mut p, r.ylo);
        wire::put_f64(&mut p, r.xhi);
        wire::put_f64(&mut p, r.yhi);
    }
    p
}

/// Decodes the shared `insert-batch`/`delete-batch` response payload.
fn decode_mutation_reply(body: &[u8]) -> Result<MutationReply, ClientError> {
    let mut r = PayloadReader::new(body);
    let reply = MutationReply {
        applied: r.u32()?,
        pending_tiers: r.u16()?,
        compacted: r.u8()? != 0,
        deduplicated: r.u8()? != 0,
    };
    r.finish()?;
    Ok(reply)
}

fn expect_empty(body: &[u8]) -> Result<(), ClientError> {
    if body.is_empty() {
        Ok(())
    } else {
        Err(ClientError::Protocol(format!(
            "{} unexpected byte(s) in an empty-bodied response",
            body.len()
        )))
    }
}
