//! The service trait the server dispatches into, plus the
//! catalog-backed implementation.
//!
//! The trait/implementation split mirrors the server/client module
//! split: the connection loop in [`crate::server`] knows only
//! [`StatisticsService`], so tests can serve a stub and the daemon can
//! serve a shared [`Catalog`] — loaded once, answered from concurrently.

use crate::wire::{self, status, PayloadReader, WireError};
use sj_core::sync::{LockRank, OrderedMutex, OrderedRwLock};
use sj_geo::Rect;
use sj_query::{
    Catalog, ChainJoinQuery, CompactReceipt, DegradationPolicy, EstimateOutcome, MutationId,
    PreparedOutcome, QueryError,
};
use std::sync::Arc;

/// A primary-statistics estimate: the numbers `sjsel estimate` prints.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EstimateReply {
    /// Estimated selectivity.
    pub selectivity: f64,
    /// Estimated number of intersecting pairs.
    pub pairs: f64,
}

/// A degradation-ladder outcome as it travels over the wire: tier
/// provenance flattened to stable strings so the client can render the
/// exact output of the cold `catalog-estimate` path without sharing the
/// [`EstimateOutcome`] type's internals.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteOutcome {
    /// Estimated number of intersecting pairs.
    pub pairs: f64,
    /// Estimated selectivity in `[0, 1]`.
    pub selectivity: f64,
    /// Stable tier name (`primary`, `ph-rebuild`, `parametric`,
    /// `sampling`) — the CLI's JSON `provenance.tier` value.
    pub tier_name: String,
    /// Human-facing tier label (e.g. `primary (gh)`).
    pub tier_display: String,
    /// Whether a fallback tier served the estimate.
    pub degraded: bool,
    /// Skipped tiers in ladder order: `(stable name, reason)`.
    pub skipped: Vec<(String, String)>,
}

impl RemoteOutcome {
    /// Flattens a ladder outcome for the wire.
    #[must_use]
    pub fn from_outcome(outcome: &EstimateOutcome) -> Self {
        Self {
            pairs: outcome.pairs,
            selectivity: outcome.selectivity,
            tier_name: outcome.tier.name().to_string(),
            tier_display: outcome.tier.to_string(),
            degraded: outcome.is_degraded(),
            skipped: outcome
                .skipped
                .iter()
                .map(|s| (s.tier.name().to_string(), s.reason.clone()))
                .collect(),
        }
    }

    /// Serializes the outcome as a response-payload fragment.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        wire::put_f64(&mut out, self.pairs);
        wire::put_f64(&mut out, self.selectivity);
        wire::put_str(&mut out, &self.tier_name);
        wire::put_str(&mut out, &self.tier_display);
        wire::put_u8(&mut out, u8::from(self.degraded));
        let n = self.skipped.len().min(usize::from(u16::MAX));
        wire::put_u16(&mut out, u16::try_from(n).unwrap_or(u16::MAX));
        for (tier, reason) in self.skipped.iter().take(n) {
            wire::put_str(&mut out, tier);
            wire::put_str(&mut out, reason);
        }
        out
    }

    /// Decodes an outcome from a response-payload fragment.
    ///
    /// # Errors
    /// Propagates the reader's typed truncation/UTF-8 errors.
    pub fn from_bytes(r: &mut PayloadReader<'_>) -> Result<Self, WireError> {
        let pairs = r.f64()?;
        let selectivity = r.f64()?;
        let tier_name = r.str()?;
        let tier_display = r.str()?;
        let degraded = r.u8()? != 0;
        let n = usize::from(r.u16()?);
        let mut skipped = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let tier = r.str()?;
            let reason = r.str()?;
            skipped.push((tier, reason));
        }
        Ok(Self {
            pairs,
            selectivity,
            tier_name,
            tier_display,
            degraded,
            skipped,
        })
    }
}

/// A service-level failure: a wire status code plus a message, produced
/// on the server and reproduced verbatim on the client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceError {
    /// One of the nonzero [`status`] codes.
    pub status: u8,
    /// Human-readable message (the same text the cold CLI prints).
    pub message: String,
}

impl ServiceError {
    /// Builds an error with an explicit status code.
    #[must_use]
    pub fn new(status: u8, message: impl Into<String>) -> Self {
        Self {
            status,
            message: message.into(),
        }
    }

    /// Maps a query-layer error onto the wire status taxonomy — the
    /// same mapping `sjsel` uses for process exit codes, so a remote
    /// failure exits the client with the code the cold path would have
    /// used (equality is pinned by a test in `sj-cli`).
    #[must_use]
    pub fn from_query(context: &str, e: &QueryError) -> Self {
        use sj_query::HistogramError;
        let code = match e {
            QueryError::Histogram(h) => match h {
                HistogramError::Corrupt { .. } => status::CORRUPT,
                HistogramError::KindMismatch { .. } | HistogramError::GridMismatch { .. } => {
                    status::MISMATCH
                }
                HistogramError::LevelTooLarge(_) => status::USAGE,
                HistogramError::DeltaOutOfRange { .. } => status::INVALID_DATA,
                _ => status::RUNTIME,
            },
            QueryError::EstimatorsExhausted(_) => status::EXHAUSTED,
            QueryError::StatisticsUnavailable { .. } => status::CORRUPT,
            QueryError::TooFewTables(_) => status::USAGE,
            QueryError::DeleteNotFound { .. } => status::INVALID_DATA,
            QueryError::Io(_) => status::IO,
            QueryError::UnknownTable(_)
            | QueryError::DuplicateTable(_)
            | QueryError::ResultTooLarge { .. } => status::RUNTIME,
            // Future (non_exhaustive) query errors default to runtime.
            _ => status::RUNTIME,
        };
        Self {
            status: code,
            message: format!("{context}: {e}"),
        }
    }
}

impl std::fmt::Display for ServiceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", status::name(self.status), self.message)
    }
}

impl std::error::Error for ServiceError {}

/// What a statistics daemon can answer. Implementations must be
/// shareable across connection threads (`&self` methods, `Send + Sync`).
pub trait StatisticsService: Send + Sync {
    /// Primary-statistics join estimate between two registered tables.
    ///
    /// # Errors
    /// [`ServiceError`] with the taxonomy status of the failure.
    fn estimate(&self, a: &str, b: &str) -> Result<EstimateReply, ServiceError>;

    /// Estimated number of objects of `table` intersecting `window`.
    ///
    /// # Errors
    /// [`ServiceError`]; kind mismatches map to the MISMATCH status.
    fn window_count(&self, table: &str, window: &Rect) -> Result<f64, ServiceError>;

    /// The optimizer's plan for a chain join, rendered as text.
    ///
    /// # Errors
    /// [`ServiceError`] for unknown tables or too-short chains.
    fn explain(&self, tables: &[String]) -> Result<String, ServiceError>;

    /// Degradation-ladder estimate with full tier provenance.
    ///
    /// # Errors
    /// [`ServiceError`]; an exhausted ladder maps to EXHAUSTED.
    fn catalog_estimate(&self, a: &str, b: &str) -> Result<RemoteOutcome, ServiceError>;

    /// Registered table names, sorted.
    fn tables(&self) -> Vec<String>;

    /// Applies an insert batch to a table's statistics incrementally.
    /// A stamped `id` is applied at most once (retry deduplication);
    /// [`MutationId::UNSTAMPED`] skips the guard.
    ///
    /// # Errors
    /// [`ServiceError`]; a batch that cannot apply maps to INVALID_DATA.
    fn insert_batch(
        &self,
        table: &str,
        rects: &[Rect],
        id: MutationId,
    ) -> Result<MutationReply, ServiceError>;

    /// Applies a delete batch. Every rectangle must currently exist in
    /// the table, or the whole batch is rejected without applying.
    /// Stamped IDs deduplicate exactly as in
    /// [`StatisticsService::insert_batch`].
    ///
    /// # Errors
    /// [`ServiceError`]; an unmatched delete maps to INVALID_DATA.
    fn delete_batch(
        &self,
        table: &str,
        rects: &[Rect],
        id: MutationId,
    ) -> Result<MutationReply, ServiceError>;

    /// Folds a table's pending delta tiers into its base envelope.
    ///
    /// # Errors
    /// [`ServiceError`]; filesystem failures map to IO.
    fn compact(&self, table: &str) -> Result<CompactReply, ServiceError>;
}

/// What an [`StatisticsService::insert_batch`] /
/// [`StatisticsService::delete_batch`] call did, as it travels the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MutationReply {
    /// Rectangles applied by the batch.
    pub applied: u32,
    /// Pending delta tiers on the table afterwards.
    pub pending_tiers: u16,
    /// Whether the batch tripped an automatic compaction.
    pub compacted: bool,
    /// Whether the batch's stamped [`MutationId`] had already been
    /// applied, so this call was a detected retry and mutated nothing.
    pub deduplicated: bool,
}

/// What a [`StatisticsService::compact`] call did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompactReply {
    /// Pending tiers folded into the base envelope.
    pub tiers_folded: u16,
    /// Whether a new base envelope was atomically swapped onto disk.
    pub persisted: bool,
}

/// The daemon's service: a shared catalog behind a ranked read/write
/// lock — estimates and plans take read locks and run concurrently;
/// mutations run the catalog's three-phase pipeline (DESIGN.md §15) so
/// the catalog write lock is only held for in-memory commits and
/// readers are never blocked behind a WAL fsync.
///
/// Two auxiliary ranked mutexes structure the pipeline:
///
/// * `pipeline` (rank [`LockRank::StatsStore`]) serializes whole
///   mutations/compactions end to end, so a prepared batch cannot go
///   stale between its prepare and commit phases.
/// * `wal_io` (rank [`LockRank::WalFile`]) brackets every store file
///   I/O (WAL appends, compaction persistence). Its rank sits *above*
///   the catalog's, so holding the catalog across an fsync is a rank
///   inversion — the discipline `sj-lint -- verify-locks` enforces
///   dynamically.
pub struct CatalogService {
    catalog: Arc<OrderedRwLock<Catalog>>,
    policy: DegradationPolicy,
    pipeline: OrderedMutex<()>,
    wal_io: OrderedMutex<()>,
}

impl CatalogService {
    /// Wraps a shared catalog with the degradation policy used by
    /// [`StatisticsService::catalog_estimate`].
    #[must_use]
    pub fn new(catalog: Arc<OrderedRwLock<Catalog>>, policy: DegradationPolicy) -> Self {
        Self {
            catalog,
            policy,
            pipeline: OrderedMutex::new(LockRank::StatsStore, "service.pipeline", ()),
            wal_io: OrderedMutex::new(LockRank::WalFile, "service.wal_io", ()),
        }
    }

    /// The shared catalog.
    #[must_use]
    pub fn catalog(&self) -> &Arc<OrderedRwLock<Catalog>> {
        &self.catalog
    }

    fn mutate(
        &self,
        table: &str,
        inserts: &[Rect],
        deletes: &[Rect],
        id: MutationId,
    ) -> Result<MutationReply, ServiceError> {
        let reply = |receipt: &sj_query::DeltaReceipt| MutationReply {
            applied: u32::try_from(inserts.len() + deletes.len()).unwrap_or(u32::MAX),
            pending_tiers: u16::try_from(receipt.pending_tiers).unwrap_or(u16::MAX),
            compacted: receipt.compacted,
            deduplicated: receipt.deduplicated,
        };
        // Serialize the whole three-phase pipeline: the prepared batch
        // (sequence number, delete resolution) is only valid against
        // the state observed under the read lock below.
        let _pipeline = self.pipeline.lock();
        let prepared = self
            .catalog
            .read()
            .prepare_delta(table, inserts, deletes, id)
            .map_err(|e| ServiceError::from_query("mutation failed", &e))?;
        let prepared = match prepared {
            PreparedOutcome::Duplicate(receipt) => return Ok(reply(&receipt)),
            PreparedOutcome::Fresh(p) => *p,
        };
        {
            // The fsync runs under wal_io only — estimates proceed on
            // the catalog read lock while the record hits the disk.
            let _io = self.wal_io.lock();
            prepared
                .append_wal()
                .map_err(|e| ServiceError::from_query("mutation failed", &e))?;
        }
        let mut receipt = self
            .catalog
            .write()
            .commit_prepared(prepared)
            .map_err(|e| ServiceError::from_query("mutation failed", &e))?;
        if self.catalog.read().compaction_needed(table) {
            self.run_compaction(table)
                .map_err(|e| ServiceError::from_query("mutation failed", &e))?;
            receipt.pending_tiers = 0;
            receipt.compacted = true;
        }
        Ok(reply(&receipt))
    }

    /// Drives the catalog's three-phase compaction under the daemon's
    /// lock structure. The caller must hold `pipeline`.
    fn run_compaction(&self, table: &str) -> Result<CompactReceipt, QueryError> {
        let plan = self.catalog.read().plan_compaction(table)?;
        let persisted = match &plan {
            Some(plan) => {
                let _io = self.wal_io.lock();
                plan.persist()?;
                true
            }
            None => false,
        };
        Ok(self.catalog.write().finish_compaction(table, persisted))
    }

    /// Read access to the catalog (poison recovered by the wrapper).
    fn read(&self) -> sj_core::sync::OrderedReadGuard<'_, Catalog> {
        self.catalog.read()
    }
}

impl StatisticsService for CatalogService {
    fn estimate(&self, a: &str, b: &str) -> Result<EstimateReply, ServiceError> {
        let catalog = self.read();
        let ha = catalog
            .histogram(a)
            .map_err(|e| ServiceError::from_query("estimation failed", &e))?;
        let hb = catalog
            .histogram(b)
            .map_err(|e| ServiceError::from_query("estimation failed", &e))?;
        let est = ha
            .estimate_join(hb)
            .map_err(|e| ServiceError::from_query("estimation failed", &QueryError::from(e)))?;
        Ok(EstimateReply {
            selectivity: est.selectivity,
            pairs: est.pairs,
        })
    }

    fn window_count(&self, table: &str, window: &Rect) -> Result<f64, ServiceError> {
        let catalog = self.read();
        let gh = catalog
            .gh_histogram(table)
            .map_err(|e| ServiceError::from_query("window count failed", &e))?;
        Ok(gh.estimate_window_count(window))
    }

    fn explain(&self, tables: &[String]) -> Result<String, ServiceError> {
        let plan = self
            .read()
            .plan(&ChainJoinQuery::new(tables.iter().cloned()))
            .map_err(|e| ServiceError::from_query("planning failed", &e))?;
        Ok(plan.to_string())
    }

    fn catalog_estimate(&self, a: &str, b: &str) -> Result<RemoteOutcome, ServiceError> {
        let outcome = self
            .read()
            .estimate_join_pairs_detailed(a, b, &self.policy)
            .map_err(|e| ServiceError::from_query("estimation failed", &e))?;
        Ok(RemoteOutcome::from_outcome(&outcome))
    }

    fn tables(&self) -> Vec<String> {
        self.read()
            .table_names()
            .into_iter()
            .map(str::to_string)
            .collect()
    }

    fn insert_batch(
        &self,
        table: &str,
        rects: &[Rect],
        id: MutationId,
    ) -> Result<MutationReply, ServiceError> {
        self.mutate(table, rects, &[], id)
    }

    fn delete_batch(
        &self,
        table: &str,
        rects: &[Rect],
        id: MutationId,
    ) -> Result<MutationReply, ServiceError> {
        self.mutate(table, &[], rects, id)
    }

    fn compact(&self, table: &str) -> Result<CompactReply, ServiceError> {
        let _pipeline = self.pipeline.lock();
        let receipt = self
            .run_compaction(table)
            .map_err(|e| ServiceError::from_query("compaction failed", &e))?;
        Ok(CompactReply {
            tiers_folded: u16::try_from(receipt.tiers_folded).unwrap_or(u16::MAX),
            persisted: receipt.persisted,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn remote_outcome_round_trips() {
        let o = RemoteOutcome {
            pairs: 1234.5,
            selectivity: 1.5e-4,
            tier_name: "ph-rebuild".to_string(),
            tier_display: "ph-rebuild".to_string(),
            degraded: true,
            skipped: vec![("primary".to_string(), "file corrupt".to_string())],
        };
        let bytes = o.to_bytes();
        let mut r = PayloadReader::new(&bytes);
        let got = RemoteOutcome::from_bytes(&mut r).unwrap();
        r.finish().unwrap();
        assert_eq!(got, o);
    }

    #[test]
    fn query_errors_map_to_cli_codes() {
        let cases = [
            (QueryError::UnknownTable("x".to_string()), status::RUNTIME),
            (QueryError::TooFewTables(1), status::USAGE),
            (
                QueryError::EstimatorsExhausted("all off".to_string()),
                status::EXHAUSTED,
            ),
            (
                QueryError::StatisticsUnavailable {
                    table: "t".to_string(),
                    reason: "corrupt".to_string(),
                },
                status::CORRUPT,
            ),
        ];
        for (err, want) in cases {
            assert_eq!(ServiceError::from_query("ctx", &err).status, want, "{err}");
        }
    }
}
