//! The length-framed binary wire protocol.
//!
//! Every message — request or response — travels as one *frame*:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  b"SJWF"
//! 4       2     wire version (u16 LE, currently 1)
//! 6       1     opcode (request, or request | 0x80 for its response)
//! 7       1     reserved (must be 0)
//! 8       4     payload length (u32 LE, at most MAX_PAYLOAD)
//! 12      n     payload
//! 12+n    4     CRC32 (IEEE) over bytes [0, 12+n)  (u32 LE)
//! ```
//!
//! The envelope mirrors the v2 `.hist` persistence format: magic,
//! version, explicit length, CRC32 trailer — so a truncated stream, a
//! flipped bit, or an absurd length prefix all surface as a typed
//! [`WireError`] instead of a misread. Payload fields use the same
//! primitive encodings everywhere: integers little-endian, `f64` as its
//! LE bit pattern, strings as a u16 LE byte length followed by UTF-8.
//!
//! Response payloads open with one status byte from [`status`] (`0` =
//! OK); non-OK responses carry a message string after the status.

/// Magic bytes opening every frame (`b"SJWF"` — spatial-join wire frame).
pub const MAGIC: [u8; 4] = *b"SJWF";

/// Wire protocol version. Bump on any frame or payload layout change —
/// the r7 persistence fingerprint pins the codec bodies to this number.
/// Version 2 added the mutation opcodes (`InsertBatch`, `DeleteBatch`,
/// `Compact`). Version 3 added the client-stamped mutation ID to the
/// `InsertBatch`/`DeleteBatch` payloads, the `deduplicated` flag to
/// their replies, and the `Overloaded` status.
pub const WIRE_VERSION: u16 = 3;

/// Upper bound on a frame payload (16 MiB). A length prefix above this
/// is treated as corruption, not an allocation request.
pub const MAX_PAYLOAD: u32 = 16 * 1024 * 1024;

/// Fixed frame header length (magic + version + opcode + reserved + len).
pub const HEADER_LEN: usize = 12;

/// Length of the CRC32 trailer.
pub const TRAILER_LEN: usize = 4;

/// Bit set on a request opcode to form its response opcode.
pub const RESPONSE_BIT: u8 = 0x80;

/// Response opcode used when the request could not even be parsed far
/// enough to know what was asked (bad magic, bad CRC, unknown opcode).
pub const ERROR_OPCODE: u8 = 0xFF;

/// Wire status codes carried in the first payload byte of every
/// response. Nonzero codes reuse the `sjsel` process exit-code taxonomy
/// so `sjsel client` can exit with the remote failure's code unchanged.
pub mod status {
    /// The request succeeded; the result payload follows.
    pub const OK: u8 = 0;
    /// Generic runtime failure not covered by a more specific code.
    pub const RUNTIME: u8 = 1;
    /// Malformed request (unknown opcode, bad payload, unknown table
    /// would be RUNTIME — this is for requests the server cannot parse).
    pub const USAGE: u8 = 2;
    /// An I/O failure while serving.
    pub const IO: u8 = 3;
    /// Corrupt frame or statistics (bad checksum, truncation).
    pub const CORRUPT: u8 = 4;
    /// Histogram kind/grid mismatch (or unsupported wire version).
    pub const MISMATCH: u8 = 5;
    /// Invalid dataset.
    pub const INVALID_DATA: u8 = 6;
    /// Every estimation tier was disabled or failed.
    pub const EXHAUSTED: u8 = 7;
    /// The server refused the connection at its admission limit; retry
    /// later. Extends the exit-code taxonomy numerically (exit code 8).
    pub const OVERLOADED: u8 = 8;

    /// Human-readable name of a status code.
    #[must_use]
    pub fn name(code: u8) -> &'static str {
        match code {
            OK => "ok",
            RUNTIME => "runtime",
            USAGE => "usage",
            IO => "io",
            CORRUPT => "corrupt",
            MISMATCH => "mismatch",
            INVALID_DATA => "invalid-data",
            EXHAUSTED => "exhausted",
            OVERLOADED => "overloaded",
            _ => "unknown",
        }
    }
}

/// Request opcodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Opcode {
    /// Liveness check; empty payload both ways.
    Ping,
    /// Primary-statistics estimate: `str a + str b` → `f64 selectivity +
    /// f64 pairs` (same numbers as `sjsel estimate` over the same files).
    Estimate,
    /// Window count: `str table + 4×f64 window` → `f64 count`.
    WindowCount,
    /// Plan explanation: `u16 n + n×str tables` → `str plan text`.
    Explain,
    /// Degradation-ladder estimate with provenance: `str a + str b` →
    /// a serialized [`crate::service::RemoteOutcome`].
    CatalogEstimate,
    /// Batched primary estimates amortizing one frame per N requests:
    /// `u16 n + n×(str a + str b)` → `u16 n + n×(status u8 + item)`,
    /// each item individually status-wrapped.
    BatchEstimate,
    /// Registered table names: empty → `u16 n + n×str`.
    Tables,
    /// Incremental insert batch: `str table + u64 id_token + u64
    /// id_seq + u32 n + n×4×f64 rects` → `u32 applied + u16
    /// pending_tiers + u8 compacted + u8 deduplicated`. The daemon
    /// updates the table's statistics exactly (byte-identical to a
    /// full rebuild) without restarting. A nonzero `(id_token, id_seq)`
    /// pair is the batch's [`MutationId`](sj_query::MutationId): the
    /// daemon applies each stamped ID at most once, so clients retry
    /// ambiguous failures safely.
    InsertBatch,
    /// Incremental delete batch; same payloads as [`Opcode::InsertBatch`].
    /// Every rectangle must currently exist in the table, or the whole
    /// batch is rejected without applying anything.
    DeleteBatch,
    /// Fold a table's pending delta tiers into its base envelope:
    /// `str table` → `u16 tiers_folded + u8 persisted`.
    Compact,
    /// Graceful server shutdown; empty payload both ways.
    Shutdown,
}

impl Opcode {
    /// Every request opcode.
    pub const ALL: [Opcode; 11] = [
        Opcode::Ping,
        Opcode::Estimate,
        Opcode::WindowCount,
        Opcode::Explain,
        Opcode::CatalogEstimate,
        Opcode::BatchEstimate,
        Opcode::Tables,
        Opcode::InsertBatch,
        Opcode::DeleteBatch,
        Opcode::Compact,
        Opcode::Shutdown,
    ];

    /// The opcode's byte on the wire.
    #[must_use]
    pub fn code(self) -> u8 {
        match self {
            Opcode::Ping => 0x01,
            Opcode::Estimate => 0x02,
            Opcode::WindowCount => 0x03,
            Opcode::Explain => 0x04,
            Opcode::CatalogEstimate => 0x05,
            Opcode::BatchEstimate => 0x06,
            Opcode::Tables => 0x07,
            Opcode::InsertBatch => 0x08,
            Opcode::DeleteBatch => 0x09,
            Opcode::Compact => 0x0A,
            Opcode::Shutdown => 0x0F,
        }
    }

    /// The response opcode paired with this request.
    #[must_use]
    pub fn response(self) -> u8 {
        self.code() | RESPONSE_BIT
    }

    /// Decodes a request opcode byte.
    #[must_use]
    pub fn from_code(code: u8) -> Option<Opcode> {
        Opcode::ALL.into_iter().find(|op| op.code() == code)
    }
}

/// Errors raised by the frame and payload codecs.
///
/// `#[non_exhaustive]`: the protocol will grow; downstream matches keep
/// a `_` arm.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The first four bytes were not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame's wire version is not [`WIRE_VERSION`].
    UnsupportedVersion(u16),
    /// The reserved header byte was nonzero.
    BadReserved(u8),
    /// The length prefix exceeds [`MAX_PAYLOAD`].
    Oversized {
        /// The claimed payload length.
        len: u32,
        /// The protocol's limit.
        max: u32,
    },
    /// The stream or buffer ended before the frame did.
    Truncated {
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes actually available.
        got: usize,
    },
    /// The CRC32 trailer does not match the frame bytes.
    ChecksumMismatch {
        /// Checksum recorded in the trailer.
        expected: u32,
        /// Checksum computed over the received bytes.
        actual: u32,
    },
    /// The opcode byte names no known request.
    UnknownOpcode(u8),
    /// The frame parsed but its payload did not (bad UTF-8, trailing
    /// bytes, field out of range).
    BadPayload(String),
    /// The underlying socket failed.
    Io(String),
}

impl WireError {
    /// The wire status code this error maps to, mirroring the CLI
    /// exit-code taxonomy.
    #[must_use]
    pub fn status(&self) -> u8 {
        match self {
            WireError::BadMagic(_)
            | WireError::Truncated { .. }
            | WireError::ChecksumMismatch { .. }
            | WireError::Oversized { .. }
            | WireError::BadReserved(_) => status::CORRUPT,
            WireError::UnsupportedVersion(_) => status::MISMATCH,
            WireError::UnknownOpcode(_) | WireError::BadPayload(_) => status::USAGE,
            WireError::Io(_) => status::IO,
        }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?} (expected \"SJWF\")"),
            WireError::UnsupportedVersion(v) => {
                write!(
                    f,
                    "unsupported wire version {v} (this build speaks {WIRE_VERSION})"
                )
            }
            WireError::BadReserved(b) => write!(f, "nonzero reserved header byte {b:#04x}"),
            WireError::Oversized { len, max } => {
                write!(f, "frame payload length {len} exceeds the {max}-byte limit")
            }
            WireError::Truncated { needed, got } => {
                write!(f, "truncated frame: needed {needed} bytes, got {got}")
            }
            WireError::ChecksumMismatch { expected, actual } => write!(
                f,
                "frame checksum mismatch: trailer {expected:#010x}, computed {actual:#010x}"
            ),
            WireError::UnknownOpcode(op) => write!(f, "unknown request opcode {op:#04x}"),
            WireError::BadPayload(why) => write!(f, "malformed payload: {why}"),
            WireError::Io(why) => write!(f, "socket error: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

// ---------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected 0xEDB88320) — same variant and same
// implementation as the .hist envelope: the workspace's single CRC32
// lives in `sj_histogram::crc` (re-exported as `sj_core::crc`). The
// byte-for-byte wire format is unchanged; `fingerprint.rs` keeps its
// own copy so the checker stays dependency-free.
// ---------------------------------------------------------------------

pub use sj_core::crc::crc32;

// ---------------------------------------------------------------------
// Frame
// ---------------------------------------------------------------------

/// One wire message: an opcode byte plus its payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Raw opcode byte (a request code, `request | RESPONSE_BIT`, or
    /// [`ERROR_OPCODE`]).
    pub opcode: u8,
    /// The payload bytes.
    pub payload: Vec<u8>,
}

impl Frame {
    /// Builds a request frame.
    #[must_use]
    pub fn request(op: Opcode, payload: Vec<u8>) -> Self {
        Self {
            opcode: op.code(),
            payload,
        }
    }

    /// Serializes the frame: header, payload, CRC32 trailer.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN + self.payload.len() + TRAILER_LEN);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        out.push(self.opcode);
        out.push(0); // reserved
        let len = u32::try_from(self.payload.len()).unwrap_or(u32::MAX);
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }

    /// Decodes one complete frame from `bytes`, which must contain the
    /// frame exactly (no trailing data).
    ///
    /// # Errors
    /// Every corruption mode is a distinct [`WireError`]: wrong magic,
    /// unsupported version, oversized or truncated length, checksum
    /// mismatch, trailing garbage.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let header = bytes.get(..HEADER_LEN).ok_or(WireError::Truncated {
            needed: HEADER_LEN,
            got: bytes.len(),
        })?;
        let (magic, version, opcode, reserved, len) = parse_header(header)?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        if reserved != 0 {
            return Err(WireError::BadReserved(reserved));
        }
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized {
                len,
                max: MAX_PAYLOAD,
            });
        }
        let payload_len = len as usize;
        let total = HEADER_LEN + payload_len + TRAILER_LEN;
        if bytes.len() != total {
            return Err(WireError::Truncated {
                needed: total,
                got: bytes.len(),
            });
        }
        let body = bytes.get(..HEADER_LEN + payload_len).unwrap_or_default();
        let trailer = bytes.get(HEADER_LEN + payload_len..).unwrap_or_default();
        let expected = u32::from_le_bytes(le4(trailer)?);
        let actual = crc32(body);
        if expected != actual {
            return Err(WireError::ChecksumMismatch { expected, actual });
        }
        Ok(Self {
            opcode,
            payload: body.get(HEADER_LEN..).unwrap_or_default().to_vec(),
        })
    }

    /// Writes the frame to `w` and flushes.
    ///
    /// # Errors
    /// [`WireError::Io`] on write failure.
    pub fn write_to(&self, w: &mut impl std::io::Write) -> Result<(), WireError> {
        w.write_all(&self.to_bytes())?;
        w.flush()?;
        Ok(())
    }

    /// Reads one complete frame from `r`.
    ///
    /// Reads the fixed header first, validates it (so an absurd length
    /// prefix is rejected before any allocation), then reads exactly the
    /// declared payload and trailer and runs the full [`Frame::from_bytes`]
    /// validation.
    ///
    /// # Errors
    /// A clean EOF before the first header byte is
    /// `WireError::Io("connection closed")`; everything else maps to the
    /// corruption taxonomy of [`Frame::from_bytes`].
    pub fn read_from(r: &mut impl std::io::Read) -> Result<Self, WireError> {
        let mut header = [0u8; HEADER_LEN];
        read_exact_or_truncated(r, &mut header, true)?;
        let (magic, version, _opcode, reserved, len) = parse_header(&header)?;
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        if version != WIRE_VERSION {
            return Err(WireError::UnsupportedVersion(version));
        }
        if reserved != 0 {
            return Err(WireError::BadReserved(reserved));
        }
        if len > MAX_PAYLOAD {
            return Err(WireError::Oversized {
                len,
                max: MAX_PAYLOAD,
            });
        }
        let rest_len = len as usize + TRAILER_LEN;
        let mut frame = Vec::with_capacity(HEADER_LEN + rest_len);
        frame.extend_from_slice(&header);
        frame.resize(HEADER_LEN + rest_len, 0);
        read_exact_or_truncated(r, &mut frame[HEADER_LEN..], false)?;
        Self::from_bytes(&frame)
    }
}

/// Splits a raw 12-byte header into its fields without validating them.
fn parse_header(header: &[u8]) -> Result<([u8; 4], u16, u8, u8, u32), WireError> {
    let magic = le4(header.get(0..4).unwrap_or_default())?;
    let version = u16::from_le_bytes(le2(header.get(4..6).unwrap_or_default())?);
    let opcode = header.get(6).copied().unwrap_or(0);
    let reserved = header.get(7).copied().unwrap_or(0);
    let len = u32::from_le_bytes(le4(header.get(8..12).unwrap_or_default())?);
    Ok((magic, version, opcode, reserved, len))
}

/// `read_exact` with the error vocabulary of this protocol: a clean EOF
/// at a frame boundary (`at_boundary`) is an I/O-level "connection
/// closed"; an EOF mid-frame is [`WireError::Truncated`].
fn read_exact_or_truncated(
    r: &mut impl std::io::Read,
    buf: &mut [u8],
    at_boundary: bool,
) -> Result<(), WireError> {
    let mut filled = 0usize;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                if at_boundary && filled == 0 {
                    return Err(WireError::Io("connection closed".to_string()));
                }
                return Err(WireError::Truncated {
                    needed: buf.len(),
                    got: filled,
                });
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => return Err(WireError::from(e)),
        }
    }
    Ok(())
}

fn le2(bytes: &[u8]) -> Result<[u8; 2], WireError> {
    <[u8; 2]>::try_from(bytes).map_err(|_| WireError::Truncated {
        needed: 2,
        got: bytes.len(),
    })
}

fn le4(bytes: &[u8]) -> Result<[u8; 4], WireError> {
    <[u8; 4]>::try_from(bytes).map_err(|_| WireError::Truncated {
        needed: 4,
        got: bytes.len(),
    })
}

// ---------------------------------------------------------------------
// Payload primitives
// ---------------------------------------------------------------------

/// Appends a `u8`.
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Appends a `u16` (LE).
pub fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` (LE).
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` (LE).
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its LE bit pattern (exact round-trip).
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a string as `u16 LE length + UTF-8 bytes`.
///
/// Strings longer than `u16::MAX` bytes are truncated at the limit (no
/// table name or reason string comes close).
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    let bytes = s.as_bytes();
    let len = bytes.len().min(usize::from(u16::MAX));
    // Floor guarantees the cast: len <= u16::MAX.
    put_u16(out, u16::try_from(len).unwrap_or(u16::MAX));
    out.extend_from_slice(&bytes[..len]);
}

/// Sequential reader over a payload with typed, bounds-checked accessors.
#[derive(Debug)]
pub struct PayloadReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> PayloadReader<'a> {
    /// Starts reading at the beginning of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated {
            needed: usize::MAX,
            got: self.buf.len(),
        })?;
        let slice = self.buf.get(self.pos..end).ok_or(WireError::Truncated {
            needed: end,
            got: self.buf.len(),
        })?;
        self.pos = end;
        Ok(slice)
    }

    /// Reads a `u8`.
    ///
    /// # Errors
    /// [`WireError::Truncated`] past the end of the payload.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?.first().copied().unwrap_or(0))
    }

    /// Reads a `u16` (LE).
    ///
    /// # Errors
    /// [`WireError::Truncated`] past the end of the payload.
    pub fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(le2(self.take(2)?)?))
    }

    /// Reads a `u32` (LE).
    ///
    /// # Errors
    /// [`WireError::Truncated`] past the end of the payload.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(le4(self.take(4)?)?))
    }

    /// Reads a `u64` (LE).
    ///
    /// # Errors
    /// [`WireError::Truncated`] past the end of the payload.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let raw = self.take(8)?;
        let bytes = <[u8; 8]>::try_from(raw).map_err(|_| WireError::Truncated {
            needed: 8,
            got: raw.len(),
        })?;
        Ok(u64::from_le_bytes(bytes))
    }

    /// Reads an `f64` from its LE bit pattern.
    ///
    /// # Errors
    /// [`WireError::Truncated`] past the end of the payload.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        let raw = self.take(8)?;
        let bits = <[u8; 8]>::try_from(raw).map_err(|_| WireError::Truncated {
            needed: 8,
            got: raw.len(),
        })?;
        Ok(f64::from_bits(u64::from_le_bytes(bits)))
    }

    /// Reads a string (`u16 LE length + UTF-8`).
    ///
    /// # Errors
    /// [`WireError::Truncated`] past the end, [`WireError::BadPayload`]
    /// on invalid UTF-8.
    pub fn str(&mut self) -> Result<String, WireError> {
        let len = usize::from(self.u16()?);
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|e| WireError::BadPayload(format!("invalid UTF-8 in string field: {e}")))
    }

    /// Asserts the payload was fully consumed.
    ///
    /// # Errors
    /// [`WireError::BadPayload`] when trailing bytes remain.
    pub fn finish(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::BadPayload(format!(
                "{} trailing byte(s) after the last field",
                self.buf.len() - self.pos
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frame_round_trips() {
        let f = Frame::request(Opcode::Estimate, b"hello".to_vec());
        let bytes = f.to_bytes();
        assert_eq!(Frame::from_bytes(&bytes).unwrap(), f);
        assert_eq!(bytes.len(), HEADER_LEN + 5 + TRAILER_LEN);
    }

    #[test]
    fn every_corruption_is_typed() {
        let clean = Frame::request(Opcode::Ping, vec![1, 2, 3]).to_bytes();

        let mut bad_magic = clean.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Frame::from_bytes(&bad_magic),
            Err(WireError::BadMagic(_))
        ));

        let mut bad_version = clean.clone();
        bad_version[4] = 99;
        assert!(matches!(
            Frame::from_bytes(&bad_version),
            Err(WireError::UnsupportedVersion(_))
        ));

        let mut oversized = clean.clone();
        oversized[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            Frame::from_bytes(&oversized),
            Err(WireError::Oversized { .. })
        ));

        let truncated = &clean[..clean.len() - 3];
        assert!(matches!(
            Frame::from_bytes(truncated),
            Err(WireError::Truncated { .. })
        ));

        let mut flipped = clean.clone();
        let mid = HEADER_LEN + 1;
        flipped[mid] ^= 0x40;
        assert!(matches!(
            Frame::from_bytes(&flipped),
            Err(WireError::ChecksumMismatch { .. })
        ));
    }

    #[test]
    fn read_from_rejects_oversized_before_allocating() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.push(Opcode::Ping.code());
        bytes.push(0);
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut cursor = bytes.as_slice();
        assert!(matches!(
            Frame::read_from(&mut cursor),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn read_from_clean_eof_is_connection_closed() {
        let mut empty: &[u8] = &[];
        match Frame::read_from(&mut empty) {
            Err(WireError::Io(msg)) => assert!(msg.contains("closed"), "{msg}"),
            other => panic!("expected Io, got {other:?}"),
        }
    }

    #[test]
    fn read_from_mid_frame_eof_is_truncated() {
        let full = Frame::request(Opcode::Tables, vec![7; 40]).to_bytes();
        let mut cut = &full[..HEADER_LEN + 10];
        assert!(matches!(
            Frame::read_from(&mut cut),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn payload_primitives_round_trip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 9);
        put_u16(&mut buf, 513);
        put_f64(&mut buf, -0.125);
        put_str(&mut buf, "scrc with ünïcode");
        let mut r = PayloadReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 9);
        assert_eq!(r.u16().unwrap(), 513);
        assert_eq!(r.f64().unwrap(), -0.125);
        assert_eq!(r.str().unwrap(), "scrc with ünïcode");
        r.finish().unwrap();
    }

    #[test]
    fn f64_bit_patterns_are_exact() {
        for v in [f64::NAN, f64::INFINITY, -0.0, 1.0e-300, 123.456] {
            let mut buf = Vec::new();
            put_f64(&mut buf, v);
            let got = PayloadReader::new(&buf).f64().unwrap();
            assert_eq!(got.to_bits(), v.to_bits());
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 1);
        put_u8(&mut buf, 2);
        let mut r = PayloadReader::new(&buf);
        r.u8().unwrap();
        assert!(matches!(r.finish(), Err(WireError::BadPayload(_))));
    }

    #[test]
    fn truncated_string_is_typed() {
        let mut buf = Vec::new();
        put_u16(&mut buf, 100); // claims 100 bytes, provides none
        let mut r = PayloadReader::new(&buf);
        assert!(matches!(r.str(), Err(WireError::Truncated { .. })));
    }

    #[test]
    fn opcodes_round_trip_and_stay_unique() {
        let mut seen = std::collections::BTreeSet::new();
        for op in Opcode::ALL {
            assert_eq!(Opcode::from_code(op.code()), Some(op));
            assert!(seen.insert(op.code()), "duplicate opcode byte");
            assert_eq!(op.response() & RESPONSE_BIT, RESPONSE_BIT);
        }
        assert_eq!(Opcode::from_code(0x42), None);
    }

    #[test]
    fn status_codes_have_names() {
        for code in 0..=8u8 {
            assert_ne!(status::name(code), "unknown", "code {code}");
        }
        assert_eq!(status::name(200), "unknown");
    }

    #[test]
    fn u64_round_trips() {
        let mut buf = Vec::new();
        put_u64(&mut buf, u64::MAX - 7);
        put_u64(&mut buf, 0);
        let mut r = PayloadReader::new(&buf);
        assert_eq!(r.u64().unwrap(), u64::MAX - 7);
        assert_eq!(r.u64().unwrap(), 0);
        r.finish().unwrap();
        assert!(matches!(
            PayloadReader::new(&buf[..5]).u64(),
            Err(WireError::Truncated { .. })
        ));
    }
}
