//! The daemon side: a TCP listener, one handler thread per connection
//! on `std::thread::scope`, and a pure request dispatcher.
//!
//! Error policy, pinned by the fault-injection suite:
//!
//! * **Frame-level corruption** (bad magic, bad CRC, truncation,
//!   oversized length prefix, unsupported version) — the stream can no
//!   longer be trusted to be frame-aligned, so the server sends a
//!   best-effort [`wire::ERROR_OPCODE`] response and closes the
//!   connection.
//! * **Well-framed but bad requests** (unknown opcode, malformed
//!   payload, service errors) — a typed error response on the same
//!   connection, which stays open for the next request.
//! * Never a panic, never a wedged connection: a mid-request disconnect
//!   surfaces as a typed read error and ends only that handler thread.

use crate::service::{ServiceError, StatisticsService};
use crate::wire::{self, status, Frame, Opcode, PayloadReader, WireError};
use sj_core::sync::{LockRank, OrderedMutex};
use sj_geo::Rect;
use sj_query::MutationId;
use std::io::Write as _;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

/// Admission-control knobs for a [`Server`].
///
/// The defaults keep historical behavior for embedded test servers:
/// a generous connection ceiling and no socket deadlines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServerConfig {
    /// Hard ceiling on concurrently served connections. An accept past
    /// the ceiling is answered with a best-effort [`status::OVERLOADED`]
    /// error frame and closed immediately instead of pinning a handler
    /// thread.
    pub max_connections: usize,
    /// Per-connection read *and* write deadline. `None` (the default)
    /// means blocking sockets with no deadline; a stalled peer then pins
    /// its handler until shutdown.
    pub io_timeout: Option<Duration>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            max_connections: 64,
            io_timeout: None,
        }
    }
}

/// Deterministic backoff schedule (milliseconds) for consecutive
/// transient accept failures, so a persistent error (fd exhaustion,
/// netns teardown) cannot spin the accept loop hot. Indexed by the
/// number of consecutive failures, saturating at the last entry; a
/// successful accept resets the index.
const ACCEPT_BACKOFF_MS: [u64; 6] = [1, 2, 5, 10, 25, 50];

/// Errors starting or running a server.
///
/// `#[non_exhaustive]`: future failure modes must not break matches.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ServerError {
    /// Binding, accepting or introspecting the listener failed.
    Io(String),
}

impl std::fmt::Display for ServerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServerError::Io(why) => write!(f, "server I/O error: {why}"),
        }
    }
}

impl std::error::Error for ServerError {}

/// A statistics daemon bound to a TCP address.
pub struct Server<S: StatisticsService> {
    listener: TcpListener,
    service: S,
    config: ServerConfig,
    shutdown: AtomicBool,
    /// Cloned handles of live connections keyed by connection id, shut
    /// down to unpark blocked reader threads when the daemon stops.
    /// Handlers deregister their entry on exit — a lingering clone would
    /// keep the peer's socket half-open and leak one fd per connection.
    /// Doubles as the admission-control census: its length is the live
    /// connection count checked against `config.max_connections`.
    conns: OrderedMutex<Vec<(u64, TcpStream)>>,
    /// Monotonic connection id source.
    next_conn: AtomicU64,
}

impl<S: StatisticsService> Server<S> {
    /// Binds to `addr` (use port 0 for an OS-assigned port) without
    /// accepting yet, with default admission control.
    ///
    /// # Errors
    /// [`ServerError::Io`] when the bind fails.
    pub fn bind(addr: impl ToSocketAddrs, service: S) -> Result<Self, ServerError> {
        Self::bind_with_config(addr, service, ServerConfig::default())
    }

    /// Binds with explicit admission-control settings.
    ///
    /// # Errors
    /// [`ServerError::Io`] when the bind fails.
    pub fn bind_with_config(
        addr: impl ToSocketAddrs,
        service: S,
        config: ServerConfig,
    ) -> Result<Self, ServerError> {
        let listener = TcpListener::bind(addr).map_err(|e| ServerError::Io(e.to_string()))?;
        Ok(Self {
            listener,
            service,
            config,
            shutdown: AtomicBool::new(false),
            conns: OrderedMutex::new(LockRank::ConnRegistry, "server.conns", Vec::new()),
            next_conn: AtomicU64::new(0),
        })
    }

    /// The bound address (reports the OS-assigned port after a port-0
    /// bind).
    ///
    /// # Errors
    /// [`ServerError::Io`] when the socket cannot report its address.
    pub fn local_addr(&self) -> Result<SocketAddr, ServerError> {
        self.listener
            .local_addr()
            .map_err(|e| ServerError::Io(e.to_string()))
    }

    /// Serves until a client sends a `Shutdown` request. Each accepted
    /// connection is handled on its own scoped thread; the call returns
    /// only after every handler has finished.
    ///
    /// # Errors
    /// [`ServerError::Io`] when `local_addr` is unavailable; accept
    /// errors on individual connections are skipped, not fatal.
    pub fn run(&self) -> Result<(), ServerError> {
        // Needed for the self-connect that unblocks `accept` at shutdown.
        let addr = self.local_addr()?;
        std::thread::scope(|scope| {
            let mut accept_failures = 0usize;
            for stream in self.listener.incoming() {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = stream else {
                    // Transient accept failure: back off on a bounded
                    // deterministic schedule instead of spinning hot.
                    let slot = accept_failures.min(ACCEPT_BACKOFF_MS.len() - 1);
                    accept_failures = accept_failures.saturating_add(1);
                    std::thread::sleep(Duration::from_millis(ACCEPT_BACKOFF_MS[slot]));
                    continue;
                };
                accept_failures = 0;
                let live = self.conns.lock().len();
                if live >= self.config.max_connections {
                    reject_overloaded(stream, self.config.max_connections);
                    continue;
                }
                if self.config.io_timeout.is_some() {
                    // A deadline miss surfaces as a read/write error in
                    // the handler, which closes the connection — exactly
                    // the "stalled peer cannot pin a thread" contract.
                    drop(stream.set_read_timeout(self.config.io_timeout));
                    drop(stream.set_write_timeout(self.config.io_timeout));
                }
                // sj-lint: allow(atomic-ordering, monotonic id allocation needs only per-counter uniqueness; no other memory is published under this counter)
                let id = self.next_conn.fetch_add(1, Ordering::Relaxed);
                if let Ok(handle) = stream.try_clone() {
                    self.conns.lock().push((id, handle));
                }
                scope.spawn(move || {
                    self.handle_connection(stream, addr);
                    self.forget_connection(id);
                });
            }
        });
        Ok(())
    }

    /// Requests shutdown: stops accepting and unblocks every parked
    /// connection reader. Safe to call from any thread.
    pub fn initiate_shutdown(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Ok(addr) = self.local_addr() {
            // Wake the blocking accept; the loop re-checks the flag first.
            drop(TcpStream::connect(addr));
        }
        let conns = std::mem::take(&mut *self.conns.lock());
        for (_, conn) in conns {
            drop(conn.shutdown(std::net::Shutdown::Both));
        }
    }

    /// Drops the registry clone of a finished connection so the kernel
    /// can actually close the socket (and the fd is reclaimed).
    fn forget_connection(&self, id: u64) {
        self.conns.lock().retain(|(cid, _)| *cid != id);
    }

    /// Serves one connection until it closes, a frame-level corruption
    /// makes the stream untrustworthy, or the daemon shuts down.
    fn handle_connection(&self, mut stream: TcpStream, _addr: SocketAddr) {
        loop {
            if self.shutdown.load(Ordering::SeqCst) {
                return;
            }
            let frame = match Frame::read_from(&mut stream) {
                Ok(frame) => frame,
                Err(WireError::Io(_)) => return, // disconnect
                Err(e) => {
                    // Corrupt framing: answer best-effort, then close —
                    // the stream may no longer be frame-aligned.
                    let resp = error_frame(wire::ERROR_OPCODE, e.status(), &e.to_string());
                    drop(resp.write_to(&mut stream));
                    drop(stream.flush());
                    return;
                }
            };
            let (resp, shutdown) = handle_request(&self.service, &frame);
            if resp.write_to(&mut stream).is_err() {
                return;
            }
            if shutdown {
                self.initiate_shutdown();
                return;
            }
        }
    }
}

/// Answers a connection past the admission ceiling: a best-effort
/// [`status::OVERLOADED`] error frame, then an immediate close. The
/// write is fire-and-forget — the peer may already be gone, and the
/// whole point is not to block the accept loop on a slow client.
fn reject_overloaded(mut stream: TcpStream, ceiling: usize) {
    drop(stream.set_write_timeout(Some(Duration::from_millis(100))));
    let resp = error_frame(
        wire::ERROR_OPCODE,
        status::OVERLOADED,
        &format!("server at connection limit ({ceiling})"),
    );
    drop(resp.write_to(&mut stream));
    drop(stream.flush());
}

/// Builds a non-OK response frame: `status + message`.
fn error_frame(opcode: u8, code: u8, message: &str) -> Frame {
    let mut payload = Vec::new();
    wire::put_u8(&mut payload, code);
    wire::put_str(&mut payload, message);
    Frame { opcode, payload }
}

/// Builds an OK response frame: `status 0 + result`.
fn ok_frame(op: Opcode, result: Vec<u8>) -> Frame {
    let mut payload = Vec::with_capacity(result.len() + 1);
    wire::put_u8(&mut payload, status::OK);
    payload.extend_from_slice(&result);
    Frame {
        opcode: op.response(),
        payload,
    }
}

/// Dispatches one well-framed request to the service and renders the
/// response frame. Pure (no socket), so unit tests drive it directly.
/// The second return is `true` when the request asked for shutdown.
pub fn handle_request<S: StatisticsService>(service: &S, frame: &Frame) -> (Frame, bool) {
    let Some(op) = Opcode::from_code(frame.opcode) else {
        let e = WireError::UnknownOpcode(frame.opcode);
        return (
            error_frame(wire::ERROR_OPCODE, e.status(), &e.to_string()),
            false,
        );
    };
    let result = serve_opcode(service, op, &frame.payload);
    let resp = match result {
        Ok(body) => ok_frame(op, body),
        Err(RequestError::Wire(e)) => error_frame(op.response(), e.status(), &e.to_string()),
        Err(RequestError::Service(e)) => error_frame(op.response(), e.status, &e.message),
    };
    (resp, op == Opcode::Shutdown)
}

/// A request that could not produce a result payload.
enum RequestError {
    /// The payload did not parse.
    Wire(WireError),
    /// The service refused.
    Service(ServiceError),
}

impl From<WireError> for RequestError {
    fn from(e: WireError) -> Self {
        RequestError::Wire(e)
    }
}

impl From<ServiceError> for RequestError {
    fn from(e: ServiceError) -> Self {
        RequestError::Service(e)
    }
}

/// Serves one opcode: parses the request payload, calls the service,
/// and encodes the OK result payload (without the status byte).
fn serve_opcode<S: StatisticsService>(
    service: &S,
    op: Opcode,
    payload: &[u8],
) -> Result<Vec<u8>, RequestError> {
    let mut r = PayloadReader::new(payload);
    match op {
        Opcode::Ping | Opcode::Shutdown => {
            r.finish()?;
            Ok(Vec::new())
        }
        Opcode::Estimate => {
            let (a, b) = (r.str()?, r.str()?);
            r.finish()?;
            let est = service.estimate(&a, &b)?;
            let mut out = Vec::new();
            wire::put_f64(&mut out, est.selectivity);
            wire::put_f64(&mut out, est.pairs);
            Ok(out)
        }
        Opcode::WindowCount => {
            let table = r.str()?;
            let (x0, y0, x1, y1) = (r.f64()?, r.f64()?, r.f64()?, r.f64()?);
            r.finish()?;
            let count = service.window_count(&table, &Rect::new(x0, y0, x1, y1))?;
            let mut out = Vec::new();
            wire::put_f64(&mut out, count);
            Ok(out)
        }
        Opcode::Explain => {
            let n = usize::from(r.u16()?);
            let mut tables = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                tables.push(r.str()?);
            }
            r.finish()?;
            let text = service.explain(&tables)?;
            let mut out = Vec::new();
            wire::put_str(&mut out, &text);
            Ok(out)
        }
        Opcode::CatalogEstimate => {
            let (a, b) = (r.str()?, r.str()?);
            r.finish()?;
            let outcome = service.catalog_estimate(&a, &b)?;
            Ok(outcome.to_bytes())
        }
        Opcode::BatchEstimate => {
            let n = usize::from(r.u16()?);
            let mut pairs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                pairs.push((r.str()?, r.str()?));
            }
            r.finish()?;
            // One frame in, one frame out: each item is individually
            // status-wrapped so a bad table name fails that item only.
            let mut out = Vec::new();
            wire::put_u16(&mut out, u16::try_from(pairs.len()).unwrap_or(u16::MAX));
            for (a, b) in &pairs {
                match service.estimate(a, b) {
                    Ok(est) => {
                        wire::put_u8(&mut out, status::OK);
                        wire::put_f64(&mut out, est.selectivity);
                        wire::put_f64(&mut out, est.pairs);
                    }
                    Err(e) => {
                        wire::put_u8(&mut out, e.status);
                        wire::put_str(&mut out, &e.message);
                    }
                }
            }
            Ok(out)
        }
        Opcode::Tables => {
            r.finish()?;
            let names = service.tables();
            let mut out = Vec::new();
            wire::put_u16(&mut out, u16::try_from(names.len()).unwrap_or(u16::MAX));
            for name in names.iter().take(usize::from(u16::MAX)) {
                wire::put_str(&mut out, name);
            }
            Ok(out)
        }
        Opcode::InsertBatch | Opcode::DeleteBatch => {
            let (table, id, rects) = read_mutation(&mut r)?;
            let reply = if op == Opcode::InsertBatch {
                service.insert_batch(&table, &rects, id)?
            } else {
                service.delete_batch(&table, &rects, id)?
            };
            let mut out = Vec::new();
            wire::put_u32(&mut out, reply.applied);
            wire::put_u16(&mut out, reply.pending_tiers);
            wire::put_u8(&mut out, u8::from(reply.compacted));
            wire::put_u8(&mut out, u8::from(reply.deduplicated));
            Ok(out)
        }
        Opcode::Compact => {
            let table = r.str()?;
            r.finish()?;
            let reply = service.compact(&table)?;
            let mut out = Vec::new();
            wire::put_u16(&mut out, reply.tiers_folded);
            wire::put_u8(&mut out, u8::from(reply.persisted));
            Ok(out)
        }
    }
}

/// Parses the shared `insert-batch`/`delete-batch` request payload
/// (wire v3): table name, mutation-id token and sequence (all-zero =
/// unstamped, no dedup), rectangle count, then that many `(xlo, ylo,
/// xhi, yhi)` quadruples. The 16 MiB frame cap already bounds the
/// count; the capacity pre-allocation is clamped anyway so a lying
/// prefix cannot balloon memory before the reader hits truncation.
fn read_mutation(
    r: &mut PayloadReader<'_>,
) -> Result<(String, MutationId, Vec<Rect>), RequestError> {
    let table = r.str()?;
    let id = MutationId::new(r.u64()?, r.u64()?);
    let n = r.u32()? as usize;
    let mut rects = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        let (x0, y0, x1, y1) = (r.f64()?, r.f64()?, r.f64()?, r.f64()?);
        rects.push(Rect::new(x0, y0, x1, y1));
    }
    r.finish()?;
    Ok((table, id, rects))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{CompactReply, EstimateReply, MutationReply, RemoteOutcome};

    /// A service stub with deterministic answers.
    struct Stub;

    impl StatisticsService for Stub {
        fn estimate(&self, a: &str, b: &str) -> Result<EstimateReply, ServiceError> {
            if a == "missing" || b == "missing" {
                return Err(ServiceError::new(status::RUNTIME, "unknown table"));
            }
            Ok(EstimateReply {
                selectivity: 0.25,
                pairs: 42.0,
            })
        }

        fn window_count(&self, _table: &str, w: &Rect) -> Result<f64, ServiceError> {
            Ok(w.area())
        }

        fn explain(&self, tables: &[String]) -> Result<String, ServiceError> {
            Ok(format!("plan over {}", tables.join(",")))
        }

        fn catalog_estimate(&self, _a: &str, _b: &str) -> Result<RemoteOutcome, ServiceError> {
            Err(ServiceError::new(status::EXHAUSTED, "all tiers off"))
        }

        fn tables(&self) -> Vec<String> {
            vec!["a".to_string(), "b".to_string()]
        }

        fn insert_batch(
            &self,
            table: &str,
            rects: &[Rect],
            id: MutationId,
        ) -> Result<MutationReply, ServiceError> {
            if table == "missing" {
                return Err(ServiceError::new(status::RUNTIME, "unknown table"));
            }
            Ok(MutationReply {
                applied: u32::try_from(rects.len()).unwrap_or(u32::MAX),
                pending_tiers: 1,
                compacted: false,
                // Lets wire tests observe that the id survived parsing.
                deduplicated: id == MutationId::new(7, 7),
            })
        }

        fn delete_batch(
            &self,
            table: &str,
            rects: &[Rect],
            _id: MutationId,
        ) -> Result<MutationReply, ServiceError> {
            if table == "missing" {
                return Err(ServiceError::new(status::INVALID_DATA, "no such object"));
            }
            Ok(MutationReply {
                applied: u32::try_from(rects.len()).unwrap_or(u32::MAX),
                pending_tiers: 2,
                compacted: true,
                deduplicated: false,
            })
        }

        fn compact(&self, table: &str) -> Result<CompactReply, ServiceError> {
            if table == "missing" {
                return Err(ServiceError::new(status::RUNTIME, "unknown table"));
            }
            Ok(CompactReply {
                tiers_folded: 3,
                persisted: true,
            })
        }
    }

    fn status_of(frame: &Frame) -> u8 {
        frame.payload.first().copied().unwrap_or(0xEE)
    }

    #[test]
    fn ping_round_trips() {
        let (resp, stop) = handle_request(&Stub, &Frame::request(Opcode::Ping, Vec::new()));
        assert_eq!(resp.opcode, Opcode::Ping.response());
        assert_eq!(resp.payload, vec![status::OK]);
        assert!(!stop);
    }

    #[test]
    fn estimate_encodes_result() {
        let mut p = Vec::new();
        wire::put_str(&mut p, "x");
        wire::put_str(&mut p, "y");
        let (resp, _) = handle_request(&Stub, &Frame::request(Opcode::Estimate, p));
        assert_eq!(status_of(&resp), status::OK);
        let mut r = PayloadReader::new(&resp.payload);
        r.u8().unwrap();
        assert_eq!(r.f64().unwrap(), 0.25);
        assert_eq!(r.f64().unwrap(), 42.0);
        r.finish().unwrap();
    }

    #[test]
    fn service_error_keeps_connection_semantics() {
        let mut p = Vec::new();
        wire::put_str(&mut p, "missing");
        wire::put_str(&mut p, "y");
        let (resp, stop) = handle_request(&Stub, &Frame::request(Opcode::Estimate, p));
        assert_eq!(resp.opcode, Opcode::Estimate.response());
        assert_eq!(status_of(&resp), status::RUNTIME);
        assert!(!stop);
    }

    #[test]
    fn malformed_payload_is_usage_or_corrupt_never_panic() {
        // Estimate with no strings at all: truncated payload.
        let (resp, _) = handle_request(&Stub, &Frame::request(Opcode::Estimate, Vec::new()));
        assert_eq!(status_of(&resp), status::CORRUPT);
        // Trailing garbage after a valid ping payload.
        let (resp, _) = handle_request(&Stub, &Frame::request(Opcode::Ping, vec![1, 2, 3]));
        assert_eq!(status_of(&resp), status::USAGE);
    }

    #[test]
    fn unknown_opcode_is_error_opcode() {
        let (resp, stop) = handle_request(
            &Stub,
            &Frame {
                opcode: 0x42,
                payload: Vec::new(),
            },
        );
        assert_eq!(resp.opcode, wire::ERROR_OPCODE);
        assert_eq!(status_of(&resp), status::USAGE);
        assert!(!stop);
    }

    #[test]
    fn batch_wraps_each_item() {
        let mut p = Vec::new();
        wire::put_u16(&mut p, 2);
        wire::put_str(&mut p, "x");
        wire::put_str(&mut p, "y");
        wire::put_str(&mut p, "missing");
        wire::put_str(&mut p, "y");
        let (resp, _) = handle_request(&Stub, &Frame::request(Opcode::BatchEstimate, p));
        let mut r = PayloadReader::new(&resp.payload);
        assert_eq!(r.u8().unwrap(), status::OK);
        assert_eq!(r.u16().unwrap(), 2);
        assert_eq!(r.u8().unwrap(), status::OK);
        r.f64().unwrap();
        r.f64().unwrap();
        assert_eq!(r.u8().unwrap(), status::RUNTIME);
        assert!(r.str().unwrap().contains("unknown table"));
        r.finish().unwrap();
    }

    fn mutation_payload(table: &str, id: MutationId, rects: &[(f64, f64, f64, f64)]) -> Vec<u8> {
        let mut p = Vec::new();
        wire::put_str(&mut p, table);
        wire::put_u64(&mut p, id.token);
        wire::put_u64(&mut p, id.seq);
        wire::put_u32(&mut p, u32::try_from(rects.len()).unwrap());
        for &(x0, y0, x1, y1) in rects {
            wire::put_f64(&mut p, x0);
            wire::put_f64(&mut p, y0);
            wire::put_f64(&mut p, x1);
            wire::put_f64(&mut p, y1);
        }
        p
    }

    #[test]
    fn insert_batch_encodes_receipt() {
        let p = mutation_payload(
            "a",
            MutationId::UNSTAMPED,
            &[(0.0, 0.0, 1.0, 1.0), (2.0, 2.0, 3.0, 3.0)],
        );
        let (resp, stop) = handle_request(&Stub, &Frame::request(Opcode::InsertBatch, p));
        assert!(!stop);
        let mut r = PayloadReader::new(&resp.payload);
        assert_eq!(r.u8().unwrap(), status::OK);
        assert_eq!(r.u32().unwrap(), 2); // applied
        assert_eq!(r.u16().unwrap(), 1); // pending tiers
        assert_eq!(r.u8().unwrap(), 0); // not compacted
        assert_eq!(r.u8().unwrap(), 0); // not deduplicated
        r.finish().unwrap();
    }

    #[test]
    fn mutation_id_reaches_the_service() {
        // The stub reports deduplicated only for id (7, 7): seeing the
        // flag back proves the token/seq pair survived payload parsing.
        let p = mutation_payload("a", MutationId::new(7, 7), &[(0.0, 0.0, 1.0, 1.0)]);
        let (resp, _) = handle_request(&Stub, &Frame::request(Opcode::InsertBatch, p));
        let mut r = PayloadReader::new(&resp.payload);
        assert_eq!(r.u8().unwrap(), status::OK);
        r.u32().unwrap();
        r.u16().unwrap();
        r.u8().unwrap();
        assert_eq!(r.u8().unwrap(), 1); // deduplicated echo
        r.finish().unwrap();
    }

    #[test]
    fn delete_batch_error_is_well_framed() {
        let p = mutation_payload("missing", MutationId::UNSTAMPED, &[(0.0, 0.0, 1.0, 1.0)]);
        let (resp, _) = handle_request(&Stub, &Frame::request(Opcode::DeleteBatch, p));
        assert_eq!(resp.opcode, Opcode::DeleteBatch.response());
        assert_eq!(status_of(&resp), status::INVALID_DATA);
    }

    #[test]
    fn truncated_mutation_payload_is_typed() {
        // Count claims 3 rects but only one follows: CORRUPT, no panic.
        let mut p = Vec::new();
        wire::put_str(&mut p, "a");
        wire::put_u64(&mut p, 0);
        wire::put_u64(&mut p, 0);
        wire::put_u32(&mut p, 3);
        for _ in 0..4 {
            wire::put_f64(&mut p, 0.5);
        }
        let (resp, _) = handle_request(&Stub, &Frame::request(Opcode::InsertBatch, p));
        assert_eq!(status_of(&resp), status::CORRUPT);
    }

    #[test]
    fn v2_mutation_payload_without_id_is_typed_not_applied() {
        // A v2-style payload (no token/seq) misparses deterministically:
        // the count and rect bytes are consumed as the id, leaving the
        // reader truncated or with trailing garbage — a typed error
        // either way, never a silent partial apply.
        let mut p = Vec::new();
        wire::put_str(&mut p, "a");
        wire::put_u32(&mut p, 1);
        for _ in 0..4 {
            wire::put_f64(&mut p, 0.5);
        }
        let (resp, _) = handle_request(&Stub, &Frame::request(Opcode::InsertBatch, p));
        let s = status_of(&resp);
        assert!(
            s == status::CORRUPT || s == status::USAGE,
            "expected typed parse error, got status {s}"
        );
    }

    #[test]
    fn compact_encodes_receipt() {
        let mut p = Vec::new();
        wire::put_str(&mut p, "a");
        let (resp, _) = handle_request(&Stub, &Frame::request(Opcode::Compact, p));
        let mut r = PayloadReader::new(&resp.payload);
        assert_eq!(r.u8().unwrap(), status::OK);
        assert_eq!(r.u16().unwrap(), 3); // tiers folded
        assert_eq!(r.u8().unwrap(), 1); // persisted
        r.finish().unwrap();
    }

    #[test]
    fn shutdown_is_signalled() {
        let (resp, stop) = handle_request(&Stub, &Frame::request(Opcode::Shutdown, Vec::new()));
        assert_eq!(status_of(&resp), status::OK);
        assert!(stop);
    }
}
