//! Server-side fault injection over real sockets.
//!
//! Pins the daemon's error policy: corrupt or hostile input yields a
//! typed wire error (or a byte-identical answer) — never a panic, never
//! a wedged connection, never a dead server. Each test starts a live
//! server on an OS-assigned port, injects its fault with raw socket
//! writes, then proves the server still answers a clean ping.

use sj_server::wire::{self, put_str, HEADER_LEN};
use sj_server::{
    Client, ClientError, CompactReply, EstimateReply, Frame, MutationId, MutationReply, Opcode,
    RemoteOutcome, Server, ServerConfig, ServiceError, StatisticsService,
};
use std::io::{Read as _, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// Deterministic service stub: the tests here probe the wire layer, not
/// the estimator.
struct Stub;

impl StatisticsService for Stub {
    fn estimate(&self, a: &str, _b: &str) -> Result<EstimateReply, ServiceError> {
        if a == "missing" {
            return Err(ServiceError::new(wire::status::RUNTIME, "unknown table"));
        }
        Ok(EstimateReply {
            selectivity: 0.125,
            pairs: 1024.0,
        })
    }

    fn window_count(&self, _table: &str, w: &sj_geo::Rect) -> Result<f64, ServiceError> {
        Ok(w.area())
    }

    fn explain(&self, tables: &[String]) -> Result<String, ServiceError> {
        Ok(format!("plan over {}", tables.join(",")))
    }

    fn catalog_estimate(&self, _a: &str, _b: &str) -> Result<RemoteOutcome, ServiceError> {
        Ok(RemoteOutcome {
            pairs: 1024.0,
            selectivity: 0.125,
            tier_name: "primary".to_string(),
            tier_display: "primary (gh)".to_string(),
            degraded: false,
            skipped: Vec::new(),
        })
    }

    fn tables(&self) -> Vec<String> {
        vec!["a".to_string(), "b".to_string()]
    }

    fn insert_batch(
        &self,
        table: &str,
        rects: &[sj_geo::Rect],
        _id: MutationId,
    ) -> Result<MutationReply, ServiceError> {
        if table == "missing" {
            return Err(ServiceError::new(wire::status::RUNTIME, "unknown table"));
        }
        Ok(MutationReply {
            applied: u32::try_from(rects.len()).unwrap_or(u32::MAX),
            pending_tiers: 1,
            compacted: false,
            deduplicated: false,
        })
    }

    fn delete_batch(
        &self,
        table: &str,
        rects: &[sj_geo::Rect],
        _id: MutationId,
    ) -> Result<MutationReply, ServiceError> {
        if table == "missing" {
            return Err(ServiceError::new(
                wire::status::INVALID_DATA,
                "delete batch entry 0 matches no object",
            ));
        }
        Ok(MutationReply {
            applied: u32::try_from(rects.len()).unwrap_or(u32::MAX),
            pending_tiers: 0,
            compacted: true,
            deduplicated: false,
        })
    }

    fn compact(&self, table: &str) -> Result<CompactReply, ServiceError> {
        if table == "missing" {
            return Err(ServiceError::new(wire::status::RUNTIME, "unknown table"));
        }
        Ok(CompactReply {
            tiers_folded: 2,
            persisted: false,
        })
    }
}

/// Starts a daemon on an OS-assigned port; the returned closure joins it.
fn start() -> (SocketAddr, impl FnOnce()) {
    let server = Arc::new(Server::bind("127.0.0.1:0", Stub).expect("bind"));
    let addr = server.local_addr().expect("local_addr");
    let handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };
    let stop = move || {
        let mut c = Client::connect(addr).expect("connect for shutdown");
        c.shutdown_server().expect("shutdown");
        handle.join().expect("join");
    };
    (addr, stop)
}

/// The server must still answer after a fault elsewhere.
fn assert_alive(addr: SocketAddr) {
    let mut c = Client::connect(addr).expect("connect after fault");
    c.ping().expect("ping after fault");
}

/// Reads the single error frame the server sends before closing a
/// corrupted connection, returning its status byte.
fn read_error_status(stream: &mut TcpStream) -> u8 {
    let frame = Frame::read_from(stream).expect("error frame");
    assert_eq!(frame.opcode, wire::ERROR_OPCODE, "{frame:?}");
    frame.payload.first().copied().expect("status byte")
}

fn valid_estimate_bytes() -> Vec<u8> {
    let mut p = Vec::new();
    put_str(&mut p, "x");
    put_str(&mut p, "y");
    Frame::request(Opcode::Estimate, p).to_bytes()
}

#[test]
fn truncated_frame_gets_typed_error_and_close() {
    let (addr, stop) = start();
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        let bytes = valid_estimate_bytes();
        // Send only half the frame, then close our write side: the
        // server sees a mid-frame EOF.
        s.write_all(&bytes[..bytes.len() / 2]).expect("write");
        s.shutdown(std::net::Shutdown::Write).expect("half-close");
        assert_eq!(read_error_status(&mut s), wire::status::CORRUPT);
        // The connection is closed afterwards: EOF, not a hang.
        let mut rest = Vec::new();
        assert_eq!(s.read_to_end(&mut rest).expect("read_to_end"), 0);
    }
    assert_alive(addr);
    stop();
}

#[test]
fn bit_flipped_payload_fails_the_checksum() {
    let (addr, stop) = start();
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        let mut bytes = valid_estimate_bytes();
        let mid = HEADER_LEN + 1; // inside the payload
        bytes[mid] ^= 0x40;
        s.write_all(&bytes).expect("write");
        assert_eq!(read_error_status(&mut s), wire::status::CORRUPT);
    }
    assert_alive(addr);
    stop();
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    let (addr, stop) = start();
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        let mut header = Vec::new();
        header.extend_from_slice(&wire::MAGIC);
        header.extend_from_slice(&wire::WIRE_VERSION.to_le_bytes());
        header.push(Opcode::Ping.code());
        header.push(0);
        header.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd length
        s.write_all(&header).expect("write");
        assert_eq!(read_error_status(&mut s), wire::status::CORRUPT);
    }
    assert_alive(addr);
    stop();
}

#[test]
fn bad_magic_and_bad_version_are_typed() {
    let (addr, stop) = start();
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        let mut bytes = valid_estimate_bytes();
        bytes[0] = b'X'; // corrupt the magic
        s.write_all(&bytes).expect("write");
        assert_eq!(read_error_status(&mut s), wire::status::CORRUPT);
    }
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        let mut bytes = valid_estimate_bytes();
        bytes[4] = 0xEE; // claim wire version 0xEE
        bytes[5] = 0x00;
        s.write_all(&bytes).expect("write");
        assert_eq!(read_error_status(&mut s), wire::status::MISMATCH);
    }
    assert_alive(addr);
    stop();
}

#[test]
fn mid_request_disconnect_leaves_the_server_healthy() {
    let (addr, stop) = start();
    for _ in 0..4 {
        let mut s = TcpStream::connect(addr).expect("connect");
        let bytes = valid_estimate_bytes();
        s.write_all(&bytes[..HEADER_LEN + 1]).expect("write");
        drop(s); // vanish mid-request
    }
    assert_alive(addr);
    stop();
}

#[test]
fn well_framed_bad_request_keeps_the_connection_open() {
    let (addr, stop) = start();
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        // A perfectly framed Estimate whose payload is garbage.
        let frame = Frame::request(Opcode::Estimate, vec![0xFF, 0xFF, 0xFF]);
        s.write_all(&frame.to_bytes()).expect("write");
        let resp = Frame::read_from(&mut s).expect("typed response");
        assert_eq!(resp.opcode, Opcode::Estimate.response());
        assert_eq!(resp.payload.first(), Some(&wire::status::CORRUPT));
        // Same connection, next request: still served.
        Frame::request(Opcode::Ping, Vec::new())
            .write_to(&mut s)
            .expect("write ping");
        let pong = Frame::read_from(&mut s).expect("pong");
        assert_eq!(pong.opcode, Opcode::Ping.response());
        assert_eq!(pong.payload, vec![wire::status::OK]);
    }
    assert_alive(addr);
    stop();
}

#[test]
fn unknown_opcode_answers_error_opcode_on_an_open_connection() {
    let (addr, stop) = start();
    {
        let mut s = TcpStream::connect(addr).expect("connect");
        let frame = Frame {
            opcode: 0x6A,
            payload: Vec::new(),
        };
        s.write_all(&frame.to_bytes()).expect("write");
        let resp = Frame::read_from(&mut s).expect("typed response");
        assert_eq!(resp.opcode, wire::ERROR_OPCODE);
        assert_eq!(resp.payload.first(), Some(&wire::status::USAGE));
        // Well-framed, so the connection survives.
        Frame::request(Opcode::Ping, Vec::new())
            .write_to(&mut s)
            .expect("write ping");
        assert_eq!(
            Frame::read_from(&mut s).expect("pong").opcode,
            Opcode::Ping.response()
        );
    }
    assert_alive(addr);
    stop();
}

#[test]
fn client_surfaces_remote_errors_typed() {
    let (addr, stop) = start();
    let mut c = Client::connect(addr).expect("connect");
    let err = c.estimate("missing", "y").expect_err("remote failure");
    match err {
        ClientError::Remote { status, message } => {
            assert_eq!(status, wire::status::RUNTIME);
            assert!(message.contains("unknown table"), "{message}");
        }
        other => panic!("expected Remote, got {other:?}"),
    }
    // The connection survived the typed failure.
    c.ping().expect("ping after remote error");
    stop();
}

#[test]
fn garbage_flood_never_wedges_the_server() {
    let (addr, stop) = start();
    for seed in 0u8..8 {
        let mut s = TcpStream::connect(addr).expect("connect");
        // Deterministic pseudo-random garbage, no magic prefix.
        let garbage: Vec<u8> = (0..512u32)
            .map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed))
            .collect();
        drop(s.write_all(&garbage));
        // The server answers one typed error (or just closes) — both
        // fine; what it must not do is hang or die.
        let mut sink = Vec::new();
        drop(s.read_to_end(&mut sink));
    }
    assert_alive(addr);
    stop();
}

#[test]
fn mutation_opcodes_round_trip_and_reject_typed() {
    let (addr, stop) = start();
    let mut c = Client::connect(addr).expect("connect");
    let rects = [
        sj_geo::Rect::new(0.0, 0.0, 0.1, 0.1),
        sj_geo::Rect::new(0.5, 0.5, 0.6, 0.6),
    ];
    let ins = c.insert_batch("a", &rects).expect("insert");
    assert_eq!(ins.applied, 2);
    assert_eq!(ins.pending_tiers, 1);
    assert!(!ins.compacted);
    let del = c.delete_batch("a", &rects[..1]).expect("delete");
    assert_eq!(del.applied, 1);
    assert!(del.compacted);
    let comp = c.compact("a").expect("compact");
    assert_eq!(comp.tiers_folded, 2);
    assert!(!comp.persisted);
    // Typed rejection leaves the connection serviceable.
    let err = c
        .delete_batch("missing", &rects[..1])
        .expect_err("typed delete failure");
    match err {
        ClientError::Remote { status, .. } => assert_eq!(status, wire::status::INVALID_DATA),
        other => panic!("expected Remote, got {other:?}"),
    }
    c.ping().expect("ping after typed mutation failure");
    stop();
}

#[test]
fn connect_with_retry_reaches_a_late_binding_server() {
    // Reserve a port, free it, then bind the real server only after the
    // client has already started retrying against the refused address.
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = probe.local_addr().expect("probe addr");
    drop(probe);
    let server_thread = std::thread::spawn(move || {
        // Hold the port closed past the client's first attempt; the
        // fixed backoff schedule gives it 375 ms of patience in total.
        std::thread::sleep(std::time::Duration::from_millis(60));
        let server = Arc::new(Server::bind(addr, Stub).expect("late bind"));
        let run = {
            let server = Arc::clone(&server);
            std::thread::spawn(move || server.run().expect("run"))
        };
        run.join().expect("join run");
    });
    let mut c = Client::connect_with_retry(addr).expect("retry until the server appears");
    c.ping().expect("ping");
    c.shutdown_server().expect("shutdown");
    server_thread.join().expect("join server thread");
}

#[test]
fn connect_with_retry_still_fails_typed_with_no_server() {
    let probe = std::net::TcpListener::bind("127.0.0.1:0").expect("probe bind");
    let addr = probe.local_addr().expect("probe addr");
    drop(probe);
    let err = Client::connect_with_retry(addr).expect_err("no server ever binds");
    assert!(
        matches!(err, ClientError::Wire(_)),
        "expected a wire-level connect failure, got {err:?}"
    );
}

#[test]
fn overloaded_server_answers_typed_and_drops() {
    let server = Arc::new(
        Server::bind_with_config(
            "127.0.0.1:0",
            Stub,
            ServerConfig {
                max_connections: 1,
                io_timeout: None,
            },
        )
        .expect("bind"),
    );
    let addr = server.local_addr().expect("local_addr");
    let run = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };
    // Occupy the single slot; the ping round-trip guarantees the accept
    // loop has registered the connection before we try the second one.
    let mut first = Client::connect(addr).expect("first connect");
    first.ping().expect("first ping");
    // The second connection must get an Overloaded error frame, then EOF.
    let mut s = TcpStream::connect(addr).expect("second connect");
    let frame = Frame::read_from(&mut s).expect("overload frame");
    assert_eq!(frame.opcode, wire::ERROR_OPCODE);
    assert_eq!(frame.payload.first(), Some(&wire::status::OVERLOADED));
    let mut rest = Vec::new();
    assert_eq!(s.read_to_end(&mut rest).expect("read_to_end"), 0);
    // Releasing the slot restores service. The handler deregisters
    // asynchronously, so poll with fresh connections until a ping lands.
    drop(first);
    let mut served = false;
    for _ in 0..50 {
        if let Ok(mut again) = Client::connect(addr) {
            if again.ping().is_ok() {
                served = true;
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(served, "server never freed the connection slot");
    server.initiate_shutdown();
    run.join().expect("join");
}

#[test]
fn stalled_client_is_disconnected_by_the_io_deadline() {
    let server = Arc::new(
        Server::bind_with_config(
            "127.0.0.1:0",
            Stub,
            ServerConfig {
                max_connections: 4,
                io_timeout: Some(std::time::Duration::from_millis(100)),
            },
        )
        .expect("bind"),
    );
    let addr = server.local_addr().expect("local_addr");
    let run = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run().expect("run"))
    };
    // Connect and send nothing: the read deadline must close us out
    // instead of pinning the handler thread forever.
    let mut s = TcpStream::connect(addr).expect("connect");
    let mut sink = Vec::new();
    assert_eq!(s.read_to_end(&mut sink).expect("read_to_end"), 0);
    // A prompt client is still served afterwards.
    let mut c = Client::connect(addr).expect("connect after stall");
    c.ping().expect("ping after stall");
    drop(c);
    server.initiate_shutdown();
    run.join().expect("join");
}

#[test]
fn concurrent_clients_get_bitwise_identical_answers() {
    let (addr, stop) = start();
    let answers: Vec<(u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..8)
            .map(|_| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr).expect("connect");
                    let mut last = (0u64, 0u64);
                    for _ in 0..50 {
                        let r = c.estimate("x", "y").expect("estimate");
                        last = (r.selectivity.to_bits(), r.pairs.to_bits());
                    }
                    last
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("join"))
            .collect()
    });
    let first = answers.first().copied().expect("at least one");
    assert!(
        answers.iter().all(|a| *a == first),
        "answers diverged across threads: {answers:?}"
    );
    assert_eq!(first, (0.125f64.to_bits(), 1024.0f64.to_bits()));
    stop();
}
