//! Exactly-once mutations across ambiguous connection failures.
//!
//! The worst retry window: the server **applies** an `InsertBatch` and
//! the connection dies before the reply leaves — the client cannot know
//! whether the batch landed. These tests run a frame-level harness that
//! manufactures exactly that window against a real [`CatalogService`]
//! and prove the client's stamped retry is deduplicated (applied
//! exactly once), while a fresh stamp of the same content applies
//! again.

use sj_core::sync::{LockRank, OrderedRwLock};
use sj_geo::{Extent, Rect};
use sj_query::{Catalog, DegradationPolicy};
use sj_server::{handle_request, CatalogService, Client, Frame};
use std::net::TcpListener;
use std::sync::Arc;

const TABLE: &str = "t";
const BASE_N: usize = 40;

fn base_rects() -> Vec<Rect> {
    (0..BASE_N)
        .map(|i| {
            let x = (i % 8) as f64 * 0.11 + 0.02;
            let y = (i / 8) as f64 * 0.11 + 0.02;
            Rect::new(x, y, x + 0.06, y + 0.06)
        })
        .collect()
}

fn fresh_rects(n: usize) -> Vec<Rect> {
    (0..n)
        .map(|i| {
            let x = i as f64 * 0.013 + 0.005;
            Rect::new(x, 0.9, x + 0.01, 0.95)
        })
        .collect()
}

fn shared_catalog() -> Arc<OrderedRwLock<Catalog>> {
    let mut c = Catalog::with_level(4);
    c.register(sj_datagen::Dataset::new(
        TABLE,
        Extent::unit(),
        base_rects(),
    ))
    .expect("register");
    Arc::new(OrderedRwLock::new(LockRank::Catalog, "test.catalog", c))
}

/// The acceptance-criteria scenario: kill the connection after the
/// server applied the batch but before any reply byte; the client's
/// retry must be detected as a duplicate, and the catalog must hold the
/// batch exactly once.
#[test]
fn mid_reply_kill_then_retry_applies_exactly_once() {
    let catalog = shared_catalog();
    let service = CatalogService::new(Arc::clone(&catalog), DegradationPolicy::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local_addr");

    let harness = std::thread::spawn(move || {
        // Connection 1: apply the request, then die without replying —
        // the reply frame is never written, so the client sees a dead
        // socket AFTER the server committed.
        let (mut s, _) = listener.accept().expect("accept 1");
        let frame = Frame::read_from(&mut s).expect("request frame");
        let (_reply, _shutdown) = handle_request(&service, &frame);
        drop(s);
        // Connection 2 (the retry): serve normally until EOF.
        let (mut s, _) = listener.accept().expect("accept 2");
        while let Ok(frame) = Frame::read_from(&mut s) {
            let (reply, shutdown) = handle_request(&service, &frame);
            reply.write_to(&mut s).expect("write reply");
            if shutdown {
                break;
            }
        }
    });

    let mut client = Client::connect(addr).expect("connect");
    let batch = fresh_rects(3);
    let reply = client
        .insert_batch_with_retry(TABLE, &batch)
        .expect("retry path must succeed");
    assert!(
        reply.deduplicated,
        "the retried batch was already applied and must be detected as a duplicate"
    );
    assert_eq!(
        catalog.read().dataset(TABLE).expect("ds").rects.len(),
        BASE_N + batch.len(),
        "the batch must land exactly once despite the retry"
    );

    // Same rectangles, fresh mutation ID: a deliberate re-submission is
    // NOT a retry and must apply again.
    let reply = client
        .insert_batch_with_retry(TABLE, &batch)
        .expect("second submission");
    assert!(
        !reply.deduplicated,
        "a fresh stamp of identical content is a new mutation"
    );
    assert_eq!(
        catalog.read().dataset(TABLE).expect("ds").rects.len(),
        BASE_N + 2 * batch.len()
    );

    drop(client);
    harness.join().expect("harness");
}

/// The same window for `DeleteBatch`: a retried delete must not fail on
/// "rectangle not found" (its targets are already gone) — the dedup
/// check answers before validation.
#[test]
fn mid_reply_kill_then_retried_delete_is_deduplicated() {
    let catalog = shared_catalog();
    let service = CatalogService::new(Arc::clone(&catalog), DegradationPolicy::default());
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("local_addr");

    let harness = std::thread::spawn(move || {
        let (mut s, _) = listener.accept().expect("accept 1");
        let frame = Frame::read_from(&mut s).expect("request frame");
        let (_reply, _shutdown) = handle_request(&service, &frame);
        drop(s);
        let (mut s, _) = listener.accept().expect("accept 2");
        while let Ok(frame) = Frame::read_from(&mut s) {
            let (reply, shutdown) = handle_request(&service, &frame);
            reply.write_to(&mut s).expect("write reply");
            if shutdown {
                break;
            }
        }
    });

    let mut client = Client::connect(addr).expect("connect");
    // Delete two base rectangles; after the first (killed) application
    // they no longer exist, so only dedup can make the retry succeed.
    let victims = base_rects()[..2].to_vec();
    let reply = client
        .delete_batch_with_retry(TABLE, &victims)
        .expect("retried delete must succeed via dedup");
    assert!(
        reply.deduplicated,
        "retried delete must be a detected duplicate"
    );
    assert_eq!(
        catalog.read().dataset(TABLE).expect("ds").rects.len(),
        BASE_N - victims.len(),
        "the delete must land exactly once"
    );

    drop(client);
    harness.join().expect("harness");
}
